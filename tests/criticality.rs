//! Integration tests for the criticality heuristic against empirical fault
//! injection — the §4.1 claim that the structural rule predicts which
//! layers need protection.

use ft2::core::critical::{critical_layers, CriticalityReport};
use ft2::core::{offline_profile, Correction, Coverage, NanPolicy, Protector};
use ft2::fault::{Campaign, CampaignConfig, FaultModel, ProtectionFactory};
use ft2::model::{ArchStyle, LayerKind, LayerTap, ZooModel};
use ft2::parallel::WorkStealingPool;
use ft2::tasks::datasets::generate_prompts;
use ft2::tasks::{DatasetId, TaskSpec, TaskType};
use std::sync::Arc;

struct CoverageFactory {
    kinds: Vec<LayerKind>,
    offline: Arc<ft2::core::profile::OfflineBounds>,
}

impl ProtectionFactory for CoverageFactory {
    fn make(&self) -> Vec<Box<dyn LayerTap>> {
        vec![Box::new(Protector::offline(
            Coverage::linears(self.kinds.clone()),
            self.offline.linear.clone(),
            Correction::ClampToBound,
            NanPolicy::ToZero,
        ))]
    }
}

#[test]
fn heuristic_matches_paper_table1_for_all_zoo_models() {
    for spec in ft2::model::model_zoo() {
        let report = CriticalityReport::analyse(&spec.config);
        assert!(report.matches_table1(), "{} diverges from Table 1", spec.name());
    }
}

#[test]
fn critical_sets_per_family() {
    assert_eq!(
        critical_layers(ArchStyle::OptStyle),
        vec![LayerKind::VProj, LayerKind::OutProj, LayerKind::Fc2]
    );
    assert_eq!(
        critical_layers(ArchStyle::LlamaStyle),
        vec![
            LayerKind::VProj,
            LayerKind::OutProj,
            LayerKind::UpProj,
            LayerKind::DownProj
        ]
    );
}

#[test]
fn empirical_criticality_supports_the_heuristic() {
    // Protect everything except one layer kind, inject EXP faults only into
    // that kind, and compare conditional SDC between the heuristic's
    // critical and non-critical groups.
    let spec = ZooModel::Opt6_7B.spec();
    let model = spec.build();
    let pool = WorkStealingPool::new(2);
    let prompts = generate_prompts(DatasetId::Squad, 5, 61);
    let profile = generate_prompts(DatasetId::Squad, 8, 62);
    let offline = Arc::new(offline_profile(&model, &profile, 12, &pool));
    let task = TaskSpec::new(TaskType::Qa, 12);
    let judge = task.judge();

    let all: Vec<LayerKind> = model.config().block_layers().to_vec();
    let mut critical_sdc = 0.0;
    let mut noncritical_sdc = 0.0;
    for &excluded in &all {
        let mut cfg = CampaignConfig {
            trials_per_input: 60,
            gen_tokens: 12,
            ..CampaignConfig::quick(FaultModel::ExponentBit)
        };
        cfg.layer_filter = Some(vec![excluded]);
        let campaign = Campaign::new(&model, &prompts, &judge, cfg, &pool);
        let kinds: Vec<LayerKind> = all.iter().copied().filter(|k| *k != excluded).collect();
        let r = campaign.run(
            &CoverageFactory {
                kinds,
                offline: offline.clone(),
            },
            &pool,
        );
        if CriticalityReport::table1_expectation(excluded) {
            critical_sdc += r.sdc_rate();
        } else {
            noncritical_sdc += r.sdc_rate();
        }
    }
    assert!(
        critical_sdc > noncritical_sdc,
        "critical group ({critical_sdc:.4}) must leak more than non-critical ({noncritical_sdc:.4})"
    );
}

#[test]
fn ft2_coverage_is_exactly_the_critical_set() {
    use ft2::core::Scheme;
    for style in [ArchStyle::OptStyle, ArchStyle::LlamaStyle] {
        let coverage = Scheme::Ft2.coverage(style);
        assert_eq!(coverage.linear, critical_layers(style));
        assert!(!coverage.activations);
    }
}
