//! Integration tests for sharded execution with fault-isolation domains:
//! shard-level repair strictly reduces silent data corruption compared to
//! rollback-only recovery, the detected repair rung clears a persistent
//! shard fault in place, and a shard crash under the degrade policy keeps
//! serving while reporting [`Outcome::Degraded`] — never silently.

use ft2::core::ShardScrubber;
use ft2::fault::{
    classify_sharded, ExactJudge, FaultDuration, Outcome, ShardFault, ShardFaultInjector,
    ShardFaultSpec,
};
use ft2::model::engine::RecoveryPolicy;
use ft2::model::shard::{ShardStateReport, ShardTap, ShardWeights};
use ft2::model::{Model, ShardTapList, ShardedGeneration, ShardedModel, ZooModel};
use ft2::parallel::WorkStealingPool;
use std::time::Duration;

const HEARTBEAT: Duration = Duration::from_millis(100);
const GEN_TOKENS: usize = 10;

/// A handful of fixed prompts (vocab is 512 for every zoo config).
fn prompts() -> Vec<Vec<u32>> {
    vec![
        vec![3, 14, 15, 9, 26, 5],
        vec![101, 7, 63, 200, 41],
        vec![400, 12, 350, 88, 9, 17],
        vec![55, 55, 301, 2, 499],
        vec![250, 31, 7, 190, 64, 128],
        vec![77, 420, 5, 333, 21],
    ]
}

fn run_sharded(
    model: &Model,
    pool: &WorkStealingPool,
    n: usize,
    prompt: &[u32],
    taps: &mut ShardTapList<'_>,
    policy: RecoveryPolicy,
) -> ShardedGeneration {
    ShardedModel::new(model, n).generate_with(pool, prompt, GEN_TOKENS, taps, policy, HEARTBEAT)
}

/// Persistent *silent* weight corruption: every step start rewrites a
/// stripe of shard 0's block-0 K-projection slice with a plausible
/// constant — far below the executor's anomaly threshold, so the
/// rollback ladder never fires. Only stored-state integrity (CRC scrub
/// against the golden copy) can see it.
struct SilentCorruptor {
    inert: bool,
}

impl ShardTap for SilentCorruptor {
    fn on_step_start(&mut self, _step: usize, shards: &mut [ShardWeights]) -> ShardStateReport {
        if !self.inert {
            let block = &mut shards[0].blocks[0];
            for w in [
                block.k_proj.weight.as_mut_slice(),
                block.v_proj.weight.as_mut_slice(),
            ] {
                for v in w {
                    *v = 1.5;
                }
            }
        }
        ShardStateReport::default()
    }

    fn on_repartition(&mut self, _shards: &[ShardWeights]) {
        self.inert = true;
    }
}

#[test]
fn shard_repair_strictly_reduces_silent_corruption() {
    // Same silent persistent weight fault, same prompts, two recovery
    // configurations. Rollback-only recovery is blind to corruption that
    // stays inside the anomaly bounds, so the poisoned slice corrupts
    // answers silently; the shard scrubber restores the slice from the
    // golden copy before each forward pass, so the SDC count must drop.
    let model = ZooModel::Qwen2_1_5B.spec().build();
    let pool = WorkStealingPool::new(3);
    let mut sdc_rollback = 0usize;
    let mut sdc_repair = 0usize;
    let mut tiles_repaired = 0u64;

    for prompt in prompts() {
        let golden = run_sharded(
            &model,
            &pool,
            2,
            &prompt,
            &mut ShardTapList::new(),
            RecoveryPolicy::disabled(),
        );
        assert!(golden.completed());

        // Rollback-only: the retry budget exists but nothing trips it.
        let mut corrupt = SilentCorruptor { inert: false };
        let mut taps = ShardTapList::new();
        taps.push(&mut corrupt);
        let off = run_sharded(&model, &pool, 2, &prompt, &mut taps, RecoveryPolicy::retries(2));
        assert!(off.completed(), "silent corruption must not be detected");
        assert_eq!(off.storms, 0, "corruption was supposed to stay silent");
        if classify_sharded(&golden.tokens, &off, &ExactJudge) == Outcome::Sdc {
            sdc_rollback += 1;
        }

        // Same fault plus the shard-granular integrity vertical: a full
        // CRC sweep per step restores the slice before it can be read.
        let mut corrupt = SilentCorruptor { inert: false };
        let mut sharded = ShardedModel::new(&model, 2);
        let mut scrub = ShardScrubber::new(sharded.shards(), usize::MAX);
        let mut taps = ShardTapList::new();
        taps.push(&mut corrupt);
        taps.push(&mut scrub);
        let on = sharded.generate_with(
            &pool,
            &prompt,
            GEN_TOKENS,
            &mut taps,
            RecoveryPolicy::retries(2).with_repair(),
            HEARTBEAT,
        );
        assert!(on.completed());
        tiles_repaired += on.tiles_repaired;
        if classify_sharded(&golden.tokens, &on, &ExactJudge) == Outcome::Sdc {
            sdc_repair += 1;
        }
    }

    assert!(
        sdc_rollback > 0,
        "fault too weak to observe any silent corruption under rollback-only"
    );
    assert!(
        sdc_repair < sdc_rollback,
        "repair must strictly reduce SDCs: {sdc_repair} with repair vs {sdc_rollback} rollback-only"
    );
    assert!(tiles_repaired > 0, "the scrubber never repaired a tile");
}

#[test]
fn repair_rung_recovers_detected_persistent_tile_corruption() {
    // A detected persistent shard fault (tile corruption at storm
    // magnitude) with the scrubber registered: the repair rung restores
    // exactly the implicated slice and the generation finishes
    // token-identical to the fault-free run — no shard is evicted.
    let model = ZooModel::Opt6_7B.spec().build();
    let pool = WorkStealingPool::new(3);
    let prompt = [3, 14, 15, 9, 26, 5];

    let golden = run_sharded(
        &model,
        &pool,
        2,
        &prompt,
        &mut ShardTapList::new(),
        RecoveryPolicy::disabled(),
    );

    let spec = ShardFaultSpec {
        shard: 0,
        fault: ShardFault::TileCorrupt,
        step: 1,
        block: 0,
        duration: FaultDuration::Persistent,
    };
    let mut injector = ShardFaultInjector::new(spec);
    let mut sharded = ShardedModel::new(&model, 2);
    let mut scrub = ShardScrubber::new(sharded.shards(), 0);
    let mut taps = ShardTapList::new();
    taps.push(&mut injector);
    taps.push(&mut scrub);
    let out = sharded.generate_with(
        &pool,
        &prompt,
        GEN_TOKENS,
        &mut taps,
        RecoveryPolicy::retries(1).with_repair(),
        HEARTBEAT,
    );

    assert!(out.completed());
    assert_eq!(out.shards_lost, 0, "repair must beat eviction to the fault");
    assert!(out.repair_rungs > 0, "the repair rung never fired");
    assert!(out.tiles_repaired > 0);
    assert_eq!(
        out.tokens, golden.tokens,
        "repaired generation must be token-identical to fault-free"
    );
    match classify_sharded(&golden.tokens, &out, &ExactJudge) {
        Outcome::Repaired { repairs } => assert!(repairs > 0),
        other => panic!("expected Outcome::Repaired, got {other:?}"),
    }
}

#[test]
fn crash_with_degrade_keeps_serving_and_reports_degraded() {
    // One shard of three crashes persistently mid-generation. With the
    // degrade policy the executor evicts it, re-partitions across the
    // survivors, and still emits every requested token — and the outcome
    // taxonomy reports the quality loss explicitly, never silently.
    let model = ZooModel::Qwen2_1_5B.spec().build();
    let pool = WorkStealingPool::new(3);
    let prompt = [101, 7, 63, 200, 41];

    let golden = run_sharded(
        &model,
        &pool,
        3,
        &prompt,
        &mut ShardTapList::new(),
        RecoveryPolicy::disabled(),
    );

    let spec = ShardFaultSpec {
        shard: 2,
        fault: ShardFault::Crash,
        step: 1,
        block: 0,
        duration: FaultDuration::Persistent,
    };
    let mut injector = ShardFaultInjector::new(spec);
    let mut taps = ShardTapList::new();
    taps.push(&mut injector);
    let out = run_sharded(
        &model,
        &pool,
        3,
        &prompt,
        &mut taps,
        RecoveryPolicy::retries(1).with_shard_degrade(),
    );

    assert!(out.completed(), "degrade must keep the generation alive");
    assert_eq!(out.tokens.len(), GEN_TOKENS, "every token must be served");
    assert_eq!(out.shards_lost, 1);
    assert_eq!(out.shards, 2, "two survivors after one eviction");
    assert_eq!(out.degrade_events.len(), 1);
    assert_eq!(
        classify_sharded(&golden.tokens, &out, &ExactJudge),
        Outcome::Degraded { shards_lost: 1 },
        "a degraded generation must be reported as such, never silently"
    );

    // Without the degrade policy the same fault is a detected DUE — the
    // failure is still never silent.
    let mut injector = ShardFaultInjector::new(spec);
    let mut taps = ShardTapList::new();
    taps.push(&mut injector);
    let due = run_sharded(&model, &pool, 3, &prompt, &mut taps, RecoveryPolicy::retries(1));
    assert!(due.failed.is_some());
    match classify_sharded(&golden.tokens, &due, &ExactJudge) {
        Outcome::Crash { site, .. } => assert_eq!(site, "shard2"),
        other => panic!("expected a shard-scoped DUE, got {other:?}"),
    }
}
