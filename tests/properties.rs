//! Cross-crate property-based tests.

use ft2::core::bounds::{BoundsStore, LayerBounds};
use ft2::core::protect::{Correction, Coverage, NanPolicy, Protector};
use ft2::fault::{FaultDuration, FaultInjector, FaultModel, FaultSite, FaultTarget, SiteSampler};
use ft2::model::engine::RecoveryPolicy;
use ft2::model::shard::ShardPlan;
use ft2::model::{
    HookKind, LayerKind, LayerTap, ModelConfig, ShardTapList, ShardedModel, TapCtx, TapPoint,
    ZooModel,
};
use ft2::parallel::WorkStealingPool;
use ft2::numeric::bits::flip_bit_in_format;
use ft2::numeric::{crc64_f32s, Bf16, FloatFormat, Xoshiro256StarStar, F16};
use ft2::tensor::{DType, Matrix};
use proptest::prelude::*;

/// Round a value to the nearest representable one in `format`, so that
/// bit flips operate on an exactly-stored pattern.
fn quantise(v: f32, format: FloatFormat) -> f32 {
    match format {
        FloatFormat::F32 => v,
        FloatFormat::F16 => F16::from_f32(v).to_f32(),
        FloatFormat::Bf16 => Bf16::from_f32(v).to_f32(),
    }
}

fn ctx(layer: LayerKind, step: usize) -> TapCtx {
    TapCtx {
        point: TapPoint { block: 0, layer },
        hook: HookKind::LinearOutput,
        step,
        first_pos: 0,
        dtype: DType::F16,
    }
}

proptest! {
    /// After an offline protector runs, every non-NaN value of a covered
    /// layer lies inside the bounds (clamp) or is zero (clip).
    #[test]
    fn protector_output_respects_bounds(
        values in prop::collection::vec(-100.0f32..100.0, 1..64),
        lo in -5.0f32..-0.1,
        hi in 0.1f32..5.0,
        clamp in any::<bool>(),
    ) {
        let mut store = BoundsStore::new();
        let point = TapPoint { block: 0, layer: LayerKind::VProj };
        store.set(point, LayerBounds { lo, hi });
        let correction = if clamp { Correction::ClampToBound } else { Correction::ClipToZero };
        let mut p = Protector::offline(
            Coverage::linears(vec![LayerKind::VProj]),
            store,
            correction,
            NanPolicy::ToZero,
        );
        let mut m = Matrix::from_vec(1, values.len(), values.clone());
        p.on_output(&ctx(LayerKind::VProj, 0), &mut m);
        for (i, &v) in m.as_slice().iter().enumerate() {
            prop_assert!(!v.is_nan());
            if clamp {
                prop_assert!(v >= lo && v <= hi, "value {v} at {i} outside [{lo},{hi}]");
            } else {
                prop_assert!(v == 0.0 || (v >= lo && v <= hi));
            }
        }
    }

    /// Protection is idempotent: applying the same protector state twice
    /// changes nothing the second time.
    #[test]
    fn protection_is_idempotent(
        values in prop::collection::vec(-50.0f32..50.0, 1..32),
    ) {
        let mut store = BoundsStore::new();
        let point = TapPoint { block: 0, layer: LayerKind::Fc2 };
        store.set(point, LayerBounds { lo: -1.0, hi: 1.0 });
        let mut p = Protector::offline(
            Coverage::linears(vec![LayerKind::Fc2]),
            store,
            Correction::ClampToBound,
            NanPolicy::ToZero,
        );
        let mut m = Matrix::from_vec(1, values.len(), values);
        p.on_output(&ctx(LayerKind::Fc2, 0), &mut m);
        let once = m.clone();
        p.on_output(&ctx(LayerKind::Fc2, 0), &mut m);
        prop_assert_eq!(m, once);
    }

    /// The injector corrupts exactly one element, and only at its site.
    #[test]
    fn injector_touches_exactly_one_element(
        cols in 1usize..64,
        element in 0usize..256,
        bit in 0u32..16,
    ) {
        let site = FaultSite {
            step: 0,
            point: TapPoint { block: 0, layer: LayerKind::KProj },
            element,
            bits: vec![bit],
            duration: FaultDuration::Transient,
            target: FaultTarget::Activation,
        };
        let mut inj = FaultInjector::new(site);
        let values: Vec<f32> = (0..cols).map(|i| 0.25 + i as f32 * 0.01).collect();
        let mut m = Matrix::from_vec(1, cols, values.clone());
        inj.on_output(&ctx(LayerKind::KProj, 0), &mut m);
        let changed: Vec<usize> = m
            .as_slice()
            .iter()
            .zip(&values)
            .enumerate()
            .filter(|(_, (a, b))| {
                // NaN != anything; treat NaN as changed.
                a.is_nan() || *a != *b
            })
            .map(|(i, _)| i)
            .collect();
        // Exactly one element changed (a flip always changes the pattern;
        // the value can only be bit-identical if the f16 quantised pattern
        // maps back to the same float, which a xor never does).
        prop_assert_eq!(changed.len(), 1);
        prop_assert_eq!(changed[0], element % cols);
    }

    /// Site sampling always produces sites valid for the model shape.
    #[test]
    fn sampled_sites_are_valid(seed in any::<u64>()) {
        let config = ModelConfig::tiny_llama();
        let sampler = SiteSampler::new(&config, 6, 9);
        let mut rng = Xoshiro256StarStar::new(seed);
        for fm in FaultModel::ALL {
            let site = sampler.sample(&mut rng, fm, FloatFormat::F16);
            prop_assert!(site.step < 9);
            prop_assert!(site.point.block < config.blocks);
            prop_assert!(config.block_layers().contains(&site.point.layer));
            let rows = if site.step == 0 { 6 } else { 1 };
            prop_assert!(site.element < rows * config.out_features(site.point.layer));
            for &b in &site.bits {
                prop_assert!(b < 16);
            }
        }
    }

    /// Bounds scaling grows monotonically with the scale factor.
    #[test]
    fn bound_scaling_is_monotone(
        lo in -10.0f32..0.0,
        hi in 0.0f32..10.0,
        s1 in 1.0f32..4.0,
        extra in 0.1f32..4.0,
    ) {
        let b = LayerBounds { lo, hi };
        let a = b.scaled(s1);
        let c = b.scaled(s1 + extra);
        prop_assert!(c.lo <= a.lo + 1e-6);
        prop_assert!(c.hi >= a.hi - 1e-6);
        // Original interval always contained.
        prop_assert!(a.lo <= lo && a.hi >= hi);
    }

    /// Bit flips are involutions: applying the same fault-model bit pattern
    /// twice restores the stored value bit-exactly, for every fault model
    /// and every storage format (including NaN-producing exponent flips,
    /// whose payloads the narrow formats must preserve).
    #[test]
    fn bit_flips_are_involutions(
        raw in -1000.0f32..1000.0,
        seed in any::<u64>(),
    ) {
        for format in [FloatFormat::F16, FloatFormat::F32, FloatFormat::Bf16] {
            let stored = quantise(raw, format);
            let mut rng = Xoshiro256StarStar::new(seed);
            for fm in FaultModel::ALL {
                let bits = fm.sample_bits(&mut rng, format);
                let mut v = stored;
                for &b in &bits {
                    v = flip_bit_in_format(v, format, b);
                }
                prop_assert_ne!(
                    v.to_bits(), stored.to_bits(),
                    "a xor must change the stored pattern ({:?}, {:?}, bits {:?})",
                    fm, format, bits.clone()
                );
                for &b in &bits {
                    v = flip_bit_in_format(v, format, b);
                }
                prop_assert_eq!(
                    v.to_bits(), stored.to_bits(),
                    "double flip must restore exactly ({:?}, {:?}, bits {:?})",
                    fm, format, bits
                );
            }
        }
    }

    /// Checksum soundness: corrupting any one element of a tile with any
    /// fault model's bit flips changes the tile's CRC-64 checksum. (The
    /// corruption is confined to one 32-bit word — a burst well within the
    /// 64-bit window CRC-64 detects unconditionally.)
    #[test]
    fn any_bit_flip_changes_tile_checksum(
        tile in prop::collection::vec(-4.0f32..4.0, 1..64),
        element in 0usize..256,
        seed in any::<u64>(),
    ) {
        let stored: Vec<f32> = tile.iter().map(|&v| quantise(v, FloatFormat::F16)).collect();
        let clean = crc64_f32s(&stored);
        let mut rng = Xoshiro256StarStar::new(seed);
        for fm in FaultModel::ALL {
            let bits = fm.sample_bits(&mut rng, FloatFormat::F16);
            let mut corrupted = stored.clone();
            let idx = element % corrupted.len();
            for &b in &bits {
                corrupted[idx] = flip_bit_in_format(corrupted[idx], FloatFormat::F16, b);
            }
            prop_assert_ne!(
                crc64_f32s(&corrupted), clean,
                "flip of bits {:?} at element {} left the checksum unchanged",
                bits, idx
            );
        }
    }

    /// Online FT2 protector: after the prefill, every value it passes
    /// through on later steps lies within the scaled bounds.
    #[test]
    fn online_protector_clamps_after_prefill(
        prefill in prop::collection::vec(-2.0f32..2.0, 4..32),
        decode in prop::collection::vec(-100.0f32..100.0, 4..32),
    ) {
        let mut p = Protector::ft2_online(
            Coverage::linears(vec![LayerKind::VProj]),
            2.0,
        );
        let mut m0 = Matrix::from_vec(1, prefill.len(), prefill);
        p.on_output(&ctx(LayerKind::VProj, 0), &mut m0);
        let bounds = p
            .current_bounds(&TapPoint { block: 0, layer: LayerKind::VProj })
            .unwrap();
        let mut m1 = Matrix::from_vec(1, decode.len(), decode);
        p.on_output(&ctx(LayerKind::VProj, 3), &mut m1);
        for &v in m1.as_slice() {
            prop_assert!(bounds.contains(v), "{v} outside {bounds:?}");
        }
    }

    /// Sharding is a bit-exact involution for every zoo architecture and
    /// shard count — including counts that divide neither the head count
    /// (Qwen2-1.5B has 3 heads) nor the hidden width.
    #[test]
    fn zoo_shard_partition_reassembly_is_an_involution(
        zoo_idx in 0usize..7,
        n in 1usize..7,
    ) {
        let model = ZooModel::ALL[zoo_idx].spec().build();
        let config = model.config();
        let golden = model.weights();
        let plan = ShardPlan::new(config, n);
        let shards = plan.partition(config, golden);
        // Scramble every sharded linear of the target, then reassemble.
        let mut target = golden.clone();
        for bw in &mut target.blocks {
            for kind in config.block_layers() {
                let lin = bw.layer_mut(*kind).unwrap();
                for v in lin.weight.as_mut_slice() {
                    *v = 7.75;
                }
                if let Some(b) = lin.bias.as_mut() {
                    for v in b {
                        *v = -7.75;
                    }
                }
            }
        }
        plan.reassemble_into(&shards, &mut target);
        prop_assert_eq!(
            &target, golden,
            "{}: partition/reassemble not an involution at n={}",
            config.name, n
        );
    }

    /// Fault-free sharded generation is token-identical across shard
    /// counts for every zoo architecture and any prompt: the f64
    /// all-reduce seam makes the partition invisible to the token stream.
    #[test]
    fn zoo_sharded_generation_is_shard_count_invariant(
        zoo_idx in 0usize..7,
        n in 2usize..6,
        seed in any::<u64>(),
        prompt_len in 3usize..8,
    ) {
        let model = ZooModel::ALL[zoo_idx].spec().build();
        let vocab = model.config().vocab as u64;
        let prompt: Vec<u32> = (0..prompt_len)
            .map(|i| ((seed >> (7 * (i % 8))) % vocab) as u32)
            .collect();
        let pool = WorkStealingPool::new(2);
        let heartbeat = std::time::Duration::from_millis(250);
        let golden = ShardedModel::new(&model, 1).generate_with(
            &pool,
            &prompt,
            6,
            &mut ShardTapList::new(),
            RecoveryPolicy::disabled(),
            heartbeat,
        );
        prop_assert!(golden.completed());
        let out = ShardedModel::new(&model, n).generate_with(
            &pool,
            &prompt,
            6,
            &mut ShardTapList::new(),
            RecoveryPolicy::disabled(),
            heartbeat,
        );
        prop_assert!(out.completed());
        prop_assert_eq!(out.storms, 0, "fault-free run reported a storm");
        prop_assert_eq!(
            out.tokens, golden.tokens,
            "{}: {}-shard tokens diverge from 1-shard",
            model.config().name, n
        );
    }
}
