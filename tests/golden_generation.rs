//! Golden fault-free generations for every zoo model.
//!
//! These sequences were captured before the decode hot path was rebuilt on
//! the scratch-reuse/SIMD kernels and must never drift: any kernel or engine
//! change that alters a fault-free token stream silently invalidates every
//! campaign's reference outputs (and with them all SDC/DUE rates). The
//! prompts are the `ft2-bench` fixtures — `generate_prompts(Squad, 2,
//! 0xBE7C4)` — with 16 generated tokens, so the pinned shapes are exactly
//! the benchmarked ones.

use ft2::model::{KernelPolicy, TapList, ZooModel};
use ft2::tasks::datasets::generate_prompts;
use ft2::tasks::DatasetId;

/// `(model, per-prompt token sequences)` captured at the pre-rewrite seed.
fn goldens() -> Vec<(ZooModel, [Vec<u32>; 2])> {
    fn run(head: &[u32], tail: u32) -> Vec<u32> {
        let mut v = head.to_vec();
        v.resize(16, tail);
        v
    }
    vec![
        (ZooModel::Opt6_7B, [run(&[357; 11], 243), run(&[], 11)]),
        (ZooModel::Opt2_7B, [run(&[15], 305), run(&[], 305)]),
        (ZooModel::GptJ6B, [run(&[], 166), run(&[], 34)]),
        (ZooModel::Llama2_7B, [run(&[], 1), run(&[], 14)]),
        (ZooModel::Vicuna7B, [run(&[], 248), run(&[], 192)]),
        (ZooModel::Qwen2_7B, [run(&[], 9), run(&[], 50)]),
        (ZooModel::Qwen2_1_5B, [run(&[], 77), run(&[], 5)]),
    ]
}

#[test]
fn fault_free_generations_match_goldens() {
    let prompts = generate_prompts(DatasetId::Squad, 2, 0xBE7C4);
    for (zoo, expected) in goldens() {
        let spec = zoo.spec();
        let model = spec.build();
        for (pi, want) in expected.iter().enumerate() {
            let mut taps = TapList::new();
            let got = model.generate(&prompts[pi], 16, &mut taps);
            assert_eq!(
                &got.tokens,
                want,
                "{} prompt {pi}: fault-free generation drifted",
                spec.name()
            );
        }
    }
}

/// The fast kernel policy must stay token-identical to strict on fault-free
/// generations — that equivalence is what lets campaigns compute their
/// reference outputs under [`KernelPolicy::Fast`].
#[test]
fn fast_policy_generations_match_goldens() {
    let prompts = generate_prompts(DatasetId::Squad, 2, 0xBE7C4);
    for (zoo, expected) in goldens() {
        let spec = zoo.spec();
        let model = spec.build();
        for (pi, want) in expected.iter().enumerate() {
            let mut taps = TapList::new();
            let got =
                model.generate_with_policy(&prompts[pi], 16, &mut taps, KernelPolicy::Fast);
            assert_eq!(
                &got.tokens,
                want,
                "{} prompt {pi}: fast-policy generation drifted from golden",
                spec.name()
            );
        }
    }
}
