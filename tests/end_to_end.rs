//! Cross-crate integration tests: the full protect-and-generate pipeline.

use ft2::core::{offline_profile, Scheme, SchemeFactory};
use ft2::fault::{
    Campaign, CampaignConfig, FaultModel, Outcome, ProtectionFactory, StepWeighting, Unprotected,
};
use ft2::model::{Model, ModelConfig, TapList, ZooModel};
use ft2::parallel::WorkStealingPool;
use ft2::tasks::datasets::generate_prompts;
use ft2::tasks::{DatasetId, TaskSpec, TaskType};
use std::sync::Arc;

fn pool() -> WorkStealingPool {
    WorkStealingPool::new(2)
}

fn quick_cfg(fm: FaultModel, trials: usize, gen: usize) -> CampaignConfig {
    CampaignConfig {
        trials_per_input: trials,
        gen_tokens: gen,
        ..CampaignConfig::quick(fm)
    }
}

#[test]
fn protected_generation_equals_clean_generation_without_faults() {
    // FT2's online protection must be transparent on fault-free inference
    // (the Fig. 3 property for well-fitting bounds).
    let model = ZooModel::Opt6_7B.spec().build();
    let prompts = generate_prompts(DatasetId::Squad, 6, 11);
    let factory = SchemeFactory::new(Scheme::Ft2, model.config(), None);
    for prompt in &prompts {
        let mut clean_taps = TapList::new();
        let clean = model.generate(prompt, 14, &mut clean_taps);

        let mut boxes = factory.make();
        let mut taps = TapList::new();
        for b in boxes.iter_mut() {
            taps.push(b.as_mut());
        }
        let protected = model.generate(prompt, 14, &mut taps);
        assert_eq!(clean.tokens, protected.tokens, "FT2 altered a clean run");
    }
}

#[test]
fn campaign_pipeline_end_to_end() {
    let model = ZooModel::Qwen2_1_5B.spec().build();
    let pool = pool();
    let prompts = generate_prompts(DatasetId::Squad, 4, 5);
    let task = TaskSpec::new(TaskType::Qa, 12);
    let judge = task.judge();
    let campaign = Campaign::new(
        &model,
        &prompts,
        &judge,
        quick_cfg(FaultModel::ExponentBit, 25, 12),
        &pool,
    );
    let unprot = campaign.run(&Unprotected, &pool);
    let ft2 = campaign.run(
        &SchemeFactory::new(Scheme::Ft2, model.config(), None),
        &pool,
    );
    assert_eq!(unprot.counts.total(), 100);
    assert_eq!(ft2.counts.total(), 100);
    // FT2 never increases the SDC count on the same trial set.
    assert!(
        ft2.counts.sdc <= unprot.counts.sdc,
        "FT2 {} vs unprotected {}",
        ft2.counts.sdc,
        unprot.counts.sdc
    );
}

#[test]
fn ft2_beats_no_protection_across_fault_models() {
    // Aggregated over the three fault models on a fixed seed, FT2 must
    // strictly reduce SDCs (the paper's headline claim, miniaturised).
    let model = ZooModel::Opt6_7B.spec().build();
    let pool = pool();
    let prompts = generate_prompts(DatasetId::Squad, 6, 21);
    let task = TaskSpec::new(TaskType::Qa, 14);
    let judge = task.judge();
    let mut unprot_sdc = 0;
    let mut ft2_sdc = 0;
    for fm in FaultModel::ALL {
        let campaign = Campaign::new(&model, &prompts, &judge, quick_cfg(fm, 40, 14), &pool);
        unprot_sdc += campaign.run(&Unprotected, &pool).counts.sdc;
        ft2_sdc += campaign
            .run(&SchemeFactory::new(Scheme::Ft2, model.config(), None), &pool)
            .counts
            .sdc;
    }
    assert!(unprot_sdc > 0, "campaign too small to observe any SDC");
    assert!(
        (ft2_sdc as f64) < 0.5 * unprot_sdc as f64,
        "FT2 ({ft2_sdc}) should cut SDCs at least in half vs unprotected ({unprot_sdc})"
    );
}

#[test]
fn exp_faults_are_most_severe_single_bit_least() {
    let model = ZooModel::Llama2_7B.spec().build();
    let pool = pool();
    let prompts = generate_prompts(DatasetId::Squad, 6, 33);
    let task = TaskSpec::new(TaskType::Qa, 14);
    let judge = task.judge();
    let mut rates = Vec::new();
    for fm in FaultModel::ALL {
        let campaign = Campaign::new(&model, &prompts, &judge, quick_cfg(fm, 60, 14), &pool);
        rates.push(campaign.run(&Unprotected, &pool).sdc_rate());
    }
    // Order in FaultModel::ALL: 1-bit, 2-bit, EXP.
    assert!(
        rates[2] >= rates[0],
        "EXP ({}) must be at least as severe as 1-bit ({})",
        rates[2],
        rates[0]
    );
}

#[test]
fn offline_and_online_bounds_are_comparably_effective() {
    let model = ZooModel::Vicuna7B.spec().build();
    let pool = pool();
    let prompts = generate_prompts(DatasetId::Squad, 6, 44);
    let profile = generate_prompts(DatasetId::Squad, 10, 45);
    let offline = Arc::new(offline_profile(&model, &profile, 14, &pool));
    let task = TaskSpec::new(TaskType::Qa, 14);
    let judge = task.judge();
    let campaign = Campaign::new(
        &model,
        &prompts,
        &judge,
        quick_cfg(FaultModel::ExponentBit, 50, 14),
        &pool,
    );
    let on = campaign.run(
        &SchemeFactory::new(Scheme::Ft2, model.config(), None),
        &pool,
    );
    let off = campaign.run(
        &SchemeFactory::new(Scheme::Ft2Offline, model.config(), Some(offline)),
        &pool,
    );
    let unprot = campaign.run(&Unprotected, &pool);
    // Both protect; neither is dramatically worse than the other.
    assert!(on.counts.sdc <= unprot.counts.sdc);
    assert!(off.counts.sdc <= unprot.counts.sdc);
}

#[test]
fn judge_semantics_shifted_answers_are_masked() {
    // End-to-end check of the §2.3 semantic rule through the campaign
    // pipeline: outputs that still contain the answer span are not SDCs.
    let task = TaskSpec::new(TaskType::Qa, 12);
    let judge = task.judge();
    let reference: Vec<u32> = (200..212).collect();
    let answer = task.answer(&reference).to_vec();
    let mut shifted = vec![1u32, 2];
    shifted.extend_from_slice(&answer);
    shifted.extend(std::iter::repeat_n(3u32, 12 - shifted.len().min(12)));
    use ft2::fault::OutcomeJudge;
    assert_eq!(judge.classify(&reference, &shifted), Outcome::MaskedSemantic);
}

#[test]
fn campaign_reproducible_across_pool_sizes_and_runs() {
    let model = Model::new(ModelConfig::tiny_llama());
    let prompts = generate_prompts(DatasetId::TweetEval, 4, 9);
    let task = TaskSpec::new(TaskType::Qa, 10);
    let judge = task.judge();

    let run_with = |threads: usize| {
        let pool = WorkStealingPool::new(threads);
        let campaign = Campaign::new(
            &model,
            &prompts,
            &judge,
            quick_cfg(FaultModel::DoubleBit, 20, 10),
            &pool,
        );
        let r = campaign.run(&Unprotected, &pool);
        (r.counts, r.per_layer)
    };
    let a = run_with(1);
    let b = run_with(4);
    assert_eq!(a, b, "campaign must be thread-count independent");
}

#[test]
fn step_weighting_controls_first_token_exposure() {
    let model = ZooModel::Opt2_7B.spec().build();
    let pool = pool();
    let prompts = generate_prompts(DatasetId::Squad, 4, 50);
    let task = TaskSpec::new(TaskType::Qa, 12);
    let judge = task.judge();

    let mut cfg = quick_cfg(FaultModel::SingleBit, 50, 12);
    cfg.step_weighting = StepWeighting::ByComputation;
    let campaign = Campaign::new(&model, &prompts, &judge, cfg, &pool);
    let by_comp = campaign.run(&Unprotected, &pool);

    let cfg = quick_cfg(FaultModel::SingleBit, 50, 12);
    let campaign = Campaign::new(&model, &prompts, &judge, cfg, &pool);
    let by_time = campaign.run(&Unprotected, &pool);

    let share = |r: &ft2::fault::CampaignResult| {
        r.first_token_faults.total() as f64 / r.counts.total() as f64
    };
    assert!(
        share(&by_comp) > 2.0 * share(&by_time),
        "computation weighting must hit the prefill far more often ({} vs {})",
        share(&by_comp),
        share(&by_time)
    );
}
