//! Integration tests for the stored-state integrity layer: fault-free
//! transparency, scrub-driven SDC reduction on persistent weight faults,
//! and thread-count invariance of the scrub/repair counters.

use ft2::core::{IntegrityConfig, Scheme, SchemeFactory, WeightChecksums};
use ft2::fault::{
    Campaign, CampaignConfig, CampaignResult, FaultDuration, FaultModel, FaultTarget,
};
use ft2::model::engine::RecoveryPolicy;
use ft2::model::{Model, StateTapList, TapList, ZooModel};
use ft2::parallel::WorkStealingPool;
use ft2::tasks::datasets::generate_prompts;
use ft2::tasks::{DatasetId, TaskSpec, TaskType};
use std::sync::Arc;

/// A persistent-weight campaign config sized so the unprotected run
/// observes silent corruption.
fn persistent_weight_cfg(trials: usize) -> CampaignConfig {
    CampaignConfig {
        trials_per_input: trials,
        gen_tokens: 16,
        fault_duration: FaultDuration::Persistent,
        fault_target: FaultTarget::Weight,
        ..CampaignConfig::quick(FaultModel::ExponentBit)
    }
}

/// Scheme factory with the full integrity layer: golden checksums, a scrub
/// rate of one full tile sweep per step, and the KV guard.
fn integrity_factory(model: &Model, scheme: Scheme, kv_guard: bool) -> SchemeFactory {
    let checksums = Arc::new(WeightChecksums::build(model.config(), model.weights()));
    let scrub_rate = checksums.num_tiles();
    SchemeFactory::new(scheme, model.config(), None).with_integrity(IntegrityConfig {
        scrub_tiles_per_step: scrub_rate,
        kv_guard,
        checksums: Some(checksums),
    })
}

fn run_campaign(
    model: &Model,
    factory: &SchemeFactory,
    threads: usize,
    trials: usize,
) -> CampaignResult {
    let pool = WorkStealingPool::new(threads);
    let prompts = generate_prompts(DatasetId::Gsm8k, 6, 0xF72_CAFE ^ 0xEA71);
    let task = TaskSpec::new(TaskType::Math, 16);
    let judge = task.judge();
    let campaign = Campaign::new(model, &prompts, &judge, persistent_weight_cfg(trials), &pool);
    campaign.run(factory, &pool)
}

#[test]
fn fault_free_scrubbing_is_bit_transparent_and_never_repairs() {
    // The integrity layer must be invisible on a healthy model: scrubbing
    // verifies tiles but never "repairs" an uncorrupted one, the KV guard
    // never invalidates a healthy row, and the generated tokens are
    // bit-identical to a run with the layer disabled.
    let model = ZooModel::Qwen2_1_5B.spec().build();
    let prompts = generate_prompts(DatasetId::Squad, 4, 11);
    let plain = SchemeFactory::new(Scheme::Ft2, model.config(), None);
    let scrubbed = integrity_factory(&model, Scheme::Ft2, true);
    use ft2::fault::ProtectionFactory;

    for prompt in &prompts {
        let mut clean_boxes = plain.make();
        let mut clean_taps = TapList::new();
        for b in clean_boxes.iter_mut() {
            clean_taps.push(b.as_mut());
        }
        let clean = model.generate(prompt, 14, &mut clean_taps);

        let mut boxes = scrubbed.make();
        let mut taps = TapList::new();
        for b in boxes.iter_mut() {
            taps.push(b.as_mut());
        }
        let mut state_boxes = scrubbed.make_state();
        let mut state = StateTapList::new();
        for b in state_boxes.iter_mut() {
            state.push(b.as_mut());
        }
        let out = model.generate_resilient(
            prompt,
            14,
            &mut taps,
            &mut state,
            RecoveryPolicy::retries(2).with_repair(),
        );

        assert_eq!(
            clean.tokens, out.tokens,
            "integrity layer altered a fault-free generation"
        );
        assert!(out.scrubbed_tiles > 0, "scrubber never ran");
        assert_eq!(out.repairs(), 0, "repair fired on a healthy model");
        assert_eq!(out.repair_retries, 0);
        assert_eq!(out.rollbacks, 0, "rollback fired on a fault-free run");
        assert!(!out.recovery_failed);
    }
}

#[test]
fn scrubbing_strictly_reduces_persistent_weight_sdcs() {
    // Same-seed persistent-weight campaigns on an unprotected model:
    // without scrubbing the flipped weight stays resident for the whole
    // generation and corrupts answers silently; with a full scrub sweep
    // per step the corruption is repaired from the golden copy before it
    // can spread.
    let model = ZooModel::Qwen2_1_5B.spec().build();
    let off = run_campaign(
        &model,
        &SchemeFactory::new(Scheme::NoProtection, model.config(), None),
        4,
        20,
    );
    let on = run_campaign(
        &model,
        &integrity_factory(&model, Scheme::NoProtection, false),
        4,
        20,
    );

    assert!(
        off.counts.sdc > 0,
        "campaign too small to observe any persistent-weight SDC"
    );
    assert!(
        on.counts.sdc < off.counts.sdc,
        "scrubbing must strictly reduce SDCs: on {} vs off {}",
        on.counts.sdc,
        off.counts.sdc
    );
    assert!(on.weight_repairs > 0, "scrubber never repaired a tile");
    assert!(on.scrubbed_tiles > off.scrubbed_tiles);
}

#[test]
fn scrub_campaign_results_are_thread_count_invariant() {
    // The scrub cursor, repair counters, and trial outcomes all derive
    // from per-trial state, so the aggregate must be bit-identical no
    // matter how trials are scheduled across workers.
    let model = ZooModel::Qwen2_1_5B.spec().build();
    let factory = integrity_factory(&model, Scheme::NoProtection, true);
    let serial = run_campaign(&model, &factory, 1, 5);
    let parallel = run_campaign(&model, &factory, 4, 5);
    assert_eq!(
        serial, parallel,
        "campaign results differ across thread counts"
    );
    assert!(serial.weight_repairs > 0);
}
