#!/usr/bin/env sh
# Tier-1 verification gate: the workspace must build and test fully offline
# against the committed lockfile — no registry, no network. CI runs exactly
# this script so the local gate and CI cannot drift apart.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release (offline, locked) =="
cargo build --release --workspace --offline --locked

echo "== cargo clippy -D warnings (offline, locked) =="
cargo clippy --workspace --all-targets --offline --locked -- -D warnings

echo "== cargo test (offline, locked) =="
cargo test -q --workspace --offline --locked

echo "== persistent-fault smoke campaign =="
# A tiny duration x target x defence sweep through the release binary:
# exercises the weight scrubber, KV guard, and repair-and-retry rung
# end-to-end exactly as a user would invoke them.
FT2_INPUTS=2 FT2_TRIALS=3 ./target/release/ft2-repro persistent

echo "verify: OK"
