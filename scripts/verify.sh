#!/usr/bin/env sh
# Tier-1 verification gate: the workspace must build and test fully offline
# against the committed lockfile — no registry, no network. CI runs exactly
# this script so the local gate and CI cannot drift apart.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release (offline, locked) =="
cargo build --release --workspace --offline --locked

echo "== cargo clippy -D warnings (offline, locked) =="
cargo clippy --workspace --all-targets --offline --locked -- -D warnings

echo "== cargo test (offline, locked) =="
cargo test -q --workspace --offline --locked

echo "== static analysis (source + concurrency lints + coverage + shutdown proofs) =="
# The in-tree analyser must pass on the real tree: zero lint findings, zero
# unprotected critical layers across all seven zoo configs, every outcome
# priced, every checkpoint version handled, no cycle in the
# lock-acquisition graph, and the no-execution shutdown proof intact
# (checked — the vacuous unchecked verdict must not slip through). Grep
# the schema keys like the bench smoke does so the JSON contract cannot
# silently drift.
LINT_TMP="$(mktemp)"
./target/release/ft2-repro lint --json > "$LINT_TMP"
for key in '"schema": 1' '"ok": true' '"finding_count": 0' \
           '"unprotected_critical_layers": 0' '"over_protected_layers": 0' \
           '"unpriced_outcomes": 0' '"checkpoint_versions_ok": true' \
           '"lock_cycles": 0' '"shutdown_checked": true' \
           '"shutdown_ok": true'; do
    grep -q "$key" "$LINT_TMP" || {
        echo "verify: lint JSON is missing $key" >&2
        cat "$LINT_TMP" >&2
        exit 1
    }
done
rm -f "$LINT_TMP"
# And the gate must actually bite: the seeded-violation fixture tree has
# one violation per lint class and must exit non-zero.
if ./target/release/ft2-repro lint --root crates/analyze/tests/fixtures/bad_tree > /dev/null; then
    echo "verify: lint accepted the seeded-violation fixture tree" >&2
    exit 1
fi

echo "== persistent-fault smoke campaign =="
# A tiny duration x target x defence sweep through the release binary:
# exercises the weight scrubber, KV guard, and repair-and-retry rung
# end-to-end exactly as a user would invoke them.
FT2_INPUTS=2 FT2_TRIALS=3 ./target/release/ft2-repro persistent

echo "== bench smoke (schema-stable JSON baseline) =="
# Quick-sized run of the perf baseline emitter: the subcommand must work
# end-to-end and the JSON schema the perf gate greps must not drift.
BENCH_TMP="$(mktemp -d)/BENCH_decode.json"
FT2_QUICK=1 ./target/release/ft2-repro bench --json --out "$BENCH_TMP"
for key in '"schema": 1' '"prefill_tok_s"' '"decode_tok_s"' '"campaign_trials_s"'; do
    grep -q "$key" "$BENCH_TMP" || {
        echo "verify: bench JSON is missing $key" >&2
        exit 1
    }
done
# Decode-throughput non-regression: the fresh quick run must stay within
# 2x of the committed BENCH_decode.json baseline. Quick sizing is noisy
# (historically ~90% of the full run on the same box), so the 50% floor
# only bites on a genuine hot-path regression, not jitter.
awk -F': ' '
    /"decode_tok_s"/ { gsub(/,/, ""); v[n++] = $2 }
    END {
        if (n != 2) { print "verify: could not read decode_tok_s" > "/dev/stderr"; exit 1 }
        if (v[1] * 2 < v[0]) {
            printf "verify: decode throughput regressed: %s tok/s vs committed baseline %s\n", v[1], v[0] > "/dev/stderr"
            exit 1
        }
    }' BENCH_decode.json "$BENCH_TMP"
rm -f "$BENCH_TMP"

echo "== shards smoke (fault-isolation guarantees + JSON baseline) =="
# 2-shard smoke sweep through the release binary: proves N-shard token
# identity, repair-beats-restart, and crash + degraded-mode serving, and
# pins the BENCH_shards.json schema the availability gate greps. The
# subcommand itself exits non-zero if any guarantee fails.
SHARDS_TMP="$(mktemp -d)/BENCH_shards.json"
FT2_QUICK=1 ./target/release/ft2-repro shards --smoke --json --out "$SHARDS_TMP"
for key in '"schema": 1' '"token_identical": true' '"repair_outcome": "Repaired"' \
           '"repair_beats_restart": true' '"degrade_outcome": "Degraded"' \
           '"ok": true'; do
    grep -q "$key" "$SHARDS_TMP" || {
        echo "verify: shards JSON is missing $key" >&2
        cat "$SHARDS_TMP" >&2
        exit 1
    }
done
rm -f "$SHARDS_TMP"

echo "== serve smoke (per-request fault isolation + JSON baseline) =="
# CI-sized pass through the continuous-batching serving gate: batch-vs-solo
# token identity at every swept batch size, and a transient storm confined
# to one lane of a batch-4 run that must heal by rollback with every
# request still token-identical. Pins the BENCH_serve.json schema. The
# subcommand itself exits non-zero if any guarantee fails.
SERVE_TMP="$(mktemp -d)/BENCH_serve.json"
./target/release/ft2-repro serve --smoke --json --out "$SERVE_TMP"
for key in '"schema": 2' '"requests_s"' '"ttft_ms"' '"p50_token_ms"' '"p99_token_ms"' \
           '"identity_ok": true' '"storm_outcome": "Completed"' \
           '"clean_p99_inflation"' '"storm_identity_ok": true' '"ok": true'; do
    grep -q "$key" "$SERVE_TMP" || {
        echo "verify: serve JSON is missing $key" >&2
        cat "$SERVE_TMP" >&2
        exit 1
    }
done
rm -f "$SERVE_TMP"

echo "== replicas smoke (cross-replica failover + JSON baseline) =="
# CI-sized pass through the replication gate: a replica crash mid-batch
# must hand its requests over with zero accepted-token loss and
# bit-identical continuations, a persistent one-replica storm must trip
# the breaker into quarantine with clean requests unaffected, and the
# quarantined replica must rebuild from the golden copy and rejoin faster
# than a full restart. Pins the BENCH_replicas.json schema. The
# subcommand itself exits non-zero if any guarantee fails.
REPLICAS_TMP="$(mktemp -d)/BENCH_replicas.json"
./target/release/ft2-repro replicas --smoke --json --out "$REPLICAS_TMP"
for key in '"schema": 2' '"crash_identity_ok": true' '"handoff_tokens"' \
           '"crash_failed_over"' '"storm_quarantined": true' \
           '"storm_identity_ok": true' '"ttft_ms"' '"clean_p99_inflation"' \
           '"rebuild_beats_restart": true' '"rejoin_ok": true' \
           '"ok": true'; do
    grep -q "$key" "$REPLICAS_TMP" || {
        echo "verify: replicas JSON is missing $key" >&2
        cat "$REPLICAS_TMP" >&2
        exit 1
    }
done
rm -f "$REPLICAS_TMP"

echo "== serve --web smoke (live SSE observability + injection) =="
# Boot the live-observability endpoint headless on an ephemeral port:
# the embedded viewer must serve, the SSE stream must carry the
# documented event JSON (verdict + sparse block_hits per token), and
# POST /inject must accept a live fault spec and echo it on the stream.
WEB_LOG="$(mktemp)"
SSE_TMP="$(mktemp)"
FT2_WEB_ADDR=127.0.0.1:0 FT2_QUICK=1 ./target/release/ft2-repro serve --web > "$WEB_LOG" 2>&1 &
WEB_PID=$!
WEB_URL=""
i=0
while [ $i -lt 150 ]; do
    WEB_URL="$(sed -n 's#^listening on \(http://[^ ]*\)$#\1#p' "$WEB_LOG")"
    [ -n "$WEB_URL" ] && break
    i=$((i + 1))
    sleep 0.2
done
if [ -z "$WEB_URL" ]; then
    echo "verify: serve --web never reported its address" >&2
    cat "$WEB_LOG" >&2
    kill "$WEB_PID" 2>/dev/null || true
    exit 1
fi
web_fail() {
    echo "verify: $1" >&2
    cat "$WEB_LOG" >&2
    kill "$WEB_PID" 2>/dev/null || true
    exit 1
}
curl -s "$WEB_URL/" | grep -q "ft2 live token stream" \
    || web_fail "serve --web viewer page missing"
# Attach the SSE capture first so the inject echo is observed, then fire
# a live block-2 bit flip and let the stream run a few seconds.
curl -sN -m 6 "$WEB_URL/events" > "$SSE_TMP" 2>/dev/null &
SSE_PID=$!
sleep 1
curl -s -d 'kind=flip&block=2' "$WEB_URL/inject" \
    | grep -q '"ok":true,"what":"flip block 2"' \
    || web_fail "POST /inject did not accept the fault spec"
wait "$SSE_PID" 2>/dev/null || true
for pat in '"ev":"token"' '"verdict":"' '"block_hits":' '"t_ns":' \
           '"ev":"inject","replica":0,"what":"flip block 2"'; do
    grep -q "$pat" "$SSE_TMP" || {
        head -c 2000 "$SSE_TMP" >&2
        web_fail "SSE stream is missing $pat"
    }
done
kill "$WEB_PID" 2>/dev/null || true
wait "$WEB_PID" 2>/dev/null || true
rm -f "$WEB_LOG" "$SSE_TMP"

echo "verify: OK"
