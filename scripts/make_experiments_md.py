#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from a completed `ft2-repro all` log.

Usage: python3 scripts/make_experiments_md.py /tmp/repro_final2.log > EXPERIMENTS.md
"""
import re
import sys

LOG = sys.argv[1] if len(sys.argv) > 1 else "/tmp/repro_final2.log"
text = open(LOG).read()


def table(title_substr: str) -> str:
    """Extract the ASCII table whose `== title ==` contains the substring."""
    pattern = re.compile(r"^== (.*?) ==\n((?:\|.*\n)+)", re.M)
    found = None
    for m in pattern.finditer(text):
        if title_substr in m.group(1):
            found = m  # keep the LAST occurrence (reruns append to the log)
    if found:
        return f"**{found.group(1)}**\n\n```text\n{found.group(2)}```\n"
    return f"*(table '{title_substr}' missing from log)*\n"


def headline() -> str:
    m = re.search(r"HEADLINE: (.*)", text)
    return m.group(1) if m else "(headline missing)"


PREAMBLE = """# EXPERIMENTS — paper vs. measured

All numbers below come from one recorded `./target/release/ft2-repro all`
run at the default sizing (12 inputs x 30 fault-injection trials per
campaign cell, seed `0xF72025`, single CPU core; Figs. 2 and 6 use internal
trial multipliers, Fig. 3 evaluates 96 fault-free inputs). CSV artifacts
live in `results/`; regenerate any row with `ft2-repro <id>` and scale up
with `FT2_INPUTS` / `FT2_TRIALS` (the paper's own campaign corresponds to
`FT2_INPUTS=50 FT2_TRIALS=500`).

**Reading guide.** The substrate is a scaled-down simulator (DESIGN.md
section 1), so absolute SDC rates are not expected to match the paper; the
reproduced claims are *orderings, ratios and mechanisms*: which scheme
wins, which fault model is worst, which layers are critical, where
protection breaks. The main scale artifact (DESIGN.md section 2b) is that
48-64-dim hidden states dilute single-fault perturbations ~64x less than
4096-dim production models, which raises every scheme's residual SDC floor
and caps FT2's measurable reduction below the paper's 92.92%.
"""

SECTIONS = [
    (
        "Table 1 — layer criticality & protection coverage",
        "Table 1 —",
        """Paper: V/OUT/FC2/UP/DOWN critical; K/Q/FC1/GATE not; Ranger covers no
linear layer, MaxiMals misses V_PROJ and UP_PROJ, Global Clipper misses the
MLP. **Exact match** — the structural heuristic ("critical iff no scaling
op or activation before the next linear layer"), evaluated over the op
graph of both architecture families, reproduces every cell of the paper's
Table 1, with zero profiling.""",
    ),
    (
        "Table 2 — models and tasks",
        "Table 2 —",
        """All seven models of the paper are represented with the correct
architecture family (Fig. 1a vs 1b), parameter counts of the originals for
the timing model, and math support limited to Llama2-7B and Qwen2-7B.""",
    ),
    (
        "Fig. 2 — motivation: existing protections leave SDCs behind",
        "Fig. 2 —",
        """Paper (Llama2-7B + GSM8K, EXP): unprotected ~4.5%, Ranger ~4.2%,
MaxiMals ~2.8%, Global Clipper 1.25%, FT2 0.19%. Measured: the same
qualitative picture — every baseline leaves a substantial SDC residue and
FT2 is several times better than the best baseline. Our Global Clipper
lands closer to Ranger than in the paper (its missing-MLP coverage costs
more here because the MLP carries a larger share of faults at our FFN
ratios).""",
    ),
    (
        "Fig. 3 — bounds do not transfer across datasets",
        "Fig. 3 —",
        """Paper: profiling bounds on four alternative corpora and protecting
SQuAD inference fault-free drops correct output by 1.09-1.81%. Measured:
directionally reproduced — the target-profiled bounds are transparent
(100.00%) while a mismatched corpus degrades fault-free accuracy (~1% for
the affected corpus at this seed). The effect is weaker and
corpus-dependent at simulator scale: it hinges on which token-keyed
"massive activation" spikes a small foreign corpus happens to miss, and
our 512-token vocabulary gives far fewer coverage holes than a real 32k-152k
token vocabulary.""",
    ),
    (
        "Fig. 4 — offline bound-profiling cost (the cost FT2 eliminates)",
        "Fig. 4 —",
        """Paper: 4.7-217.5 hours on A100; up to 36.7 h on H100. Measured with the
paper-scale roofline model: 2.4-210.0 A100-hours across the same grid
(GSM8K cheapest, XTREME-scale corpora the most expensive, H100 ~1.8x
faster) — matching the published range and log-scale shape.""",
    ),
    (
        "Fig. 6 — layer criticality probe (protect all but one)",
        "Fig. 6 —",
        """Paper (GPT-J + SQuAD): leaving V/OUT/FC2 unprotected leaves 0.75-1.82%
SDC; leaving K/Q/FC1 unprotected leaves only 0.29-0.38%. Measured
(conditional on the fault hitting the unprotected layer, which tightens
CIs): OUT_PROJ and FC2 leak by far the most while the non-critical
attention layers sit at zero, confirming the heuristic's split. Two
simulator-scale caveats: V_PROJ's conditional rate is seed-dependent
because an unprotected V fault is frequently absorbed by the *protected*
OUT_PROJ immediately downstream (the indirect-correction mechanism of
Take-away #2); and FC1's absolute contribution is elevated because it
receives 44% of all faults here (scaled FFN ratio) and clamp-corrected
propagation distortion is relatively larger at 64 hidden dims.""",
    ),
    (
        "Fig. 7 — bit-flip archetypes in binary16",
        "Fig. 7 —",
        """Exact reproduction of the mechanism: flipping the top exponent bit of a
small value yields an extreme magnitude (0.5 -> 32768); the same flip on a
value in (1,2) or (-2,-1) yields NaN; exact powers of two yield Inf. These
are properties of the from-scratch IEEE-754 binary16 implementation,
verified exhaustively over all 65536 bit patterns in the test suite.""",
    ),
    (
        "Fig. 8 — neuron value distributions and NaN-vulnerable shares",
        "Fig. 8 —",
        """Paper: non-critical layers (K/Q/FC1) are wide with a large share of
values in the NaN-vulnerable intervals; critical layers (V/OUT/FC2)
concentrate near zero. Measured: ~27-32% NaN-vulnerable for K/Q/FC1 vs
0-5% for V/OUT/FC2 — the same split, emerging from the shaped weight
statistics rather than being asserted.""",
    ),
    (
        "Fig. 9 — bound scaling (the key online-bounds design point)",
        "Fig. 9 —",
        """Paper (Qwen2-7B + GSM8K): unscaled first-token bounds *increase* SDC
above the unprotected baseline; scaling by just 1.25x recovers, and FT2 is
insensitive to the exact factor thereafter. Measured: the same
non-monotone signature — unscaled bounds are several times worse than no
protection (they clip benign late-position values, whose growth the
simulator models explicitly), moderate scales collapse the SDC rate, and
the plateau is flat through 10x.""",
    ),
    (
        "Fig. 10 — first-token share of inference time",
        "Fig. 10 —",
        """Paper: 1.89-8.33% for QA and 0.6-2.66% for math on A100; smaller on
H100. Measured with the paper-scale roofline model: ~2.1-2.5% (QA) and
~0.6% (math), H100 lower — inside the published bands. The simulator's own
share is ~30-50% because a serial CPU has no prefill parallelism; this is
exactly why the fault sampler weights steps by *time* rather than by
computation (DESIGN.md section 2b).""",
    ),
    (
        "Fig. 11 — resilience of the first-token generation",
        "Fig. 11 —",
        """Paper: faults restricted to the first token (with NaN correction, which
is all FT2 can do before bounds exist) are roughly as harmless as faults
under full FT2 protection. Measured: first-token-only SDC sits at or below
the unprotected all-steps rate for every fault model and approaches the
full-FT2 level, supporting the paper's argument that leaving the first
token range-unprotected is acceptable.""",
    ),
    (
        "Fig. 12 — large neuron values in generative LLMs",
        "Fig. 12 —",
        """Paper (Vicuna-7B): DOWN_PROJ carries a small population of large
activations while UP/GATE stay near their bulk. Measured: DOWN_PROJ and
the spike-carrying UP path show isolated values ~2x beyond their own p99
(heavy tails: a handful of legitimate large activations), while the wide
GATE distribution has no such excess (1.3x). These are exactly the values
clip-to-zero correction would destroy — the motivation for FT2's
clamp-to-bound choice.""",
    ),
    (
        "Fig. 13 — MAIN RESULT: the full evaluation grid",
        "Fig. 13 — aggregates",
        None,  # filled dynamically with the headline
    ),
    (
        "Fig. 14 — FT2 runtime and memory overhead",
        "Fig. 14 —",
        """Paper: 3.42% average runtime overhead (worst case 8.91% on OPT-2.7B);
288-512 B of bound storage. Measured: the A100 roofline model puts FT2's
fused clamp+nan pass at 2.4-7.7% of generation time with the worst cases
on the smallest models — the paper's exact picture (average ~3.7%, worst
on the small checkpoints). The simulator's wall-clock column is noisy
(millisecond-scale generations timed on one contended core; see
`bench_output.txt`'s protection_overhead group for the steadier Criterion
measurement). Bound memory is exactly 2 FP16 values per protected layer:
336-512 B, matching the paper's 288-512 B.""",
    ),
    (
        "Fig. 15 — data-type sensitivity (FP16 / FP32 / bf16)",
        "Fig. 15 —",
        """Paper: FT2 remains effective when the model runs in FP32 (SDC ~0.14%
after protection). Measured: the scheme ordering is preserved in all three
storage formats (bf16 is our extension beyond the paper), with FT2 at or
near the best rate in every row.""",
    ),
    (
        "Fig. 16 — hardware sensitivity (A100 vs H100)",
        "Fig. 16 —",
        """Paper: SDC rates are the same on both GPUs since FT2 is software-level.
Measured: identical by construction in the simulator (the timing model does
not influence arithmetic), shown with the roofline per-inference latencies
of both platforms for context.""",
    ),
    (
        "Ablations (beyond the paper)",
        "Ablation — correction policy",
        """Four ablations quantify design choices the paper calls out. (1)
Correction policy: under faults at simulator scale clip-to-zero can edge
out clamping — zeroing a corrupted propagation is cheap when hidden states
are only 64-dim — whereas the paper's Take-away #8 argument is about
*legitimate* outliers under tight bounds; the element-level behaviour
(clamp preserves a truncated outlier, zero destroys it) is pinned by unit
test `offline_bounds_shrink_with_clip_to_zero_on_outliers`, though the
end-to-end fault-free difference is below our resolution
(`ablation_takeaway8_fault_free`). (2) Full Protection reaches the lowest
SDC, at the near-2x cost the paper cites. (3) Step weighting: a
computation-uniform fault model multiplies the first-token fault share
~12x and stresses FT2's unprotected prefill window — why the time-uniform
model (which soft-error physics implies) matters. (4) DMR, the paper's
limitations-section endpoint, reaches 0.00% SDC at 2.17x executions —
versus FT2's ~3% overhead (`ablation_dmr`).""",
    ),
]


def main() -> None:
    out = [PREAMBLE]
    for title, key, commentary in SECTIONS:
        out.append(f"\n## {title}\n")
        if key == "Fig. 13 — aggregates":
            out.append(table("Fig. 13 — aggregates"))
            out.append(
                f"""\n{headline()}

Paper: FT2 achieves an average 92.92% SDC-rate reduction, outperforming
every baseline; MaxiMals is the strongest baseline but fails on the
Llama-family models whose critical UP_PROJ it does not cover; rates rise
from 1-bit to 2-bit to EXP. Measured: the severity ordering
(EXP > 2-bit > 1-bit) and the scheme ordering reproduce, FT2 delivers the
lowest average SDC of all online-applicable schemes and is comparable to
FT2-offline (the paper's "first-token bounds are as good as offline
profiling" claim), but the absolute reduction saturates well below 92.92%
— the dilution scale artifact described in DESIGN.md section 2b sets a
residual floor of in-bound perturbations that no range restriction can
catch at 48-64 hidden dimensions. The per-cell grid is in
`results/fig13_main_grid.csv`.\n"""
            )
        else:
            out.append(table(key))
            out.append(f"\n{commentary}\n")
    out.append(
        """\n## Test and benchmark artifacts

`test_output.txt` (full `cargo test --workspace`) and `bench_output.txt`
(`cargo bench --workspace`: GEMM throughput, generation latency split,
protection overhead per scheme, campaign throughput vs thread count, and
offline-profiling cost vs FT2's free online bounds) are recorded at the
repository root.\n"""
    )
    sys.stdout.write("".join(out))


if __name__ == "__main__":
    main()
