//! Quickstart: protect one LLM inference with FT2.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a simulator model, runs a clean generation, then replays the same
//! generation with an injected exponent-bit flip in a critical layer —
//! first unprotected, then under FT2's online protection.

use ft2::core::{Scheme, SchemeFactory};
use ft2::fault::{FaultDuration, FaultInjector, FaultSite, FaultTarget, ProtectionFactory};
use ft2::model::{TapList, TapPoint, ZooModel};
use ft2::tasks::render_tokens;

fn main() {
    // 1. A model from the zoo (OPT-6.7B stand-in, FP16).
    let spec = ZooModel::Opt6_7B.spec();
    let model = spec.build();
    println!("model: {} ({} sim parameters)", spec.name(), spec.config.sim_params());

    // 2. A prompt and the fault-free reference generation.
    let prompt: Vec<u32> = vec![0, 118, 320, 25, 130, 4, 121, 330, 17, 2];
    let mut taps = TapList::new();
    let clean = model.generate(&prompt, 12, &mut taps);
    println!("\nprompt : {}", render_tokens(&prompt));
    println!("clean  : {}", render_tokens(&clean.tokens));

    // 3. The same generation with a fault: the highest exponent bit of one
    //    V_PROJ output element flips during decode step 3.
    let site = FaultSite {
        step: 3,
        point: TapPoint {
            block: 1,
            layer: ft2::model::LayerKind::VProj,
        },
        element: 17,
        bits: vec![14],
        duration: FaultDuration::Transient,
        target: FaultTarget::Activation,
    };
    let mut injector = FaultInjector::new(site.clone());
    let mut taps = TapList::new();
    taps.push(&mut injector);
    let faulty = model.generate(&prompt, 12, &mut taps);
    drop(taps);
    println!(
        "faulty : {}   (corrupted {} -> {})",
        render_tokens(&faulty.tokens),
        injector.original.unwrap(),
        injector.corrupted.unwrap()
    );

    // 4. Same fault, but with FT2 protecting the critical layers: bounds
    //    are profiled during the first token and the corrupted value is
    //    clamped back to the bound the moment it appears.
    let ft2 = SchemeFactory::new(Scheme::Ft2, model.config(), None);
    let mut injector = FaultInjector::new(site);
    let mut protection = ft2.make();
    let mut taps = TapList::new();
    taps.push(&mut injector);
    for p in protection.iter_mut() {
        taps.push(p.as_mut());
    }
    let protected = model.generate(&prompt, 12, &mut taps);
    drop(taps);
    println!("FT2    : {}", render_tokens(&protected.tokens));

    assert_eq!(
        clean.tokens, protected.tokens,
        "FT2 should mask this fault"
    );
    println!("\nFT2 masked the fault: output identical to the clean run.");
}
