//! The related-work alternatives the paper positions FT2 against:
//! algorithm-based fault tolerance (ABFT checksums) and dual modular
//! redundancy (DMR).
//!
//! ```sh
//! cargo run --release --example alternative_protections
//! ```
//!
//! Shows (1) an ABFT-checksummed GEMM detecting, locating and correcting
//! an injected exponent flip; (2) a DMR campaign reaching 0% SDC at ~2x
//! execution cost; and (3) FT2 reaching a comparable rate at a few percent
//! overhead — the trade-off that motivates the paper.

use ft2::core::{Scheme, SchemeFactory};
use ft2::fault::{run_dmr_campaign, Campaign, CampaignConfig, FaultModel};
use ft2::model::ZooModel;
use ft2::numeric::bits::flip_bit_f32;
use ft2::numeric::{Rng, Xoshiro256StarStar};
use ft2::parallel::WorkStealingPool;
use ft2::tasks::datasets::generate_prompts;
use ft2::tasks::{DatasetId, TaskSpec, TaskType};
use ft2::tensor::{checked_matmul_transb, AbftOutcome, Matrix};

fn main() {
    // --- 1. ABFT on one GEMM -------------------------------------------
    let mut rng = Xoshiro256StarStar::new(99);
    let a = Matrix::from_fn(8, 32, |_, _| rng.normal() as f32 * 0.5);
    let w = Matrix::from_fn(16, 32, |_, _| rng.normal() as f32 * 0.3);
    let mut product = checked_matmul_transb(&a, &w);
    let before = product.c.get(5, 11);
    product.c.set(5, 11, flip_bit_f32(before, 30)); // exponent flip
    match product.verify_and_correct(&a, &w) {
        AbftOutcome::Corrupted { columns, corrected } => println!(
            "ABFT: detected corruption in column(s) {columns:?}, recomputed {corrected} element(s)"
        ),
        AbftOutcome::Clean => unreachable!("the fault must be detected"),
    }
    assert_eq!(product.verify(), AbftOutcome::Clean);
    println!("ABFT: product verified clean after correction\n");

    // --- 2 & 3. DMR vs FT2 on a fault campaign -------------------------
    let model = ZooModel::Vicuna7B.spec().build();
    let pool = WorkStealingPool::with_default_threads();
    let prompts = generate_prompts(DatasetId::Squad, 8, 4711);
    let task = TaskSpec::new(TaskType::Qa, 14);
    let judge = task.judge();
    let cfg = CampaignConfig {
        trials_per_input: 40,
        gen_tokens: 14,
        ..CampaignConfig::quick(FaultModel::ExponentBit)
    };

    let campaign = Campaign::new(&model, &prompts, &judge, cfg.clone(), &pool);
    let unprotected = campaign.run(&ft2::fault::Unprotected, &pool);
    let ft2 = campaign.run(
        &SchemeFactory::new(Scheme::Ft2, model.config(), None),
        &pool,
    );
    let dmr = run_dmr_campaign(&model, &prompts, &judge, &cfg, &pool);

    println!("{:<28} {:>8} {:>22}", "technique", "SDC", "execution overhead");
    println!(
        "{:<28} {:>7.2}% {:>22}",
        "no protection",
        unprotected.sdc_rate() * 100.0,
        "1.00x"
    );
    println!(
        "{:<28} {:>7.2}% {:>22}",
        "FT2 (online bounds)",
        ft2.sdc_rate() * 100.0,
        "~1.03x (Fig. 14)"
    );
    println!(
        "{:<28} {:>7.2}% {:>19.2}x",
        "DMR (duplicate + recover)",
        dmr.sdc_after_recovery as f64 / dmr.trials as f64 * 100.0,
        dmr.overhead_factor()
    );
    println!(
        "\nDMR reaches 0% SDC — at {}x the compute. FT2 gets within noise of\n\
         it for ~3% overhead, which is the paper's core trade-off.",
        dmr.overhead_factor().round()
    );
}
