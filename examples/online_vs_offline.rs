//! Online (first-token) vs offline bound profiling.
//!
//! ```sh
//! cargo run --release --example online_vs_offline
//! ```
//!
//! The paper's key enabler is that bounds recorded during the first-token
//! generation, widened by 2x, cover the activations of all later tokens.
//! This example makes that concrete: it profiles both ways on the same
//! inputs, prints the per-layer bounds side by side, and then compares the
//! two protection modes under an EXP fault campaign.

use ft2::core::profile::offline_profile;
use ft2::core::protect::{Coverage, Protector};
use ft2::core::{critical_layers, Scheme, SchemeFactory};
use ft2::fault::{Campaign, CampaignConfig, FaultModel};
use ft2::model::{TapList, TapPoint, ZooModel};
use ft2::parallel::WorkStealingPool;
use ft2::tasks::datasets::generate_prompts;
use ft2::tasks::{DatasetId, TaskSpec, TaskType};
use std::sync::Arc;

fn main() {
    let spec = ZooModel::Llama2_7B.spec();
    let model = spec.build();
    let pool = WorkStealingPool::with_default_threads();
    let gen_tokens = 16;
    let prompts = generate_prompts(DatasetId::Squad, 8, 4242);

    // Offline: min/max over full generations of a profiling split.
    let profile_prompts = generate_prompts(DatasetId::Squad, 16, 31337);
    let offline = offline_profile(&model, &profile_prompts, gen_tokens, &pool);

    // Online: run ONE prompt and freeze the first-token (prefill) bounds,
    // exactly as FT2's protector does internally.
    let coverage = Coverage::linears(critical_layers(model.config().style));
    let mut online_protector = Protector::ft2_online(coverage, 2.0);
    {
        let mut taps = TapList::new();
        taps.push(&mut online_protector);
        let _ = model.generate(&prompts[0], gen_tokens, &mut taps);
    }

    println!("per-layer bounds, block 0 (online = first-token min/max x2):\n");
    println!(
        "{:<10} {:>24} {:>24}",
        "layer", "online [lo, hi]", "offline [lo, hi]"
    );
    for &kind in critical_layers(model.config().style).iter() {
        let point = TapPoint { block: 0, layer: kind };
        let on = online_protector.current_bounds(&point).unwrap();
        let off = offline.linear.get(&point).unwrap();
        println!(
            "{:<10} {:>24} {:>24}",
            kind.name(),
            format!("[{:+.2}, {:+.2}]", on.lo, on.hi),
            format!("[{:+.2}, {:+.2}]", off.lo, off.hi)
        );
    }

    // Campaign comparison.
    let task = TaskSpec::new(TaskType::Qa, gen_tokens);
    let judge = task.judge();
    let cfg = CampaignConfig {
        trials_per_input: 40,
        gen_tokens,
        ..CampaignConfig::quick(FaultModel::ExponentBit)
    };
    let campaign = Campaign::new(&model, &prompts, &judge, cfg, &pool);
    let offline = Arc::new(offline);

    println!("\nEXP fault campaign ({} trials):", 8 * 40);
    for scheme in [Scheme::NoProtection, Scheme::Ft2Offline, Scheme::Ft2] {
        let factory = SchemeFactory::new(
            scheme,
            model.config(),
            scheme.needs_offline_bounds().then(|| offline.clone()),
        );
        let r = campaign.run(&factory, &pool);
        println!("  {:<14} SDC {:.2}%", scheme.name(), r.sdc_rate() * 100.0);
    }
    println!(
        "\nFT2's online bounds achieve protection comparable to offline \
         profiling — without the profiling pass (Fig. 4's 2.4-188 GPU-hours)."
    );
}
