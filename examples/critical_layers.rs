//! Critical-layer identification: run the paper's structural heuristic on
//! both architecture families and verify it empirically with a small
//! protect-all-but-one fault-injection probe.
//!
//! ```sh
//! cargo run --release --example critical_layers
//! ```

use ft2::core::critical::{critical_layers, CriticalityReport};
use ft2::core::{offline_profile, Correction, Coverage, NanPolicy, Protector};
use ft2::fault::{Campaign, CampaignConfig, FaultModel, ProtectionFactory};
use ft2::model::{ArchGraph, ArchStyle, LayerKind, LayerTap, ZooModel};
use ft2::parallel::WorkStealingPool;
use ft2::tasks::datasets::generate_prompts;
use ft2::tasks::{DatasetId, TaskSpec, TaskType};
use std::sync::Arc;

struct AllBut {
    kinds: Vec<LayerKind>,
    offline: Arc<ft2::core::profile::OfflineBounds>,
}

impl ProtectionFactory for AllBut {
    fn make(&self) -> Vec<Box<dyn LayerTap>> {
        vec![Box::new(Protector::offline(
            Coverage::linears(self.kinds.clone()),
            self.offline.linear.clone(),
            Correction::ClampToBound,
            NanPolicy::ToZero,
        ))]
    }
}

fn main() {
    // Part 1: the structural analysis (no execution at all).
    for style in [ArchStyle::OptStyle, ArchStyle::LlamaStyle] {
        println!("architecture: {style:?}");
        let graph = ArchGraph::for_style(style);
        for (kind, ops) in graph.layers() {
            let crit = !ops.iter().any(|o| o.squashes_magnitude());
            println!(
                "  {:<10} ops to next linear: {:<28} -> {}",
                kind.name(),
                format!("{ops:?}"),
                if crit { "CRITICAL" } else { "non-critical" }
            );
        }
        println!("  critical set: {:?}\n", critical_layers(style));
    }

    // Part 2: empirical spot-check on GPT-J-sim — leaving a critical layer
    // unprotected must cost more SDC than leaving a non-critical one.
    let spec = ZooModel::GptJ6B.spec();
    let model = spec.build();
    let pool = WorkStealingPool::with_default_threads();
    let prompts = generate_prompts(DatasetId::Squad, 8, 31);
    let task = TaskSpec::new(TaskType::Qa, 14);
    let judge = task.judge();
    let profile_prompts = generate_prompts(DatasetId::Squad, 12, 32);
    let offline = Arc::new(offline_profile(&model, &profile_prompts, 14, &pool));

    let all: Vec<LayerKind> = model.config().block_layers().to_vec();
    println!("empirical probe (EXP faults into layer X, all-but-X protected):");
    for &excluded in &all {
        // Inject only into the tested layer so every trial carries signal.
        let mut cfg = CampaignConfig {
            trials_per_input: 60,
            gen_tokens: 14,
            ..CampaignConfig::quick(FaultModel::ExponentBit)
        };
        cfg.layer_filter = Some(vec![excluded]);
        let campaign = Campaign::new(&model, &prompts, &judge, cfg, &pool);
        let kinds: Vec<LayerKind> = all.iter().copied().filter(|k| *k != excluded).collect();
        let r = campaign.run(
            &AllBut {
                kinds,
                offline: offline.clone(),
            },
            &pool,
        );
        let expect = CriticalityReport::table1_expectation(excluded);
        println!(
            "  unprotected {:<10} conditional SDC {:>6.2}%   heuristic: {}",
            excluded.name(),
            r.sdc_rate() * 100.0,
            if expect { "critical" } else { "non-critical" }
        );
    }
}
