//! Mathematical-reasoning resilience: long generations where the answer
//! sits at the END of the output, so almost every generation step is
//! answer-relevant (the GSM8K workload of the paper).
//!
//! ```sh
//! cargo run --release --example math_campaign
//! ```

use ft2::core::{Scheme, SchemeFactory};
use ft2::fault::{Campaign, CampaignConfig, FaultModel, Unprotected};
use ft2::model::ZooModel;
use ft2::parallel::WorkStealingPool;
use ft2::tasks::datasets::generate_prompts;
use ft2::tasks::{render_tokens, DatasetId, TaskSpec, TaskType};

fn main() {
    let pool = WorkStealingPool::with_default_threads();
    let gen_tokens = 36;
    let task = TaskSpec::new(TaskType::Math, gen_tokens);
    println!(
        "math task: generate {} tokens, answer span at {}..{}\n",
        gen_tokens, task.answer_start, task.answer_end
    );

    for m in [ZooModel::Llama2_7B, ZooModel::Qwen2_7B] {
        let spec = m.spec();
        let model = spec.build();
        let prompts = generate_prompts(DatasetId::Gsm8k, 6, 5150);
        let judge = task.judge();

        // Show one worked problem.
        let mut taps = ft2::model::TapList::new();
        let out = model.generate(&prompts[0], gen_tokens, &mut taps);
        println!("{} problem : {}", spec.name(), render_tokens(&prompts[0]));
        println!(
            "{} answer  : ... {}",
            spec.name(),
            render_tokens(task.answer(&out.tokens))
        );

        for fm in FaultModel::ALL {
            let cfg = CampaignConfig {
                trials_per_input: 30,
                gen_tokens,
                ..CampaignConfig::quick(fm)
            };
            let campaign = Campaign::new(&model, &prompts, &judge, cfg, &pool);
            let unprot = campaign.run(&Unprotected, &pool);
            let ft2 = campaign.run(
                &SchemeFactory::new(Scheme::Ft2, model.config(), None),
                &pool,
            );
            println!(
                "  {:<6} unprotected {:>6.2}%  ->  FT2 {:>6.2}%",
                fm.name(),
                unprot.sdc_rate() * 100.0,
                ft2.sdc_rate() * 100.0
            );
        }
        println!();
    }
}
