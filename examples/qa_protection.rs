//! Question-answering resilience study: a miniature version of the paper's
//! main campaign on one model/dataset pair.
//!
//! ```sh
//! cargo run --release --example qa_protection
//! ```
//!
//! Runs statistical fault injection on OPT-6.7B-sim answering SQuAD-like
//! questions, under every protection scheme, for all three fault models.

use ft2::core::{offline_profile, Scheme, SchemeFactory};
use ft2::fault::{Campaign, CampaignConfig, FaultModel};
use ft2::model::ZooModel;
use ft2::parallel::WorkStealingPool;
use ft2::tasks::datasets::generate_prompts;
use ft2::tasks::{DatasetId, TaskSpec, TaskType};
use std::sync::Arc;

fn main() {
    let spec = ZooModel::Opt6_7B.spec();
    let model = spec.build();
    let pool = WorkStealingPool::with_default_threads();
    let dataset = DatasetId::Squad;
    let gen_tokens = 16;

    let prompts = generate_prompts(dataset, 8, 2025);
    let task = TaskSpec::new(TaskType::Qa, gen_tokens);
    let judge = task.judge();

    // Offline bounds for the baselines (the profiling FT2 avoids).
    let profile_prompts = generate_prompts(dataset, 16, 777);
    let offline = Arc::new(offline_profile(&model, &profile_prompts, gen_tokens, &pool));

    println!(
        "{} on {} — {} inputs x 25 trials per scheme\n",
        spec.name(),
        dataset.name(),
        prompts.len()
    );
    println!(
        "{:<8} {:<16} {:>8} {:>10}",
        "faults", "scheme", "SDC", "masked-sem"
    );

    for fm in FaultModel::ALL {
        let cfg = CampaignConfig {
            trials_per_input: 25,
            gen_tokens,
            ..CampaignConfig::quick(fm)
        };
        let campaign = Campaign::new(&model, &prompts, &judge, cfg, &pool);
        for scheme in Scheme::PAPER_SET {
            let factory = SchemeFactory::new(
                scheme,
                model.config(),
                scheme.needs_offline_bounds().then(|| offline.clone()),
            );
            let r = campaign.run(&factory, &pool);
            println!(
                "{:<8} {:<16} {:>7.2}% {:>9.2}%",
                fm.name(),
                scheme.name(),
                r.sdc_rate() * 100.0,
                r.counts.masked_semantic as f64 / r.counts.total() as f64 * 100.0,
            );
        }
        println!();
    }
}
