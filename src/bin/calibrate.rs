//! Development calibration tool: prints emergent SDC rates for one model
//! so the weight shaping in `ft2-model` can be tuned against the paper's
//! reported ranges. Not part of the reproduction harness proper.

use ft2::core::{offline_profile, Scheme, SchemeFactory};
use ft2::fault::{Campaign, CampaignConfig, FaultModel, Unprotected};
use ft2::model::ZooModel;
use ft2::parallel::WorkStealingPool;
use ft2::tasks::{datasets::generate_prompts, DatasetId, TaskSpec};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100);
    let model_name = args.get(2).map(|s| s.as_str()).unwrap_or("opt-6.7b");
    let gen_tokens: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(20);

    let mut spec = ZooModel::parse(model_name).expect("unknown model").spec();
    if let Ok(h) = std::env::var("CAL_HIDDEN") {
        let h: usize = h.parse().unwrap();
        spec.config.hidden = h;
        spec.config.heads = h / 8;
        spec.config.ffn = match spec.config.style {
            ft2::model::ArchStyle::OptStyle => h * 4,
            ft2::model::ArchStyle::LlamaStyle => h * 8 / 3,
        };
    }
    if let Ok(b) = std::env::var("CAL_BLOCKS") {
        spec.config.blocks = b.parse().unwrap();
    }
    let model = spec.build();
    let pool = WorkStealingPool::with_default_threads();
    let dataset = DatasetId::Squad;
    let prompts = generate_prompts(dataset, 20, 99);
    let task = TaskSpec::new(dataset.task_type(), gen_tokens);
    let judge = task.judge();

    let profile_prompts = generate_prompts(dataset, 30, 12345);
    let offline = Arc::new(offline_profile(&model, &profile_prompts, gen_tokens, &pool));

    println!(
        "model={} hidden={} trials/input={trials} gen={gen_tokens}",
        spec.name(),
        model.config().hidden
    );
    let only: Option<FaultModel> = std::env::var("CAL_FM").ok().and_then(|s| FaultModel::parse(&s));
    for fm in FaultModel::ALL {
        if let Some(f) = only {
            if f != fm {
                continue;
            }
        }
        let cfg = CampaignConfig {
            seed: 0xC0FFEE,
            trials_per_input: trials,
            gen_tokens,
            fault_model: fm,
            ..CampaignConfig::quick(fm)
        };
        let campaign = Campaign::new(&model, &prompts, &judge, cfg, &pool);
        print!("{:>6}:", fm.name());
        let t0 = std::time::Instant::now();
        let r = campaign.run(&Unprotected, &pool);
        print!(
            "  none={:.2}% (sem {:.2}%)",
            r.sdc_rate() * 100.0,
            r.counts.masked_semantic as f64 / r.counts.total() as f64 * 100.0
        );
        for scheme in [Scheme::Ranger, Scheme::MaxiMals, Scheme::GlobalClipper, Scheme::Ft2Offline, Scheme::Ft2] {
            let f = SchemeFactory::new(scheme, model.config(), Some(offline.clone()));
            let r = campaign.run(&f, &pool);
            print!("  {}={:.2}%", scheme.name(), r.sdc_rate() * 100.0);
        }
        println!("  [{:?}]", t0.elapsed());
        // Per-layer breakdown for the unprotected run.
        let r = campaign.run(&Unprotected, &pool);
        for (k, c) in &r.per_layer {
            println!(
                "        unprot {:<10} n={:<5} sdc={:.2}%",
                k.name(),
                c.total(),
                c.sdc_rate() * 100.0
            );
        }
        // FT2 diagnostics: fault-free corruption, step-0 vs later faults,
        // per-layer leaks.
        let f = SchemeFactory::new(Scheme::Ft2, model.config(), None);
        let ff = campaign.run_fault_free(&f, &pool);
        let corrupted = ff.iter().filter(|o| **o == ft2::fault::Outcome::Sdc).count();
        let changed = ff
            .iter()
            .filter(|o| **o != ft2::fault::Outcome::MaskedIdentical)
            .count();
        println!(
            "        FT2 fault-free: {}/{} changed, {}/{} SDC",
            changed,
            ff.len(),
            corrupted,
            ff.len()
        );
        let r = campaign.run(&f, &pool);
        let step0 = r.first_token_faults;
        let later_sdc = r.counts.sdc - step0.sdc;
        let later_n = r.counts.total() - step0.total();
        println!(
            "        FT2 faults: step0 sdc={:.2}% (n={}), later sdc={:.2}% (n={})",
            step0.sdc_rate() * 100.0,
            step0.total(),
            later_sdc as f64 / later_n as f64 * 100.0,
            later_n
        );
        for (k, c) in &r.per_layer {
            println!(
                "        FT2    {:<10} n={:<5} sdc={:.2}%",
                k.name(),
                c.total(),
                c.sdc_rate() * 100.0
            );
        }
    }
}
