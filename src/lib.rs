//! FT2 facade crate — re-exports the workspace.
pub use ft2_analyze as analyze;
pub use ft2_core as core;
pub use ft2_fault as fault;
pub use ft2_harness as harness;
pub use ft2_hw as hw;
pub use ft2_model as model;
pub use ft2_numeric as numeric;
pub use ft2_parallel as parallel;
pub use ft2_tasks as tasks;
pub use ft2_tensor as tensor;
