//! A vendored, dependency-free re-implementation of the subset of the
//! `criterion` API this workspace's benches use.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be resolved. This shim keeps the five `harness = false` bench
//! binaries compiling and producing useful wall-clock numbers: each
//! benchmark is warmed up, then timed over enough iterations to fill a
//! short measurement window, and the mean per-iteration time (plus
//! throughput, when declared) is printed.
//!
//! No statistical analysis, no HTML reports, no comparison to baselines —
//! run under a profiler or repeat runs for anything load-bearing.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. The shim runs one setup per
/// iteration regardless of the hint.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    /// Total time spent in the routine.
    elapsed: Duration,
    /// Routine invocations performed.
    iters: u64,
    /// Measurement window to fill.
    window: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed).
        black_box(routine());
        let window = self.window;
        let start = Instant::now();
        while start.elapsed() < window {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Like [`Bencher::iter`] with an untimed per-iteration setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let window = self.window;
        let start = Instant::now();
        while start.elapsed() < window {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// Shared measurement settings.
#[derive(Clone, Copy, Debug)]
struct Config {
    window: Duration,
    quick: bool,
}

/// The top-level benchmark driver.
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::new()
    }
}

impl Criterion {
    /// Driver with the default measurement window. `cargo test` invokes
    /// bench binaries with `--test`; in that mode (or under
    /// `CRITERION_QUICK=1`) every benchmark runs a single iteration so the
    /// binaries stay cheap smoke tests.
    pub fn new() -> Criterion {
        let quick = std::env::args().any(|a| a == "--test")
            || std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");
        Criterion {
            config: Config {
                window: if quick {
                    Duration::ZERO
                } else {
                    Duration::from_millis(300)
                },
                quick,
            },
        }
    }

    /// Compatibility no-op (the real crate parses CLI filters here).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Criterion {
        run_one(&self.config, &name.into(), None, f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing sizing and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Compatibility: the shim sizes by wall-clock window, not samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement window for this group.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        if !self.config.quick {
            self.config.window = window;
        }
        self
    }

    /// Declare the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&self.config, &full, self.throughput, f);
        self
    }

    /// Finish the group (accounting no-op in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    config: &Config,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        window: config.window,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<48} {:>12}", "1 iter (quick)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => format!("  {:>12.3} Melem/s", n as f64 / per_iter / 1e6),
            Throughput::Bytes(n) => format!("  {:>12.3} MiB/s", n as f64 / per_iter / (1 << 20) as f64),
        })
        .unwrap_or_default();
    println!(
        "{name:<48} {:>12} /iter  ({} iters){rate}",
        format_time(per_iter),
        b.iters
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Group bench functions into a single named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($f(c);)+
        }
    };
}

/// Entry point: run the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::new();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_single_iteration() {
        let config = Config { window: Duration::ZERO, quick: true };
        let mut calls = 0u64;
        run_one(&config, "t", None, |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn timed_mode_accumulates_iterations() {
        let config = Config { window: Duration::from_millis(5), quick: false };
        let mut calls = 0u64;
        run_one(&config, "t", Some(Throughput::Elements(1)), |b| {
            b.iter_batched(|| 1u64, |x| calls += x, BatchSize::SmallInput);
        });
        assert!(calls > 1);
    }
}
