//! Fault-injection campaign throughput on the work-stealing pool.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ft2_bench::{bench_model, bench_prompts};
use ft2_core::{Scheme, SchemeFactory};
use ft2_fault::{Campaign, CampaignConfig, FaultModel, Unprotected};
use ft2_parallel::WorkStealingPool;
use ft2_tasks::{TaskSpec, TaskType};

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    let model = bench_model();
    let prompts = bench_prompts(4);
    let task = TaskSpec::new(TaskType::Qa, 12);
    let judge = task.judge();
    let trials = 10usize;

    let cfg = CampaignConfig {
        trials_per_input: trials,
        gen_tokens: 12,
        ..CampaignConfig::quick(FaultModel::ExponentBit)
    };

    for threads in [1usize, 2, 4] {
        let pool = WorkStealingPool::new(threads);
        let campaign = Campaign::new(&model, &prompts, &judge, cfg.clone(), &pool);
        group.throughput(Throughput::Elements((prompts.len() * trials) as u64));
        group.bench_function(format!("unprotected/{threads}threads"), |bench| {
            bench.iter(|| black_box(campaign.run(&Unprotected, &pool)))
        });
    }

    let pool = WorkStealingPool::new(2);
    let campaign = Campaign::new(&model, &prompts, &judge, cfg, &pool);
    let ft2 = SchemeFactory::new(Scheme::Ft2, model.config(), None);
    group.throughput(Throughput::Elements((prompts.len() * trials) as u64));
    group.bench_function("ft2_protected/2threads", |bench| {
        bench.iter(|| black_box(campaign.run(&ft2, &pool)))
    });
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
