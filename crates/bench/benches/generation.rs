//! Per-model generation latency, with the prefill/decode split of Fig. 10.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ft2_bench::{bench_prompts, BENCH_GEN_TOKENS};
use ft2_model::{TapList, ZooModel};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    let prompts = bench_prompts(1);

    for m in [ZooModel::Opt6_7B, ZooModel::Qwen2_7B, ZooModel::Qwen2_1_5B] {
        let spec = m.spec();
        let model = spec.build();
        group.bench_function(format!("generate16/{}", spec.name()), |bench| {
            bench.iter(|| {
                let mut taps = TapList::new();
                black_box(model.generate(black_box(&prompts[0]), BENCH_GEN_TOKENS, &mut taps))
            })
        });
    }

    // Prefill-only vs one decode step (the Fig. 10 quantities, measured).
    let model = ZooModel::Opt6_7B.spec().build();
    group.bench_function("prefill_only/OPT-6.7B", |bench| {
        bench.iter(|| {
            let mut taps = TapList::new();
            let mut cache = ft2_model::engine::KvCache::new(model.config());
            black_box(model.forward_step(black_box(&prompts[0]), 0, 0, &mut cache, &mut taps))
        })
    });
    group.bench_function("decode_step/OPT-6.7B", |bench| {
        let mut taps = TapList::new();
        let mut cache = ft2_model::engine::KvCache::new(model.config());
        let _ = model.forward_step(&prompts[0], 0, 0, &mut cache, &mut taps);
        let pos = prompts[0].len();
        bench.iter_batched(
            || cache_clone_hack(&model, &prompts[0]),
            |mut cache| {
                let mut taps = TapList::new();
                black_box(model.forward_step(&[42], pos, 1, &mut cache, &mut taps))
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Build a fresh prefilled cache (KvCache is not Clone; rebuild instead).
fn cache_clone_hack(model: &ft2_model::Model, prompt: &[u32]) -> ft2_model::engine::KvCache {
    let mut taps = TapList::new();
    let mut cache = ft2_model::engine::KvCache::new(model.config());
    let _ = model.forward_step(prompt, 0, 0, &mut cache, &mut taps);
    cache
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
