//! GEMM kernel throughput at transformer-relevant shapes.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ft2_numeric::{Rng, Xoshiro256StarStar};
use ft2_tensor::{matmul, matmul_naive, matmul_transb, Matrix};

fn random_matrix(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.normal() as f32)
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    let mut rng = Xoshiro256StarStar::new(1);

    // Decode-step GEMV (1 x hidden times weight), prefill GEMM, and a
    // square reference.
    for &(m, k, n, label) in &[
        (1usize, 64usize, 256usize, "decode_fc1_64"),
        (20, 64, 256, "prefill_fc1_64"),
        (20, 64, 64, "prefill_attn_64"),
        (128, 128, 128, "square_128"),
    ] {
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let bt = random_matrix(&mut rng, n, k);
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        group.bench_function(format!("matmul/{label}"), |bench| {
            bench.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
        });
        group.bench_function(format!("matmul_transb/{label}"), |bench| {
            bench.iter(|| black_box(matmul_transb(black_box(&a), black_box(&bt))))
        });
    }

    // Naive reference on the square case only (slow).
    let a = random_matrix(&mut rng, 128, 128);
    let b = random_matrix(&mut rng, 128, 128);
    group.bench_function("matmul_naive/square_128", |bench| {
        bench.iter(|| black_box(matmul_naive(black_box(&a), black_box(&b))))
    });
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
