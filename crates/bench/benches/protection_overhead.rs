//! Measured protection overhead: generation with each scheme's taps active
//! vs bare generation — the simulator-side counterpart of Fig. 14.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ft2_bench::{bench_model, bench_prompts, BENCH_GEN_TOKENS};
use ft2_core::{offline_profile, Scheme, SchemeFactory};
use ft2_fault::ProtectionFactory;
use ft2_model::TapList;
use ft2_parallel::WorkStealingPool;
use std::sync::Arc;

fn bench_protection(c: &mut Criterion) {
    let mut group = c.benchmark_group("protection_overhead");
    group.sample_size(20);
    let model = bench_model();
    let prompts = bench_prompts(4);
    let pool = WorkStealingPool::new(1);
    let offline = Arc::new(offline_profile(&model, &prompts, BENCH_GEN_TOKENS, &pool));

    group.bench_function("no_protection", |bench| {
        bench.iter(|| {
            let mut taps = TapList::new();
            black_box(model.generate(&prompts[0], BENCH_GEN_TOKENS, &mut taps))
        })
    });

    for scheme in [
        Scheme::Ranger,
        Scheme::MaxiMals,
        Scheme::GlobalClipper,
        Scheme::Ft2,
        Scheme::FullProtection,
    ] {
        let factory = SchemeFactory::new(
            scheme,
            model.config(),
            scheme.needs_offline_bounds().then(|| offline.clone()),
        );
        let label = scheme.name().replace(' ', "_").to_lowercase();
        group.bench_function(label, |bench| {
            bench.iter(|| {
                let mut boxes = factory.make();
                let mut taps = TapList::new();
                for b in boxes.iter_mut() {
                    taps.push(b.as_mut());
                }
                black_box(model.generate(&prompts[0], BENCH_GEN_TOKENS, &mut taps))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protection);
criterion_main!(benches);
