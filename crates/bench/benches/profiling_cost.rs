//! Offline bound-profiling cost on the simulator: the work the baselines
//! must do and FT2 eliminates (Fig. 4's simulator-side counterpart).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ft2_bench::{bench_model, bench_prompts, BENCH_GEN_TOKENS};
use ft2_core::offline_profile;
use ft2_core::protect::{Coverage, Protector};
use ft2_core::critical_layers;
use ft2_model::TapList;
use ft2_parallel::WorkStealingPool;

fn bench_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling");
    group.sample_size(10);
    let model = bench_model();
    let pool = WorkStealingPool::new(2);

    for n in [4usize, 16] {
        let prompts = bench_prompts(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("offline_profile/{n}_inputs"), |bench| {
            bench.iter(|| {
                black_box(offline_profile(
                    &model,
                    black_box(&prompts),
                    BENCH_GEN_TOKENS,
                    &pool,
                ))
            })
        });
    }

    // FT2's online alternative: the bounds come for free during the first
    // token of the protected inference itself.
    let prompts = bench_prompts(1);
    group.bench_function("ft2_online_bounds/1_inference", |bench| {
        bench.iter(|| {
            let mut p = Protector::ft2_online(
                Coverage::linears(critical_layers(model.config().style)),
                2.0,
            );
            let mut taps = TapList::new();
            taps.push(&mut p);
            black_box(model.generate(&prompts[0], BENCH_GEN_TOKENS, &mut taps))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_profiling);
criterion_main!(benches);
