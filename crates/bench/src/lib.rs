#![warn(missing_docs)]
//! # ft2-bench
//!
//! Criterion benchmarks for the FT2 reproduction. One bench target per
//! measured quantity of the paper:
//!
//! * `gemm` — kernel throughput of the inference substrate;
//! * `generation` — per-model generation latency, split prefill/decode
//!   (the measured counterpart of Fig. 10);
//! * `protection_overhead` — generation with vs without protection taps
//!   (the measured counterpart of Fig. 14);
//! * `campaign_throughput` — fault-injection trials per second on the
//!   work-stealing pool;
//! * `profiling_cost` — offline bound profiling (the simulator-side
//!   counterpart of Fig. 4).
//!
//! Shared workload constructors live here so every bench measures the
//! same shapes.

use ft2_model::{Model, ZooModel};
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::DatasetId;

/// The model most benches exercise (OPT-6.7B stand-in).
pub fn bench_model() -> Model {
    ZooModel::Opt6_7B.spec().build()
}

/// A deterministic QA prompt set.
pub fn bench_prompts(n: usize) -> Vec<Vec<u32>> {
    generate_prompts(DatasetId::Squad, n, 0xBE7C4)
}

/// Generation length used across benches.
pub const BENCH_GEN_TOKENS: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_fixtures_are_deterministic() {
        assert_eq!(bench_prompts(3), bench_prompts(3));
        let m = bench_model();
        assert_eq!(m.config().name, "OPT-6.7B");
    }
}
