//! Deterministic, splittable random number generation.
//!
//! Fault-injection campaigns must be bit-reproducible regardless of thread
//! count: trial `(input, trial_id)` always sees the same fault site. We get
//! this by deriving an independent generator per trial from a counter via
//! SplitMix64 (a bijective 64-bit mixer with provably full period), then
//! running xoshiro256** for the stream itself.

/// Minimal RNG interface used across the workspace.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform integer in `[0, n)` using Lemire's rejection method (unbiased).
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire 2018: multiply-shift with rejection.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize in `[0, n)`.
    #[inline]
    fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform in `[lo, hi)` (f64).
    #[inline]
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo);
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate via Box–Muller (the unpaired variant; we do
    /// not cache the second deviate to keep generators `Copy`-free state
    /// minimal and derivation order obvious).
    fn normal(&mut self) -> f64 {
        // Avoid log(0).
        let u1 = loop {
            let u = self.f64();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal deviate with mean `mu` and standard deviation `sigma`.
    #[inline]
    fn normal_with(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.normal()
    }

    /// Sample `k` distinct indices from `[0, n)` (partial Fisher–Yates).
    fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Shuffle a slice in place (Fisher–Yates).
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// SplitMix64: a tiny, fast, bijective mixer. Used both as a standalone
/// generator and as the seeding/splitting function for xoshiro.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The stateless mix function: maps any 64-bit input to a well-mixed
    /// 64-bit output. This is what we use to derive per-trial seeds from
    /// `(campaign_seed, input_id, trial_id)` tuples.
    #[inline]
    pub fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna) — our workhorse generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 expansion (the author-recommended procedure),
    /// guaranteeing a non-zero state.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256StarStar { s }
    }

    /// Derive an independent stream for a logical task, e.g.
    /// `rng_for(campaign_seed, &[input_id, trial_id])`. Streams derived from
    /// distinct tuples are statistically independent because SplitMix64's mix
    /// is a bijection composed with strong avalanche.
    pub fn for_stream(seed: u64, path: &[u64]) -> Self {
        let mut h = seed;
        for (i, &p) in path.iter().enumerate() {
            h = SplitMix64::mix(h ^ p.rotate_left(17).wrapping_add(i as u64 + 1));
        }
        Self::new(h)
    }
}

impl Rng for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for SplitMix64 with seed 1234567.
        let mut rng = SplitMix64::new(1234567);
        let out: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(out[0], 6457827717110365317);
        assert_eq!(out[1], 3203168211198807973);
        assert_eq!(out[2], 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_differs_by_seed() {
        let mut a = Xoshiro256StarStar::new(42);
        let mut b = Xoshiro256StarStar::new(42);
        let mut c = Xoshiro256StarStar::new(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn stream_derivation_is_order_sensitive() {
        let mut a = Xoshiro256StarStar::for_stream(7, &[1, 2]);
        let mut b = Xoshiro256StarStar::for_stream(7, &[2, 1]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::new(9);
        for _ in 0..1000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256StarStar::new(5);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.normal();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Xoshiro256StarStar::new(3);
        let sample = rng.sample_indices(100, 10);
        assert_eq!(sample.len(), 10);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(sample.iter().all(|&i| i < 100));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256StarStar::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_rate() {
        let mut rng = Xoshiro256StarStar::new(21);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
