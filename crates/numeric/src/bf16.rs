//! bfloat16 (1 sign, 8 exponent, 7 mantissa bits).
//!
//! Not evaluated in the paper, but provided as a natural extension of the
//! §5.2.3 data-type sensitivity study: bf16 shares binary32's exponent range,
//! so its NaN-vulnerable intervals differ from binary16's — a useful ablation
//! for the criticality analysis.

use std::cmp::Ordering;
use std::fmt;

/// A 16-bit bfloat16 value (truncated binary32).
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(transparent)]
pub struct Bf16(pub u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0x0000);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// A quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7FC0);
    /// Largest finite value (~3.39e38).
    pub const MAX: Bf16 = Bf16(0x7F7F);

    /// Construct from a raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert from `f32` with round-to-nearest-even on the dropped 16 bits.
    pub fn from_f32(value: f32) -> Self {
        let x = value.to_bits();
        if value.is_nan() {
            // Truncate, preserving the payload bits so bf16<->f32 NaN
            // round-trips exactly (required for the fault-injection bit-flip
            // involution); only force a quiet bit when truncation would lose
            // NaN-ness.
            let hi = (x >> 16) as u16;
            let hi = if hi & 0x007F == 0 { hi | 0x0040 } else { hi };
            return Bf16(hi);
        }
        let round_bit = 0x0000_8000u32;
        let mut hi = (x >> 16) as u16;
        let rem = x & 0xFFFF;
        if rem > round_bit || (rem == round_bit && (hi & 1) == 1) {
            hi = hi.wrapping_add(1);
        }
        Bf16(hi)
    }

    /// Widen to `f32` exactly (shift left by 16).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Is this a NaN encoding?
    #[inline]
    pub const fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }

    /// Is this positive or negative infinity?
    #[inline]
    pub const fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7F80
    }

    /// Is this a finite value?
    #[inline]
    pub const fn is_finite(self) -> bool {
        (self.0 & 0x7F80) != 0x7F80
    }

    /// Flip a single bit of the representation (bit 15 = sign, bits 7..=14 =
    /// exponent, bits 0..=6 = mantissa).
    #[inline]
    pub const fn flip_bit(self, bit: u32) -> Bf16 {
        Bf16(self.0 ^ (1 << bit))
    }
}

impl From<f32> for Bf16 {
    fn from(v: f32) -> Self {
        Bf16::from_f32(v)
    }
}

impl From<Bf16> for f32 {
    fn from(v: Bf16) -> Self {
        v.to_f32()
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({} = {:#06x})", self.to_f32(), self.0)
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, 128.0, -65536.0] {
            assert_eq!(Bf16::from_f32(v).to_f32(), v);
        }
    }

    #[test]
    fn truncation_rounds_to_nearest_even() {
        // 1 + 2^-8 is halfway between 1.0 and 1 + 2^-7: ties-to-even keeps 1.0.
        let halfway = 1.0 + 2.0f32.powi(-8);
        assert_eq!(Bf16::from_f32(halfway).to_f32(), 1.0);
        let above = 1.0 + 2.0f32.powi(-8) + 2.0f32.powi(-16);
        assert_eq!(Bf16::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-7));
    }

    #[test]
    fn exponent_range_matches_f32() {
        // bf16 can represent 1e38 (f16 cannot).
        let big = Bf16::from_f32(1e38);
        assert!(big.is_finite());
        assert!(big.to_f32() > 9.9e37);
    }

    #[test]
    fn nan_payload_roundtrips_exactly() {
        // Any bf16 NaN pattern must survive widening to f32 and truncating
        // back bit-for-bit.
        for bits in 0..=u16::MAX {
            let b = Bf16::from_bits(bits);
            if b.is_nan() {
                assert_eq!(
                    Bf16::from_f32(b.to_f32()).to_bits(),
                    bits,
                    "NaN payload lost for {bits:#06x}"
                );
            }
        }
    }

    #[test]
    fn nan_and_inf() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert!(Bf16::from_f32(f32::INFINITY).is_infinite());
        assert!(Bf16::NAN.is_nan());
        assert!(!Bf16::NAN.is_finite());
    }

    #[test]
    fn highest_exponent_bit_flip_makes_huge_or_nan() {
        // 1.5 in bf16 has exponent 0111_1111; flipping bit 14 gives
        // 1111_1111 => NaN (mantissa non-zero).
        let v = Bf16::from_f32(1.5);
        assert!(v.flip_bit(14).is_nan());
        // 0.5 has exponent 0111_1110 -> 1111_1110 => huge finite.
        let v = Bf16::from_f32(0.5);
        let f = v.flip_bit(14);
        assert!(f.is_finite());
        assert!(f.to_f32() > 1e37);
    }
}
