//! CRC-64 integrity checksums (ECMA-182 polynomial).
//!
//! The integrity layer checksums weight tiles and KV-cache rows with
//! CRC-64/ECMA (polynomial `0x42F0E1EBA9EA3693`). Because the polynomial's
//! constant term is 1, a CRC-64 detects **every** error burst of at most 64
//! bits — and a fault model that corrupts bits within one stored `f32`
//! element is a burst of at most 32 bits, so any single-element corruption
//! (single-bit, double-bit, or exponent flips, in any storage format) is
//! *guaranteed* to change the checksum. That is the soundness property the
//! scrubber and the KV guard rely on.
//!
//! Implemented with a 16-entry nibble table: tiny, allocation-free, and fast
//! enough for per-decode-step scrub budgets.

/// The CRC-64/ECMA-182 generator polynomial (normal representation).
pub const CRC64_ECMA_POLY: u64 = 0x42F0_E1EB_A9EA_3693;

/// Nibble lookup table for `CRC64_ECMA_POLY`, built at compile time.
const fn build_table() -> [u64; 16] {
    let mut table = [0u64; 16];
    let mut n = 0;
    while n < 16 {
        let mut crc = (n as u64) << 60;
        let mut bit = 0;
        while bit < 4 {
            crc = if crc & (1 << 63) != 0 {
                (crc << 1) ^ CRC64_ECMA_POLY
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[n] = crc;
        n += 1;
    }
    table
}

const TABLE: [u64; 16] = build_table();

/// CRC-64/ECMA of a byte slice (init 0, no reflection, no final xor).
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = 0u64;
    for &b in bytes {
        crc = (crc << 4) ^ TABLE[((crc >> 60) ^ (b >> 4) as u64) as usize & 0xF];
        crc = (crc << 4) ^ TABLE[((crc >> 60) ^ (b & 0xF) as u64) as usize & 0xF];
    }
    crc
}

/// CRC-64/ECMA over the bit patterns of a slice of `f32` values
/// (little-endian byte order). Values are hashed by *representation*, so
/// `0.0` and `-0.0` — and distinct NaN payloads — checksum differently,
/// exactly what stored-state integrity needs.
pub fn crc64_f32s(values: &[f32]) -> u64 {
    let mut crc = 0u64;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            crc = (crc << 4) ^ TABLE[((crc >> 60) ^ (b >> 4) as u64) as usize & 0xF];
            crc = (crc << 4) ^ TABLE[((crc >> 60) ^ (b & 0xF) as u64) as usize & 0xF];
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero_and_deterministic() {
        assert_eq!(crc64(&[]), 0);
        let a = crc64(b"hello, world");
        let b = crc64(b"hello, world");
        assert_eq!(a, b);
        assert_ne!(a, crc64(b"hello, worle"));
    }

    #[test]
    fn single_bit_flips_always_change_the_crc() {
        let base = b"integrity scrubbing over weight tiles".to_vec();
        let c0 = crc64(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.clone();
                m[byte] ^= 1 << bit;
                assert_ne!(crc64(&m), c0, "undetected flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn f32_variant_matches_byte_variant() {
        let vals = [1.5f32, -0.25, 0.0, f32::INFINITY, 3.15625];
        let mut bytes = Vec::new();
        for v in &vals {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        assert_eq!(crc64_f32s(&vals), crc64(&bytes));
    }

    #[test]
    fn representation_sensitive() {
        // 0.0 and -0.0 compare equal as floats but have different bits; the
        // integrity layer must distinguish them.
        assert_ne!(crc64_f32s(&[0.0]), crc64_f32s(&[-0.0]));
    }
}
