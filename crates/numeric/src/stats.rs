//! Descriptive statistics, histograms, and confidence intervals.
//!
//! The paper reports SDC rates as binomial proportions from statistical fault
//! injection with 95% confidence intervals (§5.1, citing Leemis & Park and
//! Leveugle et al.). [`proportion_ci95`] implements the normal-approximation
//! margin the cited methodology uses, and [`wilson_ci95`] is provided for the
//! small-count regimes where the normal approximation degrades.

/// Streaming mean/variance/min/max accumulator (Welford's algorithm),
/// numerically stable for long campaigns.
#[derive(Clone, Debug)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (+inf for empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (-inf for empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// 95% normal-approximation confidence half-width for a binomial proportion:
/// `1.96 * sqrt(p(1-p)/n)`. Returns 0 for `n == 0`.
pub fn proportion_ci95(successes: u64, trials: u64) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    let p = successes as f64 / trials as f64;
    1.96 * (p * (1.0 - p) / trials as f64).sqrt()
}

/// Wilson score 95% interval for a binomial proportion, `(lo, hi)`.
/// Better behaved than the normal approximation when `successes` is near 0
/// or `trials` — exactly the regime of post-protection SDC rates (~0.2%).
pub fn wilson_ci95(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 0.0);
    }
    let z = 1.96f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((centre - half) / denom).max(0.0),
        ((centre + half) / denom).min(1.0),
    )
}

/// Arithmetic mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Linear-interpolation quantile of *unsorted* data, `q` in [0,1].
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q));
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A fixed-range histogram with uniform bins plus explicit under/overflow
/// counters. Used for the neuron-value distribution figures (8 and 12).
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` uniform bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x.is_nan() {
            // Count NaN as overflow: it is out of every finite range.
            self.overflow += 1;
            return;
        }
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let mut idx = ((x - self.lo) / width) as usize;
            if idx >= self.counts.len() {
                idx = self.counts.len() - 1; // fp edge case at hi boundary
            }
            self.counts[idx] += 1;
        }
    }

    /// Record many observations.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.push(x);
        }
    }

    /// Merge a histogram with identical binning.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo);
        assert_eq!(self.hi, other.hi);
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Total observations recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi` (plus NaNs).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(left_edge, right_edge)` of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Fraction of observations falling in `[a, b)` (in-range bins only,
    /// approximated at bin granularity).
    pub fn fraction_between(&self, a: f64, b: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut n = 0u64;
        for i in 0..self.counts.len() {
            let (l, r) = self.bin_edges(i);
            if l >= a && r <= b {
                n += self.counts[i];
            }
        }
        n as f64 / self.total as f64
    }

    /// Render a compact ASCII bar chart (used by the figure drivers).
    pub fn ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (l, r) = self.bin_edges(i);
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("[{l:>9.3}, {r:>9.3}) {c:>8} {bar}\n"));
        }
        if self.underflow > 0 {
            out.push_str(&format!("  underflow {:>8}\n", self.underflow));
        }
        if self.overflow > 0 {
            out.push_str(&format!("  overflow  {:>8}\n", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 3.0);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn ci95_matches_formula() {
        // p = 0.5, n = 100 -> 1.96 * sqrt(0.25/100) = 0.098.
        let ci = proportion_ci95(50, 100);
        assert!((ci - 0.098).abs() < 1e-9);
        assert_eq!(proportion_ci95(0, 0), 0.0);
        // Degenerate proportions have zero width under the normal approx.
        assert_eq!(proportion_ci95(0, 100), 0.0);
    }

    #[test]
    fn wilson_is_sane_for_extremes() {
        let (lo, hi) = wilson_ci95(0, 100);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.05);
        let (lo, hi) = wilson_ci95(100, 100);
        assert!(lo > 0.95 && lo < 1.0);
        assert!((hi - 1.0).abs() < 1e-12);
        let (lo, hi) = wilson_ci95(50, 100);
        assert!(lo < 0.5 && hi > 0.5);
    }

    #[test]
    fn quantiles() {
        let xs: Vec<f64> = (1..=5).map(|x| x as f64).collect();
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([0.0, 0.5, 1.0, 9.999, 10.0, -0.1, f64::NAN]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.counts()[0], 2); // 0.0, 0.5
        assert_eq!(h.counts()[1], 1); // 1.0
        assert_eq!(h.counts()[9], 1); // 9.999
        assert_eq!(h.overflow(), 2); // 10.0 and NaN
        assert_eq!(h.underflow(), 1); // -0.1
    }

    #[test]
    fn histogram_fraction_between() {
        let mut h = Histogram::new(-2.0, 2.0, 8); // bin width 0.5
        h.extend([-1.75, -1.2, 0.1, 1.3, 1.6]);
        let frac = h.fraction_between(1.0, 2.0);
        assert!((frac - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let mut b = Histogram::new(0.0, 1.0, 4);
        a.extend([0.1, 0.6]);
        b.extend([0.7, 2.0]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.counts()[2], 2); // 0.6 and 0.7
    }
}
