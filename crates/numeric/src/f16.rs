//! IEEE-754 binary16 implemented from scratch.
//!
//! Layout (Fig. 7 of the paper): 1 sign bit, 5 exponent bits, 10 mantissa
//! bits. We store the raw `u16` pattern so that fault injection can flip any
//! bit and the resulting value (huge number, subnormal, NaN, infinity) is
//! decoded with exact IEEE semantics.
//!
//! Arithmetic is performed by widening to `f32`, operating, and rounding back
//! with round-to-nearest-even — the same behaviour as GPU FP16 units with an
//! FP32 accumulator path, which is the configuration the paper evaluates.

use std::cmp::Ordering;
use std::fmt;

/// A 16-bit IEEE-754 binary16 floating point number.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(transparent)]
pub struct F16(pub u16);

/// Number of exponent bits in binary16.
pub const F16_EXP_BITS: u32 = 5;
/// Number of mantissa (fraction) bits in binary16.
pub const F16_MANT_BITS: u32 = 10;
/// Exponent bias of binary16.
pub const F16_BIAS: i32 = 15;

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7C00;
const MANT_MASK: u16 = 0x03FF;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest finite value, -65504.
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, 2^-24.
    pub const MIN_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon (2^-10).
    pub const EPSILON: F16 = F16(0x1400);

    /// Construct from a raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert an `f32` to binary16 with round-to-nearest-even, overflowing
    /// to infinity and flushing tiny values to (sub)normals/zero exactly as
    /// IEEE 754 prescribes.
    pub fn from_f32(value: f32) -> Self {
        let x = value.to_bits();
        let sign = ((x >> 16) & 0x8000) as u16;
        let exp = ((x >> 23) & 0xFF) as i32;
        let mant = x & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN. Preserve the NaN payload bit-for-bit so that a
            // bit flip followed by the same flip restores the original pattern
            // (the fault-injection involution property); only force a quiet
            // bit when truncation would otherwise lose NaN-ness entirely.
            return if mant == 0 {
                F16(sign | EXP_MASK)
            } else {
                let payload = ((mant >> 13) as u16) & MANT_MASK;
                let payload = if payload == 0 { 0x0200 } else { payload };
                F16(sign | EXP_MASK | payload)
            };
        }

        // Re-bias: binary32 bias 127 -> binary16 bias 15.
        let unbiased = exp - 127;
        let new_exp = unbiased + F16_BIAS;

        if new_exp >= 0x1F {
            // Overflow to infinity.
            return F16(sign | EXP_MASK);
        }

        if new_exp <= 0 {
            // Subnormal or zero in binary16.
            if new_exp < -10 {
                // Too small: rounds to zero (ties cannot reach the smallest
                // subnormal from here).
                return F16(sign);
            }
            // Add the implicit leading 1 and shift right into subnormal
            // position, rounding to nearest even. The f16 subnormal stores
            // value * 2^24, i.e. full_mant * 2^(unbiased + 1).
            let full_mant = mant | 0x0080_0000;
            let shift = (-1 - unbiased) as u32; // unbiased in [-25, -15] => shift in [14, 24]
            debug_assert!((14..=24).contains(&shift));
            let sub = full_mant >> shift;
            let rem = full_mant & ((1u32 << shift) - 1);
            let half = 1u32 << (shift - 1);
            let mut bits = sub as u16;
            if rem > half || (rem == half && (bits & 1) == 1) {
                bits += 1; // may carry into the exponent, which is correct
            }
            return F16(sign | bits);
        }

        // Normal number: round the 23-bit mantissa to 10 bits, nearest even.
        let mut bits = ((new_exp as u16) << F16_MANT_BITS) | ((mant >> 13) as u16);
        let rem = mant & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && (bits & 1) == 1) {
            bits += 1; // mantissa carry may overflow into exponent => inf, ok
        }
        F16(sign | bits)
    }

    /// Widen to `f32` exactly (binary16 values are all representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & SIGN_MASK) as u32) << 16;
        let exp = ((self.0 & EXP_MASK) >> F16_MANT_BITS) as u32;
        let mant = (self.0 & MANT_MASK) as u32;

        let bits = if exp == 0 {
            if mant == 0 {
                sign // signed zero
            } else {
                // Subnormal: value = mant * 2^-24, exactly representable in
                // binary32 (mant <= 1023), so compute it directly.
                let value = mant as f32 * (1.0 / 16_777_216.0);
                return if sign != 0 { -value } else { value };
            }
        } else if exp == 0x1F {
            if mant == 0 {
                sign | 0x7F80_0000
            } else {
                // `mant != 0` keeps this a NaN after widening; the payload is
                // carried unchanged so the f32<->f16 NaN round-trip is exact.
                sign | 0x7F80_0000 | (mant << 13)
            }
        } else {
            let exp32 = exp as i32 - F16_BIAS + 127;
            sign | ((exp32 as u32) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// Convert to `f64` via `f32` (exact).
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Convert from `f64` (double rounding is safe here because every
    /// binary16 rounding boundary is exactly representable in binary32 and
    /// binary64 values round to binary32 first with sufficient headroom for
    /// our use; generation paths in this project only produce f32 anyway).
    pub fn from_f64(value: f64) -> Self {
        Self::from_f32(value as f32)
    }

    /// Is this a NaN encoding (all exponent bits set, non-zero mantissa)?
    #[inline]
    pub const fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MANT_MASK) != 0
    }

    /// Is this positive or negative infinity?
    #[inline]
    pub const fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MANT_MASK) == 0
    }

    /// Is this a finite value (neither NaN nor infinity)?
    #[inline]
    pub const fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// Is this a subnormal (denormal) value?
    #[inline]
    pub const fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MANT_MASK) != 0
    }

    /// Is the sign bit set?
    #[inline]
    pub const fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    /// Is this value zero (either sign)?
    #[inline]
    pub const fn is_zero(self) -> bool {
        (self.0 & !SIGN_MASK) == 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub const fn abs(self) -> F16 {
        F16(self.0 & !SIGN_MASK)
    }

    /// Negation (flips the sign bit).
    #[inline]
    pub const fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }

    /// Flip a single bit of the representation. Bit 0 is the least
    /// significant mantissa bit; bit 15 is the sign bit; bits 10..=14 are the
    /// exponent (bit 14 being the highest exponent bit of Fig. 7).
    #[inline]
    pub const fn flip_bit(self, bit: u32) -> F16 {
        F16(self.0 ^ (1 << bit))
    }

    /// The unbiased exponent of a normal value, `None` for zero/subnormal/
    /// non-finite encodings.
    pub fn unbiased_exponent(self) -> Option<i32> {
        let e = (self.0 & EXP_MASK) >> F16_MANT_BITS;
        if e == 0 || e == 0x1F {
            None
        } else {
            Some(e as i32 - F16_BIAS)
        }
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({} = {:#06x})", self.to_f32(), self.0)
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

macro_rules! impl_f16_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl std::ops::$trait for F16 {
            type Output = F16;
            #[inline]
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}

impl_f16_binop!(Add, add, +);
impl_f16_binop!(Sub, sub, -);
impl_f16_binop!(Mul, mul, *);
impl_f16_binop!(Div, div, /);

impl std::ops::Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        F16::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_decode_correctly() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN.to_f32(), -65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::MIN_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert!(F16::NAN.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_sign_negative());
    }

    #[test]
    fn roundtrip_simple_values() {
        for &v in &[
            0.0f32, -0.0, 1.0, -1.0, 2.0, 0.5, 0.25, 1.5, 3.140625, 1000.0, -1000.0, 65504.0,
        ] {
            let h = F16::from_f32(v);
            assert_eq!(h.to_f32(), v, "roundtrip failed for {v}");
        }
    }

    #[test]
    fn rounding_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even
        // keep 1.0 (even mantissa).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-10));
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; ties to even
        // round up to 1+2^-9 (even mantissa).
        let halfway2 = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway2).to_f32(), 1.0 + 2.0f32.powi(-9));
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(F16::from_f32(65520.0).is_infinite()); // rounds past MAX
        assert_eq!(F16::from_f32(65519.0).to_f32(), 65504.0); // rounds down to MAX
        assert!(F16::from_f32(1e9).is_infinite());
        assert!(F16::from_f32(-1e9).is_infinite());
        assert!(F16::from_f32(-1e9).is_sign_negative());
    }

    #[test]
    fn underflow_and_subnormals() {
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        assert_eq!(F16::from_f32(2.0f32.powi(-25)).to_f32(), 0.0);
        let sub = 3.0 * 2.0f32.powi(-24);
        let h = F16::from_f32(sub);
        assert!(h.is_subnormal());
        assert_eq!(h.to_f32(), sub);
        // Largest subnormal.
        let max_sub = 1023.0 * 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(max_sub).to_f32(), max_sub);
    }

    #[test]
    fn nan_propagates_through_conversion() {
        let h = F16::from_f32(f32::NAN);
        assert!(h.is_nan());
        assert!(h.to_f32().is_nan());
    }

    #[test]
    fn fig7_examples() {
        // Fig. 7(a): flipping the highest exponent bit of a small value
        // produces an extremely large value. 1.5 = 0x3E00; flipping bit 14
        // gives 0x7E00.. wait that's NaN territory only if exponent becomes
        // all ones. 1.5 has exponent 01111; flipping the MSB gives 11111 with
        // mantissa != 0 => NaN. A value like 0.5 (exponent 01110) flips to
        // 11110 => huge finite value.
        let half = F16::from_f32(0.5);
        let flipped = half.flip_bit(14);
        assert!(flipped.is_finite());
        assert!(flipped.to_f32() > 10_000.0);

        // Fig. 7(b): values in (1, 2) have exponent 01111; flipping the top
        // exponent bit yields 11111 with non-zero mantissa => NaN.
        let v = F16::from_f32(1.5);
        assert!(v.flip_bit(14).is_nan());
        let v = F16::from_f32(-1.25);
        assert!(v.flip_bit(14).is_nan());
        // Exactly 1.0 has a zero mantissa: the same flip gives infinity.
        assert!(F16::ONE.flip_bit(14).is_infinite());
    }

    #[test]
    fn arithmetic_via_f32() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((b - a).to_f32(), 0.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((b / F16::from_f32(1.5)).to_f32(), 1.5);
        assert_eq!((-a).to_f32(), -1.5);
    }

    #[test]
    fn ordering_matches_f32() {
        let vals = [-3.0f32, -1.0, 0.0, 0.5, 1.0, 2.5];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    F16::from_f32(a).partial_cmp(&F16::from_f32(b)),
                    a.partial_cmp(&b)
                );
            }
        }
        assert_eq!(F16::NAN.partial_cmp(&F16::ONE), None);
    }

    #[test]
    fn exhaustive_roundtrip_f16_f32_f16() {
        // Every one of the 65536 bit patterns must round-trip through f32
        // bit-identically — including NaN payloads, which fault injection
        // relies on (flipping the same bit twice must restore the pattern).
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.to_bits(), bits, "roundtrip failed for {bits:#06x}");
        }
    }

    #[test]
    fn unbiased_exponent_ranges() {
        assert_eq!(F16::ONE.unbiased_exponent(), Some(0));
        assert_eq!(F16::from_f32(1.9).unbiased_exponent(), Some(0));
        assert_eq!(F16::from_f32(0.5).unbiased_exponent(), Some(-1));
        assert_eq!(F16::from_f32(4.0).unbiased_exponent(), Some(2));
        assert_eq!(F16::ZERO.unbiased_exponent(), None);
        assert_eq!(F16::NAN.unbiased_exponent(), None);
        assert_eq!(F16::MIN_SUBNORMAL.unbiased_exponent(), None);
    }
}
