#![warn(missing_docs)]
//! # ft2-numeric
//!
//! Numeric foundations for the FT2 reproduction:
//!
//! * [`f16`] — a from-scratch IEEE-754 binary16 ("half") implementation. The
//!   fault models of the paper operate on the *bit patterns* of FP16 values
//!   (Fig. 7), so we need full control over the representation rather than a
//!   hardware type.
//! * [`bf16`] — bfloat16, provided as an extension beyond the paper's FP16 /
//!   FP32 study (the paper's §5.2.3 sensitivity analysis generalises to it).
//! * [`bits`] — bit-flip fault primitives shared by every fault model:
//!   single-bit, double-bit, and exponent-bit flips on 16/32-bit floats, plus
//!   the *NaN-vulnerable interval* analysis of §4.1.1.
//! * [`crc`] — CRC-64/ECMA integrity checksums; the guarantee that any
//!   corruption confined to one stored element changes the checksum is what
//!   the weight scrubber and KV guard build on.
//! * [`rng`] — deterministic, counter-splittable random number generation
//!   (SplitMix64 + xoshiro256**). Campaign reproducibility across thread
//!   counts requires per-trial derivable streams, which stateful generators
//!   do not give us directly.
//! * [`stats`] — descriptive statistics, Welford accumulators, histograms and
//!   the binomial confidence intervals used to report SDC-rate error margins
//!   (§5.1 quotes ±0.00554% – ±0.368% at 95% confidence).

pub mod bf16;
pub mod bits;
pub mod crc;
pub mod f16;
pub mod philox;
pub mod rng;
pub mod stats;

pub use bf16::Bf16;
pub use bits::{flip_bit_f32, flip_bits_f32, BitLocation, FloatFormat, NAN_VULNERABLE_INTERVALS};
pub use crc::{crc64, crc64_f32s};
pub use f16::F16;
pub use philox::{philox4x32_10, Philox};
pub use rng::{Rng, SplitMix64, Xoshiro256StarStar};
pub use stats::{proportion_ci95, Histogram, OnlineStats};
