//! Philox4x32-10: a counter-based PRNG (Salmon et al., SC'11).
//!
//! Counter-based generators map `(counter, key) -> 128 random bits` with a
//! stateless bijection, which is the ideal shape for fault-injection
//! campaigns: trial *i* of input *j* reads block `(j, i)` directly, with
//! no sequential state to split. The workspace's default streams use
//! xoshiro-from-SplitMix (cheaper per call); Philox is provided for
//! callers that want cryptographically-styled stream separation or
//! compatibility with `random123`-based tooling.

use crate::rng::Rng;

const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
const PHILOX_W0: u32 = 0x9E37_79B9; // golden ratio
const PHILOX_W1: u32 = 0xBB67_AE85; // sqrt(3) - 1

#[inline]
fn mulhilo(a: u32, b: u32) -> (u32, u32) {
    let p = (a as u64) * (b as u64);
    ((p >> 32) as u32, p as u32)
}

/// One Philox4x32 round.
#[inline]
fn round(ctr: [u32; 4], key: [u32; 2]) -> [u32; 4] {
    let (hi0, lo0) = mulhilo(PHILOX_M0, ctr[0]);
    let (hi1, lo1) = mulhilo(PHILOX_M1, ctr[2]);
    [hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0]
}

/// The raw 10-round Philox4x32 block function: `(counter, key) -> 4 words`.
pub fn philox4x32_10(mut ctr: [u32; 4], mut key: [u32; 2]) -> [u32; 4] {
    for _ in 0..9 {
        ctr = round(ctr, key);
        key[0] = key[0].wrapping_add(PHILOX_W0);
        key[1] = key[1].wrapping_add(PHILOX_W1);
    }
    round(ctr, key)
}

/// A sequential RNG view over the Philox block function: increments the
/// 128-bit counter and serves the four output words in order.
#[derive(Clone, Debug)]
pub struct Philox {
    key: [u32; 2],
    counter: [u32; 4],
    buffer: [u32; 4],
    index: usize,
}

impl Philox {
    /// Create a stream for `(seed, stream_id)`; distinct pairs never share
    /// blocks.
    pub fn new(seed: u64, stream_id: u64) -> Philox {
        Philox {
            key: [seed as u32, (seed >> 32) as u32],
            counter: [0, 0, stream_id as u32, (stream_id >> 32) as u32],
            buffer: [0; 4],
            index: 4, // force a refill on first use
        }
    }

    /// Random access: the `n`-th 32-bit word of this stream, independent of
    /// any sequential state.
    pub fn word_at(&self, n: u64) -> u32 {
        let block = n / 4;
        let mut ctr = self.counter;
        let lo = ctr[0] as u64 | ((ctr[1] as u64) << 32);
        let new = lo.wrapping_add(block);
        ctr[0] = new as u32;
        ctr[1] = (new >> 32) as u32;
        philox4x32_10(ctr, self.key)[(n % 4) as usize]
    }

    fn refill(&mut self) {
        self.buffer = philox4x32_10(self.counter, self.key);
        // 128-bit counter increment (low 64 bits suffice for any campaign).
        let lo = self.counter[0] as u64 | ((self.counter[1] as u64) << 32);
        let new = lo.wrapping_add(1);
        self.counter[0] = new as u32;
        self.counter[1] = (new >> 32) as u32;
        self.index = 0;
    }
}

impl Rng for Philox {
    fn next_u64(&mut self) -> u64 {
        if self.index >= 3 {
            if self.index >= 4 {
                self.refill();
            } else {
                // One word left: take it plus the first of a fresh block.
                let a = self.buffer[3] as u64;
                self.refill();
                let b = self.buffer[0] as u64;
                self.index = 1;
                return (a << 32) | b;
            }
        }
        let a = self.buffer[self.index] as u64;
        let b = self.buffer[self.index + 1] as u64;
        self.index += 2;
        (a << 32) | b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_zero_input() {
        // random123 known-answer test: counter = key = 0.
        let out = philox4x32_10([0, 0, 0, 0], [0, 0]);
        assert_eq!(out, [0x6627_E8D5, 0xE169_C58D, 0xBC57_AC4C, 0x9B00_DBD8]);
    }

    #[test]
    fn known_answer_ones_input() {
        // random123 known-answer test: all-ones counter and key.
        let out = philox4x32_10(
            [0xFFFF_FFFF, 0xFFFF_FFFF, 0xFFFF_FFFF, 0xFFFF_FFFF],
            [0xFFFF_FFFF, 0xFFFF_FFFF],
        );
        assert_eq!(out, [0x408F_276D, 0x41C8_3B0E, 0xA20B_C7C6, 0x6D54_51FD]);
    }

    #[test]
    fn streams_are_disjoint_and_deterministic() {
        let mut a1 = Philox::new(42, 0);
        let mut a2 = Philox::new(42, 0);
        let mut b = Philox::new(42, 1);
        let mut c = Philox::new(43, 0);
        let va: Vec<u64> = (0..16).map(|_| a1.next_u64()).collect();
        let va2: Vec<u64> = (0..16).map(|_| a2.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, va2);
        assert_ne!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn random_access_matches_block_function() {
        let p = Philox::new(7, 9);
        // Word 0..4 come from block 0; word 4 from block 1.
        let block0 = philox4x32_10(p.counter, p.key);
        assert_eq!(p.word_at(0), block0[0]);
        assert_eq!(p.word_at(3), block0[3]);
        let mut ctr1 = p.counter;
        ctr1[0] += 1;
        let block1 = philox4x32_10(ctr1, p.key);
        assert_eq!(p.word_at(4), block1[0]);
    }

    #[test]
    fn uniformity_smoke() {
        let mut p = Philox::new(123, 456);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| p.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for _ in 0..1000 {
            let v = p.below(10);
            assert!(v < 10);
        }
    }
}
