//! Bit-flip fault primitives and the NaN-vulnerability analysis of §4.1.1.
//!
//! Every fault model in the paper corrupts the *stored representation* of a
//! neuron value: single-bit flips, double-bit flips, and single flips
//! restricted to exponent bits (the "EXP" model, the most aggressive one).
//! This module centralises the bit-layout knowledge for the formats we
//! support so that `ft2-fault` can stay format-agnostic.

use crate::f16::F16;

/// The floating-point storage formats faults can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FloatFormat {
    /// IEEE-754 binary16 (1/5/10).
    F16,
    /// IEEE-754 binary32 (1/8/23).
    F32,
    /// bfloat16 (1/8/7) — extension beyond the paper.
    Bf16,
}

impl FloatFormat {
    /// Total number of bits in the representation.
    pub const fn total_bits(self) -> u32 {
        match self {
            FloatFormat::F16 | FloatFormat::Bf16 => 16,
            FloatFormat::F32 => 32,
        }
    }

    /// Inclusive range of exponent bit indices (LSB = bit 0).
    pub const fn exponent_bits(self) -> (u32, u32) {
        match self {
            FloatFormat::F16 => (10, 14),
            FloatFormat::F32 => (23, 30),
            FloatFormat::Bf16 => (7, 14),
        }
    }

    /// Index of the sign bit.
    pub const fn sign_bit(self) -> u32 {
        self.total_bits() - 1
    }

    /// Number of exponent bits.
    pub const fn num_exponent_bits(self) -> u32 {
        let (lo, hi) = self.exponent_bits();
        hi - lo + 1
    }

    /// Is `bit` an exponent bit in this format?
    pub const fn is_exponent_bit(self, bit: u32) -> bool {
        let (lo, hi) = self.exponent_bits();
        bit >= lo && bit <= hi
    }

    /// Short lowercase name, used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            FloatFormat::F16 => "fp16",
            FloatFormat::F32 => "fp32",
            FloatFormat::Bf16 => "bf16",
        }
    }
}

/// A concrete bit location inside a stored value, used to describe fault
/// sites in campaign logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitLocation {
    /// Storage format of the value being corrupted.
    pub format: FloatFormat,
    /// Bit index (0 = LSB).
    pub bit: u32,
}

impl BitLocation {
    /// Classify the bit as sign / exponent / mantissa for reporting.
    pub fn class(&self) -> &'static str {
        if self.bit == self.format.sign_bit() {
            "sign"
        } else if self.format.is_exponent_bit(self.bit) {
            "exponent"
        } else {
            "mantissa"
        }
    }
}

/// Flip one bit of an `f32` value's representation.
#[inline]
pub fn flip_bit_f32(value: f32, bit: u32) -> f32 {
    debug_assert!(bit < 32);
    f32::from_bits(value.to_bits() ^ (1u32 << bit))
}

/// Flip several bits of an `f32` value's representation at once.
#[inline]
pub fn flip_bits_f32(value: f32, bits: &[u32]) -> f32 {
    let mut mask = 0u32;
    for &b in bits {
        debug_assert!(b < 32);
        mask ^= 1u32 << b;
    }
    f32::from_bits(value.to_bits() ^ mask)
}

/// Flip one bit of a value *as stored in `format`*, round-tripping through
/// the narrow representation when necessary. This is the canonical fault
/// primitive: an FP16 tensor holds binary16 patterns, so a fault on it must
/// corrupt the binary16 pattern, not the widened f32.
pub fn flip_bit_in_format(value: f32, format: FloatFormat, bit: u32) -> f32 {
    match format {
        FloatFormat::F32 => flip_bit_f32(value, bit),
        FloatFormat::F16 => F16::from_f32(value).flip_bit(bit).to_f32(),
        FloatFormat::Bf16 => crate::bf16::Bf16::from_f32(value).flip_bit(bit).to_f32(),
    }
}

/// Flip two (distinct) bits of a value as stored in `format`.
pub fn flip_two_bits_in_format(value: f32, format: FloatFormat, bit_a: u32, bit_b: u32) -> f32 {
    debug_assert_ne!(bit_a, bit_b);
    match format {
        FloatFormat::F32 => flip_bits_f32(value, &[bit_a, bit_b]),
        FloatFormat::F16 => F16::from_f32(value)
            .flip_bit(bit_a)
            .flip_bit(bit_b)
            .to_f32(),
        FloatFormat::Bf16 => crate::bf16::Bf16::from_f32(value)
            .flip_bit(bit_a)
            .flip_bit(bit_b)
            .to_f32(),
    }
}

/// The *NaN-vulnerable intervals* of binary16 (§4.1.1): values whose highest
/// exponent bit flip produces a NaN. In binary16 these are the values with
/// unbiased exponent 0, i.e. magnitudes in [1, 2) — with the exact powers of
/// two excluded because their mantissa is zero (the flip yields ±infinity,
/// not NaN). The paper describes the open intervals (-2,-1) and (1,2).
pub const NAN_VULNERABLE_INTERVALS: [(f32, f32); 2] = [(-2.0, -1.0), (1.0, 2.0)];

/// Is `value` NaN-vulnerable in binary16 — i.e. does flipping its highest
/// exponent bit (bit 14) produce a NaN encoding?
pub fn is_nan_vulnerable_f16(value: f32) -> bool {
    let h = F16::from_f32(value);
    h.flip_bit(14).is_nan()
}

/// Is `value` NaN-vulnerable in the given format (highest exponent bit flip
/// produces NaN)?
pub fn is_nan_vulnerable(value: f32, format: FloatFormat) -> bool {
    let (_, hi) = format.exponent_bits();
    flip_bit_in_format(value, format, hi).is_nan()
}

/// Fraction of `values` that are NaN-vulnerable in the given format
/// (Fig. 8(b) statistic). Returns 0 for an empty slice.
pub fn nan_vulnerable_fraction(values: &[f32], format: FloatFormat) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values
        .iter()
        .filter(|&&v| is_nan_vulnerable(v, format))
        .count();
    n as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_layouts() {
        assert_eq!(FloatFormat::F16.exponent_bits(), (10, 14));
        assert_eq!(FloatFormat::F32.exponent_bits(), (23, 30));
        assert_eq!(FloatFormat::Bf16.exponent_bits(), (7, 14));
        assert_eq!(FloatFormat::F16.sign_bit(), 15);
        assert_eq!(FloatFormat::F32.sign_bit(), 31);
        assert_eq!(FloatFormat::F16.num_exponent_bits(), 5);
        assert_eq!(FloatFormat::F32.num_exponent_bits(), 8);
        assert!(FloatFormat::F16.is_exponent_bit(10));
        assert!(FloatFormat::F16.is_exponent_bit(14));
        assert!(!FloatFormat::F16.is_exponent_bit(9));
        assert!(!FloatFormat::F16.is_exponent_bit(15));
    }

    #[test]
    fn bit_location_classes() {
        let fmt = FloatFormat::F16;
        assert_eq!(BitLocation { format: fmt, bit: 15 }.class(), "sign");
        assert_eq!(BitLocation { format: fmt, bit: 12 }.class(), "exponent");
        assert_eq!(BitLocation { format: fmt, bit: 3 }.class(), "mantissa");
    }

    #[test]
    fn flip_is_involution() {
        for bit in 0..32 {
            let v = 123.456f32;
            assert_eq!(flip_bit_f32(flip_bit_f32(v, bit), bit), v);
        }
    }

    #[test]
    fn flip_in_f16_respects_storage() {
        // 1.5 stored as binary16; flipping bit 14 must give NaN.
        let out = flip_bit_in_format(1.5, FloatFormat::F16, 14);
        assert!(out.is_nan());
        // In f32 storage, 1.5's top exponent flip (bit 30) gives a huge value
        // (exponent 0111_1111 -> 1111_1111 is NaN in f32 too, actually).
        let out32 = flip_bit_in_format(1.5, FloatFormat::F32, 30);
        assert!(out32.is_nan());
        // 0.5 flips to huge finite in both.
        assert!(flip_bit_in_format(0.5, FloatFormat::F16, 14).is_finite());
        assert!(flip_bit_in_format(0.5, FloatFormat::F16, 14) > 1e4);
        assert!(flip_bit_in_format(0.5, FloatFormat::F32, 30).is_finite());
    }

    #[test]
    fn double_flip() {
        let v = 2.0f32;
        let out = flip_two_bits_in_format(v, FloatFormat::F32, 0, 1);
        // Mantissa LSB flips: tiny perturbation.
        assert!((out - v).abs() < 1e-5);
        let out = flip_two_bits_in_format(0.75, FloatFormat::F16, 0, 1);
        assert!((out - 0.75).abs() < 0.01);
    }

    #[test]
    fn nan_vulnerability_matches_intervals() {
        // Values strictly inside (1,2) or (-2,-1) are vulnerable; powers of
        // two and values outside are not.
        assert!(is_nan_vulnerable_f16(1.5));
        assert!(is_nan_vulnerable_f16(1.000_976_6)); // 1 + 2^-10
        assert!(is_nan_vulnerable_f16(-1.5));
        assert!(is_nan_vulnerable_f16(1.999));
        assert!(!is_nan_vulnerable_f16(1.0)); // exact power of two -> inf
        assert!(!is_nan_vulnerable_f16(-1.0));
        assert!(!is_nan_vulnerable_f16(0.5));
        assert!(!is_nan_vulnerable_f16(2.0));
        assert!(!is_nan_vulnerable_f16(3.0));
        assert!(!is_nan_vulnerable_f16(0.0));
    }

    #[test]
    fn nan_vulnerable_fraction_counts() {
        let vals = [0.5f32, 1.5, 1.2, -1.7, 3.0, 0.0];
        let frac = nan_vulnerable_fraction(&vals, FloatFormat::F16);
        assert!((frac - 3.0 / 6.0).abs() < 1e-12);
        assert_eq!(nan_vulnerable_fraction(&[], FloatFormat::F16), 0.0);
    }

    #[test]
    fn f32_nan_vulnerable_interval_is_same_shape() {
        // In binary32 the same (1,2)/(-2,-1) property holds for the top
        // exponent bit (bit 30).
        assert!(is_nan_vulnerable(1.5, FloatFormat::F32));
        assert!(!is_nan_vulnerable(2.5, FloatFormat::F32));
    }
}
