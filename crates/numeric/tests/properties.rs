//! Property-based tests for the numeric foundations.

use ft2_numeric::bits::{
    flip_bit_in_format, flip_two_bits_in_format, is_nan_vulnerable_f16, FloatFormat,
};
use ft2_numeric::{Bf16, F16, OnlineStats, Rng, SplitMix64, Xoshiro256StarStar};
use proptest::prelude::*;

proptest! {
    /// f32 -> f16 -> f32 is idempotent (second conversion changes nothing).
    #[test]
    fn f16_conversion_idempotent(v in -1e6f32..1e6f32) {
        let once = F16::from_f32(v).to_f32();
        let twice = F16::from_f32(once).to_f32();
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    /// f16(v) is always within half a ULP-ish relative error of v for values
    /// in the normal range.
    #[test]
    fn f16_rounding_error_bounded(v in 6.2e-5f32..6.0e4f32) {
        let h = F16::from_f32(v).to_f32();
        let rel = ((h - v) / v).abs();
        // Half ULP of binary16 normals: 2^-11.
        prop_assert!(rel <= 2.0f32.powi(-11) + 1e-9, "v={v} h={h} rel={rel}");
    }

    /// Sign symmetry: conversion commutes with negation.
    #[test]
    fn f16_sign_symmetric(v in -6.0e4f32..6.0e4f32) {
        let a = F16::from_f32(-v).to_bits();
        let b = F16::from_f32(v).neg().to_bits();
        prop_assert_eq!(a, b);
    }

    /// Ordering of finite f16 values agrees with f32 ordering.
    #[test]
    fn f16_order_preserved(a in -6e4f32..6e4f32, b in -6e4f32..6e4f32) {
        let (ha, hb) = (F16::from_f32(a), F16::from_f32(b));
        if ha.to_f32() < hb.to_f32() {
            prop_assert!(a < b);
        }
    }

    /// bf16 round-trip is idempotent.
    #[test]
    fn bf16_conversion_idempotent(v in -1e30f32..1e30f32) {
        let once = Bf16::from_f32(v).to_f32();
        let twice = Bf16::from_f32(once).to_f32();
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    /// Flipping the same bit twice at the representation level is an exact
    /// involution (xor on the stored u16).
    #[test]
    fn flip_is_involution_in_storage(v in -6e4f32..6e4f32, bit in 0u32..16) {
        let stored = F16::from_f32(v);
        prop_assert_eq!(stored.flip_bit(bit).flip_bit(bit).to_bits(), stored.to_bits());
        // At the f32-carrier level, a round-trip restores the value whenever
        // the intermediate is not a NaN (NaN payloads canonicalise — fine for
        // fault injection, which corrupts a value exactly once).
        let once = flip_bit_in_format(stored.to_f32(), FloatFormat::F16, bit);
        if !once.is_nan() {
            let twice = flip_bit_in_format(once, FloatFormat::F16, bit);
            prop_assert_eq!(F16::from_f32(twice).to_bits(), stored.to_bits());
        }
    }

    /// A double flip equals two sequential flips at the representation level.
    #[test]
    fn double_flip_composes(v in -6e4f32..6e4f32, a in 0u32..16, b in 0u32..16) {
        prop_assume!(a != b);
        let stored = F16::from_f32(v);
        let both = stored.flip_bit(a).flip_bit(b);
        let mask = F16::from_bits(stored.to_bits() ^ (1 << a) ^ (1 << b));
        prop_assert_eq!(both.to_bits(), mask.to_bits());
        // And the format-level helper agrees whenever no NaN canonicalisation
        // is involved.
        let helper = flip_two_bits_in_format(stored.to_f32(), FloatFormat::F16, a, b);
        if !helper.is_nan() && !both.is_nan() {
            prop_assert_eq!(F16::from_f32(helper).to_bits(), both.to_bits());
        }
    }

    /// NaN-vulnerability matches the paper's interval characterisation for
    /// values representable in f16: vulnerable iff |v| in (1,2) after
    /// quantisation, excluding exact 1.0 (powers of two give infinity).
    #[test]
    fn nan_vulnerable_iff_in_interval(v in -10.0f32..10.0) {
        let q = F16::from_f32(v);
        let mag = q.abs().to_f32();
        let in_interval = mag > 1.0 && mag < 2.0;
        prop_assert_eq!(is_nan_vulnerable_f16(q.to_f32()), in_interval);
    }

    /// below(n) stays in range for arbitrary seeds and n.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = Xoshiro256StarStar::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// Stream derivation: different paths give different streams.
    #[test]
    fn rng_streams_differ(seed in any::<u64>(), a in 0u64..1000, b in 0u64..1000) {
        prop_assume!(a != b);
        let mut ra = Xoshiro256StarStar::for_stream(seed, &[a]);
        let mut rb = Xoshiro256StarStar::for_stream(seed, &[b]);
        let va: Vec<u64> = (0..4).map(|_| ra.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| rb.next_u64()).collect();
        prop_assert_ne!(va, vb);
    }

    /// SplitMix64::mix is injective on sampled pairs (it is a bijection).
    #[test]
    fn splitmix_mix_injective(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(SplitMix64::mix(a), SplitMix64::mix(b));
    }

    /// Welford merge is equivalent to sequential accumulation at any split.
    #[test]
    fn online_stats_merge_assoc(data in prop::collection::vec(-1e3f64..1e3, 1..64), split in 0usize..64) {
        let split = split.min(data.len());
        let mut whole = OnlineStats::new();
        for &x in &data { whole.push(x); }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..split] { left.push(x); }
        for &x in &data[split..] { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6);
    }
}
