//! Property-based tests for workload generation and judging.

use ft2_fault::{Outcome, OutcomeJudge};
use ft2_tasks::datasets::{generate_inputs, generate_prompts};
use ft2_tasks::vocab::{render_token, Region};
use ft2_tasks::{contains_subsequence, DatasetId, TaskSpec, TaskType, VOCAB_SIZE};
use proptest::prelude::*;

fn any_dataset() -> impl Strategy<Value = DatasetId> {
    prop::sample::select(vec![
        DatasetId::Squad,
        DatasetId::Xtreme,
        DatasetId::Gsm8k,
        DatasetId::ChatGptPrompts,
        DatasetId::TweetEval,
        DatasetId::Mbpp,
        DatasetId::Opus100,
    ])
}

proptest! {
    /// Every generated prompt is in-vocabulary, respects the dataset's
    /// length bounds, and regenerates identically from the same seed.
    #[test]
    fn prompts_are_valid_and_deterministic(ds in any_dataset(), n in 1usize..20, seed in any::<u64>()) {
        let a = generate_inputs(ds, n, seed);
        let b = generate_inputs(ds, n, seed);
        prop_assert_eq!(&a, &b);
        for t in &a {
            prop_assert!(!t.prompt.is_empty());
            prop_assert!(t.prompt.len() <= 30);
            prop_assert!(t.prompt.iter().all(|&x| (x as usize) < VOCAB_SIZE));
        }
    }

    /// Subsequence containment is reflexive and monotone under extension.
    #[test]
    fn containment_laws(
        xs in prop::collection::vec(0u32..64, 0..24),
        prefix in prop::collection::vec(0u32..64, 0..8),
        suffix in prop::collection::vec(0u32..64, 0..8),
    ) {
        prop_assert!(contains_subsequence(&xs, &xs));
        let mut extended = prefix.clone();
        extended.extend_from_slice(&xs);
        extended.extend_from_slice(&suffix);
        prop_assert!(contains_subsequence(&extended, &xs));
    }

    /// The judge never calls an identical output anything but
    /// MaskedIdentical, and never calls an answer-preserving output an SDC.
    #[test]
    fn judge_laws(
        reference in prop::collection::vec(0u32..512, 12..40),
        noise in prop::collection::vec(0u32..512, 0..6),
        math in any::<bool>(),
    ) {
        let task = if math { TaskType::Math } else { TaskType::Qa };
        let spec = TaskSpec::new(task, reference.len());
        let judge = spec.judge();
        prop_assert_eq!(judge.classify(&reference, &reference), Outcome::MaskedIdentical);

        // Insert noise before the full reference: the answer span is still
        // contained, so this can never be an SDC.
        let mut shifted = noise.clone();
        shifted.extend_from_slice(&reference);
        prop_assert!(judge.classify(&reference, &shifted).is_masked());
    }

    /// The answer span is always inside the generation and non-empty for
    /// long-enough outputs.
    #[test]
    fn answer_span_is_well_placed(gen in 8usize..200, math in any::<bool>()) {
        let task = if math { TaskType::Math } else { TaskType::Qa };
        let spec = TaskSpec::new(task, gen);
        prop_assert!(spec.answer_start < spec.answer_end);
        prop_assert!(spec.answer_end <= gen);
        let tokens: Vec<u32> = (0..gen as u32).collect();
        let ans = spec.answer(&tokens);
        prop_assert!(!ans.is_empty());
        prop_assert_eq!(ans[0], spec.answer_start as u32);
    }

    /// Token rendering is total and region-consistent.
    #[test]
    fn rendering_total(tok in 0u32..512) {
        let s = render_token(tok);
        prop_assert!(!s.is_empty());
        match Region::of(tok) {
            Region::Number => prop_assert!(s.parse::<u32>().is_ok()),
            Region::Domain => prop_assert!(s.starts_with("Entity")),
            Region::Rare => prop_assert!(s.starts_with('x')),
            _ => {}
        }
    }

    /// Different datasets (same seed) produce different prompt sets —
    /// the property the Fig. 3 bound-transfer study depends on.
    #[test]
    fn datasets_differ(seed in any::<u64>()) {
        let a = generate_prompts(DatasetId::Squad, 6, seed);
        let b = generate_prompts(DatasetId::Gsm8k, 6, seed);
        prop_assert_ne!(a, b);
    }
}
