//! The shared synthetic vocabulary.
//!
//! 512 token ids partitioned into *regions*. Regions exist so that
//! different datasets can draw from different parts of the embedding table:
//! the bound-transfer experiment (Fig. 3) relies on datasets exercising
//! different activation ranges, which emerges from disjoint token usage.

/// Vocabulary size shared by every simulator model and dataset.
pub const VOCAB_SIZE: usize = 512;

/// Token-id regions of the synthetic vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// 0..16: control/special tokens (BOS-ish, punctuation).
    Special,
    /// 16..116: numeric/math tokens.
    Number,
    /// 116..316: common "words".
    Common,
    /// 316..416: domain/entity "words" (QA answers live here).
    Domain,
    /// 416..512: rare/multilingual/code tokens.
    Rare,
}

impl Region {
    /// Inclusive-exclusive id range of the region.
    pub const fn range(self) -> (u32, u32) {
        match self {
            Region::Special => (0, 16),
            Region::Number => (16, 116),
            Region::Common => (116, 316),
            Region::Domain => (316, 416),
            Region::Rare => (416, 512),
        }
    }

    /// Which region a token id belongs to.
    pub fn of(token: u32) -> Region {
        match token {
            0..=15 => Region::Special,
            16..=115 => Region::Number,
            116..=315 => Region::Common,
            316..=415 => Region::Domain,
            _ => Region::Rare,
        }
    }

    /// Number of ids in the region.
    pub const fn len(self) -> u32 {
        let (lo, hi) = self.range();
        hi - lo
    }

    /// Regions are never empty.
    pub const fn is_empty(self) -> bool {
        false
    }
}

const SPECIAL_NAMES: [&str; 16] = [
    "<s>", "</s>", ".", ",", "?", "!", ":", ";", "\"", "'", "(", ")", "-", "=", "+", "#",
];

const COMMON_STEMS: [&str; 20] = [
    "the", "of", "and", "to", "in", "is", "was", "for", "on", "that", "with", "as", "by", "are",
    "this", "from", "at", "or", "an", "be",
];

/// Render one token id as synthetic text.
pub fn render_token(token: u32) -> String {
    let token = token % VOCAB_SIZE as u32;
    match Region::of(token) {
        Region::Special => SPECIAL_NAMES[token as usize].to_string(),
        Region::Number => format!("{}", token - 16),
        Region::Common => {
            let idx = (token - 116) as usize;
            if idx < COMMON_STEMS.len() {
                COMMON_STEMS[idx].to_string()
            } else {
                format!("w{idx}")
            }
        }
        Region::Domain => format!("Entity{}", token - 316),
        Region::Rare => format!("x{}", token - 416),
    }
}

/// Render a token sequence as a synthetic sentence.
pub fn render_tokens(tokens: &[u32]) -> String {
    tokens
        .iter()
        .map(|&t| render_token(t))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_partition_the_vocab() {
        let mut covered = 0u32;
        for r in [
            Region::Special,
            Region::Number,
            Region::Common,
            Region::Domain,
            Region::Rare,
        ] {
            let (lo, hi) = r.range();
            assert_eq!(lo, covered, "gap before {r:?}");
            covered = hi;
            for t in lo..hi {
                assert_eq!(Region::of(t), r);
            }
        }
        assert_eq!(covered, VOCAB_SIZE as u32);
    }

    #[test]
    fn rendering_is_total_and_region_appropriate() {
        assert_eq!(render_token(0), "<s>");
        assert_eq!(render_token(16), "0");
        assert_eq!(render_token(25), "9");
        assert_eq!(render_token(116), "the");
        assert_eq!(render_token(316), "Entity0");
        assert_eq!(render_token(416), "x0");
        // Out-of-range ids wrap instead of panicking.
        let _ = render_token(100_000);
    }

    #[test]
    fn sentence_rendering() {
        let s = render_tokens(&[116, 316, 2]);
        assert_eq!(s, "the Entity0 .");
    }
}
