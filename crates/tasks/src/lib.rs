#![warn(missing_docs)]
//! # ft2-tasks
//!
//! Synthetic workload generation and outcome judging.
//!
//! The paper evaluates on SQuAD 2.0 and XTREME (question answering) and
//! GSM8K (math), plus four alternative datasets for the Fig. 3 bound-
//! transfer study. None of those corpora are available here, and the
//! experiments never consume dataset *semantics* — what matters is that
//! (a) each dataset induces its own token statistics (so per-dataset
//! activation bounds differ) and (b) a correct/incorrect oracle can be
//! automated. [`datasets`] provides seven generators with distinct
//! token-region mixes and length distributions; [`oracle`] implements the
//! §2.3 outcome classification on answer spans (masked-identical /
//! masked-semantic / SDC); [`vocab`] renders token ids as human-readable
//! synthetic text for the examples.

pub mod datasets;
pub mod oracle;
pub mod vocab;

pub use datasets::{generate_inputs, DatasetId, TaskInput, TaskType};
pub use oracle::{contains_subsequence, AnswerJudge, TaskSpec};
pub use vocab::{render_tokens, VOCAB_SIZE};
