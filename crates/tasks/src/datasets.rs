//! Synthetic dataset generators.
//!
//! Each generator mimics one of the paper's corpora at the level that
//! matters for the experiments: the token-region mix and the prompt-length
//! distribution. Evaluation datasets (SQuAD / XTREME / GSM8K) also fix the
//! *task type*, which sets the generation length and answer-span location.

use crate::vocab::Region;
use ft2_numeric::{Rng, Xoshiro256StarStar};

/// The seven datasets of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// SQuAD 2.0 — question answering (evaluation set).
    Squad,
    /// Google XTREME — multilingual QA (evaluation set).
    Xtreme,
    /// GSM8K — grade-school math (evaluation set).
    Gsm8k,
    /// Awesome ChatGPT Prompts (Fig. 3 alternative profiling set).
    ChatGptPrompts,
    /// TweetEval (Fig. 3 alternative).
    TweetEval,
    /// MBPP — Python programming problems (Fig. 3 alternative).
    Mbpp,
    /// OPUS-100 — translation pairs (Fig. 3 alternative).
    Opus100,
}

/// Task family, which fixes generation length and answer-span placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TaskType {
    /// Question answering: short answers early in the generation
    /// (60 generated tokens in the paper).
    Qa,
    /// Mathematical reasoning: long derivations with the answer at the end
    /// (180 generated tokens in the paper).
    Math,
}

impl DatasetId {
    /// The three evaluation datasets, in the paper's order.
    pub const EVALUATION: [DatasetId; 3] = [DatasetId::Squad, DatasetId::Xtreme, DatasetId::Gsm8k];

    /// The four alternative profiling datasets of Fig. 3.
    pub const ALTERNATIVES: [DatasetId; 4] = [
        DatasetId::ChatGptPrompts,
        DatasetId::TweetEval,
        DatasetId::Mbpp,
        DatasetId::Opus100,
    ];

    /// Display name matching the paper.
    pub const fn name(self) -> &'static str {
        match self {
            DatasetId::Squad => "SQuAD 2.0",
            DatasetId::Xtreme => "XTREME",
            DatasetId::Gsm8k => "GSM8K",
            DatasetId::ChatGptPrompts => "ChatGPT Prompts",
            DatasetId::TweetEval => "TweetEval",
            DatasetId::Mbpp => "MBPP",
            DatasetId::Opus100 => "OPUS-100",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<DatasetId> {
        match s.to_ascii_lowercase().replace([' ', '_'], "-").as_str() {
            "squad" | "squad-2.0" | "squad2" => Some(DatasetId::Squad),
            "xtreme" => Some(DatasetId::Xtreme),
            "gsm8k" => Some(DatasetId::Gsm8k),
            "chatgpt-prompts" | "chatgpt" => Some(DatasetId::ChatGptPrompts),
            "tweeteval" => Some(DatasetId::TweetEval),
            "mbpp" => Some(DatasetId::Mbpp),
            "opus-100" | "opus100" => Some(DatasetId::Opus100),
            _ => None,
        }
    }

    /// The task type this dataset drives when used for evaluation.
    pub const fn task_type(self) -> TaskType {
        match self {
            DatasetId::Gsm8k => TaskType::Math,
            _ => TaskType::Qa,
        }
    }

    /// Region mix: sampling weight per region
    /// (Special, Number, Common, Domain, Rare).
    fn region_weights(self) -> [f64; 5] {
        match self {
            // QA over encyclopedic text: entities + common words.
            DatasetId::Squad => [0.06, 0.04, 0.52, 0.34, 0.04],
            // Multilingual QA: heavy use of the rare/multilingual region.
            DatasetId::Xtreme => [0.06, 0.04, 0.28, 0.22, 0.40],
            // Math problems: digit-dominated.
            DatasetId::Gsm8k => [0.10, 0.52, 0.28, 0.06, 0.04],
            // Prompt collection: long common-word instructions.
            DatasetId::ChatGptPrompts => [0.08, 0.02, 0.74, 0.12, 0.04],
            // Tweets: short, informal, some rare tokens.
            DatasetId::TweetEval => [0.14, 0.06, 0.48, 0.10, 0.22],
            // Code: symbols + rare identifiers + numbers.
            DatasetId::Mbpp => [0.22, 0.16, 0.18, 0.08, 0.36],
            // Translation pairs: balanced common/rare.
            DatasetId::Opus100 => [0.06, 0.03, 0.41, 0.12, 0.38],
        }
    }

    /// Typical generation length when this dataset is used as a *profiling*
    /// corpus (scaled to the simulator). Short-output datasets (tweets,
    /// translations) exercise far fewer sequence positions than the QA/math
    /// evaluation tasks — the root cause of the Fig. 3 bound-transfer gap.
    pub fn typical_gen_tokens(self) -> usize {
        match self {
            DatasetId::Squad => 16,
            DatasetId::Xtreme => 14,
            DatasetId::Gsm8k => 36,
            DatasetId::ChatGptPrompts => 12,
            DatasetId::TweetEval => 6,
            DatasetId::Mbpp => 18,
            DatasetId::Opus100 => 8,
        }
    }

    /// Prompt length range (inclusive), scaled to the simulator models.
    fn length_range(self) -> (usize, usize) {
        match self {
            DatasetId::Squad => (12, 20),
            DatasetId::Xtreme => (10, 18),
            DatasetId::Gsm8k => (16, 28),
            DatasetId::ChatGptPrompts => (18, 30),
            DatasetId::TweetEval => (6, 12),
            DatasetId::Mbpp => (14, 24),
            DatasetId::Opus100 => (8, 16),
        }
    }
}

/// One generated task input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskInput {
    /// Input index within its dataset sample.
    pub id: usize,
    /// Prompt token ids.
    pub prompt: Vec<u32>,
}

fn sample_region(rng: &mut impl Rng, weights: &[f64; 5]) -> Region {
    let regions = [
        Region::Special,
        Region::Number,
        Region::Common,
        Region::Domain,
        Region::Rare,
    ];
    let total: f64 = weights.iter().sum();
    let mut pick = rng.f64() * total;
    for (r, w) in regions.iter().zip(weights) {
        if pick < *w {
            return *r;
        }
        pick -= w;
    }
    Region::Common
}

/// Generate `n` inputs for a dataset, deterministically from `seed`.
pub fn generate_inputs(dataset: DatasetId, n: usize, seed: u64) -> Vec<TaskInput> {
    let weights = dataset.region_weights();
    let (lo, hi) = dataset.length_range();
    (0..n)
        .map(|id| {
            let mut rng =
                Xoshiro256StarStar::for_stream(seed, &[dataset as u64 + 1, id as u64]);
            let len = lo + rng.index(hi - lo + 1);
            let mut prompt = Vec::with_capacity(len);
            // Start with a BOS-ish special token for stability.
            prompt.push(0u32);
            for _ in 1..len {
                let region = sample_region(&mut rng, &weights);
                let (rlo, rhi) = region.range();
                prompt.push(rng.range_u64(rlo as u64, rhi as u64) as u32);
            }
            TaskInput { id, prompt }
        })
        .collect()
}

/// Convenience: just the prompts.
pub fn generate_prompts(dataset: DatasetId, n: usize, seed: u64) -> Vec<Vec<u32>> {
    generate_inputs(dataset, n, seed)
        .into_iter()
        .map(|t| t.prompt)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::VOCAB_SIZE;

    #[test]
    fn generation_is_deterministic_and_in_vocab() {
        let a = generate_inputs(DatasetId::Squad, 10, 42);
        let b = generate_inputs(DatasetId::Squad, 10, 42);
        assert_eq!(a, b);
        for t in &a {
            assert!(t.prompt.len() >= 12 && t.prompt.len() <= 20);
            assert!(t.prompt.iter().all(|&x| (x as usize) < VOCAB_SIZE));
            assert_eq!(t.prompt[0], 0);
        }
        let c = generate_inputs(DatasetId::Squad, 10, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn datasets_have_distinct_token_statistics() {
        // GSM8K must be number-heavy; SQuAD entity-heavy; XTREME rare-heavy.
        let count_region = |ds: DatasetId, region: Region| -> f64 {
            let inputs = generate_inputs(ds, 50, 7);
            let total: usize = inputs.iter().map(|t| t.prompt.len()).sum();
            let hits: usize = inputs
                .iter()
                .flat_map(|t| &t.prompt)
                .filter(|&&tok| Region::of(tok) == region)
                .count();
            hits as f64 / total as f64
        };
        assert!(count_region(DatasetId::Gsm8k, Region::Number) > 0.35);
        assert!(count_region(DatasetId::Squad, Region::Number) < 0.10);
        assert!(count_region(DatasetId::Squad, Region::Domain) > 0.20);
        assert!(count_region(DatasetId::Xtreme, Region::Rare) > 0.25);
        assert!(count_region(DatasetId::ChatGptPrompts, Region::Rare) < 0.10);
    }

    #[test]
    fn task_types() {
        assert_eq!(DatasetId::Squad.task_type(), TaskType::Qa);
        assert_eq!(DatasetId::Xtreme.task_type(), TaskType::Qa);
        assert_eq!(DatasetId::Gsm8k.task_type(), TaskType::Math);
    }

    #[test]
    fn parse_roundtrip() {
        for ds in DatasetId::EVALUATION
            .iter()
            .chain(DatasetId::ALTERNATIVES.iter())
        {
            assert_eq!(DatasetId::parse(ds.name()), Some(*ds), "{}", ds.name());
        }
        assert_eq!(DatasetId::parse("imagenet"), None);
    }

    #[test]
    fn lengths_respect_ranges() {
        for ds in [DatasetId::TweetEval, DatasetId::ChatGptPrompts] {
            let (lo, hi) = ds.length_range();
            for t in generate_inputs(ds, 30, 1) {
                assert!(t.prompt.len() >= lo && t.prompt.len() <= hi);
            }
        }
    }
}
