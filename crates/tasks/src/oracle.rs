//! Outcome classification on answer spans (§2.3).
//!
//! The paper restricts evaluation to inputs every model answers correctly,
//! so the fault-free generation *is* the correct answer; the reference
//! answer span is extracted from it. A faulty output is:
//!
//! * **Masked (identical)** if it equals the reference token-for-token;
//! * **Masked (semantic)** if it differs but still *contains* the reference
//!   answer span — the automated version of "The number of people is 5"
//!   being equivalent to "There are 5 people";
//! * **SDC** otherwise (the answer is absent or mangled).

use crate::datasets::TaskType;
use ft2_fault::{Outcome, OutcomeJudge};

/// Where the answer span sits inside the generated tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskSpec {
    /// Task family.
    pub task: TaskType,
    /// Number of generated tokens per inference.
    pub gen_tokens: usize,
    /// Answer span `[start, end)` within the generation.
    pub answer_start: usize,
    /// Exclusive end of the answer span.
    pub answer_end: usize,
}

impl TaskSpec {
    /// The span conventions: QA answers appear early (the model answers,
    /// then elaborates); math answers appear at the end of the derivation.
    /// Mirrors the paper's output-length choices (answers land by token 50
    /// of 60 for QA, 150 of 180 for math).
    pub fn new(task: TaskType, gen_tokens: usize) -> TaskSpec {
        assert!(gen_tokens >= 8, "generation too short for an answer span");
        let (answer_start, answer_end) = match task {
            TaskType::Qa => {
                let start = 1;
                let len = (gen_tokens / 4).clamp(3, 8);
                (start, start + len)
            }
            TaskType::Math => {
                let len = (gen_tokens / 6).clamp(3, 10);
                let end = gen_tokens * 5 / 6;
                (end - len, end)
            }
        };
        TaskSpec {
            task,
            gen_tokens,
            answer_start,
            answer_end,
        }
    }

    /// Extract the reference answer span from a generation.
    pub fn answer<'a>(&self, tokens: &'a [u32]) -> &'a [u32] {
        let end = self.answer_end.min(tokens.len());
        let start = self.answer_start.min(end);
        &tokens[start..end]
    }

    /// The judge for this spec.
    pub fn judge(&self) -> AnswerJudge {
        AnswerJudge { spec: *self }
    }
}

/// Is `needle` a contiguous subsequence of `haystack`?
pub fn contains_subsequence(haystack: &[u32], needle: &[u32]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if needle.len() > haystack.len() {
        return false;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// The §2.3 answer-span judge.
#[derive(Clone, Copy, Debug)]
pub struct AnswerJudge {
    spec: TaskSpec,
}

impl OutcomeJudge for AnswerJudge {
    fn classify(&self, reference: &[u32], faulty: &[u32]) -> Outcome {
        if reference == faulty {
            return Outcome::MaskedIdentical;
        }
        let answer = self.spec.answer(reference);
        if contains_subsequence(faulty, answer) {
            Outcome::MaskedSemantic
        } else {
            Outcome::Sdc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qa_span_is_early_math_span_is_late() {
        let qa = TaskSpec::new(TaskType::Qa, 20);
        assert_eq!(qa.answer_start, 1);
        assert!(qa.answer_end <= 9);
        let math = TaskSpec::new(TaskType::Math, 60);
        assert!(math.answer_start > 30);
        assert!(math.answer_end <= 50);
        assert!(math.answer_end > math.answer_start);
    }

    #[test]
    fn subsequence_matcher() {
        assert!(contains_subsequence(&[1, 2, 3, 4], &[2, 3]));
        assert!(contains_subsequence(&[1, 2, 3, 4], &[1, 2, 3, 4]));
        assert!(contains_subsequence(&[1, 2, 3], &[]));
        assert!(!contains_subsequence(&[1, 2, 3], &[3, 2]));
        assert!(!contains_subsequence(&[1, 2], &[1, 2, 3]));
        assert!(!contains_subsequence(&[], &[1]));
    }

    #[test]
    fn judge_classifies_three_ways() {
        let spec = TaskSpec::new(TaskType::Qa, 12);
        let judge = spec.judge();
        let reference: Vec<u32> = (100..112).collect();
        // Identical.
        assert_eq!(
            judge.classify(&reference, &reference.clone()),
            Outcome::MaskedIdentical
        );
        // Different but answer span (tokens 1..4) shifted later: semantic.
        let answer = spec.answer(&reference).to_vec();
        let mut shifted = vec![7u32, 8, 9];
        shifted.extend_from_slice(&answer);
        shifted.extend_from_slice(&[200, 201]);
        assert_eq!(judge.classify(&reference, &shifted), Outcome::MaskedSemantic);
        // Answer destroyed: SDC.
        let garbage: Vec<u32> = (300..312).collect();
        assert_eq!(judge.classify(&reference, &garbage), Outcome::Sdc);
    }

    #[test]
    fn judge_handles_truncated_outputs() {
        let spec = TaskSpec::new(TaskType::Math, 24);
        let judge = spec.judge();
        let reference: Vec<u32> = (0..24).collect();
        // Short faulty output missing the (late) answer span: SDC.
        let short: Vec<u32> = (0..5).collect();
        assert_eq!(judge.classify(&reference, &short), Outcome::Sdc);
    }

    #[test]
    fn answer_extraction_clamps() {
        let spec = TaskSpec::new(TaskType::Math, 24);
        let short = [1u32, 2, 3];
        // Span lies past the slice: empty answer, no panic.
        assert!(spec.answer(&short).is_empty());
    }
}
