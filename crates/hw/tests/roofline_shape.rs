//! Shape tests for the roofline model against every published timing claim.

use ft2_hw::{CostModel, WorkloadShape, A100, GH200_H100};
use ft2_model::{model_zoo, ZooModel};
use proptest::prelude::*;

#[test]
fn per_model_latency_ordering_follows_parameter_count() {
    // Bigger models must take longer per inference on the same platform.
    let model = CostModel::new(A100);
    let t = |m: ZooModel| {
        model
            .generation_time(&WorkloadShape::from_spec(&m.spec()), 150, 60)
            .total_s()
    };
    assert!(t(ZooModel::Qwen2_7B) > t(ZooModel::Qwen2_1_5B));
    assert!(t(ZooModel::Opt6_7B) > t(ZooModel::Opt2_7B));
}

#[test]
fn overhead_is_worst_on_the_smallest_model() {
    // Fig. 14: OPT-2.7B has the worst relative protection overhead because
    // its per-step base time is smallest while the per-layer kernel cost is
    // roughly constant.
    let model = CostModel::new(A100);
    let overhead = |m: ZooModel| {
        model.protection_overhead(&WorkloadShape::from_spec(&m.spec()), 150, 60)
    };
    let worst = model_zoo()
        .iter()
        .map(|s| {
            (
                s.name().to_string(),
                model.protection_overhead(&WorkloadShape::from_spec(s), 150, 60),
            )
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    assert!(
        worst.0.contains("1.5B") || worst.0.contains("2.7B"),
        "worst overhead should be a small model, got {}",
        worst.0
    );
    assert!(overhead(ZooModel::Opt2_7B) > overhead(ZooModel::Opt6_7B));
}

proptest! {
    /// First-token share decreases as the number of generated tokens grows
    /// (more decode steps amortise one prefill).
    #[test]
    fn first_token_share_monotone_in_gen(extra in 1usize..200) {
        let model = CostModel::new(A100);
        let shape = WorkloadShape::from_spec(&ZooModel::Llama2_7B.spec());
        let short = model.generation_time(&shape, 150, 30).first_token_share();
        let long = model.generation_time(&shape, 150, 30 + extra).first_token_share();
        prop_assert!(long < short);
    }

    /// Prefill time grows with prompt length; decode-step time grows with
    /// context length.
    #[test]
    fn times_monotone_in_lengths(p1 in 16usize..256, dp in 1usize..256) {
        let model = CostModel::new(GH200_H100);
        let shape = WorkloadShape::from_spec(&ZooModel::Opt6_7B.spec());
        // At small prompts the prefill is bound by the constant weight
        // stream, so growth is only weak (>=); it becomes strict once
        // compute-bound.
        prop_assert!(model.prefill_time(&shape, p1 + dp) >= model.prefill_time(&shape, p1));
        prop_assert!(model.prefill_time(&shape, 2048) > model.prefill_time(&shape, 1024));
        prop_assert!(
            model.decode_step_time(&shape, p1 + dp) >= model.decode_step_time(&shape, p1)
        );
    }

    /// Profiling time is linear in the number of profiled inputs.
    #[test]
    fn profiling_is_linear(n in 1usize..10_000) {
        let model = CostModel::new(A100);
        let shape = WorkloadShape::from_spec(&ZooModel::GptJ6B.spec());
        let one = model.profiling_time(&shape, 1, 150, 60);
        let many = model.profiling_time(&shape, n, 150, 60);
        prop_assert!((many - one * n as f64).abs() < 1e-6 * many.max(1.0));
    }

    /// FP32 inference is never faster than FP16 on either platform.
    #[test]
    fn fp32_is_slower(prompt in 32usize..256) {
        for profile in [A100, GH200_H100] {
            let model = CostModel::new(profile);
            let mut shape = WorkloadShape::from_spec(&ZooModel::Llama2_7B.spec());
            let t16 = model.generation_time(&shape, prompt, 60).total_s();
            shape.bytes_per_element = 4;
            let t32 = model.generation_time(&shape, prompt, 60).total_s();
            prop_assert!(t32 >= t16);
        }
    }
}
