//! FLOP/byte accounting and the roofline time model.

use crate::profiles::HwProfile;
use ft2_model::zoo::ModelSpec;

/// The dimensions of a (paper-scale) transformer workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadShape {
    /// Hidden dimension.
    pub hidden: usize,
    /// Decoder blocks.
    pub blocks: usize,
    /// MLP intermediate dimension.
    pub ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Gated MLP (3 FFN matrices) vs classic (2).
    pub gated_mlp: bool,
    /// Bytes per stored element (2 = FP16, 4 = FP32).
    pub bytes_per_element: usize,
    /// Number of range-restricted (protected) layers per block under FT2.
    pub protected_per_block: usize,
}

impl WorkloadShape {
    /// Build from a zoo entry's paper-scale dimensions.
    pub fn from_spec(spec: &ModelSpec) -> WorkloadShape {
        let gated = matches!(spec.config.style, ft2_model::ArchStyle::LlamaStyle);
        WorkloadShape {
            hidden: spec.paper.hidden,
            blocks: spec.paper.blocks,
            ffn: spec.paper.ffn,
            vocab: spec.paper.vocab,
            gated_mlp: gated,
            bytes_per_element: 2,
            // FT2 critical layers: V/OUT/FC2 (3) or V/OUT/UP/DOWN (4).
            protected_per_block: if gated { 4 } else { 3 },
        }
    }

    /// Weight parameters inside the decoder blocks.
    pub fn block_params(&self) -> f64 {
        let h = self.hidden as f64;
        let f = self.ffn as f64;
        let mats = 4.0 * h * h + if self.gated_mlp { 3.0 * h * f } else { 2.0 * h * f };
        mats * self.blocks as f64
    }

    /// All streamed parameters (blocks + LM head + embedding read).
    pub fn total_params(&self) -> f64 {
        self.block_params() + (self.vocab * self.hidden) as f64
    }

    /// FLOPs to process one token at context length `ctx` (GEMMs count
    /// 2 FLOPs per MAC; attention adds the score/value products).
    pub fn flops_per_token(&self, ctx: usize) -> f64 {
        let h = self.hidden as f64;
        let gemm = 2.0 * self.block_params() + 2.0 * (self.vocab as f64) * h;
        let attn = self.blocks as f64 * 4.0 * h * ctx as f64;
        gemm + attn
    }

    /// FLOPs for a prefill over `prompt` tokens.
    pub fn prefill_flops(&self, prompt: usize) -> f64 {
        // Token t attends to t positions; sum over prompt.
        let h = self.hidden as f64;
        let gemm = (2.0 * self.block_params() + 2.0 * (self.vocab as f64) * h) * prompt as f64;
        let attn: f64 = self.blocks as f64 * 4.0 * h * (prompt as f64 * (prompt as f64 + 1.0) / 2.0);
        gemm + attn
    }

    /// Bytes of weights streamed per decode step.
    pub fn bytes_per_token(&self) -> f64 {
        self.total_params() * self.bytes_per_element as f64
    }

    /// Approximate kernel launches per decode step (linears + norms +
    /// attention ops per block, unfused eager-mode framework).
    pub fn kernels_per_token(&self) -> f64 {
        let per_block = if self.gated_mlp { 7.0 } else { 6.0 } + 8.0;
        per_block * self.blocks as f64 + 4.0
    }
}

/// Time split of one inference.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InferenceBreakdown {
    /// First-token (prefill) time, seconds.
    pub prefill_s: f64,
    /// All decode steps, seconds.
    pub decode_s: f64,
}

impl InferenceBreakdown {
    /// Total inference time.
    pub fn total_s(&self) -> f64 {
        self.prefill_s + self.decode_s
    }

    /// The Fig. 10 quantity: first-token share of total time.
    pub fn first_token_share(&self) -> f64 {
        self.prefill_s / self.total_s()
    }
}

/// The roofline cost model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    profile: HwProfile,
    /// Eager-mode framework inefficiency on top of the roofline (the
    /// paper's stack is unfused HuggingFace PyTorch; ~3x off roofline is
    /// typical and reproduces the §5.2.2 per-inference latencies).
    pub framework_factor: f64,
    /// Per-protected-layer cost of the fused clamp+nan_to_num kernel,
    /// seconds (launch dominated).
    pub protection_kernel_s: f64,
    /// Host-to-device link bandwidth, bytes/s (PCIe 4.0 x16 effective).
    /// A full restart re-stages every weight over this link; shard-level
    /// repair restores from an on-device golden copy at `mem_bw` instead —
    /// the gap is why the repair rung beats a restart.
    pub host_link_bw: f64,
}

impl CostModel {
    /// Model for a hardware profile with default calibration.
    pub fn new(profile: HwProfile) -> CostModel {
        CostModel {
            profile,
            framework_factor: 3.0,
            protection_kernel_s: 8e-6,
            host_link_bw: 25e9,
        }
    }

    /// The underlying hardware profile.
    pub fn profile(&self) -> &HwProfile {
        &self.profile
    }

    /// Prefill (first-token) time for a prompt.
    pub fn prefill_time(&self, shape: &WorkloadShape, prompt: usize) -> f64 {
        let flops = shape.prefill_flops(prompt);
        let compute = flops / self.profile.flops_for_width(shape.bytes_per_element);
        let bytes = shape.bytes_per_token(); // weights streamed once
        let memory = bytes / self.profile.mem_bw;
        let kernels = shape.kernels_per_token() * self.profile.kernel_overhead;
        (compute.max(memory) + kernels) * self.framework_factor
    }

    /// One decode step at context length `ctx`.
    pub fn decode_step_time(&self, shape: &WorkloadShape, ctx: usize) -> f64 {
        let flops = shape.flops_per_token(ctx);
        let compute = flops / self.profile.flops_for_width(shape.bytes_per_element);
        let memory = shape.bytes_per_token() / self.profile.mem_bw;
        let kernels = shape.kernels_per_token() * self.profile.kernel_overhead;
        (compute.max(memory) + kernels) * self.framework_factor
    }

    /// Full generation: prefill + `gen_tokens - 1` decode steps.
    pub fn generation_time(
        &self,
        shape: &WorkloadShape,
        prompt: usize,
        gen_tokens: usize,
    ) -> InferenceBreakdown {
        let prefill_s = self.prefill_time(shape, prompt);
        let mut decode_s = 0.0;
        for t in 1..gen_tokens {
            decode_s += self.decode_step_time(shape, prompt + t);
        }
        InferenceBreakdown { prefill_s, decode_s }
    }

    /// Extra time per generation step from FT2's protection taps: one fused
    /// clamp+nan kernel per protected layer plus the activation re-read.
    pub fn protection_time_per_step(&self, shape: &WorkloadShape) -> f64 {
        let layers = (shape.protected_per_block * shape.blocks) as f64;
        let avg_features = (2 * shape.hidden + 2 * shape.ffn) as f64 / 4.0;
        let bytes = avg_features * shape.bytes_per_element as f64 * 2.0;
        layers * (self.protection_kernel_s + bytes / self.profile.mem_bw)
    }

    /// FT2 runtime overhead as a fraction of unprotected generation time
    /// (the Fig. 14 quantity).
    pub fn protection_overhead(
        &self,
        shape: &WorkloadShape,
        prompt: usize,
        gen_tokens: usize,
    ) -> f64 {
        let base = self.generation_time(shape, prompt, gen_tokens).total_s();
        let extra = self.protection_time_per_step(shape) * gen_tokens as f64;
        extra / base
    }

    /// Cost of one token rollback at context length `ctx`: the KV truncate
    /// is free (a length reset), so a rollback re-pays the decode step plus
    /// the protection taps of the re-decode — which runs with escalated
    /// coverage (activations on), hence the extra activation-point kernels.
    pub fn rollback_time(&self, shape: &WorkloadShape, ctx: usize) -> f64 {
        let activation_points = if shape.gated_mlp { 2.0 } else { 1.0 };
        let escalation_extra =
            activation_points * shape.blocks as f64 * self.protection_kernel_s;
        self.decode_step_time(shape, ctx) + self.protection_time_per_step(shape) + escalation_extra
    }

    /// Recovery (rollback re-decode) overhead as a fraction of unprotected
    /// generation time, given the campaign-observed rollbacks per
    /// generation. Rollbacks are charged at the worst-case context (end of
    /// the generation), so this slightly over-states the true cost.
    pub fn recovery_overhead(
        &self,
        shape: &WorkloadShape,
        prompt: usize,
        gen_tokens: usize,
        rollbacks_per_generation: f64,
    ) -> f64 {
        let base = self.generation_time(shape, prompt, gen_tokens).total_s();
        let extra = self.rollback_time(shape, prompt + gen_tokens) * rollbacks_per_generation;
        extra / base
    }

    /// Time per decode step spent by the background integrity scrubber
    /// re-reading and checksumming `tiles` weight tiles of `tile_elems`
    /// elements each. The scrub is a streaming read (CRC table lookups are
    /// negligible next to the memory traffic) plus one kernel launch per
    /// step to drive it.
    pub fn scrub_time(&self, shape: &WorkloadShape, tiles: usize, tile_elems: usize) -> f64 {
        if tiles == 0 {
            return 0.0;
        }
        let bytes = (tiles * tile_elems * shape.bytes_per_element) as f64;
        self.profile.kernel_overhead + bytes / self.profile.mem_bw
    }

    /// Integrity-scrub overhead as a fraction of unprotected generation
    /// time, at `tiles` tiles verified per decode step.
    pub fn scrub_overhead(
        &self,
        shape: &WorkloadShape,
        prompt: usize,
        gen_tokens: usize,
        tiles: usize,
        tile_elems: usize,
    ) -> f64 {
        let base = self.generation_time(shape, prompt, gen_tokens).total_s();
        let extra = self.scrub_time(shape, tiles, tile_elems) * gen_tokens as f64;
        extra / base
    }

    /// Shard-level repair time: re-read and checksum one shard's weight
    /// slice (`1/shards` of the block weights) and restore corrupt tiles
    /// from the on-device golden copy — a verify read plus a restore write,
    /// both at device memory bandwidth.
    pub fn shard_repair_time(&self, shape: &WorkloadShape, shards: usize) -> f64 {
        let slice_bytes =
            shape.block_params() * shape.bytes_per_element as f64 / shards.max(1) as f64;
        self.profile.kernel_overhead + 2.0 * slice_bytes / self.profile.mem_bw
    }

    /// Degrade re-partition time: after evicting a dead shard, the block
    /// weights are re-sliced across the survivors — every surviving device
    /// re-reads its fresh slice from the replicated host copy, in parallel,
    /// each pulling `1/survivors` of the block weights over the host link.
    pub fn repartition_time(&self, shape: &WorkloadShape, survivors: usize) -> f64 {
        let slice_bytes =
            shape.block_params() * shape.bytes_per_element as f64 / survivors.max(1) as f64;
        self.profile.kernel_overhead + slice_bytes / self.host_link_bw
    }

    /// Full-restart time: the recovery baseline shard repair is measured
    /// against. Every weight is re-staged over the host link and the whole
    /// prompt is re-prefilled; all generated tokens so far are lost.
    pub fn full_restart_time(&self, shape: &WorkloadShape, prompt: usize) -> f64 {
        let weight_bytes = shape.total_params() * shape.bytes_per_element as f64;
        weight_bytes / self.host_link_bw + self.prefill_time(shape, prompt)
    }

    /// Cross-replica failover time for one in-flight request: the
    /// surviving replica re-prefills the prompt and replays the
    /// `tokens_done` already-accepted tokens as single-token steps (the
    /// bit-identity handoff shape — a joint replay would perturb the
    /// continuation). No weights move: the survivor is warm, which is why
    /// failing over beats restarting the dead replica and waiting.
    pub fn failover_time(&self, shape: &WorkloadShape, prompt: usize, tokens_done: usize) -> f64 {
        let mut t = self.prefill_time(shape, prompt);
        for j in 0..tokens_done {
            t += self.decode_step_time(shape, prompt + j);
        }
        t
    }

    /// Replica-rebuild time: CRC-verify every weight tile of the
    /// quarantined replica against the golden checksums (one streaming
    /// read at device bandwidth) and restore the corrupt fraction from
    /// the on-device golden copy (a read plus a write). Measured against
    /// [`CostModel::full_restart_time`], which re-stages every weight
    /// over the far slower host link — the gap is why
    /// quarantine→rebuild→rejoin beats a full restart.
    pub fn rebuild_time(&self, shape: &WorkloadShape, corrupt_fraction: f64) -> f64 {
        let weight_bytes = shape.total_params() * shape.bytes_per_element as f64;
        let verify = weight_bytes / self.profile.mem_bw;
        let restore = 2.0 * corrupt_fraction.clamp(0.0, 1.0) * weight_bytes / self.profile.mem_bw;
        self.profile.kernel_overhead + verify + restore
    }

    /// Offline bound-profiling time for `n_inputs` full generations
    /// (the Fig. 4 quantity), in seconds.
    pub fn profiling_time(
        &self,
        shape: &WorkloadShape,
        n_inputs: usize,
        prompt: usize,
        gen_tokens: usize,
    ) -> f64 {
        self.generation_time(shape, prompt, gen_tokens).total_s() * n_inputs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{A100, GH200_H100};
    use ft2_model::ZooModel;

    fn llama_shape() -> WorkloadShape {
        WorkloadShape::from_spec(&ZooModel::Llama2_7B.spec())
    }

    fn opt_shape() -> WorkloadShape {
        WorkloadShape::from_spec(&ZooModel::Opt6_7B.spec())
    }

    #[test]
    fn param_accounting_matches_published_sizes() {
        // Llama2-7B block params + head should be ~6.5B (embedding table
        // excluded from streaming count once).
        let s = llama_shape();
        let total = s.total_params();
        assert!(total > 6.0e9 && total < 7.2e9, "total {total:e}");
        let o = opt_shape();
        let t = o.total_params();
        assert!(t > 6.0e9 && t < 7.4e9, "opt {t:e}");
    }

    #[test]
    fn decode_is_memory_bound_prefill_compute_bound() {
        let model = CostModel::new(A100);
        let s = llama_shape();
        // Decode: memory term dominates compute term.
        let flops = s.flops_per_token(512);
        let compute = flops / A100.fp16_flops;
        let memory = s.bytes_per_token() / A100.mem_bw;
        assert!(memory > compute, "decode should be memory-bound");
        // Prefill with a long prompt: compute dominates.
        let pf_flops = s.prefill_flops(512);
        let pf_compute = pf_flops / A100.fp16_flops;
        assert!(pf_compute > memory, "prefill should be compute-bound");
        let _ = model;
    }

    #[test]
    fn per_inference_latency_matches_paper_range() {
        // §5.2.2: inference takes 1.35–6.4 s on A100 (60 QA tokens or 180
        // math tokens across the seven models).
        let model = CostModel::new(A100);
        let qa = model.generation_time(&opt_shape(), 150, 60).total_s();
        assert!(qa > 1.0 && qa < 7.0, "QA inference {qa}s");
        let math = model
            .generation_time(&llama_shape(), 80, 180)
            .total_s();
        assert!(math > 2.0 && math < 10.0, "math inference {math}s");
    }

    #[test]
    fn first_token_share_matches_fig10() {
        // Fig. 10: first token is 1.89–8.33% of QA time on A100 and
        // 0.6–2.66% for math.
        let model = CostModel::new(A100);
        let qa = model.generation_time(&opt_shape(), 150, 60);
        let share = qa.first_token_share();
        assert!(share > 0.01 && share < 0.10, "QA share {share}");
        let math = model.generation_time(&llama_shape(), 80, 180);
        let mshare = math.first_token_share();
        assert!(mshare < share, "math share must be smaller");
        assert!(mshare > 0.003 && mshare < 0.03, "math share {mshare}");
    }

    #[test]
    fn h100_is_faster_and_has_smaller_first_token_share() {
        let a = CostModel::new(A100);
        let h = CostModel::new(GH200_H100);
        let s = llama_shape();
        let ta = a.generation_time(&s, 150, 60);
        let th = h.generation_time(&s, 150, 60);
        assert!(th.total_s() < ta.total_s());
        assert!(th.first_token_share() <= ta.first_token_share() + 1e-9);
    }

    #[test]
    fn protection_overhead_matches_fig14_range() {
        // Fig. 14: 3.42% average, worst case 8.91% (OPT-2.7B).
        let model = CostModel::new(A100);
        let shapes: Vec<WorkloadShape> = ft2_model::model_zoo()
            .iter()
            .map(WorkloadShape::from_spec)
            .collect();
        let mut overheads = Vec::new();
        for s in &shapes {
            let o = model.protection_overhead(s, 150, 60);
            assert!(o > 0.005 && o < 0.12, "overhead {o}");
            overheads.push(o);
        }
        let avg = overheads.iter().sum::<f64>() / overheads.len() as f64;
        assert!(avg > 0.01 && avg < 0.08, "avg overhead {avg}");
    }

    #[test]
    fn shard_repair_beats_full_restart_on_every_zoo_shape() {
        let model = CostModel::new(A100);
        for spec in ft2_model::model_zoo() {
            let s = WorkloadShape::from_spec(&spec);
            for shards in [2usize, 4, 8] {
                let repair = model.shard_repair_time(&s, shards);
                let repart = model.repartition_time(&s, shards - 1);
                let restart = model.full_restart_time(&s, 150);
                assert!(repair > 0.0 && repair.is_finite());
                assert!(repart > 0.0 && repart.is_finite());
                assert!(
                    repair < restart,
                    "{}: repair {repair}s !< restart {restart}s at {shards} shards",
                    spec.name()
                );
                assert!(
                    repart < restart,
                    "{}: repartition {repart}s !< restart {restart}s",
                    spec.name()
                );
            }
            // More shards -> smaller slices -> cheaper repair.
            assert!(model.shard_repair_time(&s, 8) < model.shard_repair_time(&s, 2));
        }
    }

    #[test]
    fn replica_rebuild_and_failover_beat_full_restart_on_every_zoo_shape() {
        let model = CostModel::new(A100);
        for spec in ft2_model::model_zoo() {
            let s = WorkloadShape::from_spec(&spec);
            let restart = model.full_restart_time(&s, 150);
            for corrupt in [0.0, 0.01, 0.1] {
                let rebuild = model.rebuild_time(&s, corrupt);
                assert!(rebuild > 0.0 && rebuild.is_finite());
                assert!(
                    rebuild < restart,
                    "{}: rebuild {rebuild}s !< restart {restart}s at {corrupt} corrupt",
                    spec.name()
                );
            }
            // More corruption -> more restore writes -> slower rebuild.
            assert!(model.rebuild_time(&s, 0.1) > model.rebuild_time(&s, 0.0));
            for tokens_done in [0usize, 10, 30] {
                let failover = model.failover_time(&s, 150, tokens_done);
                assert!(failover > 0.0 && failover.is_finite());
                // A restart doesn't just restage weights and re-prefill:
                // it also lost the accepted tokens, which must be
                // re-decoded before the request is back where it was.
                // Failover replays them on a warm survivor instead.
                let restart_to_parity = restart
                    + (0..tokens_done)
                        .map(|j| model.decode_step_time(&s, 150 + j))
                        .sum::<f64>();
                assert!(
                    failover < restart_to_parity,
                    "{}: failover {failover}s !< restart-to-parity {restart_to_parity}s \
                     at {tokens_done} tokens",
                    spec.name()
                );
            }
            // Replaying more accepted tokens costs more.
            assert!(model.failover_time(&s, 150, 30) > model.failover_time(&s, 150, 0));
        }
    }

    #[test]
    fn rollback_costs_about_one_decode_step() {
        let model = CostModel::new(A100);
        let s = llama_shape();
        let step = model.decode_step_time(&s, 210);
        let rb = model.rollback_time(&s, 210);
        // Strictly more than a plain step (protection re-runs, escalated
        // coverage adds activation kernels), but within a small factor.
        assert!(rb > step);
        assert!(rb < 1.5 * step, "rollback {rb} vs step {step}");
    }

    #[test]
    fn recovery_overhead_scales_with_rollbacks_and_stays_small() {
        let model = CostModel::new(A100);
        let s = opt_shape();
        let none = model.recovery_overhead(&s, 150, 60, 0.0);
        assert_eq!(none, 0.0);
        let one = model.recovery_overhead(&s, 150, 60, 1.0);
        let three = model.recovery_overhead(&s, 150, 60, 3.0);
        assert!(one > 0.0);
        assert!((three / one - 3.0).abs() < 1e-9, "linear in rollbacks");
        // One rollback in a 60-token generation costs roughly one extra
        // step: ~2% of the inference.
        assert!(one > 0.005 && one < 0.05, "overhead {one}");
    }

    #[test]
    fn scrub_time_scales_with_tiles_and_stays_cheap() {
        let model = CostModel::new(A100);
        let s = opt_shape();
        assert_eq!(model.scrub_time(&s, 0, 256), 0.0);
        let one = model.scrub_time(&s, 8, 256);
        let four = model.scrub_time(&s, 32, 256);
        assert!(one > 0.0);
        assert!(four > one);
        // A modest scrub rate must be a sub-percent tax on generation.
        let o = model.scrub_overhead(&s, 150, 60, 8, 256);
        assert!(o > 0.0 && o < 0.01, "scrub overhead {o}");
        // Scrub stays far below one decode step: it reads KBs, not GBs.
        assert!(four < 0.1 * model.decode_step_time(&s, 210));
    }

    #[test]
    fn profiling_time_matches_fig4_scale() {
        // Fig. 4: 4.7–217.5 hours on A100 with 20% of training data.
        let model = CostModel::new(A100);
        // SQuAD: 26,000 profiling inputs, 60 tokens.
        let squad_h = model.profiling_time(&opt_shape(), 26_000, 150, 60) / 3600.0;
        assert!(squad_h > 5.0 && squad_h < 120.0, "squad {squad_h}h");
        // GSM8K: ~1,495 inputs, 180 tokens.
        let gsm_h = model.profiling_time(&llama_shape(), 1_495, 80, 180) / 3600.0;
        assert!(gsm_h > 1.0 && gsm_h < 20.0, "gsm {gsm_h}h");
        // H100 is faster.
        let h = CostModel::new(GH200_H100);
        let squad_h100 = h.profiling_time(&opt_shape(), 26_000, 150, 60) / 3600.0;
        assert!(squad_h100 < squad_h);
    }
}
