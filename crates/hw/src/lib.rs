#![warn(missing_docs)]
//! # ft2-hw
//!
//! An analytic roofline cost model for LLM inference on the paper's two
//! hardware platforms (NVIDIA A100 and H100/GH200), plus the FLOP/byte
//! accounting needed to regenerate the timing figures at *paper scale*:
//!
//! * **Fig. 4** — offline bound-profiling hours for 20% of each training
//!   set on A100 and H100;
//! * **Fig. 10** — the percentage of inference time spent generating the
//!   first token (prefill) for QA and Math workloads;
//! * **Fig. 14** — FT2's protection overhead, modelled as extra memory
//!   traffic over the protected layers' outputs;
//! * **Fig. 16** — A100 vs H100 latency context for the hardware
//!   sensitivity study.
//!
//! The simulator cannot reproduce GPU wall-clock, but these quantities are
//! roofline-dominated: prefill is compute-bound (large GEMMs), decode is
//! memory-bound (weight streaming), and a clamp pass is one extra read+
//! write of each protected activation. A calibrated roofline model
//! therefore reproduces the *shape* of every timing figure by
//! construction, which is the claim this reproduction makes.

pub mod cost;
pub mod profiles;

pub use cost::{CostModel, InferenceBreakdown, WorkloadShape};
pub use profiles::{HwProfile, A100, GH200_H100};
