//! Hardware profiles.
//!
//! Effective (achievable, not peak-datasheet) throughput numbers for dense
//! FP16 GEMM and HBM streaming, which is what LLM inference sees in
//! practice. The efficiency factors fold in kernel launch overheads and
//! non-GEMM layers, calibrated so that decode throughput lands in the
//! ballpark practitioners report for 7B FP16 models on these parts
//! (~30-60 tok/s on A100, ~1.5-2x that on H100).

/// One hardware platform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HwProfile {
    /// Display name.
    pub name: &'static str,
    /// Achievable dense FP16 tensor-core throughput, FLOP/s.
    pub fp16_flops: f64,
    /// Achievable FP32 throughput, FLOP/s (for the §5.2.3 dtype study).
    pub fp32_flops: f64,
    /// Achievable HBM bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Fixed per-kernel launch cost, seconds (bounds small-batch decode).
    pub kernel_overhead: f64,
}

/// NVIDIA A100 80GB (Ampere): 312 TFLOPS FP16 peak, 2.0 TB/s HBM2e.
/// Effective factors ~0.55 for GEMM and ~0.75 for streaming.
pub const A100: HwProfile = HwProfile {
    name: "A100",
    fp16_flops: 170e12,
    fp32_flops: 17e12,
    mem_bw: 1.5e12,
    kernel_overhead: 4e-6,
};

/// NVIDIA H100 as found in the GH200 Grace Hopper superchip: 989 TFLOPS
/// FP16 peak (sparsity off), 3.35 TB/s HBM3.
pub const GH200_H100: HwProfile = HwProfile {
    name: "H100",
    fp16_flops: 550e12,
    fp32_flops: 45e12,
    mem_bw: 2.8e12,
    kernel_overhead: 3e-6,
};

impl HwProfile {
    /// Both paper platforms, A100 first.
    pub const ALL: [HwProfile; 2] = [A100, GH200_H100];

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<HwProfile> {
        match s.to_ascii_lowercase().as_str() {
            "a100" => Some(A100),
            "h100" | "gh200" => Some(GH200_H100),
            _ => None,
        }
    }

    /// Achievable FLOP/s for a given element width (2 = FP16, 4 = FP32).
    pub fn flops_for_width(&self, bytes_per_element: usize) -> f64 {
        match bytes_per_element {
            2 => self.fp16_flops,
            _ => self.fp32_flops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn h100_is_faster_than_a100_everywhere() {
        assert!(GH200_H100.fp16_flops > A100.fp16_flops);
        assert!(GH200_H100.mem_bw > A100.mem_bw);
        assert!(GH200_H100.fp32_flops > A100.fp32_flops);
    }

    #[test]
    fn parse_names() {
        assert_eq!(HwProfile::parse("a100").unwrap().name, "A100");
        assert_eq!(HwProfile::parse("H100").unwrap().name, "H100");
        assert_eq!(HwProfile::parse("gh200").unwrap().name, "H100");
        assert!(HwProfile::parse("tpu").is_none());
    }

    #[test]
    fn width_selection() {
        assert_eq!(A100.flops_for_width(2), A100.fp16_flops);
        assert_eq!(A100.flops_for_width(4), A100.fp32_flops);
    }
}
