//! General matrix multiplication kernels.
//!
//! The inference engine spends >94% of its FLOPs in linear layers (the paper
//! makes the same observation for Llama2-7B, which is why its fault model
//! targets them). We provide:
//!
//! * [`matmul_naive`] — the obviously-correct triple loop, used as the test
//!   oracle.
//! * [`matmul`] — an ikj-ordered, row-parallel kernel: for each row of A,
//!   accumulate `A[i][k] * B[k][:]` into the output row. Streaming both B
//!   rows and C rows sequentially autovectorises well and avoids the
//!   column-stride pathology of the naive ijk order.
//! * [`matmul_transb`] — `A × Bᵀ` with B given as `[n, k]` (the natural
//!   layout for weight matrices), built on a B-panel-blocked micro-kernel:
//!   four rows of Bᵀ are streamed against one row of A at a time so each
//!   A load feeds four accumulator chains. On x86-64 with AVX2+FMA the
//!   panel kernel runs on 256-bit fused multiply-adds (runtime-detected);
//!   everywhere else an 8-lane portable kernel autovectorises.
//!
//! # Kernel policy: IEEE fidelity vs fault-free speed
//!
//! The repo's premise is that injected faults propagate exactly as they
//! would through a GPU kernel: `0 × NaN = NaN`, `0 × Inf = NaN`, and a
//! non-finite term anywhere in a dot product poisons the sum. A zero-skip
//! ("`if a == 0.0 { continue; }`") breaks that contract — it masks a
//! NaN/Inf sitting in the other operand, silently deflating SDC/DUE rates.
//!
//! [`KernelPolicy`] makes the trade-off explicit and per-call:
//!
//! * [`KernelPolicy::Strict`] (the **default**) accumulates every term.
//!   Non-finite values land in the output exactly where the
//!   [`matmul_naive`] oracle puts them.
//! * [`KernelPolicy::Fast`] may skip terms whose multiplier is exactly
//!   `0.0`. On finite data this is unobservable (adding `±0.0` to a sum
//!   started at `+0.0` changes nothing), so Fast and Strict agree
//!   bit-for-bit on any fault-free tensor — which is why fault-free
//!   *reference* generations may use Fast while every fault-injection
//!   trial must run Strict.
//!
//! [`matmul_transb`] never had a zero-skip: both policies are the same
//! IEEE-faithful kernel there, and the policy parameter exists for API
//! symmetry only.

use crate::matrix::Matrix;
use ft2_parallel::parallel_ranges;

/// Minimum `m × n × k` multiply-accumulate count before a kernel goes
/// parallel. Two considerations set it this high: (a) single-token decode
/// steps on the simulator's small models must stay on one thread — the
/// parallelism there is across campaign trials; (b) `ft2-parallel` spawns
/// scoped threads per call (no persistent pool at this layer), which costs
/// tens of microseconds — about the time the SIMD panel kernel needs for
/// four million MACs single-threaded.
const PARALLEL_THRESHOLD: usize = 4 * 1024 * 1024;

/// Per-call choice between IEEE-faithful accumulation and fault-free-only
/// shortcuts. See the module docs for the contract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelPolicy {
    /// Accumulate every term: non-finite inputs propagate exactly as in
    /// [`matmul_naive`] (`0 × NaN = NaN`). The default, and mandatory
    /// inside fault-injection trials.
    #[default]
    Strict,
    /// Zero-multiplier terms may be skipped. Bit-identical to `Strict` on
    /// finite data; masks NaN/Inf behind exact zeros. Only valid for
    /// tensors known fault-free (e.g. reference generations).
    Fast,
}

/// Reference triple-loop GEMM: `A[m,k] × B[k,n] -> C[m,n]`.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.get(i, p) * b.get(p, j);
            }
            c.set(i, j, acc);
        }
    }
    c
}

#[inline]
fn row_accumulate(out_row: &mut [f32], a_row: &[f32], b: &Matrix, policy: KernelPolicy) {
    for (p, &aval) in a_row.iter().enumerate() {
        // Fault-free-only shortcut: `0.0 * b` contributes `±0.0` to a sum
        // started at `+0.0` — unobservable on finite data, but it would
        // mask a NaN/Inf in B. Strict mode therefore never skips.
        if policy == KernelPolicy::Fast && aval == 0.0 {
            continue;
        }
        let b_row = b.row(p);
        for (o, &bval) in out_row.iter_mut().zip(b_row) {
            *o += aval * bval;
        }
    }
}

/// Cache-friendly GEMM: `A[m,k] × B[k,n] -> C[m,n]`, parallel over rows of A
/// when the output is large enough. Strict policy — see [`matmul_with`].
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    matmul_with(a, b, KernelPolicy::Strict)
}

/// [`matmul`] with an explicit [`KernelPolicy`].
pub fn matmul_with(a: &Matrix, b: &Matrix, policy: KernelPolicy) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    let (m, n) = (a.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    if m * n * a.cols() >= PARALLEL_THRESHOLD && m > 1 {
        let c_ptr = SendMutPtr(c.as_mut_slice().as_mut_ptr());
        parallel_ranges(m, |_, rows| {
            for i in rows {
                // SAFETY: ranges are disjoint; each task touches only its
                // own rows of C.
                let out_row =
                    unsafe { std::slice::from_raw_parts_mut(c_ptr.get().add(i * n), n) };
                row_accumulate(out_row, a.row(i), b, policy);
            }
        });
    } else {
        for i in 0..m {
            let row = unsafe {
                // SAFETY: sequential unique access.
                std::slice::from_raw_parts_mut(c.as_mut_slice().as_mut_ptr().add(i * n), n)
            };
            row_accumulate(row, a.row(i), b, policy);
        }
    }
    c
}

/// Dot product with 4-way unrolled accumulation; LLVM vectorises this
/// reliably. Every term participates (no zero-skip), so non-finite values
/// poison the result exactly as in a sequential sum.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut acc = (s0 + s1) + (s2 + s3);
    for j in chunks * 4..a.len() {
        acc += a[j] * b[j];
    }
    acc
}

/// Portable 4-row panel kernel: dot products of one A row against four
/// rows of Bᵀ, with 8 independent accumulator lanes per row so the
/// autovectoriser can keep the FMA pipes busy. Reduction order is fixed
/// (pairwise over the 8 lanes), independent of target features.
fn dot4_portable(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    const L: usize = 8;
    let k = a.len();
    let mut acc = [[0.0f32; L]; 4];
    let mut j = 0;
    while j + L <= k {
        for l in 0..L {
            let av = a[j + l];
            acc[0][l] += av * b0[j + l];
            acc[1][l] += av * b1[j + l];
            acc[2][l] += av * b2[j + l];
            acc[3][l] += av * b3[j + l];
        }
        j += L;
    }
    let mut out = [0.0f32; 4];
    for (o, lanes) in out.iter_mut().zip(&acc) {
        *o = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
            + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    }
    while j < k {
        out[0] += a[j] * b0[j];
        out[1] += a[j] * b1[j];
        out[2] += a[j] * b2[j];
        out[3] += a[j] * b3[j];
        j += 1;
    }
    out
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Runtime-dispatched AVX2+FMA panel kernel. Rust's default x86-64
    //! target baseline is SSE2, so without this the decode GEMV runs at a
    //! fraction of the machine's FLOP rate. The kernel keeps every term
    //! (no zero-skip): NaN/Inf propagation matches the oracle, only the
    //! *rounding* of finite sums differs from the scalar path (FMA skips
    //! the intermediate product rounding) — within the tolerance every
    //! equivalence test pins.
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Is the AVX2+FMA path available (and not disabled via `FT2_NO_SIMD`)?
    pub fn enabled() -> bool {
        static HAVE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *HAVE.get_or_init(|| {
            std::env::var_os("FT2_NO_SIMD").is_none()
                && is_x86_feature_detected!("avx2")
                && is_x86_feature_detected!("fma")
        })
    }

    /// Horizontal sum of a 256-bit register (fixed reduction order).
    ///
    /// # Safety
    /// Caller must have verified AVX support (implied by the AVX2+FMA
    /// check in [`enabled`]).
    #[inline]
    #[target_feature(enable = "avx")]
    unsafe fn hsum256(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps(v, 1);
        let lo = _mm256_castps256_ps128(v);
        let s = _mm_add_ps(lo, hi);
        let shuf = _mm_movehdup_ps(s);
        let sums = _mm_add_ps(s, shuf);
        let shuf2 = _mm_movehl_ps(shuf, sums);
        _mm_cvtss_f32(_mm_add_ss(sums, shuf2))
    }

    /// Four dot products sharing each A load, two 256-bit FMA chains per
    /// row (hides the FMA latency at k ≥ 16).
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support (see [`enabled`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
        let k = a.len();
        let ap = a.as_ptr();
        let bp = [b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr()];
        let mut acc0 = [_mm256_setzero_ps(); 4];
        let mut acc1 = [_mm256_setzero_ps(); 4];
        let mut j = 0usize;
        while j + 16 <= k {
            let av0 = _mm256_loadu_ps(ap.add(j));
            let av1 = _mm256_loadu_ps(ap.add(j + 8));
            for r in 0..4 {
                acc0[r] = _mm256_fmadd_ps(av0, _mm256_loadu_ps(bp[r].add(j)), acc0[r]);
                acc1[r] = _mm256_fmadd_ps(av1, _mm256_loadu_ps(bp[r].add(j + 8)), acc1[r]);
            }
            j += 16;
        }
        if j + 8 <= k {
            let av0 = _mm256_loadu_ps(ap.add(j));
            for r in 0..4 {
                acc0[r] = _mm256_fmadd_ps(av0, _mm256_loadu_ps(bp[r].add(j)), acc0[r]);
            }
            j += 8;
        }
        let mut out = [0.0f32; 4];
        for r in 0..4 {
            out[r] = hsum256(_mm256_add_ps(acc0[r], acc1[r]));
        }
        while j < k {
            out[0] += a[j] * b0[j];
            out[1] += a[j] * b1[j];
            out[2] += a[j] * b2[j];
            out[3] += a[j] * b3[j];
            j += 1;
        }
        out
    }
}

/// Best-available 4-row panel dot product.
#[inline]
fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    #[cfg(target_arch = "x86_64")]
    if x86::enabled() {
        // SAFETY: feature support verified at runtime by `x86::enabled`.
        return unsafe { x86::dot4(a, b0, b1, b2, b3) };
    }
    dot4_portable(a, b0, b1, b2, b3)
}

/// One output row of `A × Bᵀ`: `out_row[j] = dot(a_row, b_t.row(j))`,
/// computed in panels of four B rows.
#[inline]
fn transb_row(a_row: &[f32], b_t: &Matrix, out_row: &mut [f32]) {
    let n = b_t.rows();
    debug_assert_eq!(out_row.len(), n);
    let mut j = 0;
    while j + 4 <= n {
        let r = dot4(a_row, b_t.row(j), b_t.row(j + 1), b_t.row(j + 2), b_t.row(j + 3));
        out_row[j..j + 4].copy_from_slice(&r);
        j += 4;
    }
    while j < n {
        out_row[j] = dot(a_row, b_t.row(j));
        j += 1;
    }
}

/// `A[m,k] × Bᵀ` with `B` stored as `[n, k]` (row per output feature):
/// `C[i][j] = dot(A.row(i), B.row(j))`. Parallel over rows of A.
///
/// This kernel has no zero-skip: every term of every dot product
/// participates under both policies, so NaN/Inf placement always matches
/// [`matmul_naive`].
pub fn matmul_transb(a: &Matrix, b_t: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(0, 0);
    matmul_transb_into(a, b_t, &mut c);
    c
}

/// [`matmul_transb`] writing into a caller-owned output matrix, reusing
/// its allocation (the decode hot path calls this once per linear layer
/// per token; reuse removes the per-step allocation storm).
pub fn matmul_transb_into(a: &Matrix, b_t: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols(), b_t.cols(), "matmul_transb shape mismatch");
    let (m, n) = (a.rows(), b_t.rows());
    c.reset(m, n);
    if m * n * a.cols() >= PARALLEL_THRESHOLD && m > 1 {
        let c_ptr = SendMutPtr(c.as_mut_slice().as_mut_ptr());
        parallel_ranges(m, |_, rows| {
            for i in rows {
                // SAFETY: ranges are disjoint; row-disjoint writes.
                let out_row =
                    unsafe { std::slice::from_raw_parts_mut(c_ptr.get().add(i * n), n) };
                transb_row(a.row(i), b_t, out_row);
            }
        });
    } else {
        for i in 0..m {
            let row = unsafe {
                // SAFETY: sequential unique access.
                std::slice::from_raw_parts_mut(c.as_mut_slice().as_mut_ptr().add(i * n), n)
            };
            transb_row(a.row(i), b_t, row);
        }
    }
}

/// Batch-aware `A × Bᵀ`: the same per-element math as
/// [`matmul_transb_into`] — each output element is the identical
/// [`dot4`]/[`dot`] call with the identical reduction order, so every
/// output **row is bit-identical** to the row-major kernel's — but the
/// loops are reordered *panel-major*: each 4-row weight panel of `Bᵀ` is
/// loaded once and amortised over all rows of `A` while it sits in L1/L2.
///
/// For a continuous-batching decode step (a handful of activation rows
/// against a large weight matrix) the weight matrix dominates memory
/// traffic; the row-major kernel streams it `m` times, this kernel once.
/// The AVX2+FMA [`dot4`] micro-kernel is reused unchanged, so the SIMD
/// path gets the same amortisation.
///
/// Single-row inputs and products big enough for the row-parallel schedule
/// delegate to [`matmul_transb_into`] (bit-identical either way).
pub fn matmul_transb_batch(a: &Matrix, b_t: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(0, 0);
    matmul_transb_batch_into(a, b_t, &mut c);
    c
}

/// [`matmul_transb_batch`] writing into a caller-owned output matrix.
pub fn matmul_transb_batch_into(a: &Matrix, b_t: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols(), b_t.cols(), "matmul_transb shape mismatch");
    let (m, n) = (a.rows(), b_t.rows());
    if m <= 1 || m * n * a.cols() >= PARALLEL_THRESHOLD {
        matmul_transb_into(a, b_t, c);
        return;
    }
    c.reset(m, n);
    let cs = c.as_mut_slice();
    let mut j = 0;
    while j + 4 <= n {
        let (b0, b1, b2, b3) = (b_t.row(j), b_t.row(j + 1), b_t.row(j + 2), b_t.row(j + 3));
        for i in 0..m {
            let r = dot4(a.row(i), b0, b1, b2, b3);
            cs[i * n + j..i * n + j + 4].copy_from_slice(&r);
        }
        j += 4;
    }
    while j < n {
        let bj = b_t.row(j);
        for i in 0..m {
            cs[i * n + j] = dot(a.row(i), bj);
        }
        j += 1;
    }
}

struct SendMutPtr(*mut f32);
// SAFETY: the wrapper moves a raw pointer into pool tasks that each write a
// distinct row range of C; no element is touched by two tasks.
unsafe impl Send for SendMutPtr {}
// SAFETY: shared access only reads the pointer value; row-disjoint writes
// as above.
unsafe impl Sync for SendMutPtr {}
impl SendMutPtr {
    fn get(&self) -> *mut f32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_numeric::{Rng, Xoshiro256StarStar};

    fn random_matrix(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.normal() as f32)
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
        assert_eq!(matmul_naive(&a, &b), c);
    }

    #[test]
    fn matmul_matches_naive_random() {
        let mut rng = Xoshiro256StarStar::new(17);
        for &(m, k, n) in &[(1usize, 8usize, 5usize), (7, 16, 9), (33, 64, 17)] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let slow = matmul_naive(&a, &b);
            for policy in [KernelPolicy::Strict, KernelPolicy::Fast] {
                let fast = matmul_with(&a, &b, policy);
                assert!(fast.max_abs_diff(&slow) < 1e-4, "mismatch {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        let mut rng = Xoshiro256StarStar::new(18);
        // Big enough to cross PARALLEL_THRESHOLD.
        let a = random_matrix(&mut rng, 192, 160, );
        let b = random_matrix(&mut rng, 160, 160);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-3);
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        let mut rng = Xoshiro256StarStar::new(19);
        for &(m, k, n) in &[(3usize, 10usize, 4usize), (64, 96, 64), (1, 64, 512), (5, 13, 7)] {
            let a = random_matrix(&mut rng, m, k);
            let bt = random_matrix(&mut rng, n, k);
            let direct = matmul_transb(&a, &bt);
            let via_transpose = matmul_naive(&a, &bt.transpose());
            assert!(
                direct.max_abs_diff(&via_transpose) < 1e-3,
                "mismatch {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn transb_parallel_path_matches_naive() {
        let mut rng = Xoshiro256StarStar::new(21);
        let a = random_matrix(&mut rng, 192, 160);
        let bt = random_matrix(&mut rng, 160, 160);
        let direct = matmul_transb(&a, &bt);
        let via_transpose = matmul_naive(&a, &bt.transpose());
        assert!(direct.max_abs_diff(&via_transpose) < 1e-3);
    }

    #[test]
    fn transb_into_reuses_buffer_and_matches() {
        let mut rng = Xoshiro256StarStar::new(22);
        let mut out = Matrix::zeros(9, 9); // wrong shape on purpose
        for _ in 0..3 {
            let a = random_matrix(&mut rng, 4, 24);
            let bt = random_matrix(&mut rng, 11, 24);
            matmul_transb_into(&a, &bt, &mut out);
            assert_eq!(out.rows(), 4);
            assert_eq!(out.cols(), 11);
            assert!(out.max_abs_diff(&matmul_transb(&a, &bt)) == 0.0);
        }
    }

    /// The serving contract: the panel-major batch kernel must be
    /// *bit-identical* to the row-major kernel on every row — batched
    /// decode steps only match single-sequence generations because each
    /// output element is the exact same `dot4`/`dot` reduction.
    #[test]
    fn batch_kernel_is_bit_identical_to_row_major() {
        let mut rng = Xoshiro256StarStar::new(77);
        for &(m, k, n) in &[
            (2usize, 24usize, 16usize),
            (3, 13, 7),   // remainder columns (n % 4 != 0)
            (4, 64, 33),  // remainder + odd k
            (8, 96, 64),  // serving batch against a square-ish weight
            (16, 17, 5),
        ] {
            let a = random_matrix(&mut rng, m, k);
            let bt = random_matrix(&mut rng, n, k);
            let row_major = matmul_transb(&a, &bt);
            let batch = matmul_transb_batch(&a, &bt);
            assert_eq!(batch, row_major, "bitwise divergence at {m}x{k}x{n}");
        }
    }

    #[test]
    fn batch_kernel_delegates_for_single_row_and_large_products() {
        let mut rng = Xoshiro256StarStar::new(78);
        // m == 1: the decode GEMV path.
        let a1 = random_matrix(&mut rng, 1, 48);
        let bt1 = random_matrix(&mut rng, 19, 48);
        assert_eq!(matmul_transb_batch(&a1, &bt1), matmul_transb(&a1, &bt1));
        // Crosses PARALLEL_THRESHOLD: delegates to the row-parallel kernel.
        let a2 = random_matrix(&mut rng, 192, 160);
        let bt2 = random_matrix(&mut rng, 160, 160);
        assert_eq!(matmul_transb_batch(&a2, &bt2), matmul_transb(&a2, &bt2));
    }

    #[test]
    fn batch_kernel_propagates_nonfinite_like_naive() {
        let mut rng = Xoshiro256StarStar::new(79);
        let a = random_matrix(&mut rng, 4, 24);
        let mut bt = random_matrix(&mut rng, 11, 24);
        bt.set(1, 2, f32::NAN);
        bt.set(10, 0, f32::INFINITY);
        let got = matmul_transb_batch(&a, &bt);
        let oracle = matmul_naive(&a, &bt.transpose());
        for i in 0..4 {
            for j in 0..11 {
                assert_eq!(got.get(i, j).is_nan(), oracle.get(i, j).is_nan());
                assert_eq!(got.get(i, j).is_finite(), oracle.get(i, j).is_finite());
            }
        }
    }

    #[test]
    fn batch_into_reuses_buffer_and_matches() {
        let mut rng = Xoshiro256StarStar::new(80);
        let mut out = Matrix::zeros(3, 3); // wrong shape on purpose
        for _ in 0..3 {
            let a = random_matrix(&mut rng, 5, 24);
            let bt = random_matrix(&mut rng, 11, 24);
            matmul_transb_batch_into(&a, &bt, &mut out);
            assert_eq!(out, matmul_transb(&a, &bt));
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Xoshiro256StarStar::new(20);
        let a = random_matrix(&mut rng, 5, 5);
        let id = Matrix::from_fn(5, 5, |r, c| if r == c { 1.0 } else { 0.0 });
        assert!(matmul(&a, &id).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&id, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn dot_unrolled_matches_fold() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| (13 - i) as f32).collect();
        let expect: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - expect).abs() < 1e-4);
    }

    #[test]
    fn panel_kernel_matches_dot() {
        let mut rng = Xoshiro256StarStar::new(23);
        for k in [1usize, 3, 7, 8, 15, 16, 17, 31, 32, 64, 100] {
            let a: Vec<f32> = (0..k).map(|_| rng.normal() as f32).collect();
            let bs: Vec<Vec<f32>> = (0..4)
                .map(|_| (0..k).map(|_| rng.normal() as f32).collect())
                .collect();
            let got = dot4_portable(&a, &bs[0], &bs[1], &bs[2], &bs[3]);
            for r in 0..4 {
                let want = dot(&a, &bs[r]);
                assert!(
                    (got[r] - want).abs() < 1e-3 * want.abs().max(1.0),
                    "portable k={k} row {r}: {} vs {}",
                    got[r],
                    want
                );
            }
            #[cfg(target_arch = "x86_64")]
            if x86::enabled() {
                // SAFETY: feature support verified.
                let simd = unsafe { x86::dot4(&a, &bs[0], &bs[1], &bs[2], &bs[3]) };
                for r in 0..4 {
                    let want = dot(&a, &bs[r]);
                    assert!(
                        (simd[r] - want).abs() < 1e-3 * want.abs().max(1.0),
                        "simd k={k} row {r}: {} vs {}",
                        simd[r],
                        want
                    );
                }
            }
        }
    }

    /// The satellite regression: non-finite values in B must propagate
    /// through `matmul` exactly as through the naive oracle — on the
    /// serial path, the parallel path, and through `matmul_transb`.
    #[test]
    fn strict_matmul_propagates_nonfinite_like_naive() {
        let mut rng = Xoshiro256StarStar::new(41);
        // Serial (small) and parallel (crosses PARALLEL_THRESHOLD) shapes.
        for &(m, k, n) in &[(4usize, 16usize, 8usize), (192, 160, 160)] {
            // A with planted zeros so the old zero-skip would trigger.
            let a = Matrix::from_fn(m, k, |_, c| {
                if c % 3 == 0 {
                    0.0
                } else {
                    rng.normal() as f32
                }
            });
            let mut b = random_matrix(&mut rng, k, n);
            // Non-finite B entries *only* in rows multiplied by zero.
            b.set(0, 1, f32::NAN);
            b.set(0, n - 1, f32::INFINITY);
            b.set(3 % k, 0, f32::NEG_INFINITY);
            let strict = matmul_with(&a, &b, KernelPolicy::Strict);
            let oracle = matmul_naive(&a, &b);
            for i in 0..m {
                for j in 0..n {
                    let (s, o) = (strict.get(i, j), oracle.get(i, j));
                    assert_eq!(
                        s.is_nan(),
                        o.is_nan(),
                        "NaN placement diverges at ({i},{j}): strict={s} oracle={o} ({m}x{k}x{n})"
                    );
                    assert_eq!(s.is_finite(), o.is_finite(), "finiteness diverges at ({i},{j})");
                }
            }
            // The fast path masks them — the documented divergence.
            let fast = matmul_with(&a, &b, KernelPolicy::Fast);
            assert!(
                !fast.row(0).iter().any(|v| v.is_nan()),
                "fast path unexpectedly propagated a zero-multiplied NaN"
            );
        }
    }

    #[test]
    fn transb_propagates_nonfinite_like_naive() {
        let mut rng = Xoshiro256StarStar::new(42);
        for &(m, k, n) in &[(1usize, 64usize, 12usize), (3, 24, 7)] {
            let a = random_matrix(&mut rng, m, k);
            let mut bt = random_matrix(&mut rng, n, k);
            bt.set(1, 2, f32::NAN);
            bt.set(n - 1, 0, f32::INFINITY);
            let got = matmul_transb(&a, &bt);
            let oracle = matmul_naive(&a, &bt.transpose());
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(got.get(i, j).is_nan(), oracle.get(i, j).is_nan());
                    assert_eq!(got.get(i, j).is_finite(), oracle.get(i, j).is_finite());
                }
            }
        }
    }

    #[test]
    fn fast_equals_strict_on_finite_data() {
        // The contract that lets references run Fast: on fault-free
        // tensors the two policies are bit-identical.
        let mut rng = Xoshiro256StarStar::new(43);
        let a = Matrix::from_fn(6, 24, |_, c| {
            if c % 4 == 0 {
                0.0
            } else {
                rng.normal() as f32
            }
        });
        let b = random_matrix(&mut rng, 24, 10);
        let strict = matmul_with(&a, &b, KernelPolicy::Strict);
        let fast = matmul_with(&a, &b, KernelPolicy::Fast);
        assert_eq!(strict, fast);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        matmul(&a, &b);
    }
}
