//! General matrix multiplication kernels.
//!
//! The inference engine spends >94% of its FLOPs in linear layers (the paper
//! makes the same observation for Llama2-7B, which is why its fault model
//! targets them). We provide:
//!
//! * [`matmul_naive`] — the obviously-correct triple loop, used as the test
//!   oracle.
//! * [`matmul`] — an ikj-ordered, row-parallel kernel: for each row of A,
//!   accumulate `A[i][k] * B[k][:]` into the output row. Streaming both B
//!   rows and C rows sequentially autovectorises well and avoids the
//!   column-stride pathology of the naive ijk order.
//! * [`matmul_transb`] — `A × Bᵀ` where B is given as `[n, k]`. This is the
//!   natural layout for weight matrices (`[out_features, in_features]`) and
//!   for attention scores (`Q × Kᵀ` with K cached row-per-token).

use crate::matrix::Matrix;
use ft2_parallel::parallel_for;

/// Minimum number of output elements before a kernel goes parallel. Tuned
/// so single-token decode steps on the simulator's small models stay on one
/// thread (the parallelism there is across campaign trials instead).
const PARALLEL_THRESHOLD: usize = 64 * 1024;

/// Reference triple-loop GEMM: `A[m,k] × B[k,n] -> C[m,n]`.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.get(i, p) * b.get(p, j);
            }
            c.set(i, j, acc);
        }
    }
    c
}

#[inline]
fn row_accumulate(out_row: &mut [f32], a_row: &[f32], b: &Matrix) {
    for (p, &aval) in a_row.iter().enumerate() {
        if aval == 0.0 {
            continue;
        }
        let b_row = b.row(p);
        for (o, &bval) in out_row.iter_mut().zip(b_row) {
            *o += aval * bval;
        }
    }
}

/// Cache-friendly GEMM: `A[m,k] × B[k,n] -> C[m,n]`, parallel over rows of A
/// when the output is large enough.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    let (m, n) = (a.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    if m * n * a.cols() >= PARALLEL_THRESHOLD && m > 1 {
        let c_ptr = SendMutPtr(c.as_mut_slice().as_mut_ptr());
        parallel_for(m, |i| {
            // SAFETY: each task touches only row i of C, rows are disjoint.
            let out_row =
                unsafe { std::slice::from_raw_parts_mut(c_ptr.get().add(i * n), n) };
            row_accumulate(out_row, a.row(i), b);
        });
    } else {
        for i in 0..m {
            let row = unsafe {
                // SAFETY: sequential unique access.
                std::slice::from_raw_parts_mut(c.as_mut_slice().as_mut_ptr().add(i * n), n)
            };
            row_accumulate(row, a.row(i), b);
        }
    }
    c
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // 4-way unrolled accumulation; LLVM vectorises this reliably.
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut acc = (s0 + s1) + (s2 + s3);
    for j in chunks * 4..a.len() {
        acc += a[j] * b[j];
    }
    acc
}

/// `A[m,k] × Bᵀ` with `B` stored as `[n, k]` (row per output feature):
/// `C[i][j] = dot(A.row(i), B.row(j))`. Parallel over rows of A.
pub fn matmul_transb(a: &Matrix, b_t: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b_t.cols(), "matmul_transb shape mismatch");
    let (m, n) = (a.rows(), b_t.rows());
    let mut c = Matrix::zeros(m, n);
    if m * n * a.cols() >= PARALLEL_THRESHOLD && m > 1 {
        let c_ptr = SendMutPtr(c.as_mut_slice().as_mut_ptr());
        parallel_for(m, |i| {
            let a_row = a.row(i);
            // SAFETY: row-disjoint writes.
            let out_row =
                unsafe { std::slice::from_raw_parts_mut(c_ptr.get().add(i * n), n) };
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = dot(a_row, b_t.row(j));
            }
        });
    } else {
        for i in 0..m {
            let a_row = a.row(i);
            for j in 0..n {
                let v = dot(a_row, b_t.row(j));
                c.set(i, j, v);
            }
        }
    }
    c
}

struct SendMutPtr(*mut f32);
unsafe impl Send for SendMutPtr {}
unsafe impl Sync for SendMutPtr {}
impl SendMutPtr {
    fn get(&self) -> *mut f32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_numeric::{Rng, Xoshiro256StarStar};

    fn random_matrix(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.normal() as f32)
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
        assert_eq!(matmul_naive(&a, &b), c);
    }

    #[test]
    fn matmul_matches_naive_random() {
        let mut rng = Xoshiro256StarStar::new(17);
        for &(m, k, n) in &[(1usize, 8usize, 5usize), (7, 16, 9), (33, 64, 17)] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            assert!(fast.max_abs_diff(&slow) < 1e-4, "mismatch {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        let mut rng = Xoshiro256StarStar::new(18);
        // Big enough to cross PARALLEL_THRESHOLD.
        let a = random_matrix(&mut rng, 96, 128);
        let b = random_matrix(&mut rng, 128, 96);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-3);
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        let mut rng = Xoshiro256StarStar::new(19);
        for &(m, k, n) in &[(3usize, 10usize, 4usize), (64, 96, 64)] {
            let a = random_matrix(&mut rng, m, k);
            let bt = random_matrix(&mut rng, n, k);
            let direct = matmul_transb(&a, &bt);
            let via_transpose = matmul_naive(&a, &bt.transpose());
            assert!(direct.max_abs_diff(&via_transpose) < 1e-3);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Xoshiro256StarStar::new(20);
        let a = random_matrix(&mut rng, 5, 5);
        let id = Matrix::from_fn(5, 5, |r, c| if r == c { 1.0 } else { 0.0 });
        assert!(matmul(&a, &id).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&id, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn dot_unrolled_matches_fold() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| (13 - i) as f32).collect();
        let expect: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - expect).abs() < 1e-4);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        matmul(&a, &b);
    }
}
