#![warn(missing_docs)]
//! # ft2-tensor
//!
//! A small, CPU-parallel tensor library purpose-built for the FT2
//! reproduction's transformer inference engine.
//!
//! Design choices:
//!
//! * Values are carried as `f32` (the accumulator precision of GPU FP16
//!   GEMM pipelines); *storage precision* is modelled by explicitly
//!   quantising through [`ft2_numeric::F16`] / bf16 grids at the points
//!   where a real FP16 model would store tensors (weights at load time,
//!   linear-layer outputs after each kernel). Fault injection then corrupts
//!   the narrow *stored* representation, matching the paper's fault model.
//! * Matrices are dense row-major [`Matrix`]; weights are stored
//!   `[out_features, in_features]` so GEMM reads both operands
//!   sequentially ([`gemm::matmul_transb`]).
//! * Kernels parallelise over rows with `ft2-parallel` above a size
//!   threshold; below it they run sequentially to keep single-token decode
//!   latency low.

pub mod abft;
pub mod gemm;
pub mod matrix;
pub mod ops;
pub mod seam;

pub use abft::{checked_matmul_transb, AbftOutcome, CheckedProduct};
pub use gemm::{
    dot, matmul, matmul_naive, matmul_transb, matmul_transb_batch, matmul_transb_batch_into,
    matmul_transb_into, matmul_with, KernelPolicy,
};
pub use matrix::{DType, Matrix};
pub use seam::{matmul_transb_cols_f64, reduce_seam_into};
pub use ops::{
    add_bias_inplace, add_inplace, argmax, gelu_inplace, layer_norm, relu_inplace, rms_norm,
    scale_inplace, silu_inplace, softmax_rows,
};
