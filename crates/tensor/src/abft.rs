//! Algorithm-based fault tolerance (ABFT) for GEMM — the related-work
//! alternative to range restriction (§6 cites ABFT transformer protection
//! [37, 38, 40]).
//!
//! Classic Huang–Abraham checksums: for `C = A × Bᵀ`, an extra *checksum
//! row* `(Σᵢ Aᵢ) × Bᵀ` is computed alongside the product. Any single
//! corrupted element of `C` breaks exactly one column equality
//! `Σᵢ C[i][j] = S[j]`, which both **detects** the fault and **locates**
//! its column; recomputing the single dot product for the damaged column
//! entries **corrects** it. The price is one extra GEMV per GEMM plus the
//! verification sums — cheap for large `m`, but unlike range restriction
//! it must run on *every* layer to give coverage, which is the "high
//! reliability but high overhead" trade-off the paper contrasts FT2
//! against.

use crate::gemm::matmul_transb;
use crate::matrix::Matrix;

/// Verification outcome of a checksummed GEMM.
#[derive(Clone, Debug, PartialEq)]
pub enum AbftOutcome {
    /// All column equalities hold within tolerance.
    Clean,
    /// Mismatching columns were found (and corrected if requested).
    Corrupted {
        /// Columns whose checksum equality failed.
        columns: Vec<usize>,
        /// Number of individual elements that were recomputed.
        corrected: usize,
    },
}

/// A GEMM result carrying its ABFT checksum metadata.
#[derive(Clone, Debug)]
pub struct CheckedProduct {
    /// The product `A × Bᵀ`.
    pub c: Matrix,
    /// The checksum row `(Σᵢ Aᵢ) × Bᵀ`, length = output features.
    pub checksum: Vec<f32>,
}

/// Relative tolerance for checksum verification. FP16/FP32 accumulation
/// reorders additions, so equality is approximate; single bit flips in
/// exponent bits exceed this by orders of magnitude, while benign rounding
/// stays well inside.
pub const ABFT_REL_TOL: f32 = 1e-3;

/// Compute `A × Bᵀ` together with its column checksums.
pub fn checked_matmul_transb(a: &Matrix, b_t: &Matrix) -> CheckedProduct {
    let c = matmul_transb(a, b_t);
    // Checksum input row: sum of A's rows.
    let mut sum_row = vec![0.0f32; a.cols()];
    for r in 0..a.rows() {
        for (s, &v) in sum_row.iter_mut().zip(a.row(r)) {
            *s += v;
        }
    }
    let sum_m = Matrix::from_vec(1, a.cols(), sum_row);
    let checksum_m = matmul_transb(&sum_m, b_t);
    CheckedProduct {
        c,
        checksum: checksum_m.row(0).to_vec(),
    }
}

impl CheckedProduct {
    /// Verify the column equalities; with `(a, b_t)` available, recompute
    /// and correct every element of each mismatching column.
    pub fn verify_and_correct(&mut self, a: &Matrix, b_t: &Matrix) -> AbftOutcome {
        let mut bad_columns = Vec::new();
        for j in 0..self.c.cols() {
            let col_sum: f32 = (0..self.c.rows()).map(|i| self.c.get(i, j)).sum();
            let expect = self.checksum[j];
            let scale = expect.abs().max(col_sum.abs()).max(1.0);
            if !col_sum.is_finite() || (col_sum - expect).abs() > ABFT_REL_TOL * scale {
                bad_columns.push(j);
            }
        }
        if bad_columns.is_empty() {
            return AbftOutcome::Clean;
        }
        let mut corrected = 0;
        for &j in &bad_columns {
            let w_row = b_t.row(j);
            for i in 0..self.c.rows() {
                let mut acc = 0.0f32;
                for (x, w) in a.row(i).iter().zip(w_row) {
                    acc += x * w;
                }
                if self.c.get(i, j) != acc {
                    self.c.set(i, j, acc);
                    corrected += 1;
                }
            }
        }
        AbftOutcome::Corrupted {
            columns: bad_columns,
            corrected,
        }
    }

    /// Detection-only verification (no inputs needed, no correction).
    pub fn verify(&self) -> AbftOutcome {
        let mut bad_columns = Vec::new();
        for j in 0..self.c.cols() {
            let col_sum: f32 = (0..self.c.rows()).map(|i| self.c.get(i, j)).sum();
            let expect = self.checksum[j];
            let scale = expect.abs().max(col_sum.abs()).max(1.0);
            if !col_sum.is_finite() || (col_sum - expect).abs() > ABFT_REL_TOL * scale {
                bad_columns.push(j);
            }
        }
        if bad_columns.is_empty() {
            AbftOutcome::Clean
        } else {
            AbftOutcome::Corrupted {
                columns: bad_columns,
                corrected: 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_numeric::bits::flip_bit_f32;
    use ft2_numeric::{Rng, Xoshiro256StarStar};

    fn random_pair(m: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = Xoshiro256StarStar::new(seed);
        let a = Matrix::from_fn(m, k, |_, _| rng.normal() as f32 * 0.5);
        let bt = Matrix::from_fn(n, k, |_, _| rng.normal() as f32 * 0.5);
        (a, bt)
    }

    #[test]
    fn clean_product_verifies_clean() {
        let (a, bt) = random_pair(12, 16, 10, 1);
        let checked = checked_matmul_transb(&a, &bt);
        assert_eq!(checked.verify(), AbftOutcome::Clean);
        // And the product matches the plain kernel.
        let plain = matmul_transb(&a, &bt);
        assert!(checked.c.max_abs_diff(&plain) < 1e-6);
    }

    #[test]
    fn exponent_flip_is_detected_located_and_corrected() {
        let (a, bt) = random_pair(8, 12, 9, 2);
        let mut checked = checked_matmul_transb(&a, &bt);
        let clean = checked.c.clone();
        // Corrupt one element with a high-exponent-bit flip.
        let before = checked.c.get(3, 4);
        checked.c.set(3, 4, flip_bit_f32(before, 30));
        match checked.verify() {
            AbftOutcome::Corrupted { ref columns, .. } => assert_eq!(columns, &vec![4]),
            other => panic!("fault not detected: {other:?}"),
        }
        let outcome = checked.verify_and_correct(&a, &bt);
        match outcome {
            AbftOutcome::Corrupted { columns, corrected } => {
                assert_eq!(columns, vec![4]);
                assert!(corrected >= 1);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(checked.c.max_abs_diff(&clean) < 1e-5);
        assert_eq!(checked.verify(), AbftOutcome::Clean);
    }

    #[test]
    fn nan_corruption_is_detected() {
        let (a, bt) = random_pair(6, 8, 7, 3);
        let mut checked = checked_matmul_transb(&a, &bt);
        checked.c.set(0, 0, f32::NAN);
        assert!(matches!(checked.verify(), AbftOutcome::Corrupted { .. }));
        checked.verify_and_correct(&a, &bt);
        assert!(!checked.c.has_nan());
    }

    #[test]
    fn small_mantissa_flips_below_tolerance_may_pass() {
        // ABFT with a relative tolerance cannot see perturbations below it;
        // this is the detection-granularity trade-off (range restriction
        // has the same blind spot for in-bound faults).
        let (a, bt) = random_pair(6, 8, 7, 4);
        let mut checked = checked_matmul_transb(&a, &bt);
        let before = checked.c.get(2, 2);
        checked.c.set(2, 2, flip_bit_f32(before, 0)); // LSB mantissa
        // Either Clean (below tolerance) or a detection of column 2 —
        // never a false alarm on another column.
        match checked.verify() {
            AbftOutcome::Clean => {}
            AbftOutcome::Corrupted { columns, .. } => assert_eq!(columns, vec![2]),
        }
    }

    #[test]
    fn multiple_faults_in_distinct_columns_are_all_found() {
        let (a, bt) = random_pair(10, 12, 8, 5);
        let mut checked = checked_matmul_transb(&a, &bt);
        let clean = checked.c.clone();
        for &(i, j) in &[(1usize, 0usize), (4, 3), (9, 7)] {
            let v = checked.c.get(i, j);
            checked.c.set(i, j, flip_bit_f32(v, 29));
        }
        match checked.verify_and_correct(&a, &bt) {
            AbftOutcome::Corrupted { columns, .. } => {
                assert_eq!(columns, vec![0, 3, 7]);
            }
            other => panic!("{other:?}"),
        }
        assert!(checked.c.max_abs_diff(&clean) < 1e-5);
    }
}
