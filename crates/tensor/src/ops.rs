//! Elementwise and normalisation kernels for transformer inference.
//!
//! Note on fault propagation: these kernels use plain IEEE-754 `f32`
//! arithmetic with no special-casing of non-finite inputs, so a NaN or huge
//! value introduced by fault injection propagates exactly as it would
//! through a GPU kernel (e.g. one NaN in a softmax row poisons the whole
//! row — the mechanism behind the paper's Take-away #2).

use crate::matrix::Matrix;

/// Numerically-stable row-wise softmax, in place.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        // A zero/NaN sum (all -inf, or NaN contamination) yields NaN weights,
        // matching real softmax behaviour under corruption.
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// LayerNorm over each row: `gamma * (x - mean) / sqrt(var + eps) + beta`.
pub fn layer_norm(m: &mut Matrix, gamma: &[f32], beta: &[f32], eps: f32) {
    let cols = m.cols();
    assert_eq!(gamma.len(), cols);
    assert_eq!(beta.len(), cols);
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let mean = row.iter().sum::<f32>() / cols as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for (v, (&g, &b)) in row.iter_mut().zip(gamma.iter().zip(beta)) {
            *v = g * (*v - mean) * inv + b;
        }
    }
}

/// RMSNorm over each row: `gamma * x / sqrt(mean(x²) + eps)` (Llama-style).
pub fn rms_norm(m: &mut Matrix, gamma: &[f32], eps: f32) {
    let cols = m.cols();
    assert_eq!(gamma.len(), cols);
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let ms = row.iter().map(|v| v * v).sum::<f32>() / cols as f32;
        let inv = 1.0 / (ms + eps).sqrt();
        for (v, &g) in row.iter_mut().zip(gamma) {
            *v = g * *v * inv;
        }
    }
}

/// ReLU in place.
pub fn relu_inplace(m: &mut Matrix) {
    for v in m.as_mut_slice() {
        // max(0, v); NaN propagates (NaN.max(0) is 0 in Rust, so branch
        // explicitly to keep NaN, as IEEE maxNum on GPUs is not what torch
        // relu does — torch relu keeps NaN).
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// GELU (tanh approximation) in place.
pub fn gelu_inplace(m: &mut Matrix) {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    for v in m.as_mut_slice() {
        let x = *v;
        *v = 0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh());
    }
}

/// SiLU / swish (`x * sigmoid(x)`) in place.
pub fn silu_inplace(m: &mut Matrix) {
    for v in m.as_mut_slice() {
        let x = *v;
        *v = x / (1.0 + (-x).exp());
    }
}

/// Elementwise `a += b` (residual connection).
pub fn add_inplace(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

/// Add a bias row vector to every row.
pub fn add_bias_inplace(m: &mut Matrix, bias: &[f32]) {
    assert_eq!(m.cols(), bias.len());
    for r in 0..m.rows() {
        for (v, &b) in m.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Multiply every element by a scalar.
pub fn scale_inplace(m: &mut Matrix, s: f32) {
    for v in m.as_mut_slice() {
        *v *= s;
    }
}

/// Elementwise product `a *= b` (gated MLPs).
pub fn mul_inplace(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x *= y;
    }
}

/// Index of the maximum element of a slice; NaNs are skipped so a corrupted
/// logit vector still yields a deterministic (if wrong) token. Returns 0 for
/// all-NaN input.
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in xs.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32, tol: f32) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        softmax_rows(&mut m);
        for r in 0..2 {
            let sum: f32 = m.row(r).iter().sum();
            assert!(close(sum, 1.0, 1e-6));
            assert!(m.row(r).iter().all(|&v| v > 0.0));
        }
        // Largest logit gets the largest weight.
        assert!(m.get(0, 2) > m.get(0, 1));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = Matrix::from_vec(1, 3, vec![1000.0, 1001.0, 1002.0]);
        softmax_rows(&mut a);
        let mut b = Matrix::from_vec(1, 3, vec![0.0, 1.0, 2.0]);
        softmax_rows(&mut b);
        assert!(a.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn softmax_nan_poisons_row() {
        let mut m = Matrix::from_vec(1, 3, vec![0.0, f32::NAN, 1.0]);
        softmax_rows(&mut m);
        assert!(m.row(0).iter().all(|v| v.is_nan()));
    }

    #[test]
    fn softmax_saturates_on_huge_value() {
        // A fault-injected huge logit makes the softmax one-hot: the scaling
        // mechanism that renders K/Q faults non-critical (§4.1.1).
        let mut m = Matrix::from_vec(1, 3, vec![0.0, 60000.0, 1.0]);
        softmax_rows(&mut m);
        assert!(close(m.get(0, 1), 1.0, 1e-6));
        assert!(m.get(0, 0) < 1e-12);
    }

    #[test]
    fn layer_norm_standardises() {
        let mut m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let gamma = vec![1.0; 4];
        let beta = vec![0.0; 4];
        layer_norm(&mut m, &gamma, &beta, 1e-5);
        let mean: f32 = m.row(0).iter().sum::<f32>() / 4.0;
        let var: f32 = m.row(0).iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(close(mean, 0.0, 1e-5));
        assert!(close(var, 1.0, 1e-3));
    }

    #[test]
    fn rms_norm_unit_rms() {
        let mut m = Matrix::from_vec(1, 4, vec![2.0, -2.0, 2.0, -2.0]);
        let gamma = vec![1.0; 4];
        rms_norm(&mut m, &gamma, 1e-6);
        let ms: f32 = m.row(0).iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!(close(ms, 1.0, 1e-4));
    }

    #[test]
    fn activations() {
        let mut m = Matrix::from_vec(1, 3, vec![-2.0, 0.0, 2.0]);
        relu_inplace(&mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0]);

        let mut g = Matrix::from_vec(1, 3, vec![-2.0, 0.0, 2.0]);
        gelu_inplace(&mut g);
        assert!(close(g.get(0, 1), 0.0, 1e-6));
        assert!(close(g.get(0, 2), 1.9546, 1e-3));
        assert!(close(g.get(0, 0), -0.0454, 1e-3));

        let mut s = Matrix::from_vec(1, 3, vec![-2.0, 0.0, 2.0]);
        silu_inplace(&mut s);
        assert!(close(s.get(0, 1), 0.0, 1e-6));
        assert!(close(s.get(0, 2), 1.7616, 1e-3));
    }

    #[test]
    fn relu_keeps_nan() {
        let mut m = Matrix::from_vec(1, 2, vec![f32::NAN, -1.0]);
        relu_inplace(&mut m);
        assert!(m.get(0, 0).is_nan());
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn activation_squashes_huge_negative_but_passes_huge_positive() {
        // The magnitude-reduction mechanism of Take-away #4: activations kill
        // large negative faulty values; large positive ones survive but the
        // next (critical, protected) layer clips their products.
        let mut m = Matrix::from_vec(1, 2, vec![-60000.0, 60000.0]);
        silu_inplace(&mut m);
        assert_eq!(m.get(0, 0), 0.0);
        assert!(m.get(0, 1) > 59000.0);
    }

    #[test]
    fn residual_add_and_bias() {
        let mut a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![10.0, 20.0, 30.0, 40.0]);
        add_inplace(&mut a, &b);
        assert_eq!(a.as_slice(), &[11.0, 22.0, 33.0, 44.0]);
        add_bias_inplace(&mut a, &[1.0, -1.0]);
        assert_eq!(a.as_slice(), &[12.0, 21.0, 34.0, 43.0]);
        scale_inplace(&mut a, 0.5);
        assert_eq!(a.as_slice(), &[6.0, 10.5, 17.0, 21.5]);
    }

    #[test]
    fn elementwise_mul() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![2.0, 0.5, -1.0]);
        mul_inplace(&mut a, &b);
        assert_eq!(a.as_slice(), &[2.0, 1.0, -3.0]);
    }

    #[test]
    fn argmax_behaviour() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[f32::NAN, 1.0, 0.5]), 1);
        assert_eq!(argmax(&[f32::NAN, f32::NAN]), 0);
        assert_eq!(argmax(&[-1.0, -2.0]), 0);
    }
}
