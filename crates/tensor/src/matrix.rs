//! Dense row-major matrices with explicit storage-precision quantisation.

use ft2_numeric::{Bf16, FloatFormat, F16};

/// Storage precision of a tensor. Values are always *carried* as `f32`;
/// `DType` controls the grid they are rounded to when stored, and the bit
/// format faults are injected into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DType {
    /// IEEE binary16 storage (the paper's default).
    F16,
    /// IEEE binary32 storage (the paper's §5.2.3 case study).
    F32,
    /// bfloat16 storage (extension).
    Bf16,
}

impl DType {
    /// The corresponding bit-level format for fault injection.
    pub const fn format(self) -> FloatFormat {
        match self {
            DType::F16 => FloatFormat::F16,
            DType::F32 => FloatFormat::F32,
            DType::Bf16 => FloatFormat::Bf16,
        }
    }

    /// Round one value to this storage grid.
    #[inline]
    pub fn quantize(self, v: f32) -> f32 {
        match self {
            DType::F16 => F16::from_f32(v).to_f32(),
            DType::F32 => v,
            DType::Bf16 => Bf16::from_f32(v).to_f32(),
        }
    }

    /// Short lowercase name used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            DType::F16 => "fp16",
            DType::F32 => "fp32",
            DType::Bf16 => "bf16",
        }
    }
}

/// A dense row-major `rows × cols` matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix (the natural seed for `reset`-style reuse).
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major data vector. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Set element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Element at flattened row-major index `i` (used by stored-state fault
    /// injection and integrity scrubbing, which address tensors linearly).
    #[inline]
    pub fn get_flat(&self, i: usize) -> f32 {
        self.data[i]
    }

    /// Set the element at flattened row-major index `i`.
    #[inline]
    pub fn set_flat(&mut self, i: usize, v: f32) {
        self.data[i] = v;
    }

    /// The whole backing slice, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The whole backing slice, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// A new matrix containing rows `lo..hi`.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.rows);
        Matrix {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }

    /// Append the rows of `other` (same column count) to this matrix.
    pub fn append_rows(&mut self, other: &Matrix) {
        assert_eq!(self.cols, other.cols, "column mismatch in append_rows");
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Drop all rows past `rows`, keeping the leading prefix — the inverse
    /// of [`Matrix::append_rows`] (KV-cache rollback restores a snapshot by
    /// truncating back to the snapshotted length).
    pub fn truncate_rows(&mut self, rows: usize) {
        assert!(rows <= self.rows, "cannot truncate {} rows to {rows}", self.rows);
        self.data.truncate(rows * self.cols);
        self.rows = rows;
    }

    /// Reshape to `rows × cols` with every element zeroed, reusing the
    /// existing allocation when it is large enough. This is the scratch
    /// primitive for the decode hot path: per-token buffers are `reset`
    /// instead of reallocated each step.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        let n = rows * cols;
        self.data.clear();
        self.data.resize(n, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Round every element to the storage grid of `dtype` in place. This is
    /// the "store to memory" step of a mixed-precision pipeline.
    pub fn quantize(&mut self, dtype: DType) {
        if dtype == DType::F32 {
            return;
        }
        for v in &mut self.data {
            *v = dtype.quantize(*v);
        }
    }

    /// Maximum absolute difference to another matrix of identical shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Does any element compare unequal to itself (i.e. is NaN)?
    pub fn has_nan(&self) -> bool {
        self.data.iter().any(|v| v.is_nan())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic]
    fn from_vec_checks_length() {
        Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.get(2, 1), m.get(1, 2));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn slice_and_append_rows() {
        let m = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let top = m.slice_rows(0, 2);
        let bottom = m.slice_rows(2, 4);
        let mut rejoined = top.clone();
        rejoined.append_rows(&bottom);
        assert_eq!(rejoined, m);
    }

    #[test]
    fn quantize_f16_rounds_to_grid() {
        let mut m = Matrix::from_vec(1, 3, vec![1.0005, -2.0003, 70000.0]);
        m.quantize(DType::F16);
        // 1.0005 rounds to a representable f16 value close-by.
        assert!((m.get(0, 0) - 1.0).abs() < 0.001);
        // 70000 overflows binary16 to infinity.
        assert!(m.get(0, 2).is_infinite());
        // f32 quantisation is a no-op.
        let mut m2 = Matrix::from_vec(1, 1, vec![1.000_000_1]);
        let before = m2.get(0, 0);
        m2.quantize(DType::F32);
        assert_eq!(m2.get(0, 0), before);
    }

    #[test]
    fn flat_indexing_matches_row_major_layout() {
        let mut m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(m.get_flat(r * 4 + c), m.get(r, c));
            }
        }
        m.set_flat(5, 99.0);
        assert_eq!(m.get(1, 1), 99.0);
    }

    #[test]
    fn reset_reshapes_and_zeroes() {
        let mut m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c + 1) as f32);
        m.reset(2, 5);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 5);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        // Growing works too.
        m.set(1, 4, 3.0);
        m.reset(4, 6);
        assert_eq!(m.len(), 24);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn nan_detection() {
        let mut m = Matrix::zeros(2, 2);
        assert!(!m.has_nan());
        m.set(1, 0, f32::NAN);
        assert!(m.has_nan());
    }

    #[test]
    fn dtype_properties() {
        assert_eq!(DType::F16.name(), "fp16");
        assert_eq!(DType::F16.format(), FloatFormat::F16);
        assert_eq!(DType::Bf16.format(), FloatFormat::Bf16);
        assert_eq!(DType::F32.quantize(1.000_000_1), 1.000_000_1);
    }
}
