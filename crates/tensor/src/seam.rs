//! Partial GEMM and the all-reduce seam for sharded (tensor-parallel)
//! execution.
//!
//! Row-sharded layers (`OUT_PROJ`, `FC2`/`DOWN_PROJ`) split the *input*
//! (`k`) dimension across shards: shard `s` holds the weight columns for
//! its slice of the input features, computes a partial product over that
//! slice, and the partials are summed — the all-reduce seam of
//! Megatron-style tensor parallelism.
//!
//! # Why the seam accumulates in `f64`
//!
//! A serial `f32` dot product and a sum of per-slice `f32` dots differ by
//! a few ulps (float addition is not associative), and the difference
//! would *depend on the shard count* — so an `N`-shard generation could
//! drift token-wise from the 1-shard golden. Accumulating each partial in
//! `f64` makes every product term exact (an `f32 × f32` product is
//! exactly representable in `f64`: 24 + 24 = 48 ≤ 53 mantissa bits) and
//! pushes the association error of the reduce down to ~2⁻⁵³ relative —
//! far below the `f32` rounding of the final result, and *orders of
//! magnitude* below the per-layer F16 storage quantisation that follows.
//! The reduced value is therefore bit-stable across shard counts on the
//! simulator's workloads, which is what lets `tests/` pin N-shard
//! generations token-identical to the 1-shard golden.

use crate::matrix::Matrix;

/// Partial `A × Bᵀ` over an input-column slice, accumulated in `f64`.
///
/// `a` is `[n, k_full]`; `b_t` is the shard's weight slice
/// `[out, k_slice]` whose columns correspond to `a`'s columns
/// `col_lo..col_lo + k_slice`. Writes the `[n, out]` partial row-major
/// into `out` (resized to `n * out`). Every term is accumulated — no
/// zero-skip — so injected NaN/Inf in either operand poisons the partial
/// exactly as on a strict kernel.
pub fn matmul_transb_cols_f64(a: &Matrix, b_t: &Matrix, col_lo: usize, out: &mut Vec<f64>) {
    let n = a.rows();
    let out_f = b_t.rows();
    let k_slice = b_t.cols();
    assert!(
        col_lo + k_slice <= a.cols(),
        "column slice {}..{} exceeds input width {}",
        col_lo,
        col_lo + k_slice,
        a.cols()
    );
    out.clear();
    out.resize(n * out_f, 0.0);
    for i in 0..n {
        let a_row = &a.row(i)[col_lo..col_lo + k_slice];
        let o_row = &mut out[i * out_f..(i + 1) * out_f];
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_row = b_t.row(j);
            let mut acc = 0.0f64;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += f64::from(av) * f64::from(bv);
            }
            *o = acc;
        }
    }
}

/// The all-reduce seam: sum per-shard `f64` partials in fixed shard
/// order, then round once to `f32` into `out` (`[rows, cols]`).
///
/// Partials must all have length `rows * cols`; an empty shard may pass
/// an empty slice (skipped). The summation order is the caller's slice
/// order, so reduces are deterministic for a fixed shard layout.
pub fn reduce_seam_into(partials: &[&[f64]], rows: usize, cols: usize, out: &mut Matrix) {
    out.reset(rows, cols);
    let flat = out.as_mut_slice();
    let len = rows * cols;
    // First pass initialises, later passes accumulate — in f64 so the
    // final rounding to f32 happens exactly once per element.
    let mut acc = vec![0.0f64; len];
    for part in partials {
        if part.is_empty() {
            continue;
        }
        assert_eq!(part.len(), len, "partial shape mismatch in reduce seam");
        for (a, &p) in acc.iter_mut().zip(part.iter()) {
            *a += p;
        }
    }
    for (o, &a) in flat.iter_mut().zip(acc.iter()) {
        *o = a as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul_transb_into;

    fn demo(rows: usize, cols: usize, seed: u32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let h = (r as u32)
                .wrapping_mul(2654435761)
                .wrapping_add((c as u32).wrapping_mul(40503))
                .wrapping_add(seed);
            ((h % 2000) as f32 - 1000.0) * 1e-3
        })
    }

    #[test]
    fn single_slice_matches_f32_gemm_closely() {
        let a = demo(3, 16, 1);
        let w = demo(5, 16, 2);
        let mut part = Vec::new();
        matmul_transb_cols_f64(&a, &w, 0, &mut part);
        let mut reduced = Matrix::zeros(0, 0);
        reduce_seam_into(&[&part], 3, 5, &mut reduced);
        let mut reference = Matrix::zeros(3, 5);
        matmul_transb_into(&a, &w, &mut reference);
        assert!(reduced.max_abs_diff(&reference) < 1e-5);
    }

    #[test]
    fn reduce_is_shard_count_invariant() {
        let a = demo(2, 24, 3);
        let w = demo(7, 24, 4);
        // One slice vs three uneven slices: identical after the f64 seam.
        let mut whole = Vec::new();
        matmul_transb_cols_f64(&a, &w, 0, &mut whole);
        let mut one = Matrix::zeros(0, 0);
        reduce_seam_into(&[&whole], 2, 7, &mut one);

        let spans = [(0usize, 10usize), (10, 21), (21, 24)];
        let parts: Vec<Vec<f64>> = spans
            .iter()
            .map(|&(lo, hi)| {
                let slice = Matrix::from_fn(7, hi - lo, |r, c| w.get(r, lo + c));
                let mut p = Vec::new();
                matmul_transb_cols_f64(&a, &slice, lo, &mut p);
                p
            })
            .collect();
        let refs: Vec<&[f64]> = parts.iter().map(|p| p.as_slice()).collect();
        let mut three = Matrix::zeros(0, 0);
        reduce_seam_into(&refs, 2, 7, &mut three);
        assert_eq!(one, three, "seam must not depend on the slice layout");
    }

    #[test]
    fn non_finite_terms_poison_the_partial() {
        let mut a = demo(1, 8, 5);
        a.set(0, 3, f32::NAN);
        let w = demo(2, 8, 6);
        let mut part = Vec::new();
        matmul_transb_cols_f64(&a, &w, 0, &mut part);
        assert!(part.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn empty_partials_are_skipped() {
        let a = demo(1, 4, 7);
        let w = demo(3, 4, 8);
        let mut part = Vec::new();
        matmul_transb_cols_f64(&a, &w, 0, &mut part);
        let empty: Vec<f64> = Vec::new();
        let mut with_empty = Matrix::zeros(0, 0);
        reduce_seam_into(&[&part, &empty], 1, 3, &mut with_empty);
        let mut without = Matrix::zeros(0, 0);
        reduce_seam_into(&[&part], 1, 3, &mut without);
        assert_eq!(with_empty, without);
    }
}
