//! Property-based tests for tensor kernels.

use ft2_tensor::ops::mul_inplace;
use ft2_tensor::{
    add_inplace, argmax, layer_norm, matmul, matmul_naive, matmul_transb, matmul_with, rms_norm,
    scale_inplace, softmax_rows, DType, KernelPolicy, Matrix,
};
use proptest::prelude::*;

/// The IEEE special values the strict kernels must propagate exactly like
/// the naive oracle: NaN, both infinities, subnormals of both signs, and
/// exact zero (the value the old fast-path skip keyed on).
const SPECIALS: [f32; 6] = [
    f32::NAN,
    f32::INFINITY,
    f32::NEG_INFINITY,
    1.0e-40,
    -1.0e-40,
    0.0,
];

/// Plant `plants` special values at LCG-derived positions of `a` and `b`.
fn plant_specials(a: &mut Matrix, b: &mut Matrix, seed: u64, plants: usize) {
    let mut s = seed | 1;
    let mut next = |n: usize| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) % n.max(1) as u64) as usize
    };
    for _ in 0..plants {
        let v = SPECIALS[next(SPECIALS.len())];
        if next(2) == 0 {
            let (r, c) = (next(a.rows()), next(a.cols()));
            a.set(r, c, v);
        } else {
            let (r, c) = (next(b.rows()), next(b.cols()));
            b.set(r, c, v);
        }
    }
}

/// Assert `got` and `oracle` agree on NaN/Inf placement everywhere and agree
/// within `tol` on finite entries.
fn assert_nonfinite_placement(got: &Matrix, oracle: &Matrix, tol: f32) {
    assert_eq!((got.rows(), got.cols()), (oracle.rows(), oracle.cols()));
    for r in 0..oracle.rows() {
        for c in 0..oracle.cols() {
            let (g, o) = (got.get(r, c), oracle.get(r, c));
            if o.is_nan() {
                assert!(g.is_nan(), "[{r},{c}] oracle NaN, got {g}");
            } else if o.is_infinite() {
                assert_eq!(g, o, "[{r},{c}] oracle {o}, got {g}");
            } else {
                assert!(g.is_finite(), "[{r},{c}] oracle {o} finite, got {g}");
                assert!((g - o).abs() < tol, "[{r},{c}] oracle {o}, got {g}");
            }
        }
    }
}

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    /// The fast GEMM agrees with the naive oracle on arbitrary shapes.
    #[test]
    fn matmul_equals_naive(
        m in 1usize..12, k in 1usize..12, n in 1usize..12,
        seed in any::<u32>(),
    ) {
        let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 17 + seed as usize) % 23) as f32 * 0.1 - 1.0);
        let b = Matrix::from_fn(k, n, |r, c| ((r * 13 + c * 7 + seed as usize) % 19) as f32 * 0.1 - 0.9);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-3);
    }

    /// `matmul_transb(a, b)` equals `matmul(a, bᵀ)`.
    #[test]
    fn transb_consistent(
        m in 1usize..10, k in 1usize..10, n in 1usize..10,
        seed in any::<u32>(),
    ) {
        let a = Matrix::from_fn(m, k, |r, c| ((r + c * 3 + seed as usize) % 11) as f32 * 0.2 - 1.0);
        let bt = Matrix::from_fn(n, k, |r, c| ((r * 5 + c + seed as usize) % 13) as f32 * 0.2 - 1.2);
        let direct = matmul_transb(&a, &bt);
        let via = matmul_naive(&a, &bt.transpose());
        prop_assert!(direct.max_abs_diff(&via) < 1e-3);
    }

    /// Matrix multiplication is linear: A(x + y) = Ax + Ay.
    #[test]
    fn matmul_is_linear(k in 1usize..10, n in 1usize..10, seed in any::<u32>()) {
        let a = Matrix::from_fn(1, k, |_, c| ((c * 7 + seed as usize) % 9) as f32 * 0.3 - 1.0);
        let b = Matrix::from_fn(1, k, |_, c| ((c * 11 + seed as usize) % 7) as f32 * 0.3 - 0.8);
        let w = Matrix::from_fn(k, n, |r, c| ((r + c * 2 + seed as usize) % 15) as f32 * 0.1 - 0.7);
        let mut sum = a.clone();
        add_inplace(&mut sum, &b);
        let lhs = matmul(&sum, &w);
        let mut rhs = matmul(&a, &w);
        add_inplace(&mut rhs, &matmul(&b, &w));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    /// Softmax rows sum to one and are within (0,1] for finite inputs.
    #[test]
    fn softmax_is_a_distribution(m in matrix_strategy(8)) {
        let mut s = m.clone();
        softmax_rows(&mut s);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            for &v in s.row(r) {
                prop_assert!(v > 0.0 && v <= 1.0 + 1e-6);
            }
        }
    }

    /// Softmax is invariant under per-row shifts.
    #[test]
    fn softmax_shift_invariant(m in matrix_strategy(6), shift in -5.0f32..5.0) {
        let mut a = m.clone();
        softmax_rows(&mut a);
        let mut shifted = m.clone();
        for v in shifted.as_mut_slice() {
            *v += shift;
        }
        softmax_rows(&mut shifted);
        prop_assert!(a.max_abs_diff(&shifted) < 1e-4);
    }

    /// LayerNorm output has near-zero mean and near-unit variance per row
    /// (identity affine), for rows with some spread.
    #[test]
    fn layer_norm_standardises(cols in 2usize..32, seed in any::<u32>()) {
        let mut m = Matrix::from_fn(1, cols, |_, c| ((c * 37 + seed as usize) % 29) as f32 * 0.7);
        // Ensure spread.
        m.set(0, 0, m.get(0, 0) + 5.0);
        let gamma = vec![1.0f32; cols];
        let beta = vec![0.0f32; cols];
        layer_norm(&mut m, &gamma, &beta, 1e-5);
        let mean: f32 = m.row(0).iter().sum::<f32>() / cols as f32;
        let var: f32 = m.row(0).iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
        prop_assert!(mean.abs() < 1e-3);
        prop_assert!((var - 1.0).abs() < 1e-2);
    }

    /// RMSNorm output has near-unit RMS.
    #[test]
    fn rms_norm_unit_rms(cols in 2usize..32, seed in any::<u32>()) {
        let mut m = Matrix::from_fn(1, cols, |_, c| ((c * 7 + seed as usize) % 13) as f32 * 0.5 + 0.1);
        let gamma = vec![1.0f32; cols];
        rms_norm(&mut m, &gamma, 1e-6);
        let ms: f32 = m.row(0).iter().map(|v| v * v).sum::<f32>() / cols as f32;
        prop_assert!((ms - 1.0).abs() < 1e-2);
    }

    /// Quantising to f16 then f32 is a no-op the second time, and the f16
    /// grid is coarser than or equal to the original values.
    #[test]
    fn quantisation_idempotent(m in matrix_strategy(8)) {
        let mut once = m.clone();
        once.quantize(DType::F16);
        let mut twice = once.clone();
        twice.quantize(DType::F16);
        prop_assert_eq!(&once, &twice);
        let mut bf = m.clone();
        bf.quantize(DType::Bf16);
        let mut bf2 = bf.clone();
        bf2.quantize(DType::Bf16);
        prop_assert_eq!(&bf, &bf2);
    }

    /// argmax returns an index whose value is >= every other value.
    #[test]
    fn argmax_is_max(values in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        let idx = argmax(&values);
        prop_assert!(idx < values.len());
        for &v in &values {
            prop_assert!(values[idx] >= v);
        }
    }

    /// Elementwise ops compose as expected: (a + b) * s == a*s + b*s.
    #[test]
    fn elementwise_distributes(cols in 1usize..32, s in -3.0f32..3.0, seed in any::<u32>()) {
        let a = Matrix::from_fn(1, cols, |_, c| ((c + seed as usize) % 17) as f32 * 0.3 - 1.0);
        let b = Matrix::from_fn(1, cols, |_, c| ((c * 3 + seed as usize) % 11) as f32 * 0.2 - 0.9);
        let mut lhs = a.clone();
        add_inplace(&mut lhs, &b);
        scale_inplace(&mut lhs, s);
        let mut ra = a.clone();
        scale_inplace(&mut ra, s);
        let mut rb = b.clone();
        scale_inplace(&mut rb, s);
        add_inplace(&mut ra, &rb);
        prop_assert!(lhs.max_abs_diff(&ra) < 1e-4);
    }

    /// Strict `matmul` propagates planted NaN/Inf/subnormals exactly where
    /// the naive oracle does, on arbitrary shapes — the invariant the old
    /// zero-skip fast path silently broke (0 × NaN was skipped as 0).
    #[test]
    fn strict_matmul_propagates_specials_like_naive(
        m in 1usize..10, k in 1usize..14, n in 1usize..10,
        seed in any::<u64>(), plants in 0usize..10,
    ) {
        let mut a = Matrix::from_fn(m, k, |r, c| {
            ((r * 31 + c * 17 + seed as usize) % 23) as f32 * 0.1 - 1.0
        });
        let mut b = Matrix::from_fn(k, n, |r, c| {
            ((r * 13 + c * 7 + seed as usize) % 19) as f32 * 0.1 - 0.9
        });
        plant_specials(&mut a, &mut b, seed, plants);
        let strict = matmul_with(&a, &b, KernelPolicy::Strict);
        let oracle = matmul_naive(&a, &b);
        assert_nonfinite_placement(&strict, &oracle, 1e-3);
    }

    /// `matmul_transb` (always strict — the model's GEMM) propagates planted
    /// specials exactly where the oracle does, across the SIMD panel kernel,
    /// its scalar tail, and the portable fallback.
    #[test]
    fn transb_propagates_specials_like_naive(
        m in 1usize..10, k in 1usize..40, n in 1usize..10,
        seed in any::<u64>(), plants in 0usize..10,
    ) {
        let mut a = Matrix::from_fn(m, k, |r, c| {
            ((r + c * 3 + seed as usize) % 11) as f32 * 0.2 - 1.0
        });
        let mut bt = Matrix::from_fn(n, k, |r, c| {
            ((r * 5 + c + seed as usize) % 13) as f32 * 0.2 - 1.2
        });
        plant_specials(&mut a, &mut bt, seed ^ 0xD07, plants);
        let direct = matmul_transb(&a, &bt);
        let oracle = matmul_naive(&a, &bt.transpose());
        assert_nonfinite_placement(&direct, &oracle, 1e-3);
    }

    /// Hadamard product commutes.
    #[test]
    fn mul_commutes(cols in 1usize..32, seed in any::<u32>()) {
        let a = Matrix::from_fn(1, cols, |_, c| ((c * 5 + seed as usize) % 9) as f32 - 4.0);
        let b = Matrix::from_fn(1, cols, |_, c| ((c * 2 + seed as usize) % 7) as f32 - 3.0);
        let mut ab = a.clone();
        mul_inplace(&mut ab, &b);
        let mut ba = b.clone();
        mul_inplace(&mut ba, &a);
        prop_assert_eq!(ab, ba);
    }
}
