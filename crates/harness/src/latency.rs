//! Shared latency accounting for the serving/replica harnesses.
//!
//! Both `ft2-repro serve` and `ft2-repro replicas` report per-token
//! latency percentiles from the schedulers' accept timestamps
//! (`Completion::token_ns`, nanoseconds since the wave started). Two
//! subtleties live here so the harnesses cannot drift apart again:
//!
//! * **TTFT is not a decode gap.** The first timestamp spans queue wait
//!   *plus* prefill; folding it into the per-token distribution inflates
//!   p99 by an order of magnitude at small request counts. [`split_latencies`]
//!   separates time-to-first-token from the consecutive decode gaps, and
//!   the reports carry `ttft_ms` as its own field.
//! * **Ratios over ~0 baselines are noise.** `storm_p99 / clean_p99` on a
//!   sub-microsecond baseline prints absurd five-digit inflations.
//!   [`inflation_ratio`] floors the baseline at
//!   [`INFLATION_BASELINE_FLOOR_MS`] and caps the report at
//!   [`INFLATION_CAP`]; degenerate (sample-free) inputs report the neutral
//!   `1.0`.
//!
//! Percentiles use the **nearest-rank** method on the sorted samples:
//! `index = round((p / 100) * (len - 1))`. p=0 is the minimum, p=100 the
//! maximum, and a single sample is every percentile of itself.

/// Floor applied to the clean baseline before dividing, in milliseconds.
/// Baselines below one microsecond are timer noise, not a denominator.
pub const INFLATION_BASELINE_FLOOR_MS: f64 = 0.001;

/// Cap on any reported inflation ratio. Anything past this is "the
/// baseline was degenerate", not a meaningful tail measurement.
pub const INFLATION_CAP: f64 = 1000.0;

/// Percentile (0..=100) of latency samples in nanoseconds, returned in
/// milliseconds. Nearest-rank: `index = round((p / 100) * (len - 1))` on
/// the sorted samples. An empty sample set reports `0.0`.
pub fn percentile_ms(mut ns: Vec<u64>, p: f64) -> f64 {
    if ns.is_empty() {
        return 0.0;
    }
    ns.sort_unstable();
    let idx = ((p / 100.0) * (ns.len() - 1) as f64).round() as usize;
    ns[idx.min(ns.len() - 1)] as f64 / 1e6
}

/// Split one completion's accept timestamps into time-to-first-token and
/// decode gaps.
///
/// `token_ns` holds nanosecond timestamps since the wave started, one per
/// accepted token. The first timestamp *is* the TTFT (queue wait +
/// prefill); each later token's latency is the gap to its predecessor.
/// Returns `(ttft_ns, decode_gaps_ns)`; an empty slice yields `(None, [])`.
pub fn split_latencies(token_ns: &[u64]) -> (Option<u64>, Vec<u64>) {
    let Some((&first, rest)) = token_ns.split_first() else {
        return (None, Vec::new());
    };
    let mut gaps = Vec::with_capacity(rest.len());
    let mut prev = first;
    for &t in rest {
        gaps.push(t.saturating_sub(prev));
        prev = t;
    }
    (Some(first), gaps)
}

/// Split many completions' timestamps at once; returns all TTFTs and all
/// decode gaps pooled (the inputs the reports' percentiles run over).
pub fn split_all<'a, I>(waves: I) -> (Vec<u64>, Vec<u64>)
where
    I: IntoIterator<Item = &'a [u64]>,
{
    let mut ttfts = Vec::new();
    let mut gaps = Vec::new();
    for token_ns in waves {
        let (ttft, g) = split_latencies(token_ns);
        ttfts.extend(ttft);
        gaps.extend(g);
    }
    (ttfts, gaps)
}

/// Tail-latency inflation of a fault drill over its fault-free baseline,
/// clamped to stay meaningful.
///
/// The baseline is floored at [`INFLATION_BASELINE_FLOOR_MS`] and the
/// ratio capped at [`INFLATION_CAP`] so a ~0 ms baseline (tiny smoke runs,
/// coarse timers) cannot print an absurd ratio. When *neither* side has
/// samples (both ≤ 0) the ratio is the neutral `1.0` — no data is not a
/// speedup.
pub fn inflation_ratio(storm_ms: f64, clean_ms: f64) -> f64 {
    if storm_ms <= 0.0 && clean_ms <= 0.0 {
        return 1.0;
    }
    (storm_ms.max(0.0) / clean_ms.max(INFLATION_BASELINE_FLOOR_MS)).min(INFLATION_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000_000).collect();
        assert!((percentile_ms(ns.clone(), 50.0) - 50.0).abs() < 2.0);
        assert!((percentile_ms(ns.clone(), 99.0) - 99.0).abs() < 2.0);
        // p=0 is the minimum, p=100 the maximum.
        assert_eq!(percentile_ms(ns.clone(), 0.0), 1.0);
        assert_eq!(percentile_ms(ns, 100.0), 100.0);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile_ms(vec![], 99.0), 0.0, "empty set is 0, not NaN");
        // A single sample is every percentile of itself.
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile_ms(vec![3_000_000], p), 3.0);
        }
        // Unsorted input is sorted internally.
        assert_eq!(percentile_ms(vec![5_000_000, 1_000_000], 0.0), 1.0);
    }

    #[test]
    fn split_separates_ttft_from_decode_gaps() {
        // TTFT 10 ms (queue + prefill), then 1 ms decode gaps.
        let (ttft, gaps) = split_latencies(&[10_000_000, 11_000_000, 12_000_000]);
        assert_eq!(ttft, Some(10_000_000));
        assert_eq!(gaps, vec![1_000_000, 1_000_000]);
        // The old bug: treating TTFT as a gap from t=0 put the 10 ms
        // prefill into the decode distribution and owned its p99.
        let p99_with_bug = percentile_ms(vec![10_000_000, 1_000_000, 1_000_000], 99.0);
        let p99_fixed = percentile_ms(gaps, 99.0);
        assert_eq!(p99_with_bug, 10.0);
        assert_eq!(p99_fixed, 1.0);
    }

    #[test]
    fn split_edge_cases() {
        assert_eq!(split_latencies(&[]), (None, Vec::new()));
        // One token: a TTFT but no decode gaps.
        assert_eq!(split_latencies(&[7_000_000]), (Some(7_000_000), Vec::new()));
        // Out-of-order timestamps saturate to 0 instead of wrapping.
        let (_, gaps) = split_latencies(&[5, 3]);
        assert_eq!(gaps, vec![0]);
    }

    #[test]
    fn split_all_pools_across_completions() {
        let a = [10_000_000u64, 11_000_000];
        let b = [20_000_000u64, 21_000_000, 23_000_000];
        let (ttfts, gaps) = split_all([&a[..], &b[..]]);
        assert_eq!(ttfts, vec![10_000_000, 20_000_000]);
        assert_eq!(gaps, vec![1_000_000, 1_000_000, 2_000_000]);
    }

    #[test]
    fn inflation_is_clamped_and_neutral_on_no_data() {
        assert!((inflation_ratio(2.5, 2.0) - 1.25).abs() < 1e-9);
        // A ~0 baseline cannot print an absurd ratio anymore.
        assert_eq!(inflation_ratio(5.0, 0.0), INFLATION_CAP);
        assert_eq!(inflation_ratio(5.0, 1e-12), INFLATION_CAP);
        // No samples on either side: neutral, not 0 or infinity.
        assert_eq!(inflation_ratio(0.0, 0.0), 1.0);
        // No storm samples against a real baseline: 0 (and never negative).
        assert_eq!(inflation_ratio(0.0, 2.0), 0.0);
        assert_eq!(inflation_ratio(-1.0, 2.0), 0.0);
    }
}
