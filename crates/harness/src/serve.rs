//! The serving-runtime gate behind `ft2-repro serve`.
//!
//! Exercises the `ft2-serve` continuous-batching scheduler end to end on
//! the bench fixtures (OPT-6.7B stand-in, deterministic SQuAD-style
//! prompts) and reports:
//!
//! * **throughput** — requests/s and accepted tokens/s for batch sizes
//!   {1, 4, 8} (capped by `FT2_SERVE_MAX_BATCH`), with median
//!   time-to-first-token (`ttft_ms`: queue wait + prefill) and p50/p99
//!   per-token latency over **decode gaps only** (see [`crate::latency`]);
//! * **identity** — every request served at batch size N emits tokens
//!   bit-identical to its single-sequence [`ft2_model::Model::generate`]
//!   (the core serving guarantee; a batch must never change anyone's
//!   answer);
//! * **fault isolation** — a transient fault storm confined to one
//!   request of a batch-4 run: the storming request rolls back and
//!   re-decodes alone, every clean request still matches its solo
//!   generation, and the clean requests' p99 token latency is reported as
//!   an inflation ratio over the fault-free batch-4 run (tail-latency
//!   isolation, informational).
//!
//! With `--json` the report is written as the schema-stable
//! `BENCH_serve.json` (committed as a baseline; CI greps its keys), in
//! the same hand-rolled one-key-per-line format as the other baselines.
//! `ok` gates correctness only (identity and storm outcome); timings are
//! informational. Sizing: `FT2_BENCH_GEN`, `FT2_QUICK=1` / `--smoke`;
//! `FT2_SERVE_MAX_BATCH` and `FT2_SERVE_QUEUE_DEPTH` shape the scheduler.

use crate::latency::{inflation_ratio, percentile_ms, split_all};
use crate::settings::{env_usize, quick_mode};
use ft2_model::{Model, RecoveryPolicy, TapList, ZooModel};
use ft2_parallel::WorkStealingPool;
use ft2_serve::scheduler::{Completion, Outcome, Request, Scheduler, ServeConfig};
use ft2_serve::StormTap;
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::DatasetId;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Version of the JSON report schema. Bump when a key changes meaning.
pub const SERVE_SCHEMA_VERSION: u64 = 2;

/// Default output path for the JSON report.
pub const SERVE_BASELINE_PATH: &str = "BENCH_serve.json";

/// One batch-size point of the fault-free throughput sweep.
#[derive(Clone, Debug)]
pub struct ServeBatchPoint {
    /// Concurrent lanes of this point.
    pub batch: usize,
    /// Requests served.
    pub requests: usize,
    /// Completed requests per second.
    pub requests_s: f64,
    /// Accepted tokens per second across the batch.
    pub tok_s: f64,
    /// Median time-to-first-token (queue wait + prefill), milliseconds.
    pub ttft_ms: f64,
    /// Median per-token decode latency (gap between consecutive accepts,
    /// TTFT excluded), milliseconds.
    pub p50_token_ms: f64,
    /// 99th-percentile per-token decode latency, milliseconds.
    pub p99_token_ms: f64,
    /// Every request matched its single-sequence generation bit-for-bit.
    pub identity_ok: bool,
}

/// The full serving report.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Benchmarked model name.
    pub model: String,
    /// Decode-pool worker threads.
    pub threads: usize,
    /// Tokens generated per request.
    pub gen_tokens: usize,
    /// `FT2_SERVE_MAX_BATCH` in effect (caps the sweep).
    pub max_batch: usize,
    /// `FT2_SERVE_QUEUE_DEPTH` in effect.
    pub queue_depth: usize,
    /// Fault-free throughput/identity points.
    pub batches: Vec<ServeBatchPoint>,
    /// Outcome of the storming request in the fault drill.
    pub storm_outcome: &'static str,
    /// Rollbacks the storming request took.
    pub storm_rollbacks: u32,
    /// Clean requests' p99 decode-gap latency under the storm, ms.
    pub storm_clean_p99_ms: f64,
    /// Fault-free batch-4 p99 decode-gap latency, milliseconds (the
    /// baseline the storm tail is compared against).
    pub clean_p99_ms: f64,
    /// Tail-latency inflation the storm imposed on its batchmates,
    /// via [`inflation_ratio`] (floored baseline, capped; informational).
    pub clean_p99_inflation: f64,
    /// Every request of the storm drill — clean batchmates *and* the
    /// rolled-back storming request — matched its solo generation.
    pub storm_identity_ok: bool,
}

impl ServeReport {
    /// Correctness gate: identity at every batch size, and the storm drill
    /// healed with every request token-identical. Timings are
    /// informational and never gate.
    pub fn ok(&self) -> bool {
        !self.batches.is_empty()
            && self.batches.iter().all(|b| b.identity_ok)
            && self.storm_outcome == "Completed"
            && self.storm_identity_ok
    }

    /// Serialise as the schema-stable JSON document (one key per line,
    /// points one per line).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {SERVE_SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"model\": \"{}\",", self.model);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"gen_tokens\": {},", self.gen_tokens);
        let _ = writeln!(s, "  \"max_batch\": {},", self.max_batch);
        let _ = writeln!(s, "  \"queue_depth\": {},", self.queue_depth);
        s.push_str("  \"batches\": [");
        for (i, b) in self.batches.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"batch\": {}, \"requests\": {}, \"requests_s\": {:.3}, \
                 \"tok_s\": {:.3}, \"ttft_ms\": {:.3}, \"p50_token_ms\": {:.3}, \
                 \"p99_token_ms\": {:.3}, \"identity_ok\": {}}}",
                b.batch, b.requests, b.requests_s, b.tok_s, b.ttft_ms, b.p50_token_ms,
                b.p99_token_ms, b.identity_ok
            );
        }
        s.push_str("\n  ],\n");
        let _ = writeln!(s, "  \"storm_outcome\": \"{}\",", self.storm_outcome);
        let _ = writeln!(s, "  \"storm_rollbacks\": {},", self.storm_rollbacks);
        let _ = writeln!(s, "  \"storm_clean_p99_ms\": {:.3},", self.storm_clean_p99_ms);
        let _ = writeln!(s, "  \"clean_p99_ms\": {:.3},", self.clean_p99_ms);
        let _ = writeln!(s, "  \"clean_p99_inflation\": {:.3},", self.clean_p99_inflation);
        let _ = writeln!(s, "  \"storm_identity_ok\": {},", self.storm_identity_ok);
        let _ = writeln!(s, "  \"ok\": {}", self.ok());
        s.push('}');
        s.push('\n');
        s
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "serving runtime | model {} | threads {} | {} tokens/request | max batch {}\n",
            self.model, self.threads, self.gen_tokens, self.max_batch
        );
        for b in &self.batches {
            let _ = writeln!(
                s,
                "batch {:>2}  {:>8.2} req/s  {:>9.1} tok/s  ttft {:>7.3} ms  p50 {:>7.3} ms  p99 {:>7.3} ms  identity {}",
                b.batch,
                b.requests_s,
                b.tok_s,
                b.ttft_ms,
                b.p50_token_ms,
                b.p99_token_ms,
                if b.identity_ok { "ok" } else { "DRIFT" }
            );
        }
        let _ = writeln!(
            s,
            "fault storm (1 of 4 lanes): outcome {} ({} rollbacks), clean p99 {:.3} ms \
             = {:.2}x fault-free, identity {}",
            self.storm_outcome,
            self.storm_rollbacks,
            self.storm_clean_p99_ms,
            self.clean_p99_inflation,
            if self.storm_identity_ok { "ok" } else { "DRIFT" }
        );
        let _ = write!(s, "overall: {}", if self.ok() { "ok" } else { "FAIL" });
        s
    }
}

struct RunStats {
    completions: Vec<Completion>,
    wall_s: f64,
}

/// Serve `requests` clean requests (prompt i, cycling) at one batch size.
#[allow(clippy::too_many_arguments)]
fn serve_wave(
    model: &Arc<Model>,
    pool: &WorkStealingPool,
    prompts: &[Vec<u32>],
    gen_tokens: usize,
    batch: usize,
    queue_depth: usize,
    requests: usize,
    storm_first: bool,
) -> RunStats {
    let config = ServeConfig {
        max_batch: batch,
        queue_depth: queue_depth.max(requests),
        recovery: RecoveryPolicy::retries(2).with_repair(),
        kv_guard: true,
    };
    let mut sched = Scheduler::new(Arc::clone(model), config);
    for i in 0..requests {
        let tap: Option<Box<dyn ft2_model::LayerTap + Send>> = (storm_first && i == 0)
            .then(|| Box::new(StormTap::transient(3, 1)) as _);
        sched
            .try_submit(Request {
                id: i as u64,
                prompt: prompts[i % prompts.len()].clone(),
                gen_tokens,
                tap,
            })
            .expect("bench request rejected at admission");
    }
    let t0 = Instant::now();
    let mut completions = sched.run(pool);
    let wall_s = t0.elapsed().as_secs_f64();
    completions.sort_by_key(|c| c.id);
    RunStats { completions, wall_s }
}

/// Run the serving gate. `smoke` (or `FT2_QUICK=1`) shrinks request
/// counts and generation length for CI.
pub fn run(pool: &WorkStealingPool, smoke: bool) -> ServeReport {
    let quick = smoke || quick_mode();
    let gen_tokens = env_usize("FT2_BENCH_GEN")
        .unwrap_or(if quick { 8 } else { 16 })
        .max(8);
    let max_batch = env_usize("FT2_SERVE_MAX_BATCH").unwrap_or(8).max(1);
    let queue_depth = env_usize("FT2_SERVE_QUEUE_DEPTH").unwrap_or(64).max(1);
    let waves = if quick { 1 } else { 2 };

    let model = Arc::new(ZooModel::Opt6_7B.spec().build());
    let batch_sizes: Vec<usize> = [1usize, 4, 8]
        .into_iter()
        .filter(|&b| b <= max_batch)
        .collect();
    let most = batch_sizes.iter().copied().max().unwrap_or(1) * waves;
    let prompts = generate_prompts(DatasetId::Squad, most.min(8), 0xBE7C4);

    // Solo references: the single-sequence generation every served request
    // must match bit-for-bit.
    let solo: Vec<Vec<u32>> = prompts
        .iter()
        .map(|p| {
            let mut taps = TapList::new();
            model.generate(p, gen_tokens, &mut taps).tokens
        })
        .collect();
    let matches_solo = |c: &Completion| c.tokens == solo[c.id as usize % prompts.len()];

    // Fault-free sweep.
    let mut batches = Vec::new();
    let mut clean_p99_ms = 0.0f64;
    for &batch in &batch_sizes {
        let requests = batch * waves;
        let stats = serve_wave(
            &model, pool, &prompts, gen_tokens, batch, queue_depth, requests, false,
        );
        let identity_ok = stats.completions.len() == requests
            && stats
                .completions
                .iter()
                .all(|c| c.outcome == Outcome::Completed && matches_solo(c));
        let (ttfts, decode_ns) =
            split_all(stats.completions.iter().map(|c| c.token_ns.as_slice()));
        let total_tokens: usize = stats.completions.iter().map(|c| c.tokens.len()).sum();
        let point = ServeBatchPoint {
            batch,
            requests,
            requests_s: requests as f64 / stats.wall_s.max(1e-9),
            tok_s: total_tokens as f64 / stats.wall_s.max(1e-9),
            ttft_ms: percentile_ms(ttfts, 50.0),
            p50_token_ms: percentile_ms(decode_ns.clone(), 50.0),
            p99_token_ms: percentile_ms(decode_ns, 99.0),
            identity_ok,
        };
        if batch == 4 {
            clean_p99_ms = point.p99_token_ms;
        }
        batches.push(point);
    }
    if clean_p99_ms == 0.0 {
        clean_p99_ms = batches.last().map(|b| b.p99_token_ms).unwrap_or(0.0);
    }

    // Fault drill: one transient storm confined to request 0 of a batch-4
    // run; batchmates keep stepping while it rolls back.
    let storm_batch = 4usize.min(max_batch);
    let stats = serve_wave(
        &model,
        pool,
        &prompts,
        gen_tokens,
        storm_batch,
        queue_depth,
        storm_batch * waves,
        true,
    );
    let stormer = stats.completions.iter().find(|c| c.id == 0);
    let storm_outcome = match stormer.map(|c| c.outcome) {
        Some(Outcome::Completed) => "Completed",
        Some(Outcome::Evicted(_)) => "Evicted",
        Some(Outcome::Rejected(_)) => "Rejected",
        None => "Missing",
    };
    let storm_rollbacks = stormer.map(|c| c.rollbacks).unwrap_or(0);
    let (_, clean_decode_ns) = split_all(
        stats
            .completions
            .iter()
            .filter(|c| c.id != 0)
            .map(|c| c.token_ns.as_slice()),
    );
    let storm_clean_p99_ms = percentile_ms(clean_decode_ns, 99.0);
    let storm_identity_ok = stats.completions.iter().all(matches_solo);

    ServeReport {
        model: model.config().name.to_string(),
        threads: pool.threads(),
        gen_tokens,
        max_batch,
        queue_depth,
        batches,
        storm_outcome,
        storm_rollbacks,
        storm_clean_p99_ms,
        clean_p99_ms,
        clean_p99_inflation: inflation_ratio(storm_clean_p99_ms, clean_p99_ms),
        storm_identity_ok,
    }
}

/// Write the JSON report atomically (temp file + rename), like the other
/// baselines.
pub fn write_json(report: &ServeReport, path: &Path) -> Result<(), String> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, report.to_json())
        .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("renaming to {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        ServeReport {
            model: "OPT-6.7B".to_string(),
            threads: 4,
            gen_tokens: 16,
            max_batch: 8,
            queue_depth: 64,
            batches: vec![ServeBatchPoint {
                batch: 4,
                requests: 8,
                requests_s: 12.345,
                tok_s: 197.52,
                ttft_ms: 4.25,
                p50_token_ms: 0.85,
                p99_token_ms: 2.125,
                identity_ok: true,
            }],
            storm_outcome: "Completed",
            storm_rollbacks: 1,
            storm_clean_p99_ms: 2.5,
            clean_p99_ms: 2.125,
            clean_p99_inflation: 1.176,
            storm_identity_ok: true,
        }
    }

    #[test]
    fn json_schema_is_stable() {
        let json = sample().to_json();
        for key in [
            "\"schema\": 2",
            "\"model\": \"OPT-6.7B\"",
            "\"gen_tokens\": 16",
            "\"max_batch\": 8",
            "\"queue_depth\": 64",
            "\"batch\": 4",
            "\"requests_s\": 12.345",
            "\"tok_s\": 197.520",
            "\"ttft_ms\": 4.250",
            "\"p50_token_ms\": 0.850",
            "\"p99_token_ms\": 2.125",
            "\"identity_ok\": true",
            "\"storm_outcome\": \"Completed\"",
            "\"storm_clean_p99_ms\": 2.500",
            "\"clean_p99_inflation\": 1.176",
            "\"storm_identity_ok\": true",
            "\"ok\": true",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(json.starts_with("{\n") && json.ends_with("}\n"), "{json}");
    }

    #[test]
    fn ok_gates_identity_and_storm_outcome_only() {
        let report = sample();
        assert!(report.ok());
        let mut drift = report.clone();
        drift.batches[0].identity_ok = false;
        assert!(!drift.ok(), "batch identity drift must fail the gate");
        let mut evicted = report.clone();
        evicted.storm_outcome = "Evicted";
        assert!(!evicted.ok(), "a transient storm must heal, not evict");
        let mut slow = report;
        slow.clean_p99_inflation = 50.0;
        assert!(slow.ok(), "timing is informational, never a gate");
    }

    #[test]
    fn smoke_run_upholds_identity_and_isolation() {
        let pool = WorkStealingPool::new(3);
        let report = run(&pool, true);
        assert!(report.ok(), "serving gate failed:\n{}", report.summary());
        assert!(report.batches.iter().any(|b| b.batch == 1));
        assert!(report.batches.iter().any(|b| b.batch >= 4));
        assert_eq!(report.storm_outcome, "Completed");
        assert!(report.storm_rollbacks >= 1, "the storm must have struck");
        // The accounting fix: TTFT (queue + prefill) is its own field and
        // must dominate any single decode gap, so the decode p99 can no
        // longer be a disguised prefill measurement.
        for b in &report.batches {
            assert!(b.ttft_ms > 0.0, "batch {} lost its TTFT", b.batch);
            assert!(
                b.ttft_ms >= b.p50_token_ms,
                "batch {}: TTFT {:.3} ms below median decode gap {:.3} ms",
                b.batch,
                b.ttft_ms,
                b.p50_token_ms
            );
        }
        assert!(report.clean_p99_inflation <= crate::latency::INFLATION_CAP);
    }
}
