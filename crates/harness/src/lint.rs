//! The `ft2-repro lint` driver: wires the harness knob registry into
//! `ft2-analyze` and renders the result.

use crate::settings;
use ft2_analyze::LintConfig;
use std::path::{Path, PathBuf};

/// Parsed `lint` subcommand options.
#[derive(Clone, Debug)]
pub struct LintArgs {
    /// Emit the schema-stable JSON document instead of text.
    pub json: bool,
    /// Tree to scan (defaults to the enclosing workspace root).
    pub root: Option<PathBuf>,
}

impl LintArgs {
    /// Parse `lint` CLI arguments.
    pub fn parse(args: &[String]) -> Result<LintArgs, String> {
        let mut out = LintArgs {
            json: false,
            root: None,
        };
        let mut rest = args.iter();
        while let Some(key) = rest.next() {
            match key.as_str() {
                "--json" => out.json = true,
                "--root" => {
                    out.root =
                        Some(PathBuf::from(rest.next().ok_or("option --root needs a value")?));
                }
                other => return Err(format!("unknown lint option {other}")),
            }
        }
        Ok(out)
    }
}

/// Locate the workspace root: the nearest ancestor of the current
/// directory holding a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory \
                        (pass --root explicitly)"
                .to_string());
        }
    }
}

/// Run the full analysis and print it; returns the process exit code
/// (0 = clean, 1 = findings or coverage gaps).
pub fn run(args: &LintArgs) -> Result<i32, String> {
    let root = match &args.root {
        Some(r) => r.clone(),
        None => find_workspace_root()?,
    };
    let cfg = LintConfig::for_tree(root, settings::knob_names());
    let report = ft2_analyze::analyze(&cfg)?;
    if args.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    Ok(if report.ok() { 0 } else { 1 })
}

/// Lint a specific tree with the harness registry (test/CI entry point).
pub fn analyze_tree(root: &Path) -> Result<ft2_analyze::AnalysisReport, String> {
    let cfg = LintConfig::for_tree(root.to_path_buf(), settings::knob_names());
    ft2_analyze::analyze(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_lint_args() {
        let args = LintArgs::parse(&["--json".to_string()]).unwrap();
        assert!(args.json && args.root.is_none());
        let args =
            LintArgs::parse(&["--root".to_string(), "/tmp/x".to_string()]).unwrap();
        assert_eq!(args.root.as_deref(), Some(Path::new("/tmp/x")));
        assert!(LintArgs::parse(&["--bogus".to_string()]).is_err());
        assert!(LintArgs::parse(&["--root".to_string()]).is_err());
    }
}
