#![warn(missing_docs)]
//! # ft2-harness
//!
//! The reproduction harness: one driver per table/figure of the paper's
//! evaluation, shared experiment plumbing, and plain-text/CSV report
//! writers. The `ft2-repro` binary (in `src/bin`) exposes each driver as a
//! subcommand; `ft2-repro all` regenerates everything and writes CSV
//! artifacts under `results/`.
//!
//! Experiment sizes default to a few minutes of CPU time and scale up via
//! `FT2_INPUTS` / `FT2_TRIALS` (see [`Settings`]). All campaigns are
//! deterministic in `FT2_SEED`.

pub mod bench;
pub mod experiments;
pub mod latency;
pub mod lint;
pub mod replicas;
pub mod report;
pub mod serve;
pub mod settings;
pub mod shards;
pub mod webserve;

pub use bench::{BenchReport, BENCH_BASELINE_PATH, BENCH_SCHEMA_VERSION};
pub use replicas::{ReplicasReport, REPLICAS_BASELINE_PATH, REPLICAS_SCHEMA_VERSION};
pub use serve::{ServeBatchPoint, ServeReport, SERVE_BASELINE_PATH, SERVE_SCHEMA_VERSION};
pub use shards::{ShardsEntry, ShardsReport, SHARDS_BASELINE_PATH, SHARDS_SCHEMA_VERSION};
pub use report::{format_pct, Csv, Table};
pub use settings::{knob_names, EvalPair, KnobKind, KnobSpec, Resilience, Settings, KNOB_REGISTRY};
