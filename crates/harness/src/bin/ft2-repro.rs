//! `ft2-repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! ft2-repro <experiment> [...]
//!   experiments: table1 table2 fig2 fig3 fig4 fig6 fig7 fig8 fig9 fig10
//!                fig11 fig12 fig13 fig14 fig15 fig16 ablations all
//!
//! Sizing (env): FT2_INPUTS (12), FT2_TRIALS (30), FT2_SEED, FT2_QUICK=1
//! ```

use ft2_harness::experiments::{self, ExperimentCtx};
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "table1", "table2", "fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "ablations",
];

fn run_one(ctx: &ExperimentCtx, name: &str) -> bool {
    let t0 = Instant::now();
    println!("### {name} ###");
    match name {
        "table1" => {
            experiments::table1::run(ctx);
        }
        "table2" => {
            experiments::table2::run(ctx);
        }
        "fig2" => {
            experiments::fig02::run(ctx);
        }
        "fig3" => {
            experiments::fig03::run(ctx);
        }
        "fig4" => {
            experiments::fig04::run(ctx);
        }
        "fig6" => {
            experiments::fig06::run(ctx);
        }
        "fig7" => {
            experiments::fig07::run(ctx);
        }
        "fig8" => {
            experiments::fig08::run(ctx);
        }
        "fig9" => {
            experiments::fig09::run(ctx);
        }
        "fig10" => {
            experiments::fig10::run(ctx);
        }
        "fig11" => {
            experiments::fig11::run(ctx);
        }
        "fig12" => {
            experiments::fig12::run(ctx);
        }
        "fig13" => {
            experiments::fig13::run(ctx);
        }
        "fig14" => {
            experiments::fig14::run(ctx);
        }
        "fig15" => {
            experiments::fig15::run(ctx);
        }
        "fig16" => {
            experiments::fig16::run(ctx);
        }
        "ablations" => {
            experiments::ablations::run(ctx);
        }
        _ => return false,
    }
    eprintln!("### {name} done in {:.1?}\n", t0.elapsed());
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: ft2-repro <experiment>... | all");
        println!("experiments: {}", EXPERIMENTS.join(" "));
        println!("sizing via env: FT2_INPUTS, FT2_TRIALS, FT2_SEED, FT2_QUICK=1");
        return;
    }
    let ctx = ExperimentCtx::new();
    println!(
        "sizing: {} inputs x {} trials per campaign (seed {:#x})\n",
        ctx.settings.inputs, ctx.settings.trials, ctx.settings.seed
    );

    let list: Vec<&str> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    let t0 = Instant::now();
    for name in list {
        if !run_one(&ctx, name) {
            eprintln!("unknown experiment '{name}' — see --help");
            std::process::exit(2);
        }
    }
    eprintln!("all requested experiments finished in {:.1?}", t0.elapsed());
}
