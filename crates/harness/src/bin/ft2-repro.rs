//! `ft2-repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! ft2-repro [--resume] <experiment> [...]
//!   experiments: table1 table2 fig2 fig3 fig4 fig6 fig7 fig8 fig9 fig10
//!                fig11 fig12 fig13 fig14 fig15 fig16 ablations recovery
//!                persistent all
//!
//! ft2-repro replay <seed>/<input>/<trial> \
//!           [--model M] [--dataset D] [--scheme S] [--fault F] \
//!           [--duration transient|intermittent[:N]|persistent] \
//!           [--target activation|weight|kv-cache]
//!   re-runs exactly one campaign trial with verbose tracing: the injected
//!   site and corrupted value, the outcome, and per-layer NaN/Inf anomaly
//!   events. Crashed trials are listed by campaigns as seed/input/trial
//!   pointers for exactly this command.
//!
//! ft2-repro bench [--json] [--out PATH]
//!   measures prefill tok/s, decode tok/s and unprotected campaign trials/s
//!   on the ft2-bench fixtures; --json writes the schema-stable
//!   BENCH_decode.json baseline CI gates perf regressions against.
//!   Sizing: FT2_BENCH_REPS, FT2_BENCH_GEN, FT2_BENCH_TRIALS, FT2_QUICK=1.
//!
//! ft2-repro shards [--json] [--out PATH] [--smoke]
//!   sharded-execution sweep: for each swept zoo config and shard count,
//!   proves fault-free N-shard decode is token-identical to 1-shard,
//!   shard-level repair clears a persistent shard fault cheaper than a
//!   full restart, and a one-shard crash with degrade keeps serving
//!   (reported Outcome::Degraded, never silent). --json writes the
//!   schema-stable BENCH_shards.json baseline. Knobs: FT2_SHARDS,
//!   FT2_SHARD_DEGRADE=1, FT2_SHARD_HEARTBEAT_MS, FT2_QUICK=1.
//!
//! ft2-repro serve [--json] [--out PATH] [--smoke] [--web]
//!   continuous-batching serving gate: requests/s, accepted tok/s, TTFT
//!   and decode-only p50/p99 token latency for batch sizes {1, 4, 8},
//!   batch-N vs solo token identity on fault-free traffic, and a
//!   per-request fault storm (one lane of a batch-4 run) that must heal
//!   by rollback while every clean request stays token-identical —
//!   clean-request p99 inflation is reported. --json writes the
//!   schema-stable BENCH_serve.json baseline. --web instead serves
//!   continuous live traffic behind a zero-dependency HTTP/SSE endpoint:
//!   GET / is an embedded viewer (verdict-colored tokens, per-block
//!   heatmap, recovery markers, replica health), GET /events streams the
//!   scheduler's decisions as Server-Sent Events, and POST /inject takes
//!   live fault specs (kind=flip&block=2, kind=crash&replica=0, ...).
//!   Knobs: FT2_SERVE_MAX_BATCH, FT2_SERVE_QUEUE_DEPTH, FT2_BENCH_GEN,
//!   FT2_WEB_ADDR, FT2_WEB_MAX_CLIENTS, FT2_QUICK=1.
//!
//! ft2-repro replicas [--json] [--out PATH] [--smoke]
//!   cross-replica failover gate: a replica crash mid-batch hands its
//!   in-flight requests over with zero accepted-token loss and
//!   bit-identical continuations (typed FailedOver outcomes), a
//!   persistent one-replica activation storm trips the breaker into
//!   quarantine while clean requests stay identical (clean-replica p99
//!   inflation reported), and the quarantined replica rebuilds its
//!   weights live from the golden copy and rejoins faster than a full
//!   restart. --json writes the schema-stable BENCH_replicas.json
//!   baseline. Knobs: FT2_REPLICAS, FT2_REPLICA_RETRY_BUDGET,
//!   FT2_REPLICA_BACKOFF_MS, FT2_REPLICA_QUARANTINE_ERRS, FT2_QUICK=1.
//!
//! ft2-repro lint [--json] [--root PATH]
//!   static analysis: the repo-specific source lints (unsafe-safety,
//!   nan-comparison, env-knob, zero-skip) plus the protection-coverage
//!   proof (critical-layer clamp taps across all seven zoo configs,
//!   outcome pricing, checkpoint versions). Exits non-zero on any finding
//!   or coverage gap; --json emits the schema-stable report CI greps.
//!
//! Sizing (env): FT2_INPUTS (12), FT2_TRIALS (30), FT2_SEED, FT2_QUICK=1
//!
//! Resilience (env):
//!   FT2_CHECKPOINT_EVERY   checkpoint the campaign aggregate every N
//!                          trials (enables checkpointing)
//!   FT2_CHECKPOINT_DIR     checkpoint directory (results/checkpoints)
//!   FT2_RESUME=1           same as --resume: continue compatible
//!                          checkpoints bit-identically
//!   FT2_TRIAL_DEADLINE_MS  per-trial wall-clock watchdog (Hang/DUE)
//!   FT2_TRIAL_TOKEN_BUDGET per-trial generation-step watchdog
//!   FT2_RECOVERY_RETRIES   token-rollback retry budget per decode step
//!   FT2_STORM_THRESHOLD    corrections per step that escalate to a storm
//! ```

use ft2_harness::experiments::replay::ReplaySpec;
use ft2_harness::experiments::{self, ExperimentCtx};
use ft2_harness::{
    bench, lint, replicas, serve, shards, webserve, BENCH_BASELINE_PATH,
    REPLICAS_BASELINE_PATH, SERVE_BASELINE_PATH, SHARDS_BASELINE_PATH,
};
use std::path::PathBuf;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "table1", "table2", "fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "ablations", "recovery",
    "persistent",
];

fn run_one(ctx: &ExperimentCtx, name: &str) -> bool {
    let t0 = Instant::now();
    println!("### {name} ###");
    match name {
        "table1" => {
            experiments::table1::run(ctx);
        }
        "table2" => {
            experiments::table2::run(ctx);
        }
        "fig2" => {
            experiments::fig02::run(ctx);
        }
        "fig3" => {
            experiments::fig03::run(ctx);
        }
        "fig4" => {
            experiments::fig04::run(ctx);
        }
        "fig6" => {
            experiments::fig06::run(ctx);
        }
        "fig7" => {
            experiments::fig07::run(ctx);
        }
        "fig8" => {
            experiments::fig08::run(ctx);
        }
        "fig9" => {
            experiments::fig09::run(ctx);
        }
        "fig10" => {
            experiments::fig10::run(ctx);
        }
        "fig11" => {
            experiments::fig11::run(ctx);
        }
        "fig12" => {
            experiments::fig12::run(ctx);
        }
        "fig13" => {
            experiments::fig13::run(ctx);
        }
        "fig14" => {
            experiments::fig14::run(ctx);
        }
        "fig15" => {
            experiments::fig15::run(ctx);
        }
        "fig16" => {
            experiments::fig16::run(ctx);
        }
        "ablations" => {
            experiments::ablations::run(ctx);
        }
        "recovery" => {
            experiments::recovery::run(ctx);
        }
        "persistent" => {
            experiments::persistent::run(ctx);
        }
        _ => return false,
    }
    eprintln!("### {name} done in {:.1?}\n", t0.elapsed());
    true
}

fn run_replay(args: &[String]) -> Result<(), String> {
    let triple = args
        .first()
        .ok_or("usage: ft2-repro replay <seed>/<input>/<trial> [options]")?;
    let mut spec = ReplaySpec::parse(triple)?;
    let mut rest = args[1..].iter();
    while let Some(key) = rest.next() {
        let value = rest
            .next()
            .ok_or_else(|| format!("option {key} needs a value"))?;
        spec.set(key, value)?;
    }
    let ctx = ExperimentCtx::new();
    experiments::replay::run(&ctx, &spec)
}

fn run_bench(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut out = PathBuf::from(BENCH_BASELINE_PATH);
    let mut rest = args.iter();
    while let Some(key) = rest.next() {
        match key.as_str() {
            "--json" => json = true,
            "--out" => {
                out = PathBuf::from(
                    rest.next().ok_or("option --out needs a value")?,
                );
            }
            other => return Err(format!("unknown bench option {other}")),
        }
    }
    let pool = ft2_parallel::WorkStealingPool::with_default_threads();
    let t0 = Instant::now();
    let report = bench::run(&pool);
    eprintln!("### bench done in {:.1?}", t0.elapsed());
    println!("{}", report.summary());
    if json {
        bench::write_json(&report, &out)?;
        println!("wrote {}", out.display());
    }
    Ok(())
}

fn run_shards(args: &[String]) -> Result<bool, String> {
    let mut json = false;
    let mut smoke = false;
    let mut out = PathBuf::from(SHARDS_BASELINE_PATH);
    let mut rest = args.iter();
    while let Some(key) = rest.next() {
        match key.as_str() {
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--out" => {
                out = PathBuf::from(
                    rest.next().ok_or("option --out needs a value")?,
                );
            }
            other => return Err(format!("unknown shards option {other}")),
        }
    }
    let pool = ft2_parallel::WorkStealingPool::with_default_threads();
    let t0 = Instant::now();
    let report = shards::run(&pool, smoke);
    eprintln!("### shards done in {:.1?}", t0.elapsed());
    println!("{}", report.summary());
    if json {
        shards::write_json(&report, &out)?;
        println!("wrote {}", out.display());
    }
    Ok(report.ok())
}

fn run_serve(args: &[String]) -> Result<bool, String> {
    let mut json = false;
    let mut smoke = false;
    let mut web = false;
    let mut out = PathBuf::from(SERVE_BASELINE_PATH);
    let mut rest = args.iter();
    while let Some(key) = rest.next() {
        match key.as_str() {
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--web" => web = true,
            "--out" => {
                out = PathBuf::from(
                    rest.next().ok_or("option --out needs a value")?,
                );
            }
            other => return Err(format!("unknown serve option {other}")),
        }
    }
    let pool = ft2_parallel::WorkStealingPool::with_default_threads();
    if web {
        let config = webserve::WebServeConfig::from_env();
        // Runs until the process is stopped; the stop flag exists for
        // library callers (tests bound the loop instead).
        let stop = std::sync::atomic::AtomicBool::new(false);
        let stats = webserve::run(&pool, &config, &stop, |addr| {
            println!("listening on http://{addr}");
        })?;
        println!(
            "served {} (failed {}), {} live injects, identity {}",
            stats.served,
            stats.failed,
            stats.injects,
            if stats.identity_ok { "ok" } else { "VIOLATED" }
        );
        return Ok(stats.identity_ok);
    }
    let t0 = Instant::now();
    let report = serve::run(&pool, smoke);
    eprintln!("### serve done in {:.1?}", t0.elapsed());
    println!("{}", report.summary());
    if json {
        serve::write_json(&report, &out)?;
        println!("wrote {}", out.display());
    }
    Ok(report.ok())
}

fn run_replicas(args: &[String]) -> Result<bool, String> {
    let mut json = false;
    let mut smoke = false;
    let mut out = PathBuf::from(REPLICAS_BASELINE_PATH);
    let mut rest = args.iter();
    while let Some(key) = rest.next() {
        match key.as_str() {
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--out" => {
                out = PathBuf::from(
                    rest.next().ok_or("option --out needs a value")?,
                );
            }
            other => return Err(format!("unknown replicas option {other}")),
        }
    }
    let pool = ft2_parallel::WorkStealingPool::with_default_threads();
    let t0 = Instant::now();
    let report = replicas::run(&pool, smoke);
    eprintln!("### replicas done in {:.1?}", t0.elapsed());
    println!("{}", report.summary());
    if json {
        replicas::write_json(&report, &out)?;
        println!("wrote {}", out.display());
    }
    Ok(report.ok())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: ft2-repro [--resume] <experiment>... | all");
        println!("       ft2-repro replay <seed>/<input>/<trial> [--model M] [--dataset D] [--scheme S] [--fault F] [--duration D] [--target T]");
        println!("       ft2-repro lint [--json] [--root PATH]");
        println!("         source lints + the protection-coverage proof; non-zero exit");
        println!("         on any finding, unprotected critical layer, unpriced outcome");
        println!("         or mishandled checkpoint version");
        println!("       ft2-repro bench [--json] [--out PATH]");
        println!("         measures prefill/decode tok/s and campaign trials/s on the");
        println!("         ft2-bench fixtures; --json writes a schema-stable baseline");
        println!("         ({BENCH_BASELINE_PATH} by default) for perf-regression gating;");
        println!("         sizing via FT2_BENCH_REPS, FT2_BENCH_GEN, FT2_BENCH_TRIALS, FT2_QUICK=1");
        println!("       ft2-repro shards [--json] [--out PATH] [--smoke]");
        println!("         sharded-execution sweep: N-shard token identity, shard-level");
        println!("         repair vs full restart, crash + degraded-mode serving; --json");
        println!("         writes the schema-stable {SHARDS_BASELINE_PATH} baseline;");
        println!("         knobs: FT2_SHARDS, FT2_SHARD_DEGRADE=1, FT2_SHARD_HEARTBEAT_MS");
        println!("       ft2-repro serve [--json] [--out PATH] [--smoke] [--web]");
        println!("         continuous-batching serving gate: requests/s, TTFT and decode-only");
        println!("         p50/p99 token latency for batch sizes {{1, 4, 8}}, batch-vs-solo");
        println!("         token identity, and clean-request p99 inflation under a");
        println!("         per-request fault storm; --json writes the schema-stable");
        println!("         {SERVE_BASELINE_PATH} baseline; --web serves live traffic behind");
        println!("         an HTTP/SSE endpoint (embedded viewer on GET /, event stream on");
        println!("         GET /events, live fault injection on POST /inject);");
        println!("         knobs: FT2_SERVE_MAX_BATCH, FT2_SERVE_QUEUE_DEPTH, FT2_BENCH_GEN,");
        println!("         FT2_WEB_ADDR, FT2_WEB_MAX_CLIENTS");
        println!("       ft2-repro replicas [--json] [--out PATH] [--smoke]");
        println!("         cross-replica failover gate: zero-token-loss bit-identical");
        println!("         crash handoff, breaker-driven quarantine under a one-replica");
        println!("         storm, and live golden-copy rebuild that beats a full restart;");
        println!("         --json writes the schema-stable {REPLICAS_BASELINE_PATH} baseline;");
        println!("         knobs: FT2_REPLICAS, FT2_REPLICA_RETRY_BUDGET,");
        println!("         FT2_REPLICA_BACKOFF_MS, FT2_REPLICA_QUARANTINE_ERRS");
        println!("experiments: {}", EXPERIMENTS.join(" "));
        println!("sizing via env: FT2_INPUTS, FT2_TRIALS, FT2_SEED, FT2_QUICK=1");
        println!("resilience: --resume (or FT2_RESUME=1) resumes interrupted campaigns;");
        println!("  FT2_CHECKPOINT_EVERY, FT2_CHECKPOINT_DIR control checkpointing;");
        println!("  FT2_TRIAL_DEADLINE_MS, FT2_TRIAL_TOKEN_BUDGET arm the trial watchdog;");
        println!("  FT2_RECOVERY_RETRIES arms token-rollback recovery (FT2_STORM_THRESHOLD tunes it);");
        println!("  FT2_SCRUB_TILES_PER_STEP, FT2_KV_GUARD=1, FT2_RECOVERY_REPAIR=1 arm the integrity layer");
        return;
    }

    if args[0] == "replay" {
        if let Err(e) = run_replay(&args[1..]) {
            eprintln!("replay failed: {e}");
            std::process::exit(2);
        }
        return;
    }

    if args[0] == "bench" {
        if let Err(e) = run_bench(&args[1..]) {
            eprintln!("bench failed: {e}");
            std::process::exit(2);
        }
        return;
    }

    if args[0] == "shards" {
        match run_shards(&args[1..]) {
            Ok(true) => return,
            Ok(false) => {
                eprintln!("shards sweep failed a guarantee — see the summary above");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("shards failed: {e}");
                std::process::exit(2);
            }
        }
    }

    if args[0] == "serve" {
        match run_serve(&args[1..]) {
            Ok(true) => return,
            Ok(false) => {
                eprintln!("serving gate failed a guarantee — see the summary above");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("serve failed: {e}");
                std::process::exit(2);
            }
        }
    }

    if args[0] == "replicas" {
        match run_replicas(&args[1..]) {
            Ok(true) => return,
            Ok(false) => {
                eprintln!("replicas gate failed a guarantee — see the summary above");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("replicas failed: {e}");
                std::process::exit(2);
            }
        }
    }

    if args[0] == "lint" {
        match lint::LintArgs::parse(&args[1..]).and_then(|a| lint::run(&a)) {
            Ok(code) => std::process::exit(code),
            Err(e) => {
                eprintln!("lint failed: {e}");
                std::process::exit(2);
            }
        }
    }

    let resume_flag = args.iter().any(|a| a == "--resume");
    args.retain(|a| a != "--resume");

    let mut ctx = ExperimentCtx::new();
    ctx.resilience.resume |= resume_flag;
    println!(
        "sizing: {} inputs x {} trials per campaign (seed {:#x})\n",
        ctx.settings.inputs, ctx.settings.trials, ctx.settings.seed
    );
    if ctx.resilience.enabled() {
        println!(
            "checkpointing: every {} trials under {}{}\n",
            ctx.resilience.cadence(),
            ctx.resilience.checkpoint_dir.display(),
            if ctx.resilience.resume { " (resuming)" } else { "" }
        );
    }

    let list: Vec<&str> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    let t0 = Instant::now();
    for name in list {
        if !run_one(&ctx, name) {
            eprintln!("unknown experiment '{name}' — see --help");
            std::process::exit(2);
        }
    }
    eprintln!("all requested experiments finished in {:.1?}", t0.elapsed());
}
