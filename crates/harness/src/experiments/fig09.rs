//! Figure 9 — bound-scaling sweep: SDC of FT2 with different scale factors
//! (Qwen2-7B, GSM8K). Unscaled first-token bounds are too tight (they clip
//! benign decode values); any scale ≥ 1.25 recovers, and the exact choice
//! barely matters.

use super::{prepare_pair, run_campaign, ExperimentCtx};
use crate::report::{format_pct, Table};
use ft2_core::SchemeFactory;
use ft2_fault::{FaultModel, Unprotected};
use ft2_model::ZooModel;
use ft2_tasks::DatasetId;

/// Run the experiment and emit its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let spec = ZooModel::Qwen2_7B.spec();
    let dataset = DatasetId::Gsm8k;
    let pair = prepare_pair(ctx, &spec, dataset);

    let mut table = Table::new(
        "Fig. 9 — SDC vs FT2 bound scale factor (Qwen2-7B, GSM8K, EXP faults)",
        &["configuration", "sdc_rate", "ci95"],
    );
    let r = run_campaign(ctx, &pair, dataset, FaultModel::ExponentBit, &Unprotected);
    table.row(vec![
        "no protection".into(),
        format_pct(r.sdc_rate()),
        format!("±{}", format_pct(r.sdc_ci95())),
    ]);

    for scale in [1.0f32, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0] {
        let factory = SchemeFactory::ft2_with_scale(pair.model.config(), scale);
        let r = run_campaign(ctx, &pair, dataset, FaultModel::ExponentBit, &factory);
        table.row(vec![
            format!("FT2, scale {scale}"),
            format_pct(r.sdc_rate()),
            format!("±{}", format_pct(r.sdc_ci95())),
        ]);
    }
    ctx.emit("fig09_bound_scaling", &table);
    table
}
