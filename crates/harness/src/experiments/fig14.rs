//! Figure 14 — FT2's runtime overhead per model: measured on the simulator
//! (wall-clock with/without the protection taps) and estimated at paper
//! scale with the A100 roofline model. Memory overhead (stored bounds) is
//! also reported, matching §5.2.2's 288–512 B.

use super::ExperimentCtx;
use crate::report::Table;
use ft2_core::critical::critical_layers;
use ft2_core::{Scheme, SchemeFactory};
use ft2_fault::ProtectionFactory;
use ft2_hw::{CostModel, WorkloadShape, A100};
use ft2_model::{TapList, ZooModel};
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::DatasetId;
use std::time::Instant;

/// Median-of-runs wall time of one generation with the given taps factory.
fn measure(
    model: &ft2_model::Model,
    prompt: &[u32],
    gen: usize,
    factory: Option<&SchemeFactory>,
    reps: usize,
) -> f64 {
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        match factory {
            None => {
                let mut taps = TapList::new();
                let _ = model.generate(prompt, gen, &mut taps);
            }
            Some(f) => {
                let mut boxes = f.make();
                let mut taps = TapList::new();
                for b in boxes.iter_mut() {
                    taps.push(b.as_mut());
                }
                let _ = model.generate(prompt, gen, &mut taps);
            }
        }
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Run the experiment and emit its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let mut table = Table::new(
        "Fig. 14 — FT2 runtime overhead",
        &[
            "model",
            "simulator_overhead",
            "A100_model_overhead",
            "protected_layers",
            "bounds_memory",
        ],
    );
    let a100 = CostModel::new(A100);
    let reps = 9;

    for m in ZooModel::ALL {
        let spec = m.spec();
        let model = spec.build();
        let prompts = generate_prompts(DatasetId::Squad, 1, ctx.settings.seed ^ 0x14);
        let gen = ctx.settings.gen_qa;
        let base = measure(&model, &prompts[0], gen, None, reps);
        let ft2 = SchemeFactory::new(Scheme::Ft2, model.config(), None);
        let with = measure(&model, &prompts[0], gen, Some(&ft2), reps);
        let sim_overhead = (with - base) / base;

        let shape = WorkloadShape::from_spec(&spec);
        let paper_overhead = a100.protection_overhead(&shape, 150, 60);

        let n_critical = critical_layers(spec.config.style).len() * spec.paper.blocks;
        // The paper stores bounds as two FP16 values per protected layer.
        let bounds_bytes = n_critical * 2 * 2;

        table.row(vec![
            spec.name().to_string(),
            format!("{:.2}%", sim_overhead * 100.0),
            format!("{:.2}%", paper_overhead * 100.0),
            n_critical.to_string(),
            format!("{bounds_bytes} B"),
        ]);
    }
    ctx.emit("fig14_overhead", &table);
    table
}
