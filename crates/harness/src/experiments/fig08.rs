//! Figure 8 — per-layer neuron value distributions and the fraction of
//! NaN-vulnerable values (OPT-6.7B, SQuAD, one inference, block 1).
//!
//! The split this figure establishes: non-critical layers (K/Q/FC1) are
//! wide, with a large NaN-vulnerable share; critical layers (V/OUT/FC2)
//! concentrate near zero.

use super::ExperimentCtx;
use crate::report::Table;
use ft2_model::hooks::RecordingTap;
use ft2_model::{TapList, ZooModel};
use ft2_numeric::bits::{nan_vulnerable_fraction, FloatFormat};
use ft2_numeric::{Histogram, OnlineStats};
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::DatasetId;

/// Run the experiment and emit its table (plus ASCII histograms).
pub fn run(ctx: &ExperimentCtx) -> Table {
    let spec = ZooModel::Opt6_7B.spec();
    let model = spec.build();
    // "input ID 686": deterministically pick one input from a large sample.
    let prompts = generate_prompts(DatasetId::Squad, 687, ctx.settings.seed ^ 0x686);
    let prompt = &prompts[686];

    let mut rec = RecordingTap::for_block(1);
    {
        let mut taps = TapList::new();
        taps.push(&mut rec);
        let _ = model.generate(prompt, ctx.settings.gen_qa, &mut taps);
    }

    let mut table = Table::new(
        "Fig. 8 — neuron value distributions, OPT-6.7B block 1 (SQuAD input 686)",
        &["layer", "mean", "std", "min", "max", "nan_vulnerable_pct", "critical"],
    );
    let layers = model.config().block_layers();
    for &kind in layers {
        let mut values: Vec<f32> = Vec::new();
        for (c, data) in &rec.captures {
            if c.point.layer == kind {
                values.extend_from_slice(data);
            }
        }
        let mut stats = OnlineStats::new();
        for &v in &values {
            stats.push(v as f64);
        }
        let frac = nan_vulnerable_fraction(&values, FloatFormat::F16);
        let crit = ft2_core::critical::CriticalityReport::table1_expectation(kind);
        table.row(vec![
            kind.name().to_string(),
            format!("{:.3}", stats.mean()),
            format!("{:.3}", stats.std_dev()),
            format!("{:.3}", stats.min()),
            format!("{:.3}", stats.max()),
            format!("{:.2}%", frac * 100.0),
            if crit { "Y" } else { "N" }.into(),
        ]);

        // Companion ASCII histogram for the figure's density panels.
        let mut h = Histogram::new(-4.0, 4.0, 16);
        h.extend(values.iter().map(|&v| v as f64));
        println!("-- {} --", kind.name());
        print!("{}", h.ascii(40));
    }
    ctx.emit("fig08_value_distributions", &table);
    table
}
