//! Ablations beyond the paper's figures, quantifying the design choices
//! DESIGN.md calls out:
//!
//! 1. **Correction policy** (Take-away #8): clamp-to-bound vs clip-to-zero
//!    under FT2's coverage and bounds, on an outlier-bearing Llama-family
//!    model.
//! 2. **Coverage**: FT2's critical-layer set vs protecting every linear
//!    layer (the "nearly 2× overhead" naive option) vs each baseline set.
//! 3. **Step weighting**: the time-uniform fault model vs a
//!    computation-uniform one (which over-weights the prefill and thus
//!    stresses FT2's unprotected first-token window).

use super::{prepare_pair, run_campaign, ExperimentCtx};
use crate::report::{format_pct, Table};
use ft2_core::{Scheme, SchemeFactory};
use ft2_fault::{Campaign, FaultModel, StepWeighting, Unprotected};
use ft2_model::ZooModel;
use ft2_tasks::DatasetId;

/// Run all ablations and emit their tables.
pub fn run(ctx: &ExperimentCtx) -> Vec<Table> {
    let mut out = Vec::new();

    // 1 + 2: correction policy and coverage on Vicuna-7B + SQuAD, EXP.
    let spec = ZooModel::Vicuna7B.spec();
    let dataset = DatasetId::Squad;
    let pair = prepare_pair(ctx, &spec, dataset);
    let mut t = Table::new(
        "Ablation — correction policy & coverage (Vicuna-7B, SQuAD, EXP)",
        &["scheme", "sdc_rate", "ci95"],
    );
    for scheme in [
        Scheme::NoProtection,
        Scheme::Ft2,
        Scheme::Ft2ClipToZero,
        Scheme::FullProtection,
    ] {
        let factory = SchemeFactory::new(
            scheme,
            pair.model.config(),
            scheme.needs_offline_bounds().then(|| pair.offline.clone()),
        );
        let r = run_campaign(ctx, &pair, dataset, FaultModel::ExponentBit, &factory);
        t.row(vec![
            scheme.name().to_string(),
            format_pct(r.sdc_rate()),
            format!("±{}", format_pct(r.sdc_ci95())),
        ]);
    }
    ctx.emit("ablation_correction_coverage", &t);
    out.push(t);

    // 1b: Take-away #8's real content — the correction policy decides the
    // fate of *legitimate* large neuron values when bounds are too tight
    // (here: bounds profiled on a mismatched corpus at unscaled width).
    // Clamp-to-bound keeps a truncated version of the outlier; clip-to-zero
    // destroys it and corrupts fault-free inference.
    {
        use ft2_core::critical::critical_layers;
        use ft2_core::profile::offline_profile;
        use ft2_core::protect::{Correction, Coverage, NanPolicy, Protector};
        use ft2_fault::{Outcome, ProtectionFactory};
        use ft2_model::LayerTap;
        use ft2_tasks::datasets::generate_prompts;

        struct PolicyFactory {
            kinds: Vec<ft2_model::LayerKind>,
            offline: std::sync::Arc<ft2_core::profile::OfflineBounds>,
            correction: Correction,
        }
        impl ProtectionFactory for PolicyFactory {
            fn make(&self) -> Vec<Box<dyn LayerTap>> {
                vec![Box::new(Protector::offline(
                    Coverage::linears(self.kinds.clone()),
                    self.offline.linear.clone(),
                    self.correction,
                    NanPolicy::ToZero,
                ))]
            }
        }

        let judge = pair.task.judge();
        let cfg = ctx.settings.campaign(dataset, FaultModel::ExponentBit);
        let campaign = Campaign::new(&pair.model, &pair.prompts, &judge, cfg, &ctx.pool);
        // Mismatched bounds: profiled on TweetEval at its own short length.
        let foreign = generate_prompts(
            ft2_tasks::DatasetId::TweetEval,
            ctx.settings.profile_inputs / 4,
            ctx.settings.seed ^ 0x0FF11E,
        );
        let foreign_bounds = std::sync::Arc::new(offline_profile(
            &pair.model,
            &foreign,
            ft2_tasks::DatasetId::TweetEval.typical_gen_tokens(),
            &ctx.pool,
        ));
        let mut t = Table::new(
            "Ablation — Take-away #8: correction policy under mismatched bounds, fault-free (Vicuna-7B, SQuAD)",
            &["correction", "fault_free_correct_pct"],
        );
        for (name, correction) in [
            ("clamp to bound (FT2)", Correction::ClampToBound),
            ("clip to zero (CNN-era)", Correction::ClipToZero),
        ] {
            let f = PolicyFactory {
                kinds: critical_layers(pair.model.config().style),
                offline: foreign_bounds.clone(),
                correction,
            };
            let outcomes = campaign.run_fault_free(&f, &ctx.pool);
            let correct = outcomes.iter().filter(|o| **o != Outcome::Sdc).count();
            t.row(vec![
                name.to_string(),
                format!("{:.2}%", correct as f64 / outcomes.len() as f64 * 100.0),
            ]);
        }
        ctx.emit("ablation_takeaway8_fault_free", &t);
        out.push(t);
    }

    // 3: step weighting.
    let judge = pair.task.judge();
    let mut t = Table::new(
        "Ablation — fault-step weighting (Vicuna-7B, SQuAD, EXP)",
        &["weighting", "scheme", "sdc_rate", "first_token_fault_share"],
    );
    for (name, weighting) in [
        ("time-uniform (paper)", StepWeighting::default()),
        ("computation-uniform", StepWeighting::ByComputation),
    ] {
        let mut cfg = ctx.settings.campaign(dataset, FaultModel::ExponentBit);
        cfg.step_weighting = weighting;
        let campaign = Campaign::new(&pair.model, &pair.prompts, &judge, cfg, &ctx.pool);
        for (scheme_name, result) in [
            (
                "No Protection",
                super::run_checkpointed(ctx, &campaign, dataset, &Unprotected),
            ),
            (
                "FT2",
                super::run_checkpointed(
                    ctx,
                    &campaign,
                    dataset,
                    &SchemeFactory::new(Scheme::Ft2, pair.model.config(), None),
                ),
            ),
        ] {
            let share =
                result.first_token_faults.total() as f64 / result.counts.total().max(1) as f64;
            t.row(vec![
                name.to_string(),
                scheme_name.to_string(),
                format_pct(result.sdc_rate()),
                format_pct(share),
            ]);
        }
    }
    ctx.emit("ablation_step_weighting", &t);
    out.push(t);

    // 4: the duplication endpoint the paper's limitations section concedes
    // for safety-critical settings — 0% SDC at ~2x cost, vs FT2's
    // few-percent overhead.
    {
        use ft2_fault::run_dmr_campaign;
        let judge = pair.task.judge();
        let cfg = ctx.settings.campaign(dataset, FaultModel::ExponentBit);
        let ft2 = SchemeFactory::new(Scheme::Ft2, pair.model.config(), None);
        let campaign = Campaign::new(&pair.model, &pair.prompts, &judge, cfg.clone(), &ctx.pool);
        let ft2_result = super::run_checkpointed(ctx, &campaign, dataset, &ft2);
        let dmr = run_dmr_campaign(&pair.model, &pair.prompts, &judge, &cfg, &ctx.pool);
        let mut t = Table::new(
            "Ablation — FT2 vs dual modular redundancy (Vicuna-7B, SQuAD, EXP)",
            &["technique", "sdc_rate", "execution_overhead"],
        );
        t.row(vec![
            "FT2".into(),
            format_pct(ft2_result.sdc_rate()),
            "~3-9% (Fig. 14)".into(),
        ]);
        t.row(vec![
            "DMR (duplicate + re-execute)".into(),
            format_pct(dmr.sdc_after_recovery as f64 / dmr.trials.max(1) as f64),
            format!("{:.2}x executions", dmr.overhead_factor()),
        ]);
        ctx.emit("ablation_dmr", &t);
        out.push(t);
    }

    out
}
