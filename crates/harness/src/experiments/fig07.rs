//! Figure 7 — the two abnormal-value archetypes of binary16: a flip of the
//! highest exponent bit of a small value yields an extreme magnitude, and
//! the same flip on a value in (1,2) ∪ (−2,−1) yields NaN.

use super::ExperimentCtx;
use crate::report::Table;
use ft2_numeric::bits::is_nan_vulnerable_f16;
use ft2_numeric::F16;

fn describe(v: f32) -> (String, String, String) {
    let h = F16::from_f32(v);
    let flipped = h.flip_bit(14);
    let bits = format!("{:016b}", h.to_bits());
    let outcome = if flipped.is_nan() {
        "NaN".to_string()
    } else if flipped.is_infinite() {
        "Inf".to_string()
    } else {
        format!("{}", flipped.to_f32())
    };
    (bits, format!("{:016b}", flipped.to_bits()), outcome)
}

/// Run the demonstration and emit its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let mut table = Table::new(
        "Fig. 7 — highest-exponent-bit flip on FP16 values (sign|exp5|mant10)",
        &["value", "bits_before", "bits_after", "becomes", "nan_vulnerable"],
    );
    for v in [0.5f32, 0.0312, 1.5, -1.25, 1.0, 2.0, 3.75] {
        let (before, after, outcome) = describe(v);
        table.row(vec![
            format!("{v}"),
            before,
            after,
            outcome,
            if is_nan_vulnerable_f16(v) { "yes" } else { "no" }.into(),
        ]);
    }
    ctx.emit("fig07_bitflip_examples", &table);
    table
}
