//! Figure 10 — the percentage of inference time spent generating the first
//! token, per model/dataset/hardware, computed with the paper-scale
//! roofline model (plus the simulator's measured share for context).

use super::ExperimentCtx;
use crate::report::Table;
use ft2_hw::{CostModel, WorkloadShape, A100, GH200_H100};
use ft2_model::{TapList, ZooModel};
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::DatasetId;

fn paper_prompt(dataset: DatasetId) -> usize {
    match dataset {
        DatasetId::Squad => 180,
        DatasetId::Xtreme => 150,
        DatasetId::Gsm8k => 80,
        _ => 120,
    }
}

fn paper_gen(dataset: DatasetId) -> usize {
    match dataset.task_type() {
        ft2_tasks::TaskType::Qa => 60,
        ft2_tasks::TaskType::Math => 180,
    }
}

/// Run the experiment and emit its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let mut table = Table::new(
        "Fig. 10 — first-token share of inference time",
        &["model", "dataset", "A100_share", "H100_share", "simulator_share"],
    );
    let a100 = CostModel::new(A100);
    let h100 = CostModel::new(GH200_H100);

    for m in [ZooModel::Opt6_7B, ZooModel::GptJ6B, ZooModel::Llama2_7B, ZooModel::Qwen2_7B] {
        let spec = m.spec();
        let shape = WorkloadShape::from_spec(&spec);
        let model = spec.build();
        let datasets: Vec<DatasetId> = if spec.supports_math {
            vec![DatasetId::Squad, DatasetId::Gsm8k]
        } else {
            vec![DatasetId::Squad, DatasetId::Xtreme]
        };
        for ds in datasets {
            let prompt = paper_prompt(ds);
            let gen = paper_gen(ds);
            let ta = a100.generation_time(&shape, prompt, gen).first_token_share();
            let th = h100.generation_time(&shape, prompt, gen).first_token_share();

            // Measured on the simulator (its prefill is CPU-serial, so its
            // share is higher than a GPU's — shown for context only).
            let prompts = generate_prompts(ds, 1, ctx.settings.seed ^ 0x10);
            let mut taps = TapList::new();
            let out = model.generate(
                &prompts[0],
                ctx.settings.gen_tokens(ds.task_type()),
                &mut taps,
            );
            table.row(vec![
                spec.name().to_string(),
                ds.name().to_string(),
                format!("{:.2}%", ta * 100.0),
                format!("{:.2}%", th * 100.0),
                format!("{:.2}%", out.first_token_time_share() * 100.0),
            ]);
        }
    }
    ctx.emit("fig10_first_token_share", &table);
    table
}
