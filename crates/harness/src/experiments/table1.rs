//! Table 1 — layer criticality (from the heuristic) and the protection
//! coverage of every method, for both architecture families.

use super::ExperimentCtx;
use crate::report::Table;
use ft2_core::critical::{is_critical, CriticalityReport};
use ft2_core::Scheme;
use ft2_model::{ArchStyle, LayerKind};

/// Run the analysis and emit the coverage matrix.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let mut table = Table::new(
        "Table 1 — layer criticality and protection coverage",
        &[
            "layer",
            "critical (heuristic)",
            "critical (paper)",
            "Ranger",
            "MaxiMals",
            "Global Clipper",
            "FT2",
        ],
    );
    let methods = [
        Scheme::Ranger,
        Scheme::MaxiMals,
        Scheme::GlobalClipper,
        Scheme::Ft2,
    ];
    for kind in LayerKind::ALL {
        // A layer kind exists in exactly one family (or both for attention).
        let style = if matches!(
            kind,
            LayerKind::Fc1 | LayerKind::Fc2
        ) {
            ArchStyle::OptStyle
        } else {
            ArchStyle::LlamaStyle
        };
        let heuristic = is_critical(style, kind)
            .map(|c| if c { "Y" } else { "N" })
            .unwrap_or("-");
        let paper = if CriticalityReport::table1_expectation(kind) {
            "Y"
        } else {
            "N"
        };
        let mut cells = vec![
            kind.name().to_string(),
            heuristic.to_string(),
            paper.to_string(),
        ];
        for m in methods {
            // Ranger protects activation outputs only — no linear layer.
            let covered = m.covers_linear(style, kind);
            cells.push(if covered { "✓" } else { "" }.to_string());
        }
        table.row(cells);
    }
    ctx.emit("table1_coverage", &table);

    // Also verify the heuristic against the paper for both families.
    for style in [ArchStyle::OptStyle, ArchStyle::LlamaStyle] {
        let report = CriticalityReport::analyse(&probe_config(style));
        println!(
            "heuristic vs paper Table 1 ({:?}): {}",
            style,
            if report.matches_table1() { "MATCH" } else { "MISMATCH" }
        );
    }
    table
}

fn probe_config(style: ArchStyle) -> ft2_model::ModelConfig {
    match style {
        ArchStyle::OptStyle => ft2_model::ModelConfig::tiny_opt(),
        ArchStyle::LlamaStyle => ft2_model::ModelConfig::tiny_llama(),
    }
}
