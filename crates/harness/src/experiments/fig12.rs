//! Figure 12 — large neuron values in generative LLMs: DOWN_PROJ carries
//! outlier activations while UP/GATE_PROJ stay small (Vicuna-7B, SQuAD).
//! This is the observation behind FT2's clamp-to-bound correction.

use super::ExperimentCtx;
use crate::report::Table;
use ft2_model::hooks::RecordingTap;
use ft2_model::{LayerKind, TapList, ZooModel};
use ft2_numeric::stats::quantile;
use ft2_numeric::Histogram;
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::DatasetId;

/// Run the experiment and emit its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let spec = ZooModel::Vicuna7B.spec();
    let model = spec.build();
    let prompts = generate_prompts(DatasetId::Squad, 687, ctx.settings.seed ^ 0x686);
    let prompt = &prompts[686];

    let mut rec = RecordingTap::for_block(1);
    {
        let mut taps = TapList::new();
        taps.push(&mut rec);
        let _ = model.generate(prompt, ctx.settings.gen_qa, &mut taps);
    }

    let mut table = Table::new(
        "Fig. 12 — outlier activations, Vicuna-7B block 1 (SQuAD input 686)",
        &["layer", "p50_abs", "p99_abs", "max_abs", "max_over_p99"],
    );
    for kind in [LayerKind::DownProj, LayerKind::UpProj, LayerKind::GateProj] {
        let mut values: Vec<f64> = Vec::new();
        for (c, data) in &rec.captures {
            if c.point.layer == kind {
                values.extend(data.iter().map(|&v| (v as f64).abs()));
            }
        }
        let p50 = quantile(&values, 0.5);
        let p99 = quantile(&values, 0.99);
        let max = values.iter().copied().fold(0.0, f64::max);
        table.row(vec![
            kind.name().to_string(),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
            format!("{max:.3}"),
            format!("{:.1}x", max / p99.max(1e-9)),
        ]);
        let mut h = Histogram::new(-6.0, 6.0, 24);
        for (c, data) in &rec.captures {
            if c.point.layer == kind {
                h.extend(data.iter().map(|&v| v as f64));
            }
        }
        println!("-- {} --", kind.name());
        print!("{}", h.ascii(40));
    }
    ctx.emit("fig12_outlier_values", &table);
    table
}
