//! Figure 6 — layer criticality probe: protect *all* linear layers except
//! one kind and measure the SDC its faults leave behind (GPT-J-6B, SQuAD).
//! A tall bar means the excluded layer is critical.
//!
//! Statistical note: the paper injects into all layers and reports the
//! total SDC; most of those trials hit *protected* layers and carry no
//! signal about the excluded one. We instead inject only into the excluded
//! layer (`layer_filter`) and report the conditional SDC, plus the
//! absolute contribution (`conditional × fault share of the layer`), which
//! is the paper's bar height. Same experiment, far tighter error bars per
//! trial.

use super::{prepare_pair, run_checkpointed, ExperimentCtx, OfflineCoverageFactory};
use crate::report::{format_pct, Table};
use ft2_core::critical::CriticalityReport;
use ft2_fault::{Campaign, FaultModel};
use ft2_model::{LayerKind, ZooModel};
use ft2_tasks::DatasetId;

/// Run the experiment and emit its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let spec = ZooModel::GptJ6B.spec();
    let dataset = DatasetId::Squad;
    let pair = prepare_pair(ctx, &spec, dataset);
    let config = pair.model.config();
    let all: Vec<LayerKind> = config.block_layers().to_vec();
    let judge = pair.task.judge();

    // Fault share of each layer kind = its feature fraction (the sampler
    // weights layers by output features).
    let total_features: usize = all.iter().map(|&k| config.out_features(k)).sum();

    let mut table = Table::new(
        "Fig. 6 — SDC when one layer kind is left unprotected (GPTJ-6B, SQuAD, EXP faults)",
        &[
            "unprotected_layer",
            "conditional_sdc",
            "ci95",
            "fault_share",
            "absolute_sdc_contrib",
            "heuristic_says_critical",
        ],
    );

    for &excluded in &all {
        let kinds: Vec<LayerKind> = all.iter().copied().filter(|k| *k != excluded).collect();
        let factory = OfflineCoverageFactory {
            kinds,
            offline: pair.offline.clone(),
            name: format!("all but {}", excluded.name()),
        };
        let mut cfg = ctx.settings.campaign(dataset, FaultModel::ExponentBit);
        cfg.layer_filter = Some(vec![excluded]);
        // Conditional trials are cheap signal: use a higher count here.
        cfg.trials_per_input = ctx.settings.trials * 2;
        let campaign = Campaign::new(&pair.model, &pair.prompts, &judge, cfg, &ctx.pool);
        let r = run_checkpointed(ctx, &campaign, dataset, &factory);

        let share = config.out_features(excluded) as f64 / total_features as f64;
        table.row(vec![
            excluded.name().to_string(),
            format_pct(r.sdc_rate()),
            format!("±{}", format_pct(r.sdc_ci95())),
            format_pct(share),
            format_pct(r.sdc_rate() * share),
            if CriticalityReport::table1_expectation(excluded) {
                "Y".into()
            } else {
                "N".into()
            },
        ]);
    }
    ctx.emit("fig06_layer_criticality", &table);
    table
}
