//! Figure 13 — THE MAIN RESULT: SDC rate of every protection scheme across
//! the full evaluation grid (7 models × 3 datasets × 3 fault models),
//! plus the headline aggregate: FT2's average SDC-rate reduction.

use super::{prepare_pair, run_campaign, ExperimentCtx};
use crate::report::{format_pct, Table};
use crate::settings::EvalPair;
use ft2_core::{Scheme, SchemeFactory};
use ft2_fault::FaultModel;

/// Run the full grid and emit the main table plus aggregates.
pub fn run(ctx: &ExperimentCtx) -> (Table, Table) {
    let grid = EvalPair::evaluation_grid();
    let schemes = Scheme::PAPER_SET;

    let mut header: Vec<&str> = vec!["fault_model", "model", "dataset"];
    header.extend(schemes.iter().map(|s| s.name()));
    let mut table = Table::new("Fig. 13 — SDC rate per scheme (main evaluation)", &header);

    // scheme -> (sum of rates, count) for aggregates, per fault model and
    // overall.
    let mut agg: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut agg_by_fm: Vec<Vec<Vec<f64>>> =
        vec![vec![Vec::new(); schemes.len()]; FaultModel::ALL.len()];

    for pair_spec in &grid {
        let pair = prepare_pair(ctx, &pair_spec.model, pair_spec.dataset);
        for (fmi, fm) in FaultModel::ALL.iter().enumerate() {
            let mut cells = vec![
                fm.name().to_string(),
                pair_spec.model.name().to_string(),
                pair_spec.dataset.name().to_string(),
            ];
            for (si, scheme) in schemes.iter().enumerate() {
                let factory = SchemeFactory::new(
                    *scheme,
                    pair.model.config(),
                    scheme.needs_offline_bounds().then(|| pair.offline.clone()),
                );
                let r = run_campaign(ctx, &pair, pair_spec.dataset, *fm, &factory);
                cells.push(format_pct(r.sdc_rate()));
                agg[si].push(r.sdc_rate());
                agg_by_fm[fmi][si].push(r.sdc_rate());
            }
            table.row(cells);
        }
        eprintln!("  fig13: finished {}", pair_spec.label());
    }
    ctx.emit("fig13_main_grid", &table);

    // Aggregate table with the headline numbers.
    let mut header2: Vec<&str> = vec!["aggregate"];
    header2.extend(schemes.iter().map(|s| s.name()));
    header2.push("FT2 SDC reduction");
    let mut agg_table = Table::new("Fig. 13 — aggregates", &header2);

    let mean = |xs: &Vec<f64>| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let none_idx = 0; // Scheme::NoProtection is first in PAPER_SET
    let ft2_idx = schemes.len() - 1; // Scheme::Ft2 is last

    for (fmi, fm) in FaultModel::ALL.iter().enumerate() {
        let mut cells = vec![format!("avg over grid, {}", fm.name())];
        for per_scheme in &agg_by_fm[fmi] {
            cells.push(format_pct(mean(per_scheme)));
        }
        let red = 1.0 - mean(&agg_by_fm[fmi][ft2_idx]) / mean(&agg_by_fm[fmi][none_idx]).max(1e-12);
        cells.push(format_pct(red));
        agg_table.row(cells);
    }
    let mut cells = vec!["avg over everything".to_string()];
    for a in &agg {
        cells.push(format_pct(mean(a)));
    }
    let reduction = 1.0 - mean(&agg[ft2_idx]) / mean(&agg[none_idx]).max(1e-12);
    cells.push(format_pct(reduction));
    agg_table.row(cells);

    ctx.emit("fig13_aggregates", &agg_table);
    println!(
        "HEADLINE: FT2 reduces the average SDC rate by {} (paper: 92.92%)",
        format_pct(reduction)
    );
    (table, agg_table)
}
