//! Figure 16 — hardware sensitivity: A100 vs H100 (OPT-6.7B + SQuAD and
//! Qwen2-7B + XTREME).
//!
//! FT2 is a software-level technique, so SDC rates are
//! hardware-independent; the paper confirms this empirically and so do we:
//! the campaign is bit-identical under either profile (the simulator's
//! arithmetic does not depend on the timing model). The roofline latencies
//! give the per-platform context.

use super::{prepare_pair, run_campaign, ExperimentCtx};
use crate::report::{format_pct, Table};
use ft2_core::{Scheme, SchemeFactory};
use ft2_fault::{FaultModel, Unprotected};
use ft2_hw::{CostModel, WorkloadShape, A100, GH200_H100};
use ft2_model::ZooModel;
use ft2_tasks::DatasetId;

/// Run the experiment and emit its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let mut table = Table::new(
        "Fig. 16 — hardware sensitivity (EXP faults)",
        &[
            "model",
            "dataset",
            "scheme",
            "A100_sdc",
            "H100_sdc",
            "A100_latency_s",
            "H100_latency_s",
        ],
    );
    let a100 = CostModel::new(A100);
    let h100 = CostModel::new(GH200_H100);

    for (m, ds) in [
        (ZooModel::Opt6_7B, DatasetId::Squad),
        (ZooModel::Qwen2_7B, DatasetId::Xtreme),
    ] {
        let spec = m.spec();
        let shape = WorkloadShape::from_spec(&spec);
        let pair = prepare_pair(ctx, &spec, ds);
        let lat_a = a100.generation_time(&shape, 150, 60).total_s();
        let lat_h = h100.generation_time(&shape, 150, 60).total_s();

        let none = run_campaign(ctx, &pair, ds, FaultModel::ExponentBit, &Unprotected);
        let ft2_factory = SchemeFactory::new(Scheme::Ft2, pair.model.config(), None);
        let ft2 = run_campaign(ctx, &pair, ds, FaultModel::ExponentBit, &ft2_factory);

        for (scheme, r) in [("No Protection", &none), ("FT2", &ft2)] {
            table.row(vec![
                spec.name().to_string(),
                ds.name().to_string(),
                scheme.to_string(),
                format_pct(r.sdc_rate()),
                // Identical by construction: software-level protection.
                format_pct(r.sdc_rate()),
                format!("{lat_a:.2}"),
                format!("{lat_h:.2}"),
            ]);
        }
    }
    ctx.emit("fig16_hardware_sensitivity", &table);
    table
}
