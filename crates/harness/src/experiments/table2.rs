//! Table 2 — the evaluated models and tasks.

use super::ExperimentCtx;
use crate::report::Table;
use ft2_model::{model_zoo, ArchStyle};

/// Emit the model/task table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let mut table = Table::new(
        "Table 2 — models and tasks",
        &[
            "model",
            "paper_params",
            "task_type",
            "architecture",
            "sim_params",
            "sim_dims (h/blocks/ffn)",
        ],
    );
    for spec in model_zoo() {
        let arch = match spec.config.style {
            ArchStyle::OptStyle => "OPT-style (Fig. 1a)",
            ArchStyle::LlamaStyle => "Llama-style (Fig. 1b)",
        };
        table.row(vec![
            spec.name().to_string(),
            format!("{:.2}B", spec.paper.params / 1e9),
            if spec.supports_math { "QA/Math" } else { "QA" }.to_string(),
            arch.to_string(),
            format!("{}", spec.config.sim_params()),
            format!(
                "{}/{}/{}",
                spec.config.hidden, spec.config.blocks, spec.config.ffn
            ),
        ]);
    }
    ctx.emit("table2_models", &table);
    table
}
