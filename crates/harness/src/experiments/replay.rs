//! `ft2-repro replay` — deterministic single-trial replay.
//!
//! Every campaign trial derives its RNG stream from `(seed, input, trial)`,
//! so any trial — in particular a crashed one reported in a campaign's
//! crash list — can be re-run in isolation, bit-identically, with verbose
//! tracing: the sampled fault site, the corrupted value, numeric anomalies
//! per layer, and (for protected schemes) the protection verdict. This is
//! the debugging loop for "trial 12345 crashed at protect.rs:88": replay
//! it, watch the corruption propagate, fix the bug, replay again.

use crate::experiments::ExperimentCtx;
use ft2_core::profile::offline_profile;
use ft2_core::{Scheme, SchemeFactory};
use ft2_fault::{Campaign, FaultDuration, FaultModel, FaultTarget, Outcome};
use ft2_model::ZooModel;
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::DatasetId;
use std::sync::Arc;

/// A parsed `replay` invocation.
#[derive(Clone, Debug)]
pub struct ReplaySpec {
    /// Campaign master seed.
    pub seed: u64,
    /// Input index within the campaign.
    pub input: usize,
    /// Trial index within the input.
    pub trial: usize,
    /// Model to replay on.
    pub model: ZooModel,
    /// Dataset providing prompts and judging.
    pub dataset: DatasetId,
    /// Protection scheme active during the trial.
    pub scheme: Scheme,
    /// Fault model of the campaign.
    pub fault: FaultModel,
    /// Fault duration of the campaign (transient / intermittent / persistent).
    pub duration: FaultDuration,
    /// Fault target of the campaign (activation / weight / kv-cache).
    pub target: FaultTarget,
}

impl ReplaySpec {
    /// Parse the positional `<seed>/<input>/<trial>` triple (seed accepts
    /// decimal or `0x` hex) with defaults for the remaining fields.
    pub fn parse(triple: &str) -> Result<ReplaySpec, String> {
        let parts: Vec<&str> = triple.split('/').collect();
        if parts.len() != 3 {
            return Err(format!("expected <seed>/<input>/<trial>, got {triple:?}"));
        }
        let seed = parse_u64(parts[0])
            .ok_or_else(|| format!("bad seed {:?} (decimal or 0x hex)", parts[0]))?;
        let input = parts[1]
            .parse()
            .map_err(|_| format!("bad input index {:?}", parts[1]))?;
        let trial = parts[2]
            .parse()
            .map_err(|_| format!("bad trial index {:?}", parts[2]))?;
        Ok(ReplaySpec {
            seed,
            input,
            trial,
            model: ZooModel::Qwen2_1_5B,
            dataset: DatasetId::Squad,
            scheme: Scheme::NoProtection,
            fault: FaultModel::SingleBit,
            duration: FaultDuration::Transient,
            target: FaultTarget::Activation,
        })
    }

    /// Apply a `--model/--dataset/--scheme/--fault/--duration/--target`
    /// override.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "--model" => {
                self.model =
                    ZooModel::parse(value).ok_or_else(|| format!("unknown model {value:?}"))?;
            }
            "--dataset" => {
                self.dataset =
                    DatasetId::parse(value).ok_or_else(|| format!("unknown dataset {value:?}"))?;
            }
            "--scheme" => {
                self.scheme = parse_scheme(value)?;
            }
            "--fault" => {
                self.fault = FaultModel::parse(value)
                    .ok_or_else(|| format!("unknown fault model {value:?}"))?;
            }
            "--duration" => {
                self.duration = FaultDuration::parse(value)
                    .ok_or_else(|| format!("unknown fault duration {value:?}"))?;
            }
            "--target" => {
                self.target = FaultTarget::parse(value)
                    .ok_or_else(|| format!("unknown fault target {value:?}"))?;
            }
            other => return Err(format!("unknown replay option {other:?}")),
        }
        Ok(())
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_scheme(s: &str) -> Result<Scheme, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "none" | "no-protection" | "unprotected" => Scheme::NoProtection,
        "ranger" => Scheme::Ranger,
        "maximals" => Scheme::MaxiMals,
        "clipper" | "global-clipper" => Scheme::GlobalClipper,
        "ft2" => Scheme::Ft2,
        "ft2-offline" => Scheme::Ft2Offline,
        "ft2-clip-zero" => Scheme::Ft2ClipToZero,
        "full" | "full-protection" => Scheme::FullProtection,
        other => return Err(format!("unknown scheme {other:?}")),
    })
}

/// Replay one trial with verbose tracing, printing the report to stdout.
///
/// The campaign context (prompts, references, site derivation) is rebuilt
/// exactly as `run_campaign` builds it, so the replayed trial is the trial
/// the campaign ran.
pub fn run(ctx: &ExperimentCtx, spec: &ReplaySpec) -> Result<(), String> {
    let s = &ctx.settings;
    if spec.input >= s.inputs || spec.trial >= s.trials {
        return Err(format!(
            "trial {}/{} outside the campaign grid of {} inputs x {} trials \
             (set FT2_INPUTS/FT2_TRIALS to the original campaign sizing)",
            spec.input, spec.trial, s.inputs, s.trials
        ));
    }

    let model = spec.model.spec().build();
    let prompts = generate_prompts(spec.dataset, s.inputs, spec.seed ^ 0xEA71);
    let task = s.task_spec(spec.dataset);
    let judge = task.judge();
    let mut cfg = s.campaign(spec.dataset, spec.fault);
    cfg.seed = spec.seed;
    cfg.fault_duration = spec.duration;
    cfg.fault_target = spec.target;

    let offline = if spec.scheme.needs_offline_bounds() {
        let profile_prompts =
            generate_prompts(spec.dataset, s.profile_inputs, spec.seed ^ 0x7A0F11E);
        Some(Arc::new(offline_profile(
            &model,
            &profile_prompts,
            task.gen_tokens,
            &ctx.pool,
        )))
    } else {
        None
    };
    let factory = SchemeFactory::new(spec.scheme, model.config(), offline);

    let campaign = Campaign::new(&model, &prompts, &judge, cfg, &ctx.pool);
    let (record, trace) = campaign.trial_record_traced(&factory, spec.input, spec.trial);

    println!(
        "replay {:#x}/{}/{}  model={} dataset={} scheme={} fault={} duration={:?} target={}",
        spec.seed,
        spec.input,
        spec.trial,
        spec.model.spec().name(),
        spec.dataset.name(),
        spec.scheme.name(),
        spec.fault.name(),
        spec.duration,
        spec.target.name(),
    );
    let site = &record.site;
    println!(
        "fault site: step {} | block {} {} | element {} | bits {:?} ({}) | {} {}",
        site.step,
        site.point.block,
        site.point.layer.name(),
        site.element,
        site.bits,
        record.bit_class,
        site.duration.name(),
        site.target.name(),
    );
    match trace.injected {
        Some((original, corrupted)) => {
            println!("injected:   {original:e} -> {corrupted:e}");
        }
        None => println!("injected:   (site not reached before the trial ended)"),
    }
    match &record.outcome {
        Outcome::Crash { site, message } => {
            println!("outcome:    CRASH at {site}");
            println!("            {message}");
        }
        Outcome::Hang => println!("outcome:    HANG (watchdog abort)"),
        other => println!("outcome:    {other:?}"),
    }

    println!("reference:  {:?}", trace.reference);
    if record.outcome.is_due() {
        println!("faulty:     (no generation — trial aborted)");
    } else {
        println!("faulty:     {:?}", trace.tokens);
        match trace
            .reference
            .iter()
            .zip(&trace.tokens)
            .position(|(a, b)| a != b)
        {
            Some(k) => println!("            first divergence at token {k}"),
            None if trace.tokens.len() != trace.reference.len() => {
                println!("            diverges in length only")
            }
            None => println!("            streams identical"),
        }
    }

    println!(
        "anomalies:  {} event(s) over {} hook firings, peak |value| {:e}",
        trace.events.len(),
        trace.firings,
        trace.peak_abs
    );
    for e in &trace.events {
        println!(
            "  step {:>3} | block {} {:<9} {:?}: {} NaN, {} Inf, max|x| {:e}",
            e.step,
            e.point.block,
            e.point.layer.name(),
            e.hook,
            e.nan,
            e.inf,
            e.max_abs
        );
    }

    // Per-step detection budget of the accepted execution: this is the
    // evidence trail for why the engine rolled a token back (Storm) or let
    // it stand (Clean/Corrected). Steps are only recorded by the recovery-
    // aware engine path, so the table shows the prefill at step 0 and every
    // decode step exactly once.
    if !trace.steps.is_empty() {
        println!(
            "verdicts:   {} rollback(s), {} storm(s), {} weight repair(s), \
             {} kv repair(s), {} repair retry(ies) across the trial",
            record.rollbacks,
            record.storms,
            record.weight_repairs,
            record.kv_repairs,
            record.repair_retries
        );
        println!("  step | clamps | NaNs | verdict   | re-decodes");
        for s in &trace.steps {
            println!(
                "  {:>4} | {:>6} | {:>4} | {:<9} | {}",
                s.step,
                s.report.clamps,
                s.report.nans,
                format!("{:?}", s.report.verdict),
                s.redecodes
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_triple_and_overrides() {
        let mut spec = ReplaySpec::parse("0xF7/2/13").unwrap();
        assert_eq!((spec.seed, spec.input, spec.trial), (0xF7, 2, 13));
        spec.set("--dataset", "gsm8k").unwrap();
        assert_eq!(spec.dataset, DatasetId::Gsm8k);
        spec.set("--scheme", "ft2").unwrap();
        assert_eq!(spec.scheme, Scheme::Ft2);
        spec.set("--duration", "intermittent:3").unwrap();
        assert_eq!(spec.duration, FaultDuration::Intermittent { period: 3 });
        spec.set("--target", "weight").unwrap();
        assert_eq!(spec.target, FaultTarget::Weight);
        assert!(spec.set("--scheme", "nonsense").is_err());
        assert!(spec.set("--duration", "forever").is_err());
        assert!(spec.set("--target", "dram").is_err());
        assert!(ReplaySpec::parse("1/2").is_err());
        assert!(ReplaySpec::parse("x/2/3").is_err());
    }

    #[test]
    fn replay_runs_a_trial_end_to_end() {
        let ctx = crate::experiments::tests::tiny_ctx();
        let mut spec = ReplaySpec::parse("7/1/2").unwrap();
        spec.set("--fault", "exp").unwrap();
        run(&ctx, &spec).unwrap();
        // Out-of-grid indices are rejected, not panicked on.
        let bad = ReplaySpec::parse("7/999/0").unwrap();
        assert!(run(&ctx, &bad).unwrap_err().contains("outside the campaign"));
    }
}
