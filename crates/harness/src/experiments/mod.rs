//! Experiment drivers, one module per table/figure of the paper.

pub mod ablations;
pub mod fig02;
pub mod persistent;
pub mod recovery;
pub mod replay;
pub mod fig03;
pub mod fig04;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod table1;
pub mod table2;

use crate::report::{Csv, Table};
use crate::settings::{Resilience, Settings};
use ft2_core::profile::{offline_profile, OfflineBounds};
use ft2_core::protect::{Correction, Coverage, NanPolicy, Protector};
use ft2_fault::{Campaign, CampaignResult, CheckpointPolicy, ProtectionFactory};
use ft2_model::{LayerKind, LayerTap, Model, ModelSpec};
use ft2_parallel::WorkStealingPool;
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::{DatasetId, TaskSpec};
use std::sync::Arc;

/// Shared context: sizing, the worker pool, and the CSV sink.
pub struct ExperimentCtx {
    /// Experiment sizing.
    pub settings: Settings,
    /// Campaign checkpoint/resume behaviour.
    pub resilience: Resilience,
    /// Work-stealing pool shared by all campaigns.
    pub pool: WorkStealingPool,
    /// CSV artifact writer.
    pub csv: Csv,
}

impl Default for ExperimentCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl ExperimentCtx {
    /// Context with env-derived settings and a default-size pool.
    pub fn new() -> ExperimentCtx {
        ExperimentCtx {
            settings: Settings::from_env(),
            resilience: Resilience::from_env(),
            pool: WorkStealingPool::with_default_threads(),
            csv: Csv::default_dir(),
        }
    }

    /// Print a table and write its CSV artifact.
    pub fn emit(&self, name: &str, table: &Table) {
        table.print();
        match self.csv.write(name, table) {
            Ok(path) => println!("   -> {}", path.display()),
            Err(e) => eprintln!("   (csv write failed: {e})"),
        }
        println!();
    }
}

/// Everything needed to run campaigns for one (model, dataset) pair.
pub struct PairContext {
    /// The instantiated model.
    pub model: Model,
    /// Evaluation prompts.
    pub prompts: Vec<Vec<u32>>,
    /// Task spec (generation length, answer span).
    pub task: TaskSpec,
    /// Offline-profiled bounds (for the baselines), from a disjoint
    /// profiling split of the same dataset.
    pub offline: Arc<OfflineBounds>,
}

/// Build the model, prompts, task spec and offline bounds for a pair.
pub fn prepare_pair(
    ctx: &ExperimentCtx,
    spec: &ModelSpec,
    dataset: DatasetId,
) -> PairContext {
    let model = spec.build();
    let s = &ctx.settings;
    let prompts = generate_prompts(dataset, s.inputs, s.seed ^ 0xEA71);
    let task = s.task_spec(dataset);
    // Profiling split: same dataset, different seed (a "training split").
    let profile_prompts = generate_prompts(dataset, s.profile_inputs, s.seed ^ 0x7A0F11E);
    let offline = Arc::new(offline_profile(
        &model,
        &profile_prompts,
        task.gen_tokens,
        &ctx.pool,
    ));
    PairContext {
        model,
        prompts,
        task,
        offline,
    }
}

/// Run one campaign (one fault model, one protection) on a prepared pair.
///
/// When checkpointing is enabled (see [`Resilience`]), the campaign runs
/// through the resumable path: its aggregate is persisted periodically
/// under a fingerprint-derived filename and, with `--resume`, a compatible
/// checkpoint left by an interrupted earlier invocation is continued —
/// bit-identically to an uninterrupted run.
pub fn run_campaign(
    ctx: &ExperimentCtx,
    pair: &PairContext,
    dataset: DatasetId,
    fault_model: ft2_fault::FaultModel,
    protection: &dyn ProtectionFactory,
) -> CampaignResult {
    let judge = pair.task.judge();
    let cfg = ctx.settings.campaign(dataset, fault_model);
    let campaign = Campaign::new(&pair.model, &pair.prompts, &judge, cfg, &ctx.pool);
    run_checkpointed(ctx, &campaign, dataset, protection)
}

/// Checkpoint-aware execution of an already-built campaign. Drivers that
/// need a non-standard [`ft2_fault::CampaignConfig`] (layer filters, step
/// filters, scale sweeps) build their own `Campaign` and route it through
/// here so `--resume` covers them too; the checkpoint filename hashes the
/// full config fingerprint, so every variant gets its own file.
pub fn run_checkpointed(
    ctx: &ExperimentCtx,
    campaign: &Campaign<'_>,
    dataset: DatasetId,
    protection: &dyn ProtectionFactory,
) -> CampaignResult {
    if !ctx.resilience.enabled() {
        return report_dues(campaign, protection, campaign.run(protection, &ctx.pool));
    }

    let policy = CheckpointPolicy {
        path: ctx
            .resilience
            .checkpoint_dir
            .join(checkpoint_name(campaign, dataset, protection)),
        every: ctx.resilience.cadence(),
        resume: ctx.resilience.resume,
        abort_after: None,
    };
    let result = match campaign.run_resumable(protection, &ctx.pool, &policy) {
        Ok(run) => {
            if run.resumed_from > 0 {
                eprintln!(
                    "   (resumed {} from {}/{} completed trials)",
                    protection.scheme_name(),
                    run.resumed_from,
                    run.total_tasks
                );
            }
            run.result
        }
        Err(e) => {
            eprintln!("   (checkpoint unusable: {e}; rerunning from scratch)");
            campaign.run(protection, &ctx.pool)
        }
    };
    report_dues(campaign, protection, result)
}

/// DUE trials (crashes, watchdog hangs) dilute the SDC denominator without
/// showing up in the figure tables, so surface them on stderr; crashed
/// trials come with their `ft2-repro replay` pointer.
fn report_dues(
    campaign: &Campaign<'_>,
    protection: &dyn ProtectionFactory,
    result: CampaignResult,
) -> CampaignResult {
    if result.counts.due() > 0 {
        eprintln!(
            "   ({}: {} crashed, {} hung of {} trials)",
            protection.scheme_name(),
            result.counts.crash,
            result.counts.hang,
            result.counts.total()
        );
        let seed = campaign.config().seed;
        for f in result.crashes.iter().take(5) {
            eprintln!(
                "     crash at {}: {}  (replay {:#x}/{}/{})",
                f.site, f.message, seed, f.input, f.trial
            );
        }
    }
    result
}

/// Checkpoint filename: a readable prefix plus a hash of the full campaign
/// fingerprint, so different configurations never collide (and a stale
/// checkpoint for a changed config is simply ignored, not rejected).
fn checkpoint_name(
    campaign: &Campaign<'_>,
    dataset: DatasetId,
    protection: &dyn ProtectionFactory,
) -> String {
    let fingerprint = campaign.fingerprint(protection.scheme_name());
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in fingerprint.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    let scheme: String = protection
        .scheme_name()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
        .collect();
    format!("{}-{}-{:016x}.json", dataset.name(), scheme, h)
}

/// A protection factory with an arbitrary linear-layer coverage set and
/// offline bounds — used by the Fig. 6 protect-all-but-one sweep.
pub struct OfflineCoverageFactory {
    /// Covered linear layer kinds.
    pub kinds: Vec<LayerKind>,
    /// Offline bounds to clamp against.
    pub offline: Arc<OfflineBounds>,
    /// Display name.
    pub name: String,
}

impl ProtectionFactory for OfflineCoverageFactory {
    fn make(&self) -> Vec<Box<dyn LayerTap>> {
        vec![Box::new(Protector::offline(
            Coverage::linears(self.kinds.clone()),
            self.offline.linear.clone(),
            Correction::ClampToBound,
            NanPolicy::ToZero,
        ))]
    }

    fn scheme_name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use ft2_core::{Scheme, SchemeFactory};
    use ft2_fault::FaultModel;
    use ft2_model::ZooModel;

    pub(crate) fn tiny_ctx() -> ExperimentCtx {
        ExperimentCtx {
            settings: Settings {
                inputs: 3,
                trials: 4,
                gen_qa: 10,
                gen_math: 12,
                profile_inputs: 3,
                seed: 7,
                trial_deadline_ms: None,
                trial_token_budget: None,
                recovery_retries: 0,
                storm_threshold: None,
                scrub_tiles_per_step: 0,
                kv_guard: false,
                recovery_repair: false,
                shards: 1,
                shard_degrade: false,
                shard_heartbeat_ms: 50,
            },
            resilience: Resilience {
                checkpoint_every: None,
                checkpoint_dir: std::env::temp_dir().join("ft2_checkpoints_test"),
                resume: false,
            },
            pool: WorkStealingPool::new(2),
            csv: Csv::new(std::env::temp_dir().join("ft2_results_test")),
        }
    }

    #[test]
    fn prepare_and_run_smoke() {
        let ctx = tiny_ctx();
        let spec = ZooModel::Qwen2_1_5B.spec();
        let pair = prepare_pair(&ctx, &spec, DatasetId::Squad);
        assert_eq!(pair.prompts.len(), 3);
        assert!(!pair.offline.linear.is_empty());

        let ft2 = SchemeFactory::new(Scheme::Ft2, pair.model.config(), None);
        let r = run_campaign(&ctx, &pair, DatasetId::Squad, FaultModel::SingleBit, &ft2);
        assert_eq!(r.counts.total(), 12);
    }

    #[test]
    fn custom_coverage_factory_names_and_builds() {
        let ctx = tiny_ctx();
        let spec = ZooModel::Qwen2_1_5B.spec();
        let pair = prepare_pair(&ctx, &spec, DatasetId::Squad);
        let f = OfflineCoverageFactory {
            kinds: vec![LayerKind::VProj],
            offline: pair.offline.clone(),
            name: "all-but-everything".into(),
        };
        assert_eq!(f.scheme_name(), "all-but-everything");
        assert_eq!(f.make().len(), 1);
    }
}
