//! Experiment drivers, one module per table/figure of the paper.

pub mod ablations;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod table1;
pub mod table2;

use crate::report::{Csv, Table};
use crate::settings::Settings;
use ft2_core::profile::{offline_profile, OfflineBounds};
use ft2_core::protect::{Correction, Coverage, NanPolicy, Protector};
use ft2_fault::{Campaign, CampaignResult, ProtectionFactory};
use ft2_model::{LayerKind, LayerTap, Model, ModelSpec};
use ft2_parallel::WorkStealingPool;
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::{DatasetId, TaskSpec};
use std::sync::Arc;

/// Shared context: sizing, the worker pool, and the CSV sink.
pub struct ExperimentCtx {
    /// Experiment sizing.
    pub settings: Settings,
    /// Work-stealing pool shared by all campaigns.
    pub pool: WorkStealingPool,
    /// CSV artifact writer.
    pub csv: Csv,
}

impl Default for ExperimentCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl ExperimentCtx {
    /// Context with env-derived settings and a default-size pool.
    pub fn new() -> ExperimentCtx {
        ExperimentCtx {
            settings: Settings::from_env(),
            pool: WorkStealingPool::with_default_threads(),
            csv: Csv::default_dir(),
        }
    }

    /// Print a table and write its CSV artifact.
    pub fn emit(&self, name: &str, table: &Table) {
        table.print();
        match self.csv.write(name, table) {
            Ok(path) => println!("   -> {}", path.display()),
            Err(e) => eprintln!("   (csv write failed: {e})"),
        }
        println!();
    }
}

/// Everything needed to run campaigns for one (model, dataset) pair.
pub struct PairContext {
    /// The instantiated model.
    pub model: Model,
    /// Evaluation prompts.
    pub prompts: Vec<Vec<u32>>,
    /// Task spec (generation length, answer span).
    pub task: TaskSpec,
    /// Offline-profiled bounds (for the baselines), from a disjoint
    /// profiling split of the same dataset.
    pub offline: Arc<OfflineBounds>,
}

/// Build the model, prompts, task spec and offline bounds for a pair.
pub fn prepare_pair(
    ctx: &ExperimentCtx,
    spec: &ModelSpec,
    dataset: DatasetId,
) -> PairContext {
    let model = spec.build();
    let s = &ctx.settings;
    let prompts = generate_prompts(dataset, s.inputs, s.seed ^ 0xEA71);
    let task = s.task_spec(dataset);
    // Profiling split: same dataset, different seed (a "training split").
    let profile_prompts = generate_prompts(dataset, s.profile_inputs, s.seed ^ 0x7A0F11E);
    let offline = Arc::new(offline_profile(
        &model,
        &profile_prompts,
        task.gen_tokens,
        &ctx.pool,
    ));
    PairContext {
        model,
        prompts,
        task,
        offline,
    }
}

/// Run one campaign (one fault model, one protection) on a prepared pair.
pub fn run_campaign(
    ctx: &ExperimentCtx,
    pair: &PairContext,
    dataset: DatasetId,
    fault_model: ft2_fault::FaultModel,
    protection: &dyn ProtectionFactory,
) -> CampaignResult {
    let judge = pair.task.judge();
    let cfg = ctx.settings.campaign(dataset, fault_model);
    let campaign = Campaign::new(&pair.model, &pair.prompts, &judge, cfg, &ctx.pool);
    campaign.run(protection, &ctx.pool)
}

/// A protection factory with an arbitrary linear-layer coverage set and
/// offline bounds — used by the Fig. 6 protect-all-but-one sweep.
pub struct OfflineCoverageFactory {
    /// Covered linear layer kinds.
    pub kinds: Vec<LayerKind>,
    /// Offline bounds to clamp against.
    pub offline: Arc<OfflineBounds>,
    /// Display name.
    pub name: String,
}

impl ProtectionFactory for OfflineCoverageFactory {
    fn make(&self) -> Vec<Box<dyn LayerTap>> {
        vec![Box::new(Protector::offline(
            Coverage::linears(self.kinds.clone()),
            self.offline.linear.clone(),
            Correction::ClampToBound,
            NanPolicy::ToZero,
        ))]
    }

    fn scheme_name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_core::{Scheme, SchemeFactory};
    use ft2_fault::FaultModel;
    use ft2_model::ZooModel;

    fn tiny_ctx() -> ExperimentCtx {
        ExperimentCtx {
            settings: Settings {
                inputs: 3,
                trials: 4,
                gen_qa: 10,
                gen_math: 12,
                profile_inputs: 3,
                seed: 7,
            },
            pool: WorkStealingPool::new(2),
            csv: Csv::new(std::env::temp_dir().join("ft2_results_test")),
        }
    }

    #[test]
    fn prepare_and_run_smoke() {
        let ctx = tiny_ctx();
        let spec = ZooModel::Qwen2_1_5B.spec();
        let pair = prepare_pair(&ctx, &spec, DatasetId::Squad);
        assert_eq!(pair.prompts.len(), 3);
        assert!(!pair.offline.linear.is_empty());

        let ft2 = SchemeFactory::new(Scheme::Ft2, pair.model.config(), None);
        let r = run_campaign(&ctx, &pair, DatasetId::Squad, FaultModel::SingleBit, &ft2);
        assert_eq!(r.counts.total(), 12);
    }

    #[test]
    fn custom_coverage_factory_names_and_builds() {
        let ctx = tiny_ctx();
        let spec = ZooModel::Qwen2_1_5B.spec();
        let pair = prepare_pair(&ctx, &spec, DatasetId::Squad);
        let f = OfflineCoverageFactory {
            kinds: vec![LayerKind::VProj],
            offline: pair.offline.clone(),
            name: "all-but-everything".into(),
        };
        assert_eq!(f.scheme_name(), "all-but-everything");
        assert_eq!(f.make().len(), 1);
    }
}
