//! `ft2-repro persistent` — persistent-fault resilience: SDC/DUE under the
//! fault-duration × fault-target sweep, across three defence modes:
//!
//! * `none` — FT2 clamping only, no recovery: persistent stored-state
//!   corruption propagates silently, so SDC is high (the exposure this PR
//!   closes).
//! * `rollback` — PR 2's token rollback armed (2 retries): the storm
//!   detector catches the corruption, but every re-decode re-reads the same
//!   flipped bits, so trials end *detected-unrecoverable* (DUE) instead of
//!   silently corrupted — rollback alone converts SDC into DUE, it cannot
//!   mask persistent faults.
//! * `repair` — the integrity layer on top: weight scrubbing against the
//!   golden checksums, the KV-cache CRC guard, and the repair-and-retry
//!   recovery rung. SDC *and* DUE return to near-transient levels.
//!
//! The scrub rate defaults to one full sweep of the weight tiles per
//! generation (`FT2_SCRUB_TILES_PER_STEP` overrides it); the rightmost
//! column prices that rate with the A100 roofline model
//! ([`ft2_hw::CostModel::scrub_overhead`]).

use super::{run_checkpointed, ExperimentCtx};
use crate::report::{format_pct, Table};
use ft2_core::{IntegrityConfig, Scheme, SchemeFactory, WeightChecksums, TILE_ELEMS};
use ft2_fault::{Campaign, FaultDuration, FaultModel, FaultTarget, StepFilter};
use ft2_hw::{CostModel, WorkloadShape, A100};
use ft2_model::ZooModel;
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::DatasetId;
use std::sync::Arc;

/// Defence mode of one sweep cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// FT2 clamping only — no rollback, no integrity layer.
    None,
    /// FT2 + token rollback (2 retries), no integrity layer.
    Rollback,
    /// FT2 + rollback + weight scrubbing + KV guard + repair-and-retry.
    Repair,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::None => "none",
            Mode::Rollback => "rollback",
            Mode::Repair => "repair",
        }
    }
}

/// The swept (duration, target, mode) cells. The transient activation rows
/// are the paper's regime and the baseline the persistent rows are judged
/// against.
pub const SWEEP: &[(FaultDuration, FaultTarget, Mode)] = &[
    (FaultDuration::Transient, FaultTarget::Activation, Mode::None),
    (
        FaultDuration::Transient,
        FaultTarget::Activation,
        Mode::Rollback,
    ),
    (FaultDuration::Transient, FaultTarget::Weight, Mode::None),
    (FaultDuration::Transient, FaultTarget::KvCache, Mode::None),
    (
        FaultDuration::Intermittent { period: 4 },
        FaultTarget::Weight,
        Mode::None,
    ),
    (FaultDuration::Persistent, FaultTarget::Weight, Mode::None),
    (
        FaultDuration::Persistent,
        FaultTarget::Weight,
        Mode::Rollback,
    ),
    (FaultDuration::Persistent, FaultTarget::Weight, Mode::Repair),
    (
        FaultDuration::Intermittent { period: 4 },
        FaultTarget::Weight,
        Mode::Repair,
    ),
    (FaultDuration::Persistent, FaultTarget::KvCache, Mode::None),
    (
        FaultDuration::Persistent,
        FaultTarget::KvCache,
        Mode::Rollback,
    ),
    (
        FaultDuration::Persistent,
        FaultTarget::KvCache,
        Mode::Repair,
    ),
];

/// Run the experiment and emit its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let s = &ctx.settings;
    let spec = ZooModel::Qwen2_1_5B.spec();
    let model = spec.build();
    let dataset = DatasetId::Gsm8k;
    let prompts = generate_prompts(dataset, s.inputs, s.seed ^ 0xEA71);
    let task = s.task_spec(dataset);
    let judge = task.judge();

    // Golden-checkpoint checksums, built once at load time and shared
    // read-only across every trial of every cell.
    let checksums = Arc::new(WeightChecksums::build(model.config(), model.weights()));
    // Default scrub rate: one full sweep of the weight tiles per generation.
    let scrub_rate = if s.scrub_tiles_per_step > 0 {
        s.scrub_tiles_per_step
    } else {
        checksums.num_tiles().div_ceil(task.gen_tokens.max(1))
    };
    let a100 = CostModel::new(A100);
    let shape = WorkloadShape::from_spec(&spec);

    let mut table = Table::new(
        "Persistent faults — SDC/DUE vs duration/target/defence (FT2, EXP faults)",
        &[
            "duration",
            "target",
            "defence",
            "sdc_rate",
            "corrupted",
            "due",
            "recovered",
            "repaired",
            "rec_failed",
            "rollbacks",
            "w_repairs",
            "kv_repairs",
            "A100_scrub_ovh",
        ],
    );
    for &(duration, target, mode) in SWEEP {
        let mut cfg = s.campaign(dataset, FaultModel::ExponentBit);
        cfg.fault_duration = duration;
        cfg.fault_target = target;
        // Rollback applies to decode steps; the prefill is the profiling
        // pass and is guarded by the bound-integrity check instead.
        cfg.step_filter = StepFilter::FollowingTokensOnly;
        cfg.recovery_retries = match mode {
            Mode::None => 0,
            _ => cfg.recovery_retries.max(2),
        };
        cfg.recovery_repair = mode == Mode::Repair;

        let integrity = if mode == Mode::Repair {
            IntegrityConfig {
                scrub_tiles_per_step: scrub_rate,
                kv_guard: true,
                checksums: Some(checksums.clone()),
            }
        } else {
            IntegrityConfig::disabled()
        };
        let scheme = if mode == Mode::None {
            Scheme::NoProtection
        } else {
            Scheme::Ft2
        };
        let ft2 = SchemeFactory::new(scheme, model.config(), None)
            .with_storm_threshold(s.storm_threshold)
            .with_integrity(integrity);

        let campaign = Campaign::new(&model, &prompts, &judge, cfg, &ctx.pool);
        let result = run_checkpointed(ctx, &campaign, dataset, &ft2);

        let scrub_ovh = if mode == Mode::Repair {
            a100.scrub_overhead(&shape, 150, 60, scrub_rate, TILE_ELEMS)
        } else {
            0.0
        };
        table.row(vec![
            format!("{duration:?}"),
            target.name().to_string(),
            mode.name().to_string(),
            format_pct(result.counts.sdc_rate()),
            (result.counts.masked_semantic + result.counts.sdc).to_string(),
            result.counts.due().to_string(),
            result.counts.recovered.to_string(),
            result.counts.repaired.to_string(),
            result.counts.recovery_failed.to_string(),
            result.rollbacks.to_string(),
            result.weight_repairs.to_string(),
            result.kv_repairs.to_string(),
            format_pct(scrub_ovh),
        ]);
    }
    ctx.emit("persistent_faults", &table);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    // Column accessors for the 13-column table.
    fn num(row: &[String], col: usize) -> u64 {
        row[col].parse().unwrap()
    }
    fn due(row: &[String]) -> u64 {
        num(row, 5)
    }
    fn repaired(row: &[String]) -> u64 {
        num(row, 7)
    }
    fn rec_failed(row: &[String]) -> u64 {
        num(row, 8)
    }
    fn rollbacks(row: &[String]) -> u64 {
        num(row, 9)
    }
    fn w_repairs(row: &[String]) -> u64 {
        num(row, 10)
    }
    fn kv_repairs(row: &[String]) -> u64 {
        num(row, 11)
    }

    /// At the tiny test sizing the SDC columns are all zero (too few
    /// trials), so the structural invariants of the defence ladder are
    /// asserted on the recovery/repair counters, which fire reliably.
    /// The SDC-level acceptance claims (persistent-none above transient,
    /// repair within 2x transient) hold at the default `ft2-repro
    /// persistent` sizing and are documented in DESIGN.md.
    #[test]
    fn persistent_sweep_shows_repair_closing_the_gap() {
        let ctx = crate::experiments::tests::tiny_ctx();
        let table = run(&ctx);
        assert_eq!(table.len(), SWEEP.len());
        let rows = table.rows();
        let t_roll = &rows[1]; // transient / activation / rollback
        let pw_none = &rows[5]; // persistent / weight / none
        let pw_roll = &rows[6]; // persistent / weight / rollback
        let pw_rep = &rows[7]; // persistent / weight / repair
        let kv_none = &rows[9]; // persistent / kv / none
        let kv_rep = &rows[11]; // persistent / kv / repair

        // Unprotected rows have no recovery machinery at all: no
        // rollbacks, no repairs, and any corruption lands silently.
        for row in [pw_none, kv_none] {
            assert_eq!(rollbacks(row), 0, "none row rolled back: {row:?}");
            assert_eq!(
                w_repairs(row) + kv_repairs(row),
                0,
                "none row repaired: {row:?}"
            );
        }

        // Rollback alone detects persistent faults but cannot mask them:
        // re-decoding re-reads the same flipped bits, so retries are
        // burned (far more rollbacks than the transient baseline) and the
        // trial ends detected-unrecoverable rather than silently wrong.
        assert!(
            due(pw_roll) + rec_failed(pw_roll) >= 1,
            "rollback-only persistent-weight row never exhausted retries: {pw_roll:?}"
        );
        assert!(
            rollbacks(pw_roll) > rollbacks(t_roll),
            "persistent faults must burn more rollbacks ({}) than transient ({})",
            rollbacks(pw_roll),
            rollbacks(t_roll)
        );

        // The integrity layer actually repairs the corruption: weight
        // scrubbing restores flipped tiles, the KV guard rebuilds poisoned
        // rows, and trials classify as Repaired instead of DUE.
        assert!(
            w_repairs(pw_rep) > 0,
            "no weight repairs in repair row {pw_rep:?}"
        );
        assert!(
            repaired(pw_rep) > 0,
            "no trials classified Repaired in {pw_rep:?}"
        );
        assert!(
            kv_repairs(kv_rep) > 0,
            "no kv repairs in repair row {kv_rep:?}"
        );
        assert!(
            repaired(kv_rep) > 0,
            "no trials classified Repaired in {kv_rep:?}"
        );
        // Repair closes the DUE gap rollback-alone leaves open.
        assert!(
            due(pw_rep) <= due(pw_roll),
            "repair row DUE {} exceeds rollback-only DUE {}",
            due(pw_rep),
            due(pw_roll)
        );
    }
}
