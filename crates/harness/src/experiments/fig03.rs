//! Figure 3 — fault-free correct-output percentage when protecting with
//! bounds profiled from *alternative* datasets (OPT-6.7B, SQuAD target).
//!
//! No faults are injected; degradation comes purely from ill-fitting
//! bounds clipping benign activations.

use super::{ExperimentCtx, OfflineCoverageFactory};
use crate::report::Table;
use ft2_core::critical::critical_layers;
use ft2_core::profile::offline_profile;
use ft2_fault::{Campaign, FaultModel, Outcome};
use ft2_model::ZooModel;
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::DatasetId;
use std::sync::Arc;

/// Run the experiment and emit its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let spec = ZooModel::Opt6_7B.spec();
    let model = spec.build();
    let target = DatasetId::Squad;
    let s = &ctx.settings;
    // More inputs than a campaign: this experiment is cheap (one fault-free
    // run per input) and percentages need resolution.
    let n_eval = (s.inputs * 8).max(96);
    let prompts = generate_prompts(target, n_eval, s.seed ^ 0xF163);
    let task = s.task_spec(target);
    let judge = task.judge();
    let cfg = s.campaign(target, FaultModel::SingleBit);
    let campaign = Campaign::new(&model, &prompts, &judge, cfg, &ctx.pool);

    let mut table = Table::new(
        "Fig. 3 — fault-free correct output % with bounds from other datasets (OPT-6.7B, SQuAD)",
        &["bounds_source", "correct_pct"],
    );
    // Fault-free, no protection: 100% by construction.
    table.row(vec!["no protection".into(), "100.00%".into()]);

    let sources = [
        target,
        DatasetId::ChatGptPrompts,
        DatasetId::TweetEval,
        DatasetId::Mbpp,
        DatasetId::Opus100,
    ];
    for src in sources {
        // The alternative corpora are far smaller than the target's
        // training split (Awesome ChatGPT Prompts has ~150 prompts in
        // total, MBPP a few hundred training problems — vs SQuAD 2.0's
        // 130k questions), so they are profiled at a quarter of the
        // target's profiling budget and at their own typical output
        // length. Both factors leave coverage holes: a spike token or a
        // late sequence position the target inference reaches but the
        // foreign profile never saw.
        let n_profile = if src == target {
            s.profile_inputs
        } else {
            (s.profile_inputs / 4).max(8)
        };
        let profile_prompts = generate_prompts(src, n_profile, s.seed ^ 0x0FF11E);
        let offline = Arc::new(offline_profile(
            &model,
            &profile_prompts,
            src.typical_gen_tokens(),
            &ctx.pool,
        ));
        let factory = OfflineCoverageFactory {
            kinds: critical_layers(model.config().style),
            offline,
            name: format!("bounds from {}", src.name()),
        };
        let outcomes = campaign.run_fault_free(&factory, &ctx.pool);
        let correct = outcomes.iter().filter(|o| **o != Outcome::Sdc).count();
        let pct = correct as f64 / outcomes.len() as f64 * 100.0;
        let label = if src == target {
            format!("{} (target)", src.name())
        } else {
            src.name().to_string()
        };
        table.row(vec![label, format!("{pct:.2}%")]);
    }
    ctx.emit("fig03_bound_transfer", &table);
    table
}
