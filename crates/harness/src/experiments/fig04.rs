//! Figure 4 — offline bound-profiling time at paper scale (hours, log-scale
//! in the paper) for 20% of each training set, on A100 and H100.

use super::ExperimentCtx;
use crate::report::Table;
use ft2_hw::{CostModel, WorkloadShape, A100, GH200_H100};
use ft2_model::ZooModel;
use ft2_tasks::DatasetId;

/// 20% of each dataset's training split (SQuAD 2.0 has ~130k training
/// questions — the paper profiles 26,000 of them; GSM8K has 7,473 — 20% is
/// ~1,495; XTREME aggregates many multilingual tasks, so its 20% split is
/// far larger — this is what pushes profiling beyond 200 hours in Fig. 4).
fn profiling_inputs(dataset: DatasetId) -> usize {
    match dataset {
        DatasetId::Squad => 26_000,
        DatasetId::Xtreme => 350_000,
        DatasetId::Gsm8k => 1_495,
        _ => 10_000,
    }
}

fn paper_gen_tokens(dataset: DatasetId) -> usize {
    match dataset.task_type() {
        ft2_tasks::TaskType::Qa => 60,
        ft2_tasks::TaskType::Math => 180,
    }
}

fn paper_prompt_len(dataset: DatasetId) -> usize {
    match dataset {
        DatasetId::Squad => 180,
        DatasetId::Xtreme => 150,
        DatasetId::Gsm8k => 80,
        _ => 120,
    }
}

/// Run the experiment and emit its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let mut table = Table::new(
        "Fig. 4 — offline bound-profiling time at paper scale (hours)",
        &["model", "dataset", "inputs", "A100_hours", "H100_hours"],
    );
    let a100 = CostModel::new(A100);
    let h100 = CostModel::new(GH200_H100);

    for m in ZooModel::ALL {
        let spec = m.spec();
        let shape = WorkloadShape::from_spec(&spec);
        let datasets: Vec<DatasetId> = if spec.supports_math {
            vec![DatasetId::Squad, DatasetId::Xtreme, DatasetId::Gsm8k]
        } else {
            vec![DatasetId::Squad, DatasetId::Xtreme]
        };
        for ds in datasets {
            let n = profiling_inputs(ds);
            let prompt = paper_prompt_len(ds);
            let gen = paper_gen_tokens(ds);
            let ta = a100.profiling_time(&shape, n, prompt, gen) / 3600.0;
            let th = h100.profiling_time(&shape, n, prompt, gen) / 3600.0;
            table.row(vec![
                spec.name().to_string(),
                ds.name().to_string(),
                n.to_string(),
                format!("{ta:.1}"),
                format!("{th:.1}"),
            ]);
        }
    }
    ctx.emit("fig04_profiling_cost", &table);
    table
}
