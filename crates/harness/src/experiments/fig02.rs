//! Figure 2 — motivational comparison: SDC rate of existing protections vs
//! FT2 on Llama2-7B + GSM8K under the EXP fault model.

use super::{prepare_pair, run_checkpointed, ExperimentCtx};
use crate::report::{format_pct, Table};
use ft2_core::{Scheme, SchemeFactory};
use ft2_fault::FaultModel;
use ft2_model::ZooModel;
use ft2_tasks::DatasetId;

/// Run the experiment and emit its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let spec = ZooModel::Llama2_7B.spec();
    let dataset = DatasetId::Gsm8k;
    let pair = prepare_pair(ctx, &spec, dataset);

    let mut table = Table::new(
        "Fig. 2 — SDC under protections (Llama2-7B, GSM8K, EXP faults)",
        &["scheme", "sdc_rate", "ci95"],
    );
    for scheme in [
        Scheme::NoProtection,
        Scheme::Ranger,
        Scheme::MaxiMals,
        Scheme::GlobalClipper,
        Scheme::Ft2,
    ] {
        let factory = SchemeFactory::new(
            scheme,
            pair.model.config(),
            scheme.needs_offline_bounds().then(|| pair.offline.clone()),
        );
        let judge = pair.task.judge();
        let mut cfg = ctx.settings.campaign(dataset, FaultModel::ExponentBit);
        cfg.trials_per_input = ctx.settings.trials * 4; // single-pair figure: afford tighter CIs
        let campaign = ft2_fault::Campaign::new(&pair.model, &pair.prompts, &judge, cfg, &ctx.pool);
        let r = run_checkpointed(ctx, &campaign, dataset, &factory);
        table.row(vec![
            scheme.name().to_string(),
            format_pct(r.sdc_rate()),
            format!("±{}", format_pct(r.sdc_ci95())),
        ]);
    }
    ctx.emit("fig02_motivation", &table);
    table
}
