//! Figure 15 — data-type sensitivity: FP16 vs FP32 (OPT-6.7B and GPT-J-6B
//! on SQuAD). Faults corrupt the respective storage format; FT2 protects
//! both. We additionally include bf16 as an extension.

use super::{prepare_pair, run_campaign, ExperimentCtx};
use crate::report::{format_pct, Table};
use ft2_core::{Scheme, SchemeFactory};
use ft2_fault::FaultModel;
use ft2_model::ZooModel;
use ft2_tasks::DatasetId;
use ft2_tensor::DType;

/// Run the experiment and emit its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let dataset = DatasetId::Squad;
    let schemes = [
        Scheme::NoProtection,
        Scheme::Ranger,
        Scheme::MaxiMals,
        Scheme::GlobalClipper,
        Scheme::Ft2,
    ];

    let mut header: Vec<&str> = vec!["model", "dtype"];
    header.extend(schemes.iter().map(|s| s.name()));
    let mut table = Table::new(
        "Fig. 15 — SDC by data type (SQuAD, EXP faults)",
        &header,
    );

    for m in [ZooModel::Opt6_7B, ZooModel::GptJ6B] {
        for dtype in [DType::F16, DType::F32, DType::Bf16] {
            let mut spec = m.spec();
            spec.config.dtype = dtype;
            let pair = prepare_pair(ctx, &spec, dataset);
            let mut cells = vec![spec.name().to_string(), dtype.name().to_string()];
            for scheme in schemes {
                let factory = SchemeFactory::new(
                    scheme,
                    pair.model.config(),
                    scheme.needs_offline_bounds().then(|| pair.offline.clone()),
                );
                let r = run_campaign(ctx, &pair, dataset, FaultModel::ExponentBit, &factory);
                cells.push(format_pct(r.sdc_rate()));
            }
            table.row(cells);
        }
    }
    ctx.emit("fig15_dtype_sensitivity", &table);
    table
}
