//! Figure 11 — resilience of the first-token generation (OPT-6.7B, SQuAD).
//!
//! Three bars per fault model: unprotected faults anywhere; full FT2
//! protection; and faults restricted to the first-token step with FT2
//! active (during step 0 FT2 can only correct NaNs — bounds do not exist
//! yet), which is the configuration §4.2.2 argues is acceptable.

use super::{prepare_pair, run_checkpointed, ExperimentCtx};
use crate::report::{format_pct, Table};
use ft2_core::{Scheme, SchemeFactory};
use ft2_fault::{Campaign, FaultModel, StepFilter, Unprotected};
use ft2_model::ZooModel;
use ft2_tasks::DatasetId;

/// Run the experiment and emit its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let spec = ZooModel::Opt6_7B.spec();
    let dataset = DatasetId::Squad;
    let pair = prepare_pair(ctx, &spec, dataset);
    let judge = pair.task.judge();

    let mut table = Table::new(
        "Fig. 11 — first-token resilience (OPT-6.7B, SQuAD)",
        &["fault_model", "configuration", "sdc_rate", "ci95"],
    );
    for fm in FaultModel::ALL {
        // (a) Unprotected, faults anywhere.
        let cfg = ctx.settings.campaign(dataset, fm);
        let campaign = Campaign::new(&pair.model, &pair.prompts, &judge, cfg, &ctx.pool);
        let r = run_checkpointed(ctx, &campaign, dataset, &Unprotected);
        table.row(vec![
            fm.name().into(),
            "no protection (all steps)".into(),
            format_pct(r.sdc_rate()),
            format!("±{}", format_pct(r.sdc_ci95())),
        ]);

        // (b) Full FT2.
        let ft2 = SchemeFactory::new(Scheme::Ft2, pair.model.config(), None);
        let r = run_checkpointed(ctx, &campaign, dataset, &ft2);
        table.row(vec![
            fm.name().into(),
            "FT2 (all steps)".into(),
            format_pct(r.sdc_rate()),
            format!("±{}", format_pct(r.sdc_ci95())),
        ]);

        // (c) Faults only during the first token, FT2 active (NaN-only
        // correction is available at step 0).
        let mut cfg0 = ctx.settings.campaign(dataset, fm);
        cfg0.step_filter = StepFilter::FirstTokenOnly;
        let campaign0 = Campaign::new(&pair.model, &pair.prompts, &judge, cfg0, &ctx.pool);
        let r = run_checkpointed(ctx, &campaign0, dataset, &ft2);
        table.row(vec![
            fm.name().into(),
            "faults in first token only (NaN corrected)".into(),
            format_pct(r.sdc_rate()),
            format!("±{}", format_pct(r.sdc_ci95())),
        ]);
    }
    ctx.emit("fig11_first_token_resilience", &table);
    table
}
