//! `ft2-repro recovery` — the detect–escalate–recover ladder: SDC rate vs
//! token-rollback retry budget, swept over the three fault models.
//!
//! Faults are restricted to decode steps (`FollowingTokensOnly`) because
//! that is where rollback applies: the prefill is the profiling pass and is
//! guarded by the bound-integrity check instead. Each cell reruns the same
//! seeded campaign with a different retry budget, so the SDC column is
//! directly comparable down a fault-model group; the rightmost column
//! prices the observed rollbacks with the A100 roofline model
//! ([`ft2_hw::CostModel::recovery_overhead`]) — recovery is only worth its
//! SDC reduction if that stays in the low percent range.
//!
//! `FT2_RECOVERY_RETRIES` does not apply here (the budget is the swept
//! variable); `FT2_STORM_THRESHOLD` does.

use super::{run_checkpointed, ExperimentCtx};
use crate::report::{format_pct, Table};
use ft2_core::{Scheme, SchemeFactory};
use ft2_fault::{Campaign, FaultModel, StepFilter};
use ft2_hw::{CostModel, WorkloadShape, A100};
use ft2_model::ZooModel;
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::DatasetId;

/// The swept rollback retry budgets (0 = recovery disabled baseline).
pub const RETRY_BUDGETS: [u32; 4] = [0, 1, 2, 4];

/// Run the experiment and emit its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let s = &ctx.settings;
    let spec = ZooModel::Qwen2_1_5B.spec();
    let model = spec.build();
    let dataset = DatasetId::Squad;
    let prompts = generate_prompts(dataset, s.inputs, s.seed ^ 0xEA71);
    let judge = s.task_spec(dataset).judge();
    let ft2 = SchemeFactory::new(Scheme::Ft2, model.config(), None)
        .with_storm_threshold(s.storm_threshold);
    let a100 = CostModel::new(A100);
    let shape = WorkloadShape::from_spec(&spec);

    let mut table = Table::new(
        "Recovery — SDC vs rollback retry budget (FT2, decode-step faults)",
        &[
            "fault",
            "retries",
            "sdc_rate",
            "recovered",
            "rec_failed",
            "rollbacks",
            "storms",
            "A100_overhead",
        ],
    );
    for fm in FaultModel::ALL {
        for retries in RETRY_BUDGETS {
            let mut cfg = s.campaign(dataset, fm);
            cfg.step_filter = StepFilter::FollowingTokensOnly;
            cfg.recovery_retries = retries;
            let campaign = Campaign::new(&model, &prompts, &judge, cfg, &ctx.pool);
            let result = run_checkpointed(ctx, &campaign, dataset, &ft2);

            let trials = result.counts.total().max(1) as f64;
            let rollbacks_per_gen = result.rollbacks as f64 / trials;
            // Paper-scale pricing: SQuAD prompt (~150 tokens), 60 generated.
            let overhead = a100.recovery_overhead(&shape, 150, 60, rollbacks_per_gen);

            table.row(vec![
                fm.name().to_string(),
                retries.to_string(),
                format_pct(result.counts.sdc_rate()),
                result.counts.recovered.to_string(),
                result.counts.recovery_failed.to_string(),
                result.rollbacks.to_string(),
                result.storms.to_string(),
                format_pct(overhead),
            ]);
        }
    }
    ctx.emit("recovery_ladder", &table);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_sweep_reduces_sdc_within_a_fault_group() {
        let ctx = crate::experiments::tests::tiny_ctx();
        let table = run(&ctx);
        assert_eq!(table.len(), FaultModel::ALL.len() * RETRY_BUDGETS.len());
        // Within the EXP group the recovery-enabled rows must roll back at
        // least once; tiny sizing keeps this cheap but non-trivial.
        let exp_rows: Vec<_> = table
            .rows()
            .iter()
            .filter(|r| r[0] == "EXP" && r[1] != "0")
            .collect();
        assert!(exp_rows.iter().any(|r| r[5] != "0"), "no rollbacks in {exp_rows:?}");
        // The disabled baseline never reports recovery counters.
        for r in table.rows().iter().filter(|r| r[1] == "0") {
            assert_eq!((r[3].as_str(), r[5].as_str()), ("0", "0"));
        }
    }
}
