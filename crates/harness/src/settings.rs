//! Experiment sizing, the central `FT2_*` env-knob registry, and the
//! model × dataset evaluation grid.

use ft2_fault::{CampaignConfig, FaultDuration, FaultModel, FaultTarget, StepFilter, StepWeighting};
use ft2_model::{ModelSpec, ZooModel};
use ft2_tasks::{DatasetId, TaskSpec, TaskType};

/// Value shape of an env knob (drives the malformed-value warning and the
/// README documentation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KnobKind {
    /// Non-negative integer (`usize`/`u32`/`u64`).
    Integer,
    /// Floating-point number.
    Float,
    /// `=1` switch; any other value leaves the knob off.
    Flag,
    /// Filesystem path.
    Path,
    /// Free-form string (e.g. a socket address), taken verbatim.
    Text,
}

/// One row of the central env-knob registry: the single source of truth
/// for every `FT2_*` environment variable the workspace reads.
///
/// The `env-knob` lint (`ft2-repro lint`) enforces the contract from both
/// directions: every `FT2_*` string literal in the tree must resolve to a
/// row of this table, and every row must be documented in README and read
/// somewhere. Knobs consumed below the harness (`ft2-parallel`,
/// `ft2-tensor`, `ft2-model` cannot depend on this crate) keep their local
/// reads but are registered here with their reading crate in [`site`].
///
/// [`site`]: KnobSpec::site
#[derive(Clone, Copy, Debug)]
pub struct KnobSpec {
    /// The environment variable name.
    pub name: &'static str,
    /// Value shape.
    pub kind: KnobKind,
    /// Human-readable default (what happens when unset).
    pub default: &'static str,
    /// One-line description (the README table row).
    pub doc: &'static str,
    /// The crate whose code reads the variable.
    pub site: &'static str,
}

/// The registry, sorted by name. Adding a knob anywhere in the workspace
/// without a row here fails `ft2-repro lint` (and `cargo test`).
pub const KNOB_REGISTRY: &[KnobSpec] = &[
    KnobSpec {
        name: "FT2_BENCH_GEN",
        kind: KnobKind::Integer,
        default: "16",
        doc: "tokens generated per decode measurement in `ft2-repro bench`",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_BENCH_REPS",
        kind: KnobKind::Integer,
        default: "3 (1 quick)",
        doc: "best-of repetitions per bench measurement",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_BENCH_TRIALS",
        kind: KnobKind::Integer,
        default: "10 (3 quick)",
        doc: "campaign trials per input in the bench throughput probe",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_CHECKPOINT_DIR",
        kind: KnobKind::Path,
        default: "results/checkpoints",
        doc: "campaign checkpoint directory",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_CHECKPOINT_EVERY",
        kind: KnobKind::Integer,
        default: "off",
        doc: "checkpoint the campaign aggregate every N tasks (enables checkpointing)",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_INPUTS",
        kind: KnobKind::Integer,
        default: "12 (6 quick)",
        doc: "inputs per (model, dataset) pair",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_KV_GUARD",
        kind: KnobKind::Flag,
        default: "off",
        doc: "CRC-seal appended KV-cache rows; rebuild positions whose seal fails",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_NO_SIMD",
        kind: KnobKind::Flag,
        default: "off",
        doc: "disable the AVX2+FMA matmul micro-kernel (portable fallback)",
        site: "ft2-tensor",
    },
    KnobSpec {
        name: "FT2_PROFILE_INPUTS",
        kind: KnobKind::Integer,
        default: "72",
        doc: "inputs for the baselines' offline bound profiling (their \"20% of training data\")",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_QUICK",
        kind: KnobKind::Flag,
        default: "off",
        doc: "smoke-test sizing: 6 inputs x 10 trials; bench smoke sizing",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_RECOVERY_REPAIR",
        kind: KnobKind::Flag,
        default: "off",
        doc: "after rollback exhaustion, take one repair-and-retry rung (state-repair sweep + re-decode)",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_RECOVERY_RETRIES",
        kind: KnobKind::Integer,
        default: "0 (recovery off)",
        doc: "token-rollback retry budget per decode step",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_REPLICAS",
        kind: KnobKind::Integer,
        default: "2",
        doc: "replicas in the `ft2-repro replicas` failover gate (min 2)",
        site: "ft2-serve",
    },
    KnobSpec {
        name: "FT2_REPLICA_BACKOFF_MS",
        kind: KnobKind::Integer,
        default: "1",
        doc: "base failover backoff in ms (exponential, deterministically jittered per request)",
        site: "ft2-serve",
    },
    KnobSpec {
        name: "FT2_REPLICA_QUARANTINE_ERRS",
        kind: KnobKind::Integer,
        default: "3",
        doc: "consecutive replica errors before the breaker quarantines it for rebuild",
        site: "ft2-serve",
    },
    KnobSpec {
        name: "FT2_REPLICA_RETRY_BUDGET",
        kind: KnobKind::Integer,
        default: "3",
        doc: "failovers per request before a typed FailoverBudgetExhausted rejection",
        site: "ft2-serve",
    },
    KnobSpec {
        name: "FT2_RESUME",
        kind: KnobKind::Flag,
        default: "off",
        doc: "resume compatible campaign checkpoints (same as `--resume`)",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_SCRUB_TILES_PER_STEP",
        kind: KnobKind::Integer,
        default: "0 (scrubbing off)",
        doc: "weight tiles the background integrity scrubber re-verifies per generation step",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_SEED",
        kind: KnobKind::Integer,
        default: "0xF72025",
        doc: "campaign master seed (all campaigns are bit-reproducible in it)",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_SERVE_MAX_BATCH",
        kind: KnobKind::Integer,
        default: "8",
        doc: "concurrent requests the serving scheduler batches per decode step",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_SERVE_QUEUE_DEPTH",
        kind: KnobKind::Integer,
        default: "64",
        doc: "bounded admission-queue depth; a full queue backpressures submitters",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_SHARDS",
        kind: KnobKind::Integer,
        default: "1 (unsharded)",
        doc: "fault-isolation shards the `shards` sweep partitions each model across",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_SHARD_DEGRADE",
        kind: KnobKind::Flag,
        default: "off",
        doc: "evict a dead shard and keep generating on the survivors (degraded mode)",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_SHARD_HEARTBEAT_MS",
        kind: KnobKind::Integer,
        default: "50",
        doc: "per-shard heartbeat timeout in ms before a hung shard is cancelled (0 or negative disables the watchdog)",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_STORM_THRESHOLD",
        kind: KnobKind::Integer,
        default: "16",
        doc: "corrections per decode step that escalate an anomaly verdict to a storm",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_THREADS",
        kind: KnobKind::Integer,
        default: "hardware parallelism",
        doc: "worker threads of the work-stealing pool and fork-join helpers",
        site: "ft2-parallel",
    },
    KnobSpec {
        name: "FT2_TIE_ALPHA",
        kind: KnobKind::Float,
        default: "0.5",
        doc: "LM-head weight-tying mix of the synthetic checkpoints (1.0 = fully tied)",
        site: "ft2-model",
    },
    KnobSpec {
        name: "FT2_TRIALS",
        kind: KnobKind::Integer,
        default: "30 (10 quick)",
        doc: "fault-injection trials per input",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_TRIAL_DEADLINE_MS",
        kind: KnobKind::Integer,
        default: "off",
        doc: "per-trial wall-clock watchdog in ms (Hang/DUE; not bit-reproducible)",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_TRIAL_TOKEN_BUDGET",
        kind: KnobKind::Integer,
        default: "off",
        doc: "per-trial generation-step watchdog (deterministic abort)",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_WEB_ADDR",
        kind: KnobKind::Text,
        default: "127.0.0.1:8472",
        doc: "bind address of the `serve --web` HTTP/SSE endpoint (port 0 = ephemeral)",
        site: "ft2-harness",
    },
    KnobSpec {
        name: "FT2_WEB_MAX_CLIENTS",
        kind: KnobKind::Integer,
        default: "16",
        doc: "concurrent SSE clients of the `serve --web` event stream (extras get 503)",
        site: "ft2-harness",
    },
];

/// The registered knob names (what the `env-knob` lint validates literals
/// against).
pub fn knob_names() -> Vec<String> {
    KNOB_REGISTRY.iter().map(|k| k.name.to_string()).collect()
}

/// Look up a knob's registry row; panics on an unregistered name so that a
/// harness read bypassing the registry cannot survive `cargo test`.
pub fn knob_spec(name: &str) -> &'static KnobSpec {
    KNOB_REGISTRY
        .iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| {
            panic!("env knob {name} is not in the registry (crates/harness/src/settings.rs)")
        })
}

/// Global experiment sizing, overridable from the environment:
///
/// * `FT2_INPUTS`  — inputs per (model, dataset) pair (default 12);
/// * `FT2_TRIALS`  — fault-injection trials per input (default 30);
/// * `FT2_SEED`    — campaign master seed;
/// * `FT2_QUICK=1` — smoke-test sizing (6 inputs × 10 trials);
/// * `FT2_TRIAL_DEADLINE_MS`   — per-trial wall-clock watchdog (DUE/Hang);
/// * `FT2_TRIAL_TOKEN_BUDGET`  — per-trial generation-step watchdog;
/// * `FT2_RECOVERY_RETRIES`    — token-rollback retry budget per decode
///   step (default 0 = recovery disabled);
/// * `FT2_STORM_THRESHOLD`    — corrections per decode step that escalate
///   an anomaly verdict to a storm (default: library default);
/// * `FT2_SCRUB_TILES_PER_STEP` — weight tiles the integrity scrubber
///   re-verifies per decode step (default 0 = scrubbing off);
/// * `FT2_KV_GUARD=1`          — enable the KV-cache CRC guard;
/// * `FT2_RECOVERY_REPAIR=1`   — take a repair-and-retry rung after the
///   rollback retry budget is exhausted;
/// * `FT2_SHARDS`              — fault-isolation shards for the sharded
///   sweep (default 1 = unsharded);
/// * `FT2_SHARD_DEGRADE=1`     — evict a dead shard and keep generating;
/// * `FT2_SHARD_HEARTBEAT_MS`  — per-shard heartbeat timeout (default 50;
///   0 or negative disables the watchdog with a warning).
///
/// A knob that is set but malformed (empty, negative, non-numeric) is
/// ignored with a warning on stderr — it never panics and never silently
/// enables a watchdog.
///
/// The defaults regenerate every figure in minutes on a laptop core. The
/// paper's campaign (50 inputs × 500 trials, 11M injections) is
/// `FT2_INPUTS=50 FT2_TRIALS=500` — identical methodology, wider CIs at
/// the defaults.
#[derive(Clone, Copy, Debug)]
pub struct Settings {
    /// Inputs sampled per (model, dataset) pair.
    pub inputs: usize,
    /// Trials per input.
    pub trials: usize,
    /// Generated tokens for QA tasks (the paper's 60, scaled to the
    /// simulator models).
    pub gen_qa: usize,
    /// Generated tokens for math tasks (the paper's 180, scaled).
    pub gen_math: usize,
    /// Inputs used for offline bound profiling (the baselines' "20% of the
    /// training set", scaled). Must be large enough to cover the rare
    /// "spike" tokens of the vocabulary, else the baselines suffer the
    /// Fig. 3 bound-transfer degradation on their own dataset.
    pub profile_inputs: usize,
    /// Campaign master seed.
    pub seed: u64,
    /// Per-trial wall-clock watchdog deadline in milliseconds (None = off).
    /// Trials over budget are classified as Hang (DUE); wall-clock aborts
    /// are not bit-reproducible across machines.
    pub trial_deadline_ms: Option<u64>,
    /// Per-trial generation-step watchdog budget (None = off). Unlike the
    /// deadline, this abort is deterministic.
    pub trial_token_budget: Option<usize>,
    /// Token-rollback retry budget per decode step (0 = recovery off).
    pub recovery_retries: u32,
    /// Override for the anomaly-storm clamp threshold (None = the
    /// `ft2-core` default).
    pub storm_threshold: Option<u64>,
    /// Weight tiles the integrity scrubber re-verifies per decode step
    /// (0 = scrubbing off).
    pub scrub_tiles_per_step: usize,
    /// Enable the KV-cache CRC guard.
    pub kv_guard: bool,
    /// Take a repair-and-retry rung after rollback exhaustion.
    pub recovery_repair: bool,
    /// Fault-isolation shards for the sharded-execution sweep (1 =
    /// unsharded).
    pub shards: usize,
    /// Degraded-mode serving: evict a dead shard and keep generating.
    pub shard_degrade: bool,
    /// Per-shard heartbeat timeout in milliseconds.
    pub shard_heartbeat_ms: u64,
}

/// Human-readable "expected …" description for a knob's target type. The
/// warning below used to claim "a non-negative integer" for *every* knob,
/// which was wrong the moment a float- or string-valued knob reused
/// `parse_knob`.
fn expected_kind<T>() -> &'static str {
    let ty = std::any::type_name::<T>();
    match ty {
        "u8" | "u16" | "u32" | "u64" | "u128" | "usize" => "a non-negative integer",
        "i8" | "i16" | "i32" | "i64" | "i128" | "isize" => "an integer",
        "f32" | "f64" => "a number",
        "bool" => "true or false",
        _ => ty,
    }
}

/// Parse one knob value. A malformed value (empty, out-of-range,
/// non-numeric) warns on stderr and returns `None` — the knob falls back to
/// its default instead of panicking or being silently misread.
fn parse_knob<T: std::str::FromStr>(name: &str, raw: &str) -> Option<T> {
    match raw.trim().parse::<T>() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!(
                "warning: ignoring malformed {name}={raw:?} (expected {}); using the default",
                expected_kind::<T>()
            );
            None
        }
    }
}

pub(crate) fn env_knob<T: std::str::FromStr>(name: &str) -> Option<T> {
    let _ = knob_spec(name); // every harness read goes through the registry
    std::env::var(name)
        .ok()
        .and_then(|v| parse_knob(name, &v))
}

pub(crate) fn env_usize(name: &str) -> Option<usize> {
    env_knob(name)
}

/// A registered `=1` flag knob: `1` turns it on, anything else is off.
pub(crate) fn env_flag(name: &str) -> bool {
    let _ = knob_spec(name);
    std::env::var(name).is_ok_and(|v| v == "1")
}

/// A registered path-valued knob.
pub(crate) fn env_path(name: &str) -> Option<std::path::PathBuf> {
    let _ = knob_spec(name);
    std::env::var(name).ok().map(std::path::PathBuf::from)
}

/// A registered string-valued knob, taken verbatim (no parsing to fail).
pub(crate) fn env_string(name: &str) -> Option<String> {
    let _ = knob_spec(name);
    std::env::var(name).ok()
}

/// Whether `FT2_QUICK=1` smoke-test sizing is in effect.
pub(crate) fn quick_mode() -> bool {
    env_flag("FT2_QUICK")
}

impl Default for Settings {
    fn default() -> Self {
        Settings::from_env()
    }
}

impl Settings {
    /// Defaults with environment overrides applied.
    pub fn from_env() -> Settings {
        let (inputs, trials) = if quick_mode() { (6, 10) } else { (12, 30) };
        Settings {
            inputs: env_usize("FT2_INPUTS").unwrap_or(inputs),
            trials: env_usize("FT2_TRIALS").unwrap_or(trials),
            gen_qa: 16,
            gen_math: 36,
            profile_inputs: env_usize("FT2_PROFILE_INPUTS").unwrap_or(72),
            seed: env_knob("FT2_SEED").unwrap_or(0xF7_2025),
            trial_deadline_ms: env_knob("FT2_TRIAL_DEADLINE_MS"),
            trial_token_budget: env_usize("FT2_TRIAL_TOKEN_BUDGET"),
            recovery_retries: env_knob("FT2_RECOVERY_RETRIES").unwrap_or(0),
            storm_threshold: env_knob("FT2_STORM_THRESHOLD"),
            scrub_tiles_per_step: env_usize("FT2_SCRUB_TILES_PER_STEP").unwrap_or(0),
            kv_guard: env_flag("FT2_KV_GUARD"),
            recovery_repair: env_flag("FT2_RECOVERY_REPAIR"),
            shards: env_usize("FT2_SHARDS").unwrap_or(1).max(1),
            shard_degrade: env_flag("FT2_SHARD_DEGRADE"),
            // Parsed as i64 so that an explicit negative value reads as
            // "disable the watchdog" (0) rather than tripping the malformed
            // warning and silently re-enabling the 50 ms default.
            shard_heartbeat_ms: match env_knob::<i64>("FT2_SHARD_HEARTBEAT_MS") {
                Some(ms) if ms <= 0 => {
                    eprintln!(
                        "warning: FT2_SHARD_HEARTBEAT_MS={ms} disables the shard hang watchdog"
                    );
                    0
                }
                Some(ms) => ms as u64,
                None => 50,
            },
        }
    }

    /// Generation length for a task type.
    pub fn gen_tokens(&self, task: TaskType) -> usize {
        match task {
            TaskType::Qa => self.gen_qa,
            TaskType::Math => self.gen_math,
        }
    }

    /// The [`TaskSpec`] (answer span + judge) for a dataset.
    pub fn task_spec(&self, dataset: DatasetId) -> TaskSpec {
        let t = dataset.task_type();
        TaskSpec::new(t, self.gen_tokens(t))
    }

    /// Campaign configuration for a dataset and fault model.
    pub fn campaign(&self, dataset: DatasetId, fault_model: FaultModel) -> CampaignConfig {
        CampaignConfig {
            seed: self.seed,
            trials_per_input: self.trials,
            gen_tokens: self.gen_tokens(dataset.task_type()),
            fault_model,
            fault_duration: FaultDuration::Transient,
            fault_target: FaultTarget::Activation,
            step_filter: StepFilter::AllSteps,
            step_weighting: StepWeighting::default(),
            layer_filter: None,
            trial_deadline_ms: self.trial_deadline_ms,
            trial_token_budget: self.trial_token_budget,
            recovery_retries: self.recovery_retries,
            recovery_repair: self.recovery_repair,
        }
    }
}

/// Campaign checkpoint/resume behaviour, overridable from the environment:
///
/// * `FT2_CHECKPOINT_EVERY` — persist the campaign aggregate every N tasks
///   (enables checkpointing; unset = off unless resuming);
/// * `FT2_CHECKPOINT_DIR`   — checkpoint directory (default
///   `results/checkpoints`);
/// * `FT2_RESUME=1`         — resume compatible checkpoints (the
///   `ft2-repro --resume` flag sets this too).
///
/// Checkpoint files are keyed by a fingerprint of the campaign config and
/// reference generations, so a resumed run is bit-identical to an
/// uninterrupted one and incompatible checkpoints are never merged.
#[derive(Clone, Debug)]
pub struct Resilience {
    /// Checkpoint cadence in tasks (None = checkpointing off unless
    /// `resume` is set).
    pub checkpoint_every: Option<usize>,
    /// Directory for checkpoint files.
    pub checkpoint_dir: std::path::PathBuf,
    /// Resume compatible checkpoints found in `checkpoint_dir`.
    pub resume: bool,
}

impl Default for Resilience {
    fn default() -> Self {
        Resilience::from_env()
    }
}

impl Resilience {
    /// Defaults with environment overrides applied.
    pub fn from_env() -> Resilience {
        Resilience {
            checkpoint_every: env_usize("FT2_CHECKPOINT_EVERY"),
            checkpoint_dir: env_path("FT2_CHECKPOINT_DIR")
                .unwrap_or_else(|| std::path::PathBuf::from("results/checkpoints")),
            resume: env_flag("FT2_RESUME"),
        }
    }

    /// Whether campaigns should run through the checkpointing path.
    pub fn enabled(&self) -> bool {
        self.checkpoint_every.is_some() || self.resume
    }

    /// Checkpoint cadence (defaults to 256 tasks when only `resume` is on).
    pub fn cadence(&self) -> usize {
        self.checkpoint_every.unwrap_or(256).max(1)
    }
}

/// One (model, dataset) cell of the Fig. 13 grid.
#[derive(Clone, Debug)]
pub struct EvalPair {
    /// The model.
    pub model: ModelSpec,
    /// The dataset driving prompts and judging.
    pub dataset: DatasetId,
}

impl EvalPair {
    /// The paper's evaluation grid: every model on both QA datasets, plus
    /// GSM8K for the two math-capable models (16 pairs).
    pub fn evaluation_grid() -> Vec<EvalPair> {
        let mut pairs = Vec::new();
        for m in ZooModel::ALL {
            let spec = m.spec();
            for ds in [DatasetId::Squad, DatasetId::Xtreme] {
                pairs.push(EvalPair {
                    model: spec.clone(),
                    dataset: ds,
                });
            }
            if spec.supports_math {
                pairs.push(EvalPair {
                    model: spec.clone(),
                    dataset: DatasetId::Gsm8k,
                });
            }
        }
        pairs
    }

    /// `"<model> / <dataset>"` label.
    pub fn label(&self) -> String {
        format!("{} / {}", self.model.name(), self.dataset.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_sixteen_pairs() {
        let grid = EvalPair::evaluation_grid();
        assert_eq!(grid.len(), 16);
        let math: Vec<String> = grid
            .iter()
            .filter(|p| p.dataset == DatasetId::Gsm8k)
            .map(|p| p.model.name().to_string())
            .collect();
        assert_eq!(math, vec!["Llama2-7B", "Qwen2-7B"]);
    }

    #[test]
    fn settings_tokens_per_task() {
        let s = Settings {
            inputs: 1,
            trials: 1,
            gen_qa: 16,
            gen_math: 36,
            profile_inputs: 4,
            seed: 1,
            trial_deadline_ms: None,
            trial_token_budget: None,
            recovery_retries: 0,
            storm_threshold: None,
            scrub_tiles_per_step: 0,
            kv_guard: false,
            recovery_repair: false,
            shards: 1,
            shard_degrade: false,
            shard_heartbeat_ms: 50,
        };
        assert_eq!(s.gen_tokens(TaskType::Qa), 16);
        assert_eq!(s.gen_tokens(TaskType::Math), 36);
        assert_eq!(s.campaign(DatasetId::Gsm8k, FaultModel::SingleBit).gen_tokens, 36);
        assert_eq!(s.campaign(DatasetId::Squad, FaultModel::SingleBit).gen_tokens, 16);
    }

    #[test]
    fn settings_wire_recovery_into_campaigns() {
        let s = Settings {
            inputs: 1,
            trials: 1,
            gen_qa: 16,
            gen_math: 36,
            profile_inputs: 4,
            seed: 1,
            trial_deadline_ms: None,
            trial_token_budget: None,
            recovery_retries: 3,
            storm_threshold: Some(8),
            scrub_tiles_per_step: 8,
            kv_guard: true,
            recovery_repair: true,
            shards: 2,
            shard_degrade: true,
            shard_heartbeat_ms: 25,
        };
        let cfg = s.campaign(DatasetId::Squad, FaultModel::ExponentBit);
        assert_eq!(cfg.recovery_retries, 3);
        assert!(cfg.recovery_repair);
        assert_eq!(cfg.fault_duration, FaultDuration::Transient);
        assert_eq!(cfg.fault_target, FaultTarget::Activation);
    }

    #[test]
    fn malformed_watchdog_knobs_fall_back_to_disabled() {
        // Empty, negative, and non-numeric values must all be rejected
        // (with a stderr warning, exercised here only for no-panic) and
        // leave the watchdogs disabled.
        for raw in ["", "-5", "twelve", "1e3", "0x10", " "] {
            assert_eq!(
                parse_knob::<u64>("FT2_TRIAL_DEADLINE_MS", raw),
                None,
                "value {raw:?} should be rejected"
            );
            assert_eq!(parse_knob::<usize>("FT2_TRIAL_TOKEN_BUDGET", raw), None);
            assert_eq!(parse_knob::<u32>("FT2_RECOVERY_RETRIES", raw), None);
        }
    }

    #[test]
    fn knob_warnings_name_the_expected_type() {
        // The warning text must match the knob's type, not hardcode
        // "non-negative integer" for everything.
        assert_eq!(expected_kind::<u64>(), "a non-negative integer");
        assert_eq!(expected_kind::<usize>(), "a non-negative integer");
        assert_eq!(expected_kind::<i32>(), "an integer");
        assert_eq!(expected_kind::<f64>(), "a number");
        assert_eq!(expected_kind::<f32>(), "a number");
        assert_eq!(expected_kind::<bool>(), "true or false");
        // Unknown types fall back to the type name rather than lying.
        assert!(expected_kind::<String>().contains("String"));
    }

    #[test]
    fn registry_is_sorted_and_unique() {
        let names: Vec<&str> = KNOB_REGISTRY.iter().map(|k| k.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "KNOB_REGISTRY must be sorted by name, no duplicates");
        assert!(names.iter().all(|n| n.starts_with("FT2_")));
    }

    #[test]
    fn registry_docs_and_defaults_are_filled_in() {
        for k in KNOB_REGISTRY {
            assert!(!k.doc.is_empty(), "{} has no doc line", k.name);
            assert!(!k.default.is_empty(), "{} has no default", k.name);
            assert!(!k.site.is_empty(), "{} has no reading site", k.name);
        }
    }

    #[test]
    #[should_panic(expected = "not in the registry")]
    fn unregistered_reads_panic() {
        // Assembled at runtime so the env-knob lint (which checks FT2_*
        // string literals against the registry) does not see a knob here.
        let name = format!("FT2_{}", "NOT_A_REAL_KNOB");
        let _ = env_usize(&name);
    }

    #[test]
    fn negative_heartbeat_parses_as_disable_not_malformed() {
        // The heartbeat knob is parsed as i64 precisely so that an explicit
        // negative "disable" value is accepted (and mapped to 0) instead of
        // failing the u64 parse and re-enabling the 50 ms default.
        assert_eq!(parse_knob::<i64>("FT2_SHARD_HEARTBEAT_MS", "-5"), Some(-5));
        assert_eq!(parse_knob::<i64>("FT2_SHARD_HEARTBEAT_MS", "0"), Some(0));
        assert_eq!(parse_knob::<i64>("FT2_SHARD_HEARTBEAT_MS", "50"), Some(50));
        assert_eq!(parse_knob::<i64>("FT2_SHARD_HEARTBEAT_MS", "ten"), None);
    }

    #[test]
    fn wellformed_knobs_parse_with_surrounding_whitespace() {
        assert_eq!(parse_knob::<u64>("FT2_TRIAL_DEADLINE_MS", "250"), Some(250));
        assert_eq!(parse_knob::<usize>("FT2_TRIAL_TOKEN_BUDGET", " 64 "), Some(64));
        assert_eq!(parse_knob::<u32>("FT2_RECOVERY_RETRIES", "2"), Some(2));
        assert_eq!(parse_knob::<u64>("FT2_STORM_THRESHOLD", "8"), Some(8));
        assert_eq!(parse_knob::<usize>("FT2_TRIAL_TOKEN_BUDGET", "0"), Some(0));
    }
}
