//! Machine-readable benchmark baselines for the decode hot path.
//!
//! `ft2-repro bench` measures the three throughput quantities the
//! reproduction's performance work is judged by, on the same fixtures the
//! `ft2-bench` criterion targets use (OPT-6.7B stand-in, deterministic
//! SQuAD-style prompts, 16 generated tokens):
//!
//! * **prefill tok/s** — prompt tokens per second through a single
//!   [`Model::forward_step`] prefill;
//! * **decode tok/s** — generated tokens per second through the scratch-reuse
//!   generation loop (full [`Model::generate`] minus the measured prefill);
//! * **campaign trials/s** — unprotected fault-injection trials per second on
//!   the work-stealing pool, the end-to-end quantity campaigns feel.
//!
//! With `--json` the report is also written as a small hand-rolled JSON
//! document (the workspace is dependency-free, so no serde) whose keys are
//! schema-stable: CI checks in a committed `BENCH_decode.json` baseline and
//! greps/compares fields across commits to gate perf regressions. Bump
//! [`BENCH_SCHEMA_VERSION`] when a key changes meaning.
//!
//! Sizing knobs: `FT2_BENCH_REPS` (timing repetitions, best-of), wall-clock
//! only — the measured generations themselves are deterministic.
//! `FT2_BENCH_GEN` (generated tokens), `FT2_BENCH_TRIALS` (campaign trials
//! per input), `FT2_QUICK=1` (small everything, for smoke tests).

use crate::settings::{env_usize, quick_mode};
use ft2_fault::{Campaign, CampaignConfig, FaultModel, Unprotected};
use ft2_model::engine::KvCache;
use ft2_model::{Model, TapList, ZooModel};
use ft2_parallel::WorkStealingPool;
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::{DatasetId, TaskSpec};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// Version of the JSON report schema. Bump when a key changes meaning.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Default output path for the JSON report.
pub const BENCH_BASELINE_PATH: &str = "BENCH_decode.json";

/// One benchmark run's measurements.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Benchmarked model name (the `ft2-bench` fixture model).
    pub model: String,
    /// Worker threads the campaign ran on.
    pub threads: usize,
    /// Best-of repetitions per timed quantity.
    pub reps: usize,
    /// Prompt length of the prefill measurement.
    pub prefill_tokens: usize,
    /// Generated tokens of the decode measurement.
    pub gen_tokens: usize,
    /// Prompt tokens per second through prefill.
    pub prefill_tok_s: f64,
    /// Generated tokens per second through the decode loop.
    pub decode_tok_s: f64,
    /// Total fault-injection trials in the campaign measurement.
    pub campaign_trials: usize,
    /// Unprotected campaign trials per second.
    pub campaign_trials_s: f64,
}

impl BenchReport {
    /// Serialise as the schema-stable JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {BENCH_SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"model\": \"{}\",", self.model);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"reps\": {},", self.reps);
        let _ = writeln!(s, "  \"prefill_tokens\": {},", self.prefill_tokens);
        let _ = writeln!(s, "  \"gen_tokens\": {},", self.gen_tokens);
        let _ = writeln!(s, "  \"prefill_tok_s\": {:.3},", self.prefill_tok_s);
        let _ = writeln!(s, "  \"decode_tok_s\": {:.3},", self.decode_tok_s);
        let _ = writeln!(s, "  \"campaign_trials\": {},", self.campaign_trials);
        let _ = writeln!(s, "  \"campaign_trials_s\": {:.3}", self.campaign_trials_s);
        s.push('}');
        s.push('\n');
        s
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        format!(
            "model {} | threads {} | best of {} rep(s)\n\
             prefill  {:>10.1} tok/s  ({} prompt tokens)\n\
             decode   {:>10.1} tok/s  ({} generated tokens)\n\
             campaign {:>10.2} trials/s ({} unprotected trials)",
            self.model,
            self.threads,
            self.reps,
            self.prefill_tok_s,
            self.prefill_tokens,
            self.decode_tok_s,
            self.gen_tokens,
            self.campaign_trials_s,
            self.campaign_trials,
        )
    }
}

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Run the benchmark suite and collect a [`BenchReport`].
///
/// Deterministic in its measured work (same fixtures as `ft2-bench`); only
/// the timings vary run to run, hence best-of-`reps`.
pub fn run(pool: &WorkStealingPool) -> BenchReport {
    let quick = quick_mode();
    let reps = env_usize("FT2_BENCH_REPS").unwrap_or(if quick { 1 } else { 3 });
    let gen_tokens = env_usize("FT2_BENCH_GEN").unwrap_or(16).max(8);
    let trials = env_usize("FT2_BENCH_TRIALS").unwrap_or(if quick { 3 } else { 10 });
    let campaign_inputs = if quick { 2 } else { 4 };

    // The ft2-bench fixtures: OPT-6.7B stand-in, deterministic QA prompts.
    let model: Model = ZooModel::Opt6_7B.spec().build();
    let prompts = generate_prompts(DatasetId::Squad, campaign_inputs.max(1), 0xBE7C4);
    let prompt = &prompts[0];

    // Prefill: one forward over the whole prompt into a fresh cache.
    let t_prefill = best_of(reps, || {
        let mut taps = TapList::new();
        let mut cache = KvCache::new(model.config());
        let hidden = model.forward_step(prompt, 0, 0, &mut cache, &mut taps);
        std::hint::black_box(&hidden);
    });

    // Decode: a full generation (prefill + gen_tokens of scratch-reuse decode
    // loop); the decode share is the total minus the measured prefill.
    let t_total = best_of(reps, || {
        let mut taps = TapList::new();
        let out = model.generate(prompt, gen_tokens, &mut taps);
        std::hint::black_box(&out);
    });
    let t_decode = (t_total - t_prefill).max(1e-9);

    // Campaign throughput: unprotected transient exponent-bit trials, the
    // configuration every figure's baseline column runs.
    let task = TaskSpec::new(DatasetId::Squad.task_type(), gen_tokens);
    let judge = task.judge();
    let cfg = CampaignConfig {
        trials_per_input: trials,
        gen_tokens,
        ..CampaignConfig::quick(FaultModel::ExponentBit)
    };
    let campaign = Campaign::new(&model, &prompts, &judge, cfg, pool);
    let total_trials = prompts.len() * trials;
    let t_campaign = best_of(1, || {
        let result = campaign.run(&Unprotected, pool);
        std::hint::black_box(&result);
    });

    BenchReport {
        model: model.config().name.to_string(),
        threads: pool.threads(),
        reps,
        prefill_tokens: prompt.len(),
        gen_tokens,
        prefill_tok_s: prompt.len() as f64 / t_prefill.max(1e-9),
        decode_tok_s: gen_tokens as f64 / t_decode,
        campaign_trials: total_trials,
        campaign_trials_s: total_trials as f64 / t_campaign.max(1e-9),
    }
}

/// Write the JSON report atomically (temp file + rename, like campaign
/// checkpoints) so a crash mid-write never corrupts an existing baseline.
pub fn write_json(report: &BenchReport, path: &Path) -> Result<(), String> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, report.to_json())
        .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("renaming to {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            model: "OPT-6.7B".to_string(),
            threads: 2,
            reps: 1,
            prefill_tokens: 21,
            gen_tokens: 16,
            prefill_tok_s: 1234.5678,
            decode_tok_s: 17000.25,
            campaign_trials: 8,
            campaign_trials_s: 3.5,
        }
    }

    #[test]
    fn json_schema_is_stable() {
        let json = sample().to_json();
        for key in [
            "\"schema\": 1",
            "\"model\": \"OPT-6.7B\"",
            "\"threads\": 2",
            "\"reps\": 1",
            "\"prefill_tokens\": 21",
            "\"gen_tokens\": 16",
            "\"prefill_tok_s\": 1234.568",
            "\"decode_tok_s\": 17000.250",
            "\"campaign_trials\": 8",
            "\"campaign_trials_s\": 3.500",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Well-formed enough for line-oriented CI tooling: one key per line,
        // braces on their own lines.
        assert!(json.starts_with("{\n") && json.ends_with("}\n"), "{json}");
    }

    #[test]
    fn write_json_roundtrips_atomically() {
        let dir = std::env::temp_dir().join("ft2_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_decode.json");
        write_json(&sample(), &path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, sample().to_json());
        assert!(!path.with_extension("json.tmp").exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn summary_mentions_every_quantity() {
        let s = sample().summary();
        assert!(s.contains("prefill") && s.contains("decode") && s.contains("campaign"));
        assert!(s.contains("tok/s") && s.contains("trials/s"));
    }
}
