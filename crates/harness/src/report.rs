//! Plain-text tables and CSV artifacts.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Format a rate in `[0,1]` as a percentage with two decimals.
pub fn format_pct(rate: f64) -> String {
    format!("{:.2}%", rate * 100.0)
}

/// A fixed-column ASCII table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The data rows (header excluded), for assertions on emitted results.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, " {:<w$} |", c, w = width[i]);
            }
            let _ = writeln!(out, "{s}");
        };
        line(&mut out, &self.header);
        let sep: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &sep);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The same data as CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// CSV artifact writer rooted at `results/`.
#[derive(Clone, Debug)]
pub struct Csv {
    dir: PathBuf,
}

impl Csv {
    /// Writer into the given directory (created on demand).
    pub fn new(dir: impl AsRef<Path>) -> Csv {
        Csv {
            dir: dir.as_ref().to_path_buf(),
        }
    }

    /// Default `results/` directory next to the workspace root.
    pub fn default_dir() -> Csv {
        Csv::new("results")
    }

    /// Write a table as `<name>.csv`. Returns the path written.
    pub fn write(&self, name: &str, table: &Table) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formatting() {
        assert_eq!(format_pct(0.0292), "2.92%");
        assert_eq!(format_pct(0.0), "0.00%");
        assert_eq!(format_pct(1.0), "100.00%");
    }

    #[test]
    fn table_rendering_aligns() {
        let mut t = Table::new("Demo", &["model", "sdc"]);
        t.row(vec!["OPT-6.7B".into(), "1.23%".into()]);
        t.row(vec!["Q".into(), "0.10%".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("| OPT-6.7B | 1.23% |"));
        assert!(s.contains("| Q        | 0.10% |"));
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn csv_escaping_and_write() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["hello, world".into(), "quote\"y".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"quote\"\"y\""));

        let dir = std::env::temp_dir().join("ft2_csv_test");
        let w = Csv::new(&dir);
        let path = w.write("demo", &t).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.starts_with("a,b"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
