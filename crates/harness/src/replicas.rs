//! The cross-replica failover gate behind `ft2-repro replicas`.
//!
//! Exercises `ft2-serve`'s [`ReplicaSet`] end to end on the bench fixtures
//! (OPT-6.7B stand-in, deterministic SQuAD-style prompts) and proves the
//! three replication guarantees:
//!
//! * **zero-token-loss handoff** — a replica crash mid-batch fails its
//!   in-flight requests over to a survivor with their accepted-token
//!   prefixes intact; every request completes **bit-identical** to its
//!   single-sequence generation, and at least one handoff carried accepted
//!   tokens across. Handoffs are typed: the drill records an
//!   [`ft2_fault::Outcome::FailedOver`] per failed-over request (the
//!   masked-but-priced outcome the analyzer and checkpoint carry).
//! * **blast-radius isolation** — a persistent activation storm on one
//!   replica trips the error-rate breaker (quarantine) while the clean
//!   replica's requests stay token-identical; the clean replica's p99
//!   decode-gap latency (time-to-first-token excluded — see
//!   [`crate::latency`]) is reported as a clamped inflation ratio over a
//!   fault-free run (informational).
//! * **rebuild beats restart** — a quarantined replica with corrupted
//!   weights rebuilds live (incremental checksum sweep against the golden
//!   copy, survivors keep serving) and rejoins; the measured
//!   quarantine→rebuild→rejoin wall time must beat building a fresh
//!   replica from scratch.
//!
//! With `--json` the report is written as the schema-stable
//! `BENCH_replicas.json` (committed as a baseline; CI greps its keys).
//! `ok` gates correctness (identity, zero loss, typed failovers,
//! quarantine, rebuild-beats-restart); timings beyond that are
//! informational. Sizing: `FT2_BENCH_GEN`, `FT2_QUICK=1` / `--smoke`.
//! Knobs: `FT2_REPLICAS`, `FT2_REPLICA_RETRY_BUDGET`,
//! `FT2_REPLICA_BACKOFF_MS`, `FT2_REPLICA_QUARANTINE_ERRS`.

use crate::latency::{inflation_ratio, percentile_ms, split_all};
use crate::settings::{env_usize, quick_mode};
use ft2_fault::{Outcome as FaultOutcome, OutcomeCounts, ReplicaFaultKind, ReplicaFaultSpec};
use ft2_model::{Model, TapList, ZooModel};
use ft2_parallel::WorkStealingPool;
use ft2_serve::replica::{ReplicaCompletion, ReplicaConfig, ReplicaHealth, ReplicaSet, RetryPolicy};
use ft2_serve::scheduler::{Outcome, Request};
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::DatasetId;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// Version of the JSON report schema. Bump when a key changes meaning.
pub const REPLICAS_SCHEMA_VERSION: u64 = 2;

/// Default output path for the JSON report.
pub const REPLICAS_BASELINE_PATH: &str = "BENCH_replicas.json";

/// The full replication report.
#[derive(Clone, Debug)]
pub struct ReplicasReport {
    /// Benchmarked model name.
    pub model: String,
    /// Decode-pool worker threads.
    pub threads: usize,
    /// Tokens generated per request.
    pub gen_tokens: usize,
    /// Replicas per set (`FT2_REPLICAS`).
    pub replicas: usize,
    /// Failover budget per request (`FT2_REPLICA_RETRY_BUDGET`).
    pub retry_budget: u32,
    /// Base failover backoff (`FT2_REPLICA_BACKOFF_MS`).
    pub backoff_ms: u64,
    /// Breaker threshold (`FT2_REPLICA_QUARANTINE_ERRS`).
    pub quarantine_errs: u32,

    /// Crash drill: requests served across the crash.
    pub crash_requests: usize,
    /// Every crash-drill request completed with its full token budget and
    /// bit-identical to solo generation — no accepted token lost.
    pub crash_identity_ok: bool,
    /// Failovers the crash forced (≥ 1 or the drill never armed).
    pub crash_failovers: u64,
    /// Accepted tokens carried across handoffs (≥ 1 proves a
    /// mid-generation handoff, not just a queue re-route).
    pub handoff_tokens: u64,
    /// Requests whose completion was typed `FailedOver` (masked, priced).
    pub crash_failed_over: u64,
    /// Requests served without ever failing over (`MaskedIdentical`).
    pub crash_masked_identical: u64,

    /// Storm drill: the degenerate replica was quarantined by the breaker.
    pub storm_quarantined: bool,
    /// Storm-caused evictions retried clean on a survivor.
    pub storm_evictions: u64,
    /// Every storm-drill request still completed bit-identical to solo.
    pub storm_identity_ok: bool,
    /// Clean requests' p99 decode-gap latency under the one-replica
    /// storm, ms (TTFT excluded).
    pub storm_clean_p99_ms: f64,
    /// Fault-free median time-to-first-token (queue wait + prefill), ms.
    pub ttft_ms: f64,
    /// Fault-free p99 decode-gap latency baseline, ms.
    pub clean_p99_ms: f64,
    /// Clamped tail inflation via [`inflation_ratio`] (informational).
    pub clean_p99_inflation: f64,

    /// Rebuild drill: weight tiles the sweep restored from golden.
    pub tiles_repaired: u64,
    /// Quarantine→rebuild→rejoin wall time, milliseconds.
    pub rebuild_ms: f64,
    /// Building a replacement replica from scratch, milliseconds.
    pub restart_ms: f64,
    /// The live rebuild beat the full restart.
    pub rebuild_beats_restart: bool,
    /// The rebuilt replica rejoined `Healthy` and served identically.
    pub rejoin_ok: bool,
}

impl ReplicasReport {
    /// Correctness gate: bit-identical zero-loss handoff with at least one
    /// real mid-generation failover, breaker-driven quarantine under a
    /// one-replica storm with clean-replica identity intact, and a live
    /// rebuild that repairs the corruption, beats a full restart, and
    /// rejoins. Latency inflation is informational and never gates.
    pub fn ok(&self) -> bool {
        self.crash_requests > 0
            && self.crash_identity_ok
            && self.crash_failovers >= 1
            && self.handoff_tokens >= 1
            && self.crash_failed_over >= 1
            && self.storm_quarantined
            && self.storm_evictions >= 1
            && self.storm_identity_ok
            && self.tiles_repaired >= 1
            && self.rebuild_beats_restart
            && self.rejoin_ok
    }

    /// Serialise as the schema-stable JSON document (one key per line).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {REPLICAS_SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"model\": \"{}\",", self.model);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"gen_tokens\": {},", self.gen_tokens);
        let _ = writeln!(s, "  \"replicas\": {},", self.replicas);
        let _ = writeln!(s, "  \"retry_budget\": {},", self.retry_budget);
        let _ = writeln!(s, "  \"backoff_ms\": {},", self.backoff_ms);
        let _ = writeln!(s, "  \"quarantine_errs\": {},", self.quarantine_errs);
        let _ = writeln!(s, "  \"crash_requests\": {},", self.crash_requests);
        let _ = writeln!(s, "  \"crash_identity_ok\": {},", self.crash_identity_ok);
        let _ = writeln!(s, "  \"crash_failovers\": {},", self.crash_failovers);
        let _ = writeln!(s, "  \"handoff_tokens\": {},", self.handoff_tokens);
        let _ = writeln!(s, "  \"crash_failed_over\": {},", self.crash_failed_over);
        let _ = writeln!(
            s,
            "  \"crash_masked_identical\": {},",
            self.crash_masked_identical
        );
        let _ = writeln!(s, "  \"storm_quarantined\": {},", self.storm_quarantined);
        let _ = writeln!(s, "  \"storm_evictions\": {},", self.storm_evictions);
        let _ = writeln!(s, "  \"storm_identity_ok\": {},", self.storm_identity_ok);
        let _ = writeln!(s, "  \"storm_clean_p99_ms\": {:.3},", self.storm_clean_p99_ms);
        let _ = writeln!(s, "  \"ttft_ms\": {:.3},", self.ttft_ms);
        let _ = writeln!(s, "  \"clean_p99_ms\": {:.3},", self.clean_p99_ms);
        let _ = writeln!(s, "  \"clean_p99_inflation\": {:.3},", self.clean_p99_inflation);
        let _ = writeln!(s, "  \"tiles_repaired\": {},", self.tiles_repaired);
        let _ = writeln!(s, "  \"rebuild_ms\": {:.3},", self.rebuild_ms);
        let _ = writeln!(s, "  \"restart_ms\": {:.3},", self.restart_ms);
        let _ = writeln!(
            s,
            "  \"rebuild_beats_restart\": {},",
            self.rebuild_beats_restart
        );
        let _ = writeln!(s, "  \"rejoin_ok\": {},", self.rejoin_ok);
        let _ = writeln!(s, "  \"ok\": {}", self.ok());
        s.push('}');
        s.push('\n');
        s
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "replica failover | model {} | threads {} | {} tokens/request | {} replicas \
             (budget {}, backoff {} ms, breaker {} errs)\n",
            self.model,
            self.threads,
            self.gen_tokens,
            self.replicas,
            self.retry_budget,
            self.backoff_ms,
            self.quarantine_errs
        );
        let _ = writeln!(
            s,
            "crash handoff: {} requests, {} failovers, {} tokens carried, typed \
             FailedOver {} / MaskedIdentical {}, identity {}",
            self.crash_requests,
            self.crash_failovers,
            self.handoff_tokens,
            self.crash_failed_over,
            self.crash_masked_identical,
            if self.crash_identity_ok { "ok" } else { "DRIFT" }
        );
        let _ = writeln!(
            s,
            "one-replica storm: quarantined {}, {} evictions retried clean, ttft {:.3} ms, \
             clean decode p99 {:.3} ms = {:.2}x fault-free, identity {}",
            self.storm_quarantined,
            self.storm_evictions,
            self.ttft_ms,
            self.storm_clean_p99_ms,
            self.clean_p99_inflation,
            if self.storm_identity_ok { "ok" } else { "DRIFT" }
        );
        let _ = writeln!(
            s,
            "live rebuild: {} tiles repaired, rejoin in {:.2} ms vs {:.2} ms full \
             restart ({}), rejoin {}",
            self.tiles_repaired,
            self.rebuild_ms,
            self.restart_ms,
            if self.rebuild_beats_restart {
                "rebuild wins"
            } else {
                "RESTART WINS"
            },
            if self.rejoin_ok { "ok" } else { "FAIL" }
        );
        let _ = write!(s, "overall: {}", if self.ok() { "ok" } else { "FAIL" });
        s
    }
}

fn replica_config(replicas: usize, retry: RetryPolicy, quarantine_errs: u32) -> ReplicaConfig {
    ReplicaConfig {
        replicas,
        retry,
        quarantine_errs,
        heartbeat: std::time::Duration::from_millis(20),
        ..ReplicaConfig::default()
    }
}

/// Serve `requests` clean requests through a replica set with `fault`
/// injected (if any); returns completions sorted by id.
fn replica_wave(
    model: &Model,
    pool: &WorkStealingPool,
    config: ReplicaConfig,
    prompts: &[Vec<u32>],
    gen_tokens: usize,
    requests: usize,
    fault: Option<ReplicaFaultSpec>,
) -> (Vec<ReplicaCompletion>, ReplicaSet) {
    let mut set = ReplicaSet::new(model, config);
    if let Some(f) = fault {
        set.inject(f);
    }
    for i in 0..requests {
        set.try_submit(Request {
            id: i as u64,
            prompt: prompts[i % prompts.len()].clone(),
            gen_tokens,
            tap: None,
        })
        .expect("bench request rejected at admission");
    }
    let mut done = set.run(pool);
    done.sort_by_key(|c| c.inner.id);
    (done, set)
}

/// Run the replication gate. `smoke` (or `FT2_QUICK=1`) shrinks request
/// counts and generation length for CI.
pub fn run(pool: &WorkStealingPool, smoke: bool) -> ReplicasReport {
    let quick = smoke || quick_mode();
    let gen_tokens = env_usize("FT2_BENCH_GEN")
        .unwrap_or(if quick { 8 } else { 16 })
        .max(4);
    let replicas = env_usize("FT2_REPLICAS").unwrap_or(2).max(2);
    let retry = RetryPolicy {
        budget: env_usize("FT2_REPLICA_RETRY_BUDGET").unwrap_or(3).max(1) as u32,
        backoff_ms: env_usize("FT2_REPLICA_BACKOFF_MS").unwrap_or(1) as u64,
        deadline_ms: 0,
    };
    let quarantine_errs = env_usize("FT2_REPLICA_QUARANTINE_ERRS").unwrap_or(3).max(1) as u32;
    let requests = if quick { 6 } else { 12 };

    let model = ZooModel::Opt6_7B.spec().build();
    let prompts = generate_prompts(DatasetId::Squad, requests.min(8), 0xF41);
    let solo: Vec<Vec<u32>> = prompts
        .iter()
        .map(|p| {
            let mut taps = TapList::new();
            model.generate(p, gen_tokens, &mut taps).tokens
        })
        .collect();
    let identical = |c: &ReplicaCompletion| {
        c.inner.outcome == Outcome::Completed
            && c.inner.tokens == solo[c.inner.id as usize % prompts.len()]
    };

    // Fault-free baseline (also the p99 reference for the storm drill).
    let (clean_done, _) = replica_wave(
        &model,
        pool,
        replica_config(replicas, retry, quarantine_errs),
        &prompts,
        gen_tokens,
        requests,
        None,
    );
    let (clean_ttfts, clean_decode_ns) =
        split_all(clean_done.iter().map(|c| c.inner.token_ns.as_slice()));
    let ttft_ms = percentile_ms(clean_ttfts, 50.0);
    let clean_p99_ms = percentile_ms(clean_decode_ns, 99.0);

    // Drill (a): replica 0 crashes mid-batch; zero-token-loss handoff.
    let (crash_done, crash_set) = replica_wave(
        &model,
        pool,
        replica_config(replicas, retry, quarantine_errs),
        &prompts,
        gen_tokens,
        requests,
        Some(ReplicaFaultSpec::transient(
            0,
            ReplicaFaultKind::Crash,
            (gen_tokens as u64 / 2).max(1),
        )),
    );
    let crash_identity_ok = crash_done.len() == requests && crash_done.iter().all(identical);
    // Typed outcome accounting: the same counts the campaign checkpoint
    // persists and the analyzer prices.
    let mut counts = OutcomeCounts::default();
    for c in &crash_done {
        if identical(c) {
            counts.record(&if c.failovers > 0 {
                FaultOutcome::FailedOver {
                    failovers: c.failovers,
                }
            } else {
                FaultOutcome::MaskedIdentical
            });
        } else {
            counts.record(&FaultOutcome::Sdc);
        }
    }
    let crash_stats = *crash_set.stats();

    // Drill (b): a persistent activation storm on replica 0; the breaker
    // quarantines it and its requests retry clean on survivors.
    let (storm_done, storm_set) = replica_wave(
        &model,
        pool,
        replica_config(replicas, retry, quarantine_errs),
        &prompts,
        gen_tokens,
        requests,
        Some(ReplicaFaultSpec::persistent(0, ReplicaFaultKind::ActStorm, 0)),
    );
    let storm_identity_ok = storm_done.len() == requests && storm_done.iter().all(identical);
    let storm_stats = *storm_set.stats();
    // Tail of requests that never touched the storming replica: served
    // end-to-end by a clean survivor (failovers == 0).
    let (_, storm_clean_decode_ns) = split_all(
        storm_done
            .iter()
            .filter(|c| c.failovers == 0)
            .map(|c| c.inner.token_ns.as_slice()),
    );
    let storm_clean_p99_ms = percentile_ms(storm_clean_decode_ns, 99.0);

    // Drill (c): quarantine a replica, corrupt its weights, and measure
    // quarantine→rebuild→rejoin against building a replacement replica
    // from scratch. Survivors keep the set serving throughout.
    let mut set = ReplicaSet::new(&model, replica_config(replicas, retry, quarantine_errs));
    set.quarantine(0);
    set.with_replica_weights(0, |w| {
        for b in 0..w.blocks.len() {
            for kind in [ft2_model::LayerKind::QProj, ft2_model::LayerKind::VProj] {
                if let Some(layer) = w.blocks[b].layer_mut(kind) {
                    let len = layer.weight.as_slice().len();
                    layer.weight.as_mut_slice()[(b * 131) % len] += 1.0e4;
                }
            }
        }
    })
    .expect("quarantined replica weights must be reachable");
    let t0 = Instant::now();
    while set.health(0) != ReplicaHealth::Healthy {
        set.step(pool);
    }
    let rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;
    let rebuild_stats = *set.stats();
    // Full restart: synthesise a replacement replica from the checkpoint
    // config AND attest it — a replica can only join the set once its
    // weight-tile checksums exist (the integrity contract every sweep and
    // scrub relies on). Rebuild gets that attestation for free: its sweep
    // IS the checksum pass.
    let t0 = Instant::now();
    let fresh = Model::new(model.config().clone());
    let attestation = ft2_core::WeightChecksums::build(fresh.config(), fresh.weights());
    let restart_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(attestation);
    drop(fresh);
    // The rebuilt replica must serve bit-identically again.
    for i in 0..2usize {
        set.try_submit(Request {
            id: i as u64,
            prompt: prompts[i % prompts.len()].clone(),
            gen_tokens,
            tap: None,
        })
        .expect("post-rejoin request rejected");
    }
    let rejoined = set.run(pool);
    let rejoin_ok = rejoined.len() == 2 && rejoined.iter().all(identical);

    ReplicasReport {
        model: model.config().name.to_string(),
        threads: pool.threads(),
        gen_tokens,
        replicas,
        retry_budget: retry.budget,
        backoff_ms: retry.backoff_ms,
        quarantine_errs,
        crash_requests: requests,
        crash_identity_ok,
        crash_failovers: crash_stats.failovers,
        handoff_tokens: crash_stats.handoff_tokens,
        crash_failed_over: counts.failed_over,
        crash_masked_identical: counts.masked_identical,
        storm_quarantined: storm_stats.quarantines >= 1,
        storm_evictions: storm_stats.storm_evictions,
        storm_identity_ok,
        storm_clean_p99_ms,
        ttft_ms,
        clean_p99_ms,
        clean_p99_inflation: inflation_ratio(storm_clean_p99_ms, clean_p99_ms),
        tiles_repaired: rebuild_stats.tiles_repaired,
        rebuild_ms,
        restart_ms,
        rebuild_beats_restart: rebuild_ms < restart_ms,
        rejoin_ok,
    }
}

/// Write the JSON report atomically (temp file + rename), like the other
/// baselines.
pub fn write_json(report: &ReplicasReport, path: &Path) -> Result<(), String> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, report.to_json())
        .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("renaming to {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReplicasReport {
        ReplicasReport {
            model: "OPT-6.7B".to_string(),
            threads: 4,
            gen_tokens: 16,
            replicas: 2,
            retry_budget: 3,
            backoff_ms: 1,
            quarantine_errs: 3,
            crash_requests: 12,
            crash_identity_ok: true,
            crash_failovers: 4,
            handoff_tokens: 23,
            crash_failed_over: 4,
            crash_masked_identical: 8,
            storm_quarantined: true,
            storm_evictions: 6,
            storm_identity_ok: true,
            storm_clean_p99_ms: 2.5,
            ttft_ms: 4.75,
            clean_p99_ms: 2.0,
            clean_p99_inflation: 1.25,
            tiles_repaired: 8,
            rebuild_ms: 1.75,
            restart_ms: 6.5,
            rebuild_beats_restart: true,
            rejoin_ok: true,
        }
    }

    #[test]
    fn json_schema_is_stable() {
        let json = sample().to_json();
        for key in [
            "\"schema\": 2",
            "\"model\": \"OPT-6.7B\"",
            "\"replicas\": 2",
            "\"retry_budget\": 3",
            "\"backoff_ms\": 1",
            "\"quarantine_errs\": 3",
            "\"crash_identity_ok\": true",
            "\"crash_failovers\": 4",
            "\"handoff_tokens\": 23",
            "\"crash_failed_over\": 4",
            "\"storm_quarantined\": true",
            "\"storm_evictions\": 6",
            "\"storm_identity_ok\": true",
            "\"ttft_ms\": 4.750",
            "\"clean_p99_inflation\": 1.250",
            "\"tiles_repaired\": 8",
            "\"rebuild_ms\": 1.750",
            "\"restart_ms\": 6.500",
            "\"rebuild_beats_restart\": true",
            "\"rejoin_ok\": true",
            "\"ok\": true",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(json.starts_with("{\n") && json.ends_with("}\n"), "{json}");
    }

    #[test]
    fn ok_gates_correctness_not_latency() {
        let report = sample();
        assert!(report.ok());
        let mut drift = report.clone();
        drift.crash_identity_ok = false;
        assert!(!drift.ok(), "handoff identity drift must fail the gate");
        let mut lost = report.clone();
        lost.handoff_tokens = 0;
        assert!(!lost.ok(), "a handoff that carried nothing proves nothing");
        let mut untripped = report.clone();
        untripped.storm_quarantined = false;
        assert!(!untripped.ok(), "the breaker must trip under the storm");
        let mut slow_restart = report.clone();
        slow_restart.rebuild_beats_restart = false;
        assert!(!slow_restart.ok(), "rebuild must beat the full restart");
        let mut slow = report;
        slow.clean_p99_inflation = 50.0;
        assert!(slow.ok(), "latency inflation is informational, never a gate");
    }

    #[test]
    fn smoke_run_upholds_the_three_replication_guarantees() {
        let pool = WorkStealingPool::new(3);
        let report = run(&pool, true);
        assert!(report.ok(), "replicas gate failed:\n{}", report.summary());
        assert!(report.crash_failovers >= 1);
        assert!(report.handoff_tokens >= 1);
        assert!(report.storm_quarantined);
        // Latency accounting fix: TTFT is measured (and no longer pollutes
        // the decode-gap percentiles), and the inflation ratio is clamped.
        assert!(report.ttft_ms > 0.0, "fault-free wave lost its TTFT");
        assert!(report.clean_p99_inflation <= crate::latency::INFLATION_CAP);
    }
}
