//! The sharded-execution sweep behind `ft2-repro shards`.
//!
//! For each swept zoo config and shard count the sweep demonstrates the
//! three guarantees of the fault-isolation design, end to end through the
//! real sharded executor ([`ft2_model::ShardedModel`]):
//!
//! * **identity** — a fault-free N-shard decode emits tokens bit-identical
//!   to the 1-shard golden run (the f64-exact reduce seam);
//! * **repair** — a *persistent* shard-scoped weight fault
//!   ([`ft2_fault::ShardFault::TileCorrupt`]) is survived through the
//!   shard-level repair rung ([`ft2_core::ShardScrubber`] golden-copy
//!   restore), with each repair rung strictly cheaper than a full restart
//!   (re-running the whole generation) — the per-incident comparison;
//! * **degrade** — crashing one shard with degraded-mode serving enabled
//!   still emits every requested token and reports
//!   [`ft2_fault::Outcome::Degraded`] — availability is preserved, and the
//!   shard loss is never silent.
//!
//! With `--json` the results are written to a schema-stable
//! `BENCH_shards.json` (committed as a baseline; CI greps its keys), in
//! the same hand-rolled one-key-per-line format as `BENCH_decode.json`.
//!
//! Sizing: `FT2_QUICK=1` (or `--smoke`) sweeps N=2 only with a short
//! generation; `FT2_SHARDS` overrides the swept shard counts with a single
//! value; `FT2_SHARD_HEARTBEAT_MS` sets the hang-isolation heartbeat.

use crate::settings::Settings;
use ft2_core::ShardScrubber;
use ft2_fault::model::FaultDuration;
use ft2_fault::shard::{classify_sharded, ShardFault, ShardFaultInjector, ShardFaultSpec};
use ft2_fault::{ExactJudge, Outcome};
use ft2_model::{
    Model, RecoveryPolicy, ShardTapList, ShardedGeneration, ShardedModel, ZooModel,
};
use ft2_parallel::WorkStealingPool;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

/// Version of the JSON report schema. Bump when a key changes meaning.
pub const SHARDS_SCHEMA_VERSION: u64 = 1;

/// Default output path for the JSON report.
pub const SHARDS_BASELINE_PATH: &str = "BENCH_shards.json";

/// Deterministic prompt for the sweep (token ids valid for every zoo
/// config: all vocabularies exceed 32).
const PROMPT: [u32; 6] = [3, 14, 15, 9, 26, 5];

/// One (model, shard-count) cell of the sweep.
#[derive(Clone, Debug)]
pub struct ShardsEntry {
    /// Model display name.
    pub model: String,
    /// Shard count of this cell.
    pub shards: usize,
    /// Fault-free N-shard tokens == 1-shard golden tokens.
    pub token_identical: bool,
    /// Outcome of the persistent-TileCorrupt repair scenario.
    pub repair_outcome: &'static str,
    /// Shard-repair rungs taken in the repair scenario.
    pub repair_rungs: u32,
    /// Weight tiles restored from the golden copy.
    pub tiles_repaired: u64,
    /// Nanoseconds spent inside repair sweeps, across all rungs.
    pub repair_ns: u64,
    /// Full-restart cost: wall time of re-running the whole generation.
    pub restart_ns: u64,
    /// One repair rung costs less than one full restart — per incident,
    /// the repair rung is the cheaper recovery (`repair_ns / repair_rungs
    /// < restart_ns`). A restart would not even clear a persistent fault;
    /// this shows repair also wins on pure time.
    pub repair_beats_restart: bool,
    /// Outcome of the crash-with-degrade scenario.
    pub degrade_outcome: &'static str,
    /// Tokens served in the degrade scenario (must equal `gen_tokens`).
    pub degrade_tokens_served: usize,
    /// Shards lost (evicted) in the degrade scenario.
    pub degrade_shards_lost: u32,
}

impl ShardsEntry {
    /// All three guarantees hold for this cell.
    pub fn ok(&self, gen_tokens: usize) -> bool {
        self.token_identical
            && self.repair_outcome == "Repaired"
            && self.repair_beats_restart
            && self.degrade_outcome == "Degraded"
            && self.degrade_tokens_served == gen_tokens
            && self.degrade_shards_lost >= 1
    }
}

/// The full sweep result.
#[derive(Clone, Debug)]
pub struct ShardsReport {
    /// Tokens generated per scenario run.
    pub gen_tokens: usize,
    /// Heartbeat timeout used for hang isolation, milliseconds.
    pub heartbeat_ms: u64,
    /// One entry per (model, shard-count) cell.
    pub entries: Vec<ShardsEntry>,
}

impl ShardsReport {
    /// Every cell upheld all three guarantees.
    pub fn ok(&self) -> bool {
        !self.entries.is_empty() && self.entries.iter().all(|e| e.ok(self.gen_tokens))
    }

    /// Serialise as the schema-stable JSON document (one key per line).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {SHARDS_SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"gen_tokens\": {},", self.gen_tokens);
        let _ = writeln!(s, "  \"heartbeat_ms\": {},", self.heartbeat_ms);
        s.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"model\": \"{}\", \"shards\": {}, \"token_identical\": {}, \
                 \"repair_outcome\": \"{}\", \"repair_rungs\": {}, \"tiles_repaired\": {}, \
                 \"repair_ns\": {}, \"restart_ns\": {}, \"repair_beats_restart\": {}, \
                 \"degrade_outcome\": \"{}\", \"degrade_tokens_served\": {}, \
                 \"degrade_shards_lost\": {}, \"ok\": {}}}",
                e.model,
                e.shards,
                e.token_identical,
                e.repair_outcome,
                e.repair_rungs,
                e.tiles_repaired,
                e.repair_ns,
                e.restart_ns,
                e.repair_beats_restart,
                e.degrade_outcome,
                e.degrade_tokens_served,
                e.degrade_shards_lost,
                e.ok(self.gen_tokens)
            );
        }
        s.push_str("\n  ],\n");
        let _ = writeln!(s, "  \"ok\": {}", self.ok());
        s.push('}');
        s.push('\n');
        s
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "sharded execution sweep | {} tokens | heartbeat {} ms\n",
            self.gen_tokens, self.heartbeat_ms
        );
        for e in &self.entries {
            let _ = writeln!(
                s,
                "{:<12} N={}  identity {}  repair {} ({} rungs, {} tiles, \
                 {:.2} ms vs restart {:.2} ms)  degrade {} ({} tokens, {} lost)  [{}]",
                e.model,
                e.shards,
                if e.token_identical { "ok" } else { "DRIFT" },
                e.repair_outcome,
                e.repair_rungs,
                e.tiles_repaired,
                e.repair_ns as f64 / 1e6,
                e.restart_ns as f64 / 1e6,
                e.degrade_outcome,
                e.degrade_tokens_served,
                e.degrade_shards_lost,
                if e.ok(self.gen_tokens) { "ok" } else { "FAIL" }
            );
        }
        let _ = write!(s, "overall: {}", if self.ok() { "ok" } else { "FAIL" });
        s
    }
}

/// Stable label for an [`Outcome`] in the JSON report.
fn outcome_label(o: &Outcome) -> &'static str {
    match o {
        Outcome::MaskedIdentical => "MaskedIdentical",
        Outcome::MaskedSemantic => "MaskedSemantic",
        Outcome::Sdc => "Sdc",
        Outcome::Crash { .. } => "Crash",
        Outcome::Hang => "Hang",
        Outcome::Recovered { .. } => "Recovered",
        Outcome::Repaired { .. } => "Repaired",
        Outcome::RecoveryFailed { .. } => "RecoveryFailed",
        Outcome::Degraded { .. } => "Degraded",
        Outcome::FailedOver { .. } => "FailedOver",
    }
}

fn generate(
    model: &Model,
    pool: &WorkStealingPool,
    n: usize,
    gen_tokens: usize,
    taps: &mut ShardTapList<'_>,
    policy: RecoveryPolicy,
    heartbeat: Duration,
) -> ShardedGeneration {
    ShardedModel::new(model, n).generate_with(pool, &PROMPT, gen_tokens, taps, policy, heartbeat)
}

/// Run the three scenarios for one (model, shard-count) cell.
fn probe_cell(
    spec_name: &str,
    model: &Model,
    pool: &WorkStealingPool,
    n: usize,
    gen_tokens: usize,
    heartbeat: Duration,
) -> ShardsEntry {
    // Golden: 1-shard, fault-free.
    let golden = generate(
        model,
        pool,
        1,
        gen_tokens,
        &mut ShardTapList::new(),
        RecoveryPolicy::disabled(),
        heartbeat,
    );

    // (a) identity: N shards, fault-free, bit-identical tokens.
    let clean = generate(
        model,
        pool,
        n,
        gen_tokens,
        &mut ShardTapList::new(),
        RecoveryPolicy::disabled(),
        heartbeat,
    );
    let token_identical = clean.completed() && clean.tokens == golden.tokens;
    // Full-restart cost: re-running the whole N-shard generation.
    let restart_ns = clean.prefill_ns + clean.decode_ns;

    // (b) repair: persistent weight-tile corruption on shard 0, survived
    // through the scrubber's golden-copy repair rung.
    let repair = {
        let mut sharded = ShardedModel::new(model, n);
        let mut injector = ShardFaultInjector::new(ShardFaultSpec {
            shard: 0,
            fault: ShardFault::TileCorrupt,
            step: 1,
            block: 0,
            duration: FaultDuration::Persistent,
        });
        let mut scrubber = ShardScrubber::new(sharded.shards(), 0);
        let mut taps = ShardTapList::new();
        taps.push(&mut injector);
        taps.push(&mut scrubber);
        sharded.generate_with(
            pool,
            &PROMPT,
            gen_tokens,
            &mut taps,
            RecoveryPolicy::retries(1).with_repair(),
            heartbeat,
        )
    };
    let repair_outcome = outcome_label(&classify_sharded(&golden.tokens, &repair, &ExactJudge));

    // (c) degrade: crash one shard mid-generation; keep serving.
    let degrade = {
        let mut injector = ShardFaultInjector::new(ShardFaultSpec {
            shard: n - 1,
            fault: ShardFault::Crash,
            step: 1,
            block: 0,
            duration: FaultDuration::Persistent,
        });
        let mut taps = ShardTapList::new();
        taps.push(&mut injector);
        generate(
            model,
            pool,
            n,
            gen_tokens,
            &mut taps,
            RecoveryPolicy::retries(1).with_shard_degrade(),
            heartbeat,
        )
    };
    let degrade_outcome = outcome_label(&classify_sharded(&golden.tokens, &degrade, &ExactJudge));

    ShardsEntry {
        model: spec_name.to_string(),
        shards: n,
        token_identical,
        repair_outcome,
        repair_rungs: repair.repair_rungs,
        tiles_repaired: repair.tiles_repaired,
        repair_ns: repair.repair_ns,
        restart_ns,
        repair_beats_restart: repair.repair_ns / u64::from(repair.repair_rungs.max(1))
            < restart_ns,
        degrade_outcome,
        degrade_tokens_served: degrade.tokens.len(),
        degrade_shards_lost: degrade.shards_lost,
    }
}

/// Run the sweep: two zoo configs (one OPT-style, one Llama-style with a
/// shard-count-indivisible head count) at N=2 and N=4, or N=2 only in
/// smoke mode. `FT2_SHARDS` (when > 1) narrows the sweep to that count.
pub fn run(pool: &WorkStealingPool, smoke: bool) -> ShardsReport {
    let settings = Settings::from_env();
    let gen_tokens = if smoke { 8 } else { 12 };
    let heartbeat_ms = settings.shard_heartbeat_ms.max(1);
    let heartbeat = Duration::from_millis(heartbeat_ms);
    let counts: Vec<usize> = if settings.shards > 1 {
        vec![settings.shards]
    } else if smoke {
        vec![2]
    } else {
        vec![2, 4]
    };

    let mut entries = Vec::new();
    for zoo in [ZooModel::Opt6_7B, ZooModel::Qwen2_1_5B] {
        let spec = zoo.spec();
        let model = spec.build();
        for &n in &counts {
            entries.push(probe_cell(
                spec.name(),
                &model,
                pool,
                n,
                gen_tokens,
                heartbeat,
            ));
        }
    }
    ShardsReport {
        gen_tokens,
        heartbeat_ms,
        entries,
    }
}

/// Write the JSON report atomically (temp file + rename), like the decode
/// bench baseline.
pub fn write_json(report: &ShardsReport, path: &Path) -> Result<(), String> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, report.to_json())
        .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("renaming to {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardsReport {
        ShardsReport {
            gen_tokens: 12,
            heartbeat_ms: 50,
            entries: vec![ShardsEntry {
                model: "OPT-6.7B".to_string(),
                shards: 2,
                token_identical: true,
                repair_outcome: "Repaired",
                repair_rungs: 11,
                tiles_repaired: 11,
                repair_ns: 120_000,
                restart_ns: 9_000_000,
                repair_beats_restart: true,
                degrade_outcome: "Degraded",
                degrade_tokens_served: 12,
                degrade_shards_lost: 1,
            }],
        }
    }

    #[test]
    fn json_schema_is_stable() {
        let json = sample().to_json();
        for key in [
            "\"schema\": 1",
            "\"gen_tokens\": 12",
            "\"heartbeat_ms\": 50",
            "\"model\": \"OPT-6.7B\"",
            "\"shards\": 2",
            "\"token_identical\": true",
            "\"repair_outcome\": \"Repaired\"",
            "\"repair_beats_restart\": true",
            "\"degrade_outcome\": \"Degraded\"",
            "\"degrade_tokens_served\": 12",
            "\"degrade_shards_lost\": 1",
            "\"ok\": true",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(json.starts_with("{\n") && json.ends_with("}\n"), "{json}");
    }

    #[test]
    fn entry_ok_requires_all_three_guarantees() {
        let report = sample();
        assert!(report.ok());
        let mut drifted = report.clone();
        drifted.entries[0].token_identical = false;
        assert!(!drifted.ok());
        let mut silent = report.clone();
        silent.entries[0].degrade_outcome = "MaskedIdentical";
        assert!(!silent.ok(), "a silent shard loss must fail the sweep");
        let mut slow = report;
        slow.entries[0].repair_beats_restart = false;
        assert!(!slow.ok());
    }

    #[test]
    fn smoke_sweep_upholds_all_guarantees() {
        let pool = WorkStealingPool::new(3);
        let report = run(&pool, true);
        // Two configs x N=2 in smoke mode.
        assert_eq!(report.entries.len(), 2);
        for e in &report.entries {
            assert!(e.ok(report.gen_tokens), "cell failed: {e:?}");
        }
        assert!(report.ok());
        let json = report.to_json();
        assert!(json.contains("\"ok\": true"));
    }
}
