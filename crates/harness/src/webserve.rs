//! The live-observability driver behind `ft2-repro serve --web`.
//!
//! Runs a [`ReplicaSet`] on continuous deterministic SQuAD-style traffic
//! and exposes it through the zero-dependency HTTP/SSE front end
//! ([`ft2_serve::WebServer`]): every accepted token streams out with its
//! step's anomaly verdict and per-block bound-hit counts, recovery-ladder
//! markers (rollback / repair / eviction) and replica-health transitions
//! ride the same stream, and `POST /inject` maps a typed
//! [`ft2_fault::LiveFault`] onto the existing injectors — a
//! [`StormTap::flip`] on the next submitted request for request-scoped
//! faults ("flip a bit in block 2 now"), a [`ReplicaFaultSpec`] scheduled
//! at the target replica's next decode step for replica-scoped ones.
//!
//! **Observation only.** The web path consumes an event channel and feeds
//! a fault channel; it shares no state with the decode loop. Every
//! completion is still checked bit-for-bit against its single-sequence
//! solo generation, so the stats prove that watching (and even live
//! injection of recoverable faults) never changes an answer.
//!
//! Knobs: `FT2_WEB_ADDR` (bind address, port 0 = ephemeral),
//! `FT2_WEB_MAX_CLIENTS`, plus the usual `FT2_REPLICAS` / `FT2_BENCH_GEN`
//! sizing. The driver prints `listening on http://ADDR` once bound and
//! serves until the process is stopped.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use crate::settings::{env_string, env_usize, quick_mode};
use ft2_fault::{FaultDuration, LiveFault, ReplicaFaultKind, ReplicaFaultSpec};
use ft2_model::{RecoveryPolicy, TapList, ZooModel};
use ft2_parallel::WorkStealingPool;
use ft2_serve::replica::{ReplicaConfig, ReplicaHealth, ReplicaSet};
use ft2_serve::scheduler::{Outcome, Request, ServeConfig};
use ft2_serve::{EventSink, ServeEvent, StormTap, WebConfig, WebServer};
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::DatasetId;

/// Sizing and bind configuration of the web-serving loop.
#[derive(Clone, Debug)]
pub struct WebServeConfig {
    /// Bind address (`FT2_WEB_ADDR`); port `0` picks an ephemeral port.
    pub addr: String,
    /// SSE client slots (`FT2_WEB_MAX_CLIENTS`).
    pub max_clients: usize,
    /// Replicas in the serving set (`FT2_REPLICAS`).
    pub replicas: usize,
    /// Tokens generated per request (`FT2_BENCH_GEN`).
    pub gen_tokens: usize,
    /// Requests kept in flight by the traffic loop.
    pub inflight: usize,
    /// Stop after this many requests complete (`None` = run until the
    /// stop flag; the CLI runs unbounded, tests bound it).
    pub max_requests: Option<u64>,
}

impl WebServeConfig {
    /// Defaults with the env knobs applied.
    pub fn from_env() -> WebServeConfig {
        let quick = quick_mode();
        WebServeConfig {
            addr: env_string("FT2_WEB_ADDR").unwrap_or_else(|| "127.0.0.1:8472".to_string()),
            max_clients: env_usize("FT2_WEB_MAX_CLIENTS").unwrap_or(16).max(1),
            replicas: env_usize("FT2_REPLICAS").unwrap_or(2).max(2),
            gen_tokens: env_usize("FT2_BENCH_GEN")
                .unwrap_or(if quick { 8 } else { 16 })
                .max(4),
            inflight: 2,
            max_requests: None,
        }
    }
}

/// What the loop served, proved, and injected.
#[derive(Clone, Copy, Debug)]
pub struct WebServeStats {
    /// Requests that reached [`Outcome::Completed`].
    pub served: u64,
    /// Requests that ended evicted or rejected (persistent-storm drills).
    pub failed: u64,
    /// Every completed request matched its solo generation bit-for-bit.
    pub identity_ok: bool,
    /// Live faults accepted over `POST /inject`.
    pub injects: u64,
}

/// Run the web-serving loop until `stop` is set (or `max_requests`
/// completions). `on_listen` receives the actually-bound address before
/// the first request is submitted.
pub fn run(
    pool: &WorkStealingPool,
    config: &WebServeConfig,
    stop: &AtomicBool,
    mut on_listen: impl FnMut(SocketAddr),
) -> Result<WebServeStats, String> {
    let model = ZooModel::Opt6_7B.spec().build();
    let prompts = generate_prompts(DatasetId::Squad, 4, 0x3EB);
    // Solo references: the single-sequence generations every served
    // request must still match bit-for-bit while being observed.
    let solo: Vec<Vec<u32>> = prompts
        .iter()
        .map(|p| {
            let mut taps = TapList::new();
            model.generate(p, config.gen_tokens, &mut taps).tokens
        })
        .collect();

    let mut set = ReplicaSet::new(
        &model,
        ReplicaConfig {
            replicas: config.replicas,
            inner: ServeConfig {
                max_batch: 4,
                queue_depth: 64,
                recovery: RecoveryPolicy::retries(2).with_repair(),
                kv_guard: true,
            },
            heartbeat: Duration::from_millis(20),
            ..ReplicaConfig::default()
        },
    );
    let (sink, events) = EventSink::channel();
    set.set_event_sink(sink.clone());
    let (inject_tx, inject_rx) = mpsc::channel();
    let server = WebServer::start(
        WebConfig {
            addr: config.addr.clone(),
            max_clients: config.max_clients,
        },
        events,
        inject_tx,
    )
    .map_err(|e| format!("binding {}: {e}", config.addr))?;
    on_listen(server.addr());

    // Initial health badges so a fresh viewer sees every replica. The
    // stream has no replay, so the snapshot is also re-emitted
    // periodically below for late joiners.
    let mut last_health: Vec<ReplicaHealth> =
        (0..set.replicas()).map(|r| set.health(r)).collect();
    for (r, h) in last_health.iter().enumerate() {
        sink.emit(ServeEvent::Health {
            replica: r,
            state: format!("{h:?}"),
        });
    }
    const HEALTH_SNAPSHOT_EVERY: Duration = Duration::from_millis(250);
    let mut last_snapshot = std::time::Instant::now();

    let mut next_id = 0u64;
    let mut inflight = 0usize;
    let mut served = 0u64;
    let mut failed = 0u64;
    let mut identity_ok = true;
    let mut injects = 0u64;
    // Request-scoped faults wait here for the next submission.
    let mut pending_taps: VecDeque<StormTap> = VecDeque::new();

    while !stop.load(Ordering::Relaxed) {
        if config
            .max_requests
            .is_some_and(|m| served + failed >= m && inflight == 0)
        {
            break;
        }

        // Map live faults onto the injectors and echo them to the stream.
        while let Ok(fault) = inject_rx.try_recv() {
            injects += 1;
            let target_replica = match fault {
                LiveFault::Crash { replica } | LiveFault::Hang { replica } => replica,
                _ => 0,
            };
            match fault {
                LiveFault::Flip { block } => {
                    pending_taps.push_back(StormTap::flip(block, 1));
                }
                LiveFault::Storm { block, persistent } => {
                    pending_taps.push_back(if persistent {
                        StormTap::persistent(1).with_block(block)
                    } else {
                        StormTap::new(1, FaultDuration::Transient, 1).with_block(block)
                    });
                }
                LiveFault::Crash { replica } if replica < set.replicas() => {
                    set.inject(ReplicaFaultSpec::transient(
                        replica,
                        ReplicaFaultKind::Crash,
                        set.replica_steps(replica) + 1,
                    ));
                }
                LiveFault::Hang { replica } if replica < set.replicas() => {
                    set.inject(ReplicaFaultSpec::transient(
                        replica,
                        ReplicaFaultKind::Hang,
                        set.replica_steps(replica) + 1,
                    ));
                }
                // Out-of-range replica: echoed (visible in the stream) but
                // nothing to arm.
                LiveFault::Crash { .. } | LiveFault::Hang { .. } => {}
            }
            sink.emit(ServeEvent::Inject {
                replica: target_replica,
                what: fault.describe(),
            });
        }

        // Keep the lanes fed with deterministic cycling traffic.
        while inflight < config.inflight
            && config.max_requests.is_none_or(|m| next_id < m)
        {
            let tap: Option<Box<dyn ft2_model::LayerTap + Send>> =
                pending_taps.pop_front().map(|t| Box::new(t) as _);
            let req = Request {
                id: next_id,
                prompt: prompts[next_id as usize % prompts.len()].clone(),
                gen_tokens: config.gen_tokens,
                tap,
            };
            if set.try_submit(req).is_err() {
                break;
            }
            next_id += 1;
            inflight += 1;
        }

        let progressed = set.step(pool);

        let snapshot_due = last_snapshot.elapsed() >= HEALTH_SNAPSHOT_EVERY;
        if snapshot_due {
            last_snapshot = std::time::Instant::now();
        }
        for (r, last) in last_health.iter_mut().enumerate() {
            let h = set.health(r);
            if h != *last || snapshot_due {
                sink.emit(ServeEvent::Health {
                    replica: r,
                    state: format!("{h:?}"),
                });
                *last = h;
            }
        }

        for c in set.drain_completions() {
            inflight = inflight.saturating_sub(1);
            match c.inner.outcome {
                Outcome::Completed => {
                    served += 1;
                    if c.inner.tokens != solo[c.inner.id as usize % prompts.len()] {
                        identity_ok = false;
                    }
                }
                // Persistent-storm drills end evicted by design; anything
                // else failing here still shows up in the stats.
                _ => failed += 1,
            }
        }

        if !progressed {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    drop(sink);
    server.shutdown();
    Ok(WebServeStats {
        served,
        failed,
        identity_ok,
        injects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;
    use std::sync::Arc;
    use std::time::Instant;

    /// Extract the integer value of `"key":N` from a one-line JSON event.
    fn field_u64(json: &str, key: &str) -> Option<u64> {
        let pat = format!("\"{key}\":");
        let start = json.find(&pat)? + pat.len();
        let rest = &json[start..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    /// The headless acceptance drill: start `serve --web` on an ephemeral
    /// port, inject "flip a bit in block 2 now" over POST /inject, and
    /// watch the SSE stream prove detection (a rollback marker whose
    /// Storm-verdict report attributes the strike to block 2 — a
    /// rolled-back token is never accepted, so the marker is where
    /// attribution streams), recovery (a Clean accepted token for the
    /// same request and step), and a recovered completion — while every
    /// completed request stays bit-identical to its unobserved solo
    /// generation.
    #[test]
    fn injected_flip_streams_detection_rollback_and_recovery() {
        let (addr_tx, addr_rx) = mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let pool = WorkStealingPool::new(2);
            let config = WebServeConfig {
                addr: "127.0.0.1:0".to_string(),
                max_clients: 4,
                replicas: 2,
                gen_tokens: 8,
                inflight: 1,
                max_requests: None,
            };
            run(&pool, &config, &stop2, |a| {
                let _ = addr_tx.send(a);
            })
            .expect("web serve loop failed")
        });
        let addr = addr_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("server never reported its address");

        // Attach an SSE client first so every later event is observed.
        let mut sse = TcpStream::connect(addr).expect("connect /events");
        sse.write_all(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        sse.set_read_timeout(Some(Duration::from_millis(100))).unwrap();

        // Fire the live fault: flip a bit in block 2 now.
        let mut post = TcpStream::connect(addr).expect("connect /inject");
        let body = "kind=flip&block=2";
        post.write_all(
            format!(
                "POST /inject HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
        post.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut ack = String::new();
        let _ = post.read_to_string(&mut ack);
        assert!(ack.contains("200 OK"), "inject not accepted:\n{ack}");
        assert!(ack.contains("flip block 2"), "inject echo missing:\n{ack}");

        // Drive the stream until the fault is seen detected (rollback
        // marker attributed to block 2), re-decoded clean, and recovered
        // on the same request.
        let mut buf = String::new();
        let mut chunk = [0u8; 4096];
        let deadline = Instant::now() + Duration::from_secs(120);
        let mut struck: Option<(u64, u64)> = None; // (id, step)
        let (mut redecoded_clean, mut recovered) = (false, false);
        let mut saw_health = false;
        while Instant::now() < deadline && !(redecoded_clean && recovered && saw_health) {
            match sse.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.push_str(&String::from_utf8_lossy(&chunk[..n])),
                Err(_) => continue, // read timeout: poll again
            }
            for line in buf.lines() {
                let Some(json) = line.strip_prefix("data: ") else {
                    continue;
                };
                if json.contains(r#""ev":"health""#) {
                    saw_health = true;
                }
                if struck.is_none()
                    && json.contains(r#""ev":"rollback""#)
                    && json.contains(r#""verdict":"Storm""#)
                    && json.contains(r#""block_hits":[[2,"#)
                {
                    struck = field_u64(json, "id").zip(field_u64(json, "step"));
                }
                let Some((id, step)) = struck else { continue };
                if json.contains(r#""ev":"token""#)
                    && json.contains(r#""verdict":"Clean""#)
                    && field_u64(json, "id") == Some(id)
                    && field_u64(json, "step") == Some(step)
                {
                    redecoded_clean = true;
                }
                if json.contains(r#""ev":"completed""#)
                    && json.contains(r#""outcome":"Completed""#)
                    && field_u64(json, "id") == Some(id)
                {
                    recovered = true;
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        let stats = worker.join().expect("web serve thread panicked");

        assert!(
            struck.is_some(),
            "no rollback marker attributed to block 2:\n{buf}"
        );
        assert!(
            redecoded_clean,
            "struck step never re-decoded clean:\n{buf}"
        );
        assert!(recovered, "struck request never completed recovered:\n{buf}");
        assert_eq!(stats.injects, 1);
        assert!(stats.served >= 1, "nothing served: {stats:?}");
        assert!(
            stats.identity_ok,
            "observed/injected run drifted from solo generations: {stats:?}"
        );
        // Health badges were streamed for every replica.
        assert!(buf.contains(r#""ev":"health""#), "no health frames:\n{buf}");
        // The injection itself was echoed as a typed event.
        assert!(buf.contains(r#""ev":"inject""#), "no inject echo:\n{buf}");
    }

    #[test]
    fn bounded_run_drains_and_reports_clean_identity() {
        let pool = WorkStealingPool::new(2);
        let stop = AtomicBool::new(false);
        let config = WebServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_clients: 2,
            replicas: 2,
            gen_tokens: 6,
            inflight: 2,
            max_requests: Some(3),
        };
        let mut listened = false;
        let stats = run(&pool, &config, &stop, |_| listened = true).expect("bounded run");
        assert!(listened, "on_listen never fired");
        assert_eq!(stats.served, 3);
        assert_eq!(stats.failed, 0);
        assert!(stats.identity_ok);
        assert_eq!(stats.injects, 0);
    }
}
