//! The repository lints itself: the tree this crate was built from must
//! be finding-free and the protection-coverage proof must hold. This is
//! the same analysis `ft2-repro lint` (and CI) runs.

use std::path::Path;

#[test]
fn workspace_is_lint_clean_and_coverage_is_proved() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = ft2_harness::lint::analyze_tree(&root).expect("analysis runs");
    assert!(
        report.findings.is_empty(),
        "lint findings on the workspace tree:\n{}",
        report.render_text()
    );
    assert!(
        report.coverage.ok(),
        "protection-coverage gaps:\n{}",
        report.coverage.render_text()
    );
}
