//! Behavioural tests of the protection stack against live models.

use ft2_core::critical::critical_layers;
use ft2_core::profile::offline_profile;
use ft2_core::protect::{Correction, Coverage, NanPolicy, Protector};
use ft2_core::{Scheme, SchemeFactory};
use ft2_fault::{FaultDuration, FaultInjector, FaultSite, FaultTarget, ProtectionFactory};
use ft2_model::{LayerKind, TapList, TapPoint, ZooModel};
use ft2_parallel::WorkStealingPool;
use ft2_tasks::datasets::generate_prompts;
use ft2_tasks::DatasetId;

fn inject_and_generate(
    model: &ft2_model::Model,
    prompt: &[u32],
    site: FaultSite,
    protection: Option<&SchemeFactory>,
    gen: usize,
) -> Vec<u32> {
    let mut injector = FaultInjector::new(site);
    let mut boxes = protection.map(|f| f.make()).unwrap_or_default();
    let mut taps = TapList::new();
    taps.push(&mut injector);
    for b in boxes.iter_mut() {
        taps.push(b.as_mut());
    }
    model.generate(prompt, gen, &mut taps).tokens
}

#[test]
fn ft2_masks_a_catastrophic_critical_layer_fault() {
    let model = ZooModel::Opt6_7B.spec().build();
    let prompt = generate_prompts(DatasetId::Squad, 1, 77)[0].clone();
    let mut clean_taps = TapList::new();
    let clean = model.generate(&prompt, 12, &mut clean_taps).tokens;

    // A decode-step MSB exponent flip in V_PROJ: the archetypal huge value.
    let site = FaultSite {
        step: 2,
        point: TapPoint {
            block: 2,
            layer: LayerKind::VProj,
        },
        element: 5,
        bits: vec![14],
        duration: FaultDuration::Transient,
        target: FaultTarget::Activation,
    };
    let faulty = inject_and_generate(&model, &prompt, site.clone(), None, 12);
    // The unprotected fault corrupts at least the hidden state; the output
    // may or may not change — but under FT2 the output must equal clean.
    let ft2 = SchemeFactory::new(Scheme::Ft2, model.config(), None);
    let protected = inject_and_generate(&model, &prompt, site, Some(&ft2), 12);
    assert_eq!(protected, clean, "FT2 failed to mask a V_PROJ exponent flip");
    let _ = faulty;
}

#[test]
fn nan_faults_are_corrected_by_ft2_even_at_first_token() {
    let model = ZooModel::Llama2_7B.spec().build();
    let prompt = generate_prompts(DatasetId::Squad, 1, 78)[0].clone();
    let mut clean_taps = TapList::new();
    let clean = model.generate(&prompt, 10, &mut clean_taps).tokens;

    // GATE_PROJ outputs are wide: values in (1,2) flip to NaN on bit 14.
    // Even during the first token (step 0), FT2 corrects NaNs.
    let site = FaultSite {
        step: 0,
        point: TapPoint {
            block: 1,
            layer: LayerKind::UpProj,
        },
        element: 9,
        bits: vec![14],
        duration: FaultDuration::Transient,
        target: FaultTarget::Activation,
    };
    let ft2 = SchemeFactory::new(Scheme::Ft2, model.config(), None);
    let protected = inject_and_generate(&model, &prompt, site.clone(), Some(&ft2), 10);
    // The output must at least be NaN-free and deterministic; on this site
    // it should equal the clean output.
    assert_eq!(protected.len(), clean.len());
    // Without protection, the same fault may propagate NaN into the logits.
    let unprotected = inject_and_generate(&model, &prompt, site, None, 10);
    assert_eq!(unprotected.len(), clean.len());
}

#[test]
fn protector_stats_reflect_activity() {
    let model = ZooModel::Opt6_7B.spec().build();
    let prompt = generate_prompts(DatasetId::Squad, 1, 79)[0].clone();
    let mut protector = Protector::ft2_online(
        Coverage::linears(critical_layers(model.config().style)),
        2.0,
    );
    {
        let mut taps = TapList::new();
        taps.push(&mut protector);
        let _ = model.generate(&prompt, 10, &mut taps);
    }
    // 3 critical kinds x 4 blocks x 10 steps.
    assert_eq!(protector.stats.invocations, 3 * 4 * 10);
    // Clean run: nothing should be clipped or NaN-corrected.
    assert_eq!(protector.stats.clipped, 0);
    assert_eq!(protector.stats.nans_corrected, 0);
}

#[test]
fn full_protection_covers_all_block_layers() {
    let model = ZooModel::Qwen2_7B.spec().build();
    let factory = SchemeFactory::new(Scheme::FullProtection, model.config(), None);
    let prompt = generate_prompts(DatasetId::Squad, 1, 80)[0].clone();
    let mut boxes = factory.make();
    {
        let mut taps = TapList::new();
        for b in boxes.iter_mut() {
            taps.push(b.as_mut());
        }
        let _ = model.generate(&prompt, 6, &mut taps);
    }
    // Cannot read stats through the box directly; re-run with a concrete
    // protector to check the invocation count instead.
    let mut protector = Protector::ft2_online(
        Coverage::linears(model.config().block_layers().to_vec()),
        2.0,
    );
    {
        let mut taps = TapList::new();
        taps.push(&mut protector);
        let _ = model.generate(&prompt, 6, &mut taps);
    }
    assert_eq!(protector.stats.invocations, 7 * 4 * 6);
}

#[test]
fn offline_bounds_shrink_with_clip_to_zero_on_outliers() {
    // Take-away #8 mechanism check: with tight alternative bounds, clamping
    // preserves more of a large legitimate value than zeroing.
    let mut store = ft2_core::BoundsStore::new();
    let point = TapPoint {
        block: 0,
        layer: LayerKind::DownProj,
    };
    store.set(point, ft2_core::LayerBounds { lo: -1.0, hi: 1.0 });

    let run = |correction: Correction| {
        let mut p = Protector::offline(
            Coverage::linears(vec![LayerKind::DownProj]),
            store.clone(),
            correction,
            NanPolicy::ToZero,
        );
        let mut m = ft2_tensor::Matrix::from_vec(1, 2, vec![4.0, 0.5]);
        let ctx = ft2_model::TapCtx {
            point,
            hook: ft2_model::HookKind::LinearOutput,
            step: 1,
            first_pos: 3,
            dtype: ft2_tensor::DType::F16,
        };
        use ft2_model::LayerTap;
        p.on_output(&ctx, &mut m);
        m.get(0, 0)
    };
    assert_eq!(run(Correction::ClampToBound), 1.0); // keeps the sign+scale
    assert_eq!(run(Correction::ClipToZero), 0.0); // destroys it
}

#[test]
fn offline_profiling_then_protection_roundtrip_is_transparent() {
    // Bounds profiled on the same inputs as evaluated must never corrupt a
    // fault-free run.
    let model = ZooModel::Vicuna7B.spec().build();
    let pool = WorkStealingPool::new(2);
    let prompts = generate_prompts(DatasetId::Squad, 4, 81);
    let offline = std::sync::Arc::new(offline_profile(&model, &prompts, 10, &pool));
    let factory = SchemeFactory::new(Scheme::Ft2Offline, model.config(), Some(offline));
    for prompt in &prompts {
        let mut clean_taps = TapList::new();
        let clean = model.generate(prompt, 10, &mut clean_taps).tokens;
        let mut boxes = factory.make();
        let mut taps = TapList::new();
        for b in boxes.iter_mut() {
            taps.push(b.as_mut());
        }
        let protected = model.generate(prompt, 10, &mut taps).tokens;
        assert_eq!(clean, protected);
    }
}
