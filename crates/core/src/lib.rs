#![warn(missing_docs)]
//! # ft2-core
//!
//! The paper's primary contribution: **FT2**, a first-token-inspired online
//! fault-tolerance methodology for generative LLM inference, plus the three
//! published baselines it is evaluated against.
//!
//! The FT2 pipeline (Fig. 5):
//!
//! 1. **Critical-layer identification** ([`critical`]) — a purely
//!    structural heuristic over the model's op-graph: *a linear layer is
//!    critical iff no scaling operation or activation layer lies between its
//!    output and the next linear layer* (Take-away #5). No profiling run is
//!    needed.
//! 2. **First-token bound profiling** ([`bounds`], [`protect`]) — during
//!    the prefill (first-token) step, the protector records each covered
//!    layer's min/max and corrects NaNs; no clipping is applied because no
//!    bounds exist yet. The recorded bounds are widened by a scale factor
//!    (2× by default — Fig. 9 shows insensitivity to the exact choice) to
//!    compensate for the limited online data.
//! 3. **Online protection** ([`protect`]) — from the second token on, every
//!    covered layer output is checked: NaNs are corrected to 0 (they are
//!    recoverable thanks to residual branches, Take-away #2) and
//!    out-of-bound values are **clamped to the bound** rather than zeroed,
//!    because generative LLMs legitimately produce large neuron values
//!    (Take-away #8, Fig. 12).
//!
//! [`schemes`] packages FT2 and the baselines (Ranger, MaxiMals, Global
//! Clipper, FT2 with offline bounds) as [`ft2_fault::ProtectionFactory`]
//! implementations with exactly the Table 1 coverage sets. [`profile`]
//! implements the offline bound profiling the baselines require.

pub mod bounds;
pub mod critical;
pub mod integrity;
pub mod persist;
pub mod profile;
pub mod protect;
pub mod schemes;
pub mod shard;

pub use bounds::{prior_cap, static_prior, BoundsStore, LayerBounds};
pub use critical::{critical_layers, is_critical, CriticalityReport};
pub use integrity::{IntegrityConfig, KvGuard, WeightChecksums, WeightScrubber, TILE_ELEMS};
pub use persist::{from_csv as bounds_from_csv, to_csv as bounds_to_csv};
pub use profile::offline_profile;
pub use protect::{Correction, Coverage, NanPolicy, Protector, DEFAULT_STORM_THRESHOLD};
pub use schemes::{Scheme, SchemeFactory};
pub use shard::ShardScrubber;
