//! Shard-granular stored-state integrity: per-shard weight-tile checksums
//! with background scrubbing and on-demand repair.
//!
//! The sharded executor ([`ft2_model::ShardedModel`]) gives every shard its
//! own failure domain; this module gives every shard its own integrity
//! vertical, mirroring [`crate::integrity::WeightScrubber`] at shard
//! granularity:
//!
//! * at construction (and after every degrade re-partition) the scrubber
//!   snapshots a **golden copy** of each shard's weight slices and computes
//!   per-tile CRC-64 checksums over them ([`TILE_ELEMS`]-element tiles,
//!   the same tiling as the trial-level [`crate::WeightChecksums`]);
//! * [`ShardTap::on_step_start`] verifies a budget of tiles per step,
//!   round-robin, restoring any mismatched tile from the golden copy —
//!   scrubbing amortised across the generation;
//! * [`ShardTap::on_repair`] is the executor's repair rung: a sweep over
//!   the tiles the failing GEMMs implicate — the suspect shards'
//!   [`RepairScope`] `(block, layer)` weight slice (all shards when no
//!   suspect is named) — restoring corruption from the golden copy. This
//!   is what turns a *persistent* shard fault from an eviction into a
//!   measured repair, and the slice-scoping is what keeps that repair
//!   orders of magnitude cheaper than a full restart;
//! * [`ShardTap::on_repartition`] re-baselines golden copies and checksums
//!   for the survivors' fresh slices after a degrade.

use ft2_model::shard::{RepairScope, ShardStateReport, ShardTap, ShardWeights};
use ft2_model::LayerKind;
use ft2_numeric::crc64_f32s;

pub use crate::integrity::TILE_ELEMS;

/// One checksummed tile of one shard's weight slice.
#[derive(Clone, Copy, Debug)]
struct ShardTile {
    shard: usize,
    block: usize,
    layer: LayerKind,
    start: usize,
    len: usize,
    crc: u64,
}

/// Shard-granular weight scrubber and repair engine. Register as a
/// [`ShardTap`] on a sharded generation.
pub struct ShardScrubber {
    /// Golden copies of every shard's slices (index = shard).
    golden: Vec<ShardWeights>,
    tiles: Vec<ShardTile>,
    cursor: usize,
    tiles_per_step: usize,
}

fn build_tiles(shards: &[ShardWeights]) -> Vec<ShardTile> {
    let mut tiles = Vec::new();
    for (s, sw) in shards.iter().enumerate() {
        for (b, sb) in sw.blocks.iter().enumerate() {
            for k in LayerKind::ALL {
                let Some(lin) = sb.layer(k) else { continue };
                let data = lin.weight.as_slice();
                let mut start = 0;
                while start < data.len() {
                    // ft2: nan-ok (usize tile sizing, no floats involved)
                    let len = TILE_ELEMS.min(data.len() - start);
                    tiles.push(ShardTile {
                        shard: s,
                        block: b,
                        layer: k,
                        start,
                        len,
                        crc: crc64_f32s(&data[start..start + len]),
                    });
                    start += len;
                }
            }
        }
    }
    tiles
}

impl ShardScrubber {
    /// Baseline golden copies and checksums from the freshly partitioned
    /// shards (call with [`ft2_model::ShardedModel::shards`] before the
    /// generation; the partition is bit-deterministic, so the baseline
    /// stays valid across the executor's start-of-generation reset).
    /// Verifies `tiles_per_step` tiles per step (0 disables background
    /// scrubbing; the repair rung still works).
    pub fn new(shards: &[ShardWeights], tiles_per_step: usize) -> ShardScrubber {
        ShardScrubber {
            golden: shards.to_vec(),
            tiles: build_tiles(shards),
            cursor: 0,
            tiles_per_step,
        }
    }

    /// Total checksummed tiles across all shards (one full sweep).
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Verify tile `idx` against the live shard weights; restore it from
    /// the golden copy on mismatch. Returns true when a repair happened.
    fn check_tile(&self, idx: usize, shards: &mut [ShardWeights]) -> bool {
        let t = &self.tiles[idx];
        let live = shards[t.shard].blocks[t.block]
            .layer_mut(t.layer)
            .expect("tile layer missing from live shard");
        let live_slice = &mut live.weight.as_mut_slice()[t.start..t.start + t.len];
        if crc64_f32s(live_slice) == t.crc {
            return false;
        }
        let src = self.golden[t.shard].blocks[t.block]
            .layer(t.layer)
            .expect("tile layer missing from golden shard");
        let src_slice = &src.weight.as_slice()[t.start..t.start + t.len];
        assert_eq!(
            crc64_f32s(src_slice),
            t.crc,
            "golden shard copy corrupted: refusing to repair from it"
        );
        live_slice.copy_from_slice(src_slice);
        true
    }

    /// Verify (and repair) every tile of every shard — the unscoped
    /// integrity pass, also usable out-of-band.
    pub fn full_sweep(&self, shards: &mut [ShardWeights]) -> ShardStateReport {
        let mut rep = ShardStateReport::default();
        for idx in 0..self.tiles.len() {
            rep.scrubbed_tiles += 1;
            if self.check_tile(idx, shards) {
                rep.repaired_tiles += 1;
            }
        }
        rep
    }
}

impl ShardTap for ShardScrubber {
    fn on_step_start(&mut self, _step: usize, shards: &mut [ShardWeights]) -> ShardStateReport {
        let mut rep = ShardStateReport::default();
        if self.tiles.is_empty() || self.tiles_per_step == 0 {
            return rep;
        }
        for _ in 0..self.tiles_per_step.min(self.tiles.len()) {
            rep.scrubbed_tiles += 1;
            if self.check_tile(self.cursor, shards) {
                rep.repaired_tiles += 1;
            }
            self.cursor = (self.cursor + 1) % self.tiles.len();
        }
        rep
    }

    fn on_repair(&mut self, scope: &RepairScope<'_>, shards: &mut [ShardWeights]) -> ShardStateReport {
        let mut rep = ShardStateReport::default();
        for idx in 0..self.tiles.len() {
            let t = &self.tiles[idx];
            if t.block != scope.block || t.layer != scope.layer {
                continue;
            }
            if !scope.suspects.is_empty() && !scope.suspects.contains(&t.shard) {
                continue;
            }
            rep.scrubbed_tiles += 1;
            if self.check_tile(idx, shards) {
                rep.repaired_tiles += 1;
            }
        }
        rep
    }

    fn on_repartition(&mut self, shards: &[ShardWeights]) {
        self.golden = shards.to_vec();
        self.tiles = build_tiles(shards);
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_model::shard::ShardPlan;
    use ft2_model::weights::ModelWeights;
    use ft2_model::ModelConfig;

    fn shards_for(config: &ModelConfig, n: usize) -> Vec<ShardWeights> {
        let weights = ModelWeights::build(config);
        ShardPlan::new(config, n).partition(config, &weights)
    }

    #[test]
    fn clean_shards_scrub_without_repairs() {
        let config = ModelConfig::tiny_opt();
        let mut shards = shards_for(&config, 2);
        let mut scrub = ShardScrubber::new(&shards, 8);
        let rep = scrub.on_step_start(0, &mut shards);
        assert_eq!(rep.scrubbed_tiles, 8);
        assert_eq!(rep.repaired_tiles, 0);
    }

    #[test]
    fn full_sweep_repairs_corruption_bit_exactly() {
        let config = ModelConfig::tiny_llama();
        let mut shards = shards_for(&config, 3);
        let pristine = shards.clone();
        let mut scrub = ShardScrubber::new(&shards, 0);
        // Corrupt two tiles on different shards.
        shards[1].blocks[0].q_proj.weight.as_mut_slice()[3] = f32::NAN;
        let down = shards[2].blocks[1]
            .layer_mut(LayerKind::DownProj)
            .unwrap();
        down.weight.as_mut_slice()[0] = 1e30;
        // A repair rung only touches the implicated slice of the suspect
        // failure domain.
        let scoped = scrub.on_repair(
            &RepairScope {
                suspects: &[1],
                block: 0,
                layer: LayerKind::QProj,
            },
            &mut shards,
        );
        assert_eq!(scoped.repaired_tiles, 1);
        assert!((scoped.scrubbed_tiles as usize) < scrub.num_tiles());
        // The unscoped integrity pass covers everything that remains.
        let rep = scrub.full_sweep(&mut shards);
        assert_eq!(rep.scrubbed_tiles as usize, scrub.num_tiles());
        assert_eq!(rep.repaired_tiles, 1);
        for (a, b) in shards.iter().zip(&pristine) {
            for (ab, bb) in a.blocks.iter().zip(&b.blocks) {
                for k in LayerKind::ALL {
                    match (ab.layer(k), bb.layer(k)) {
                        (Some(x), Some(y)) => assert_eq!(x, y),
                        (None, None) => {}
                        _ => panic!("layer presence mismatch"),
                    }
                }
            }
        }
    }

    #[test]
    fn round_robin_scrub_finds_corruption_within_one_sweep() {
        let config = ModelConfig::tiny_opt();
        let mut shards = shards_for(&config, 2);
        let mut scrub = ShardScrubber::new(&shards, 4);
        shards[0].blocks[0].k_proj.weight.as_mut_slice()[0] += 5.0;
        let sweeps = scrub.num_tiles().div_ceil(4);
        let mut repaired = 0;
        for step in 0..sweeps {
            repaired += scrub.on_step_start(step, &mut shards).repaired_tiles;
        }
        assert_eq!(repaired, 1);
    }

    #[test]
    fn repartition_rebaselines_to_the_new_layout() {
        let config = ModelConfig::tiny_opt();
        let mut shards = shards_for(&config, 3);
        let mut scrub = ShardScrubber::new(&shards, 0);
        let before = scrub.num_tiles();
        // Degrade to 2 shards: tile layout changes, checksums must follow.
        shards = shards_for(&config, 2);
        scrub.on_repartition(&shards);
        assert_ne!(scrub.num_tiles(), 0);
        assert!(scrub.num_tiles() <= before);
        let rep = scrub.full_sweep(&mut shards);
        assert_eq!(rep.repaired_tiles, 0, "fresh partition must verify clean");
    }
}
