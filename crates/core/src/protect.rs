//! The range-restriction protection tap.
//!
//! One [`Protector`] instance serves one inference trial (FT2's online
//! bounds are per-inference state). Its behaviour is assembled from four
//! orthogonal choices, which is what lets the same type express FT2 and all
//! three baselines:
//!
//! * **coverage** — which hook points are protected (Table 1 columns);
//! * **bounds source** — offline-profiled [`BoundsStore`] vs online
//!   first-token profiling with a scale factor;
//! * **correction policy** — clamp out-of-bound values to the bound (FT2,
//!   Take-away #8) or clip them to zero (the CNN-era default);
//! * **NaN policy** — rewrite NaNs to zero (`torch.nan_to_num`) or leave
//!   them.

use crate::bounds::{BoundsStore, LayerBounds};
use ft2_model::{HookKind, LayerKind, LayerTap, TapCtx};
use ft2_tensor::Matrix;

/// What to do with an out-of-bound value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Correction {
    /// Clamp into `[lo, hi]` — FT2's choice, which preserves the legitimate
    /// large neuron values of generative LLMs (Fig. 12).
    ClampToBound,
    /// Zero the value — the classic CNN range-restriction correction.
    ClipToZero,
}

/// What to do with NaN values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NanPolicy {
    /// Replace NaN with 0 (recoverable thanks to residual branches).
    ToZero,
    /// Leave NaNs untouched (they propagate).
    Keep,
}

/// Which hook points a scheme protects.
#[derive(Clone, Debug)]
pub struct Coverage {
    /// Protected linear-output layer kinds.
    pub linear: Vec<LayerKind>,
    /// Protect MLP activation outputs (Ranger's attachment point).
    pub activations: bool,
}

impl Coverage {
    /// Protect the given linear layers only.
    pub fn linears(kinds: Vec<LayerKind>) -> Coverage {
        Coverage {
            linear: kinds,
            activations: false,
        }
    }

    /// Protect activation outputs only.
    pub fn activations_only() -> Coverage {
        Coverage {
            linear: Vec::new(),
            activations: true,
        }
    }

    /// Does this coverage include the given hook?
    pub fn covers(&self, kind: LayerKind, hook: HookKind) -> bool {
        match hook {
            HookKind::LinearOutput => self.linear.contains(&kind),
            HookKind::ActivationOutput => self.activations,
        }
    }
}

/// Where the protector's bounds come from.
#[derive(Clone, Debug)]
enum BoundsMode {
    /// Fixed bounds from offline profiling (already scaled if desired).
    Offline(BoundsStore),
    /// FT2's online mode: record during step 0, protect from step 1 on
    /// with bounds widened by `scale`.
    FirstToken { scale: f32, recording: BoundsStore },
}

/// Counters describing what a protector did during one inference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtectionStats {
    /// Out-of-bound values corrected.
    pub clipped: u64,
    /// NaN values corrected.
    pub nans_corrected: u64,
    /// Hook invocations on covered points.
    pub invocations: u64,
}

/// The protection tap. Register it *after* the fault injector.
pub struct Protector {
    coverage: Coverage,
    mode: BoundsMode,
    correction: Correction,
    nan_policy: NanPolicy,
    /// Activity counters (exposed for tests/overhead analysis).
    pub stats: ProtectionStats,
}

impl Protector {
    /// FT2's online protector: profile bounds during the first token, then
    /// protect subsequent tokens with `scale`-widened bounds, clamping to
    /// bound and zeroing NaNs.
    pub fn ft2_online(coverage: Coverage, scale: f32) -> Protector {
        Protector {
            coverage,
            mode: BoundsMode::FirstToken {
                scale,
                recording: BoundsStore::new(),
            },
            correction: Correction::ClampToBound,
            nan_policy: NanPolicy::ToZero,
            stats: ProtectionStats::default(),
        }
    }

    /// A protector with fixed offline-profiled bounds.
    pub fn offline(
        coverage: Coverage,
        bounds: BoundsStore,
        correction: Correction,
        nan_policy: NanPolicy,
    ) -> Protector {
        Protector {
            coverage,
            mode: BoundsMode::Offline(bounds),
            correction,
            nan_policy,
            stats: ProtectionStats::default(),
        }
    }

    /// Override the correction policy (for the clip-to-zero ablation).
    pub fn with_correction(mut self, correction: Correction) -> Protector {
        self.correction = correction;
        self
    }

    /// Override the NaN policy.
    pub fn with_nan_policy(mut self, policy: NanPolicy) -> Protector {
        self.nan_policy = policy;
        self
    }

    /// The effective bounds for a point right now (for inspection).
    pub fn current_bounds(&self, point: &ft2_model::TapPoint) -> Option<LayerBounds> {
        match &self.mode {
            BoundsMode::Offline(store) => store.get(point).copied(),
            BoundsMode::FirstToken { scale, recording } => {
                recording.get(point).map(|b| b.scaled(*scale))
            }
        }
    }

    fn correct(&mut self, data: &mut Matrix, bounds: Option<LayerBounds>) {
        let nan_to_zero = self.nan_policy == NanPolicy::ToZero;
        for v in data.as_mut_slice() {
            if v.is_nan() {
                if nan_to_zero {
                    *v = 0.0;
                    self.stats.nans_corrected += 1;
                }
                continue;
            }
            if let Some(b) = bounds {
                if !b.contains(*v) {
                    *v = match self.correction {
                        Correction::ClampToBound => b.clamp(*v),
                        Correction::ClipToZero => 0.0,
                    };
                    self.stats.clipped += 1;
                }
            }
        }
    }
}

impl LayerTap for Protector {
    fn on_output(&mut self, ctx: &TapCtx, data: &mut Matrix) {
        if !self.coverage.covers(ctx.point.layer, ctx.hook) {
            return;
        }
        self.stats.invocations += 1;
        match &mut self.mode {
            BoundsMode::Offline(store) => {
                let b = store.get(&ctx.point).copied();
                self.correct(data, b);
            }
            BoundsMode::FirstToken { scale, recording } => {
                if ctx.step == 0 {
                    // First-token generation: record bounds; only NaN can be
                    // corrected (no bounds exist yet, §4.2.2).
                    recording.observe_all(ctx.point, data.as_slice());
                    let nan_to_zero = self.nan_policy == NanPolicy::ToZero;
                    if nan_to_zero {
                        for v in data.as_mut_slice() {
                            if v.is_nan() {
                                *v = 0.0;
                                self.stats.nans_corrected += 1;
                            }
                        }
                    }
                } else {
                    let b = recording.get(&ctx.point).map(|b| b.scaled(*scale));
                    self.correct(data, b);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_model::{LayerKind, TapPoint};
    use ft2_tensor::DType;

    fn ctx(step: usize, layer: LayerKind, hook: HookKind) -> TapCtx {
        TapCtx {
            point: TapPoint { block: 0, layer },
            hook,
            step,
            first_pos: 0,
            dtype: DType::F16,
        }
    }

    fn vproj_coverage() -> Coverage {
        Coverage::linears(vec![LayerKind::VProj])
    }

    #[test]
    fn online_mode_records_then_protects() {
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0);
        // Step 0: values recorded, nothing clipped.
        let mut m = Matrix::from_vec(1, 3, vec![-1.0, 0.5, 2.0]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert_eq!(m.as_slice(), &[-1.0, 0.5, 2.0]);
        let b = p
            .current_bounds(&TapPoint { block: 0, layer: LayerKind::VProj })
            .unwrap();
        assert_eq!(b.lo, -2.0); // -1 scaled by 2
        assert_eq!(b.hi, 4.0); // 2 scaled by 2

        // Step 1: out-of-bound value clamped to the (scaled) bound.
        let mut m = Matrix::from_vec(1, 3, vec![100.0, -100.0, 1.0]);
        p.on_output(&ctx(1, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert_eq!(m.as_slice(), &[4.0, -2.0, 1.0]);
        assert_eq!(p.stats.clipped, 2);
    }

    #[test]
    fn nan_corrected_even_during_first_token() {
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0);
        let mut m = Matrix::from_vec(1, 2, vec![f32::NAN, 1.0]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert_eq!(m.as_slice(), &[0.0, 1.0]);
        assert_eq!(p.stats.nans_corrected, 1);
        // The NaN did not pollute the recorded bounds.
        let b = p
            .current_bounds(&TapPoint { block: 0, layer: LayerKind::VProj })
            .unwrap();
        assert_eq!(b.hi, 2.0);
    }

    #[test]
    fn uncovered_layers_are_untouched() {
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0);
        let mut m = Matrix::from_vec(1, 1, vec![f32::NAN]);
        p.on_output(&ctx(0, LayerKind::KProj, HookKind::LinearOutput), &mut m);
        assert!(m.get(0, 0).is_nan());
        assert_eq!(p.stats.invocations, 0);
    }

    #[test]
    fn offline_mode_uses_fixed_bounds() {
        let mut store = BoundsStore::new();
        store.set(
            TapPoint { block: 0, layer: LayerKind::VProj },
            LayerBounds { lo: -1.0, hi: 1.0 },
        );
        let mut p = Protector::offline(
            vproj_coverage(),
            store,
            Correction::ClampToBound,
            NanPolicy::ToZero,
        );
        // Protects from step 0 (bounds already known).
        let mut m = Matrix::from_vec(1, 2, vec![5.0, -0.5]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert_eq!(m.as_slice(), &[1.0, -0.5]);
    }

    #[test]
    fn clip_to_zero_policy() {
        let mut store = BoundsStore::new();
        store.set(
            TapPoint { block: 0, layer: LayerKind::VProj },
            LayerBounds { lo: -1.0, hi: 1.0 },
        );
        let mut p = Protector::offline(
            vproj_coverage(),
            store,
            Correction::ClipToZero,
            NanPolicy::ToZero,
        );
        let mut m = Matrix::from_vec(1, 2, vec![5.0, 0.5]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.5]);
    }

    #[test]
    fn nan_keep_policy_propagates() {
        let mut store = BoundsStore::new();
        store.set(
            TapPoint { block: 0, layer: LayerKind::VProj },
            LayerBounds { lo: -1.0, hi: 1.0 },
        );
        let mut p = Protector::offline(
            vproj_coverage(),
            store,
            Correction::ClampToBound,
            NanPolicy::Keep,
        );
        let mut m = Matrix::from_vec(1, 1, vec![f32::NAN]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert!(m.get(0, 0).is_nan());
    }

    #[test]
    fn activation_coverage_targets_activation_hooks() {
        let mut p = Protector::ft2_online(Coverage::activations_only(), 2.0);
        let mut m = Matrix::from_vec(1, 1, vec![1.0]);
        // Linear hook on FC1: not covered.
        p.on_output(&ctx(0, LayerKind::Fc1, HookKind::LinearOutput), &mut m);
        assert_eq!(p.stats.invocations, 0);
        // Activation hook on FC1: covered.
        p.on_output(&ctx(0, LayerKind::Fc1, HookKind::ActivationOutput), &mut m);
        assert_eq!(p.stats.invocations, 1);
    }

    #[test]
    fn online_without_observation_does_not_clip() {
        // If step 0 never visited this layer (cannot happen in practice but
        // must be safe), later steps see no bounds and leave values alone.
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0);
        let mut m = Matrix::from_vec(1, 1, vec![1e4]);
        p.on_output(&ctx(3, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert_eq!(m.get(0, 0), 1e4);
        assert_eq!(p.stats.clipped, 0);
    }
}
