//! The range-restriction protection tap.
//!
//! One [`Protector`] instance serves one inference trial (FT2's online
//! bounds are per-inference state). Its behaviour is assembled from four
//! orthogonal choices, which is what lets the same type express FT2 and all
//! three baselines:
//!
//! * **coverage** — which hook points are protected (Table 1 columns);
//! * **bounds source** — offline-profiled [`BoundsStore`] vs online
//!   first-token profiling with a scale factor;
//! * **correction policy** — clamp out-of-bound values to the bound (FT2,
//!   Take-away #8) or clip them to zero (the CNN-era default);
//! * **NaN policy** — rewrite NaNs to zero (`torch.nan_to_num`) or leave
//!   them.

use crate::bounds::{BoundsStore, LayerBounds};
use ft2_model::{AnomalyVerdict, HookKind, LayerKind, LayerTap, StepReport, TapCtx};
use ft2_tensor::Matrix;

/// Corrections per step at or above which the step verdict escalates to
/// [`AnomalyVerdict::Storm`] even without a severe excursion: a burst of
/// clamps usually signals a corrupted hidden state that clamping cannot
/// fully repair. Overridable via [`Protector::with_storm_threshold`]
/// (`FT2_STORM_THRESHOLD` at the harness level).
pub const DEFAULT_STORM_THRESHOLD: u64 = 16;

/// A corrected value is *severe* when it lies beyond the protection bound
/// widened by this extra factor. Benign clips land just outside the bound;
/// an exponent-bit fault lands orders of magnitude outside, so even a
/// single severe correction escalates the step to a storm.
const SEVERE_EXCESS_FACTOR: f32 = 8.0;

/// What to do with an out-of-bound value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Correction {
    /// Clamp into `[lo, hi]` — FT2's choice, which preserves the legitimate
    /// large neuron values of generative LLMs (Fig. 12).
    ClampToBound,
    /// Zero the value — the classic CNN range-restriction correction.
    ClipToZero,
}

/// What to do with NaN values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NanPolicy {
    /// Replace NaN with 0 (recoverable thanks to residual branches).
    ToZero,
    /// Leave NaNs untouched (they propagate).
    Keep,
}

/// Which hook points a scheme protects.
#[derive(Clone, Debug)]
pub struct Coverage {
    /// Protected linear-output layer kinds.
    pub linear: Vec<LayerKind>,
    /// Protect MLP activation outputs (Ranger's attachment point).
    pub activations: bool,
}

impl Coverage {
    /// Protect the given linear layers only.
    pub fn linears(kinds: Vec<LayerKind>) -> Coverage {
        Coverage {
            linear: kinds,
            activations: false,
        }
    }

    /// Protect activation outputs only.
    pub fn activations_only() -> Coverage {
        Coverage {
            linear: Vec::new(),
            activations: true,
        }
    }

    /// Does this coverage include the given hook?
    pub fn covers(&self, kind: LayerKind, hook: HookKind) -> bool {
        match hook {
            HookKind::LinearOutput => self.linear.contains(&kind),
            HookKind::ActivationOutput => self.activations,
        }
    }
}

/// Where the protector's bounds come from.
#[derive(Clone, Debug)]
enum BoundsMode {
    /// Fixed bounds from offline profiling (already scaled if desired).
    Offline(BoundsStore),
    /// FT2's online mode: record during step 0, protect from step 1 on
    /// with bounds widened by `scale`.
    FirstToken { scale: f32, recording: BoundsStore },
}

/// Counters describing what a protector did during one inference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtectionStats {
    /// Out-of-bound values corrected.
    pub clipped: u64,
    /// NaN values corrected.
    pub nans_corrected: u64,
    /// Hook invocations on covered points.
    pub invocations: u64,
    /// Profiled bounds replaced by the static prior (integrity guard).
    pub bound_repairs: u64,
    /// Rollback escalations applied (one per `on_rollback`).
    pub escalations: u64,
}

/// The protection tap. Register it *after* the fault injector.
pub struct Protector {
    coverage: Coverage,
    mode: BoundsMode,
    correction: Correction,
    nan_policy: NanPolicy,
    /// Corrections per step at which the verdict escalates to storm.
    storm_threshold: u64,
    /// Rollback escalation level: each level halves the excess of the
    /// online scale factor over 1 and forces activation coverage on.
    escalation: u32,
    // Per-step counters, reported and reset by `end_step`.
    step_clamps: u64,
    step_nans: u64,
    step_severe: u64,
    /// Per-block correction counts for this step (feeds the live heatmap).
    step_block_hits: [u32; ft2_model::MAX_BLOCK_HITS],
    /// Activity counters (exposed for tests/overhead analysis).
    pub stats: ProtectionStats,
}

impl Protector {
    /// FT2's online protector: profile bounds during the first token, then
    /// protect subsequent tokens with `scale`-widened bounds, clamping to
    /// bound and zeroing NaNs.
    pub fn ft2_online(coverage: Coverage, scale: f32) -> Protector {
        Protector {
            coverage,
            mode: BoundsMode::FirstToken {
                scale,
                recording: BoundsStore::new(),
            },
            correction: Correction::ClampToBound,
            nan_policy: NanPolicy::ToZero,
            storm_threshold: DEFAULT_STORM_THRESHOLD,
            escalation: 0,
            step_clamps: 0,
            step_nans: 0,
            step_severe: 0,
            step_block_hits: [0; ft2_model::MAX_BLOCK_HITS],
            stats: ProtectionStats::default(),
        }
    }

    /// A protector with fixed offline-profiled bounds.
    pub fn offline(
        coverage: Coverage,
        bounds: BoundsStore,
        correction: Correction,
        nan_policy: NanPolicy,
    ) -> Protector {
        Protector {
            coverage,
            mode: BoundsMode::Offline(bounds),
            correction,
            nan_policy,
            storm_threshold: DEFAULT_STORM_THRESHOLD,
            escalation: 0,
            step_clamps: 0,
            step_nans: 0,
            step_severe: 0,
            step_block_hits: [0; ft2_model::MAX_BLOCK_HITS],
            stats: ProtectionStats::default(),
        }
    }

    /// Override the correction policy (for the clip-to-zero ablation).
    pub fn with_correction(mut self, correction: Correction) -> Protector {
        self.correction = correction;
        self
    }

    /// Override the NaN policy.
    pub fn with_nan_policy(mut self, policy: NanPolicy) -> Protector {
        self.nan_policy = policy;
        self
    }

    /// Override the per-step storm threshold.
    pub fn with_storm_threshold(mut self, threshold: u64) -> Protector {
        self.storm_threshold = threshold.max(1); // ft2: nan-ok (u64 floor)
        self
    }

    /// The online scale factor after `level` rollback escalations: each
    /// level halves the excess over 1, tightening toward the raw profiled
    /// bound (scale 2.0 → 1.5 → 1.25 → …).
    fn escalated_scale(base: f32, level: u32) -> f32 {
        // ft2: nan-ok (the min is on the u32 escalation level, not a float)
        1.0 + (base - 1.0) / 2f32.powi(level.min(30) as i32)
    }

    /// The effective bounds for a point right now (for inspection).
    pub fn current_bounds(&self, point: &ft2_model::TapPoint) -> Option<LayerBounds> {
        match &self.mode {
            BoundsMode::Offline(store) => store.get(point).copied(),
            BoundsMode::FirstToken { scale, recording } => {
                let eff = Self::escalated_scale(*scale, self.escalation);
                recording.get(point).map(|b| b.scaled(eff))
            }
        }
    }

    /// Record one per-step correction against `block` for the heatmap.
    fn hit_block(&mut self, block: usize) {
        // ft2: nan-ok (usize slot clamp, no floats involved)
        let slot = block.min(ft2_model::MAX_BLOCK_HITS - 1);
        self.step_block_hits[slot] = self.step_block_hits[slot].saturating_add(1);
    }

    fn correct(&mut self, block: usize, data: &mut Matrix, bounds: Option<LayerBounds>) {
        let nan_to_zero = self.nan_policy == NanPolicy::ToZero;
        // A correction is severe when the value lies beyond even the
        // extra-widened bound — a benign clip never lands that far out.
        let severe_bounds = bounds.map(|b| b.scaled(SEVERE_EXCESS_FACTOR));
        for v in data.as_mut_slice() {
            if v.is_nan() {
                if nan_to_zero {
                    *v = 0.0;
                    self.stats.nans_corrected += 1;
                    self.step_nans += 1;
                    self.step_severe += 1;
                    self.hit_block(block);
                }
                continue;
            }
            if let (Some(b), Some(sb)) = (bounds, severe_bounds) {
                if !b.contains(*v) {
                    if !sb.contains(*v) {
                        self.step_severe += 1;
                    }
                    *v = match self.correction {
                        // ft2: nan-ok (v is finite here — the NaN branch
                        // above rewrites NaN to 0 and `continue`s)
                        Correction::ClampToBound => b.clamp(*v),
                        Correction::ClipToZero => 0.0,
                    };
                    self.stats.clipped += 1;
                    self.step_clamps += 1;
                    self.hit_block(block);
                }
            }
        }
    }
}

impl LayerTap for Protector {
    fn on_output(&mut self, ctx: &TapCtx, data: &mut Matrix) {
        if !self.coverage.covers(ctx.point.layer, ctx.hook) {
            // Online mode records activation outputs during step 0 even
            // when activation coverage is off, so a rollback escalation
            // that switches it on mid-generation has bounds to use.
            // Recording never mutates data and is not an invocation.
            // (FT2's critical linear set is disjoint from the activation
            // points, so the shared TapPoint key cannot collide.)
            if ctx.step == 0 && ctx.hook == HookKind::ActivationOutput {
                if let BoundsMode::FirstToken { recording, .. } = &mut self.mode {
                    recording.observe_all(ctx.point, data.as_slice());
                }
            }
            return;
        }
        self.stats.invocations += 1;
        match &mut self.mode {
            BoundsMode::Offline(store) => {
                let b = store.get(&ctx.point).copied();
                self.correct(ctx.point.block, data, b);
            }
            BoundsMode::FirstToken { scale, recording } => {
                if ctx.step == 0 {
                    // First-token generation: record bounds; only NaN can be
                    // corrected (no bounds exist yet, §4.2.2).
                    recording.observe_all(ctx.point, data.as_slice());
                    let nan_to_zero = self.nan_policy == NanPolicy::ToZero;
                    if nan_to_zero {
                        let mut nans = 0u64;
                        for v in data.as_mut_slice() {
                            if v.is_nan() {
                                *v = 0.0;
                                nans += 1;
                            }
                        }
                        if nans > 0 {
                            self.stats.nans_corrected += nans;
                            self.step_nans += nans;
                            self.step_severe += nans;
                            for _ in 0..nans {
                                self.hit_block(ctx.point.block);
                            }
                        }
                    }
                } else {
                    let eff = Self::escalated_scale(*scale, self.escalation);
                    let b = recording.get(&ctx.point).map(|b| b.scaled(eff));
                    self.correct(ctx.point.block, data, b);
                }
            }
        }
    }

    fn end_step(&mut self, step: usize) -> StepReport {
        // The first-token profile is complete once step 0 ends: validate it
        // against the architectural priors before it gates any correction,
        // so a fault injected during profiling cannot disable protection.
        if step == 0 {
            if let BoundsMode::FirstToken { recording, .. } = &mut self.mode {
                self.stats.bound_repairs += recording.enforce_integrity() as u64;
            }
        }
        let clamps = std::mem::take(&mut self.step_clamps);
        let nans = std::mem::take(&mut self.step_nans);
        let severe = std::mem::take(&mut self.step_severe);
        let block_hits = std::mem::take(&mut self.step_block_hits);
        let verdict = if severe > 0 || clamps + nans >= self.storm_threshold {
            AnomalyVerdict::Storm
        } else if clamps + nans > 0 {
            AnomalyVerdict::Corrected
        } else {
            AnomalyVerdict::Clean
        };
        StepReport {
            clamps,
            nans,
            verdict,
            block_hits,
        }
    }

    fn on_rollback(&mut self, _step: usize, _attempt: u32) {
        self.escalation += 1;
        // Escalated re-decode: widen coverage to activation outputs (their
        // step-0 bounds were recorded above) and tighten the online scale.
        self.coverage.activations = true;
        self.stats.escalations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_model::{LayerKind, TapPoint};
    use ft2_tensor::DType;

    fn ctx(step: usize, layer: LayerKind, hook: HookKind) -> TapCtx {
        TapCtx {
            point: TapPoint { block: 0, layer },
            hook,
            step,
            first_pos: 0,
            dtype: DType::F16,
        }
    }

    fn vproj_coverage() -> Coverage {
        Coverage::linears(vec![LayerKind::VProj])
    }

    #[test]
    fn online_mode_records_then_protects() {
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0);
        // Step 0: values recorded, nothing clipped.
        let mut m = Matrix::from_vec(1, 3, vec![-1.0, 0.5, 2.0]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert_eq!(m.as_slice(), &[-1.0, 0.5, 2.0]);
        let b = p
            .current_bounds(&TapPoint { block: 0, layer: LayerKind::VProj })
            .unwrap();
        assert_eq!(b.lo, -2.0); // -1 scaled by 2
        assert_eq!(b.hi, 4.0); // 2 scaled by 2

        // Step 1: out-of-bound value clamped to the (scaled) bound.
        let mut m = Matrix::from_vec(1, 3, vec![100.0, -100.0, 1.0]);
        p.on_output(&ctx(1, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert_eq!(m.as_slice(), &[4.0, -2.0, 1.0]);
        assert_eq!(p.stats.clipped, 2);
    }

    #[test]
    fn nan_corrected_even_during_first_token() {
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0);
        let mut m = Matrix::from_vec(1, 2, vec![f32::NAN, 1.0]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert_eq!(m.as_slice(), &[0.0, 1.0]);
        assert_eq!(p.stats.nans_corrected, 1);
        // The NaN did not pollute the recorded bounds.
        let b = p
            .current_bounds(&TapPoint { block: 0, layer: LayerKind::VProj })
            .unwrap();
        assert_eq!(b.hi, 2.0);
    }

    #[test]
    fn uncovered_layers_are_untouched() {
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0);
        let mut m = Matrix::from_vec(1, 1, vec![f32::NAN]);
        p.on_output(&ctx(0, LayerKind::KProj, HookKind::LinearOutput), &mut m);
        assert!(m.get(0, 0).is_nan());
        assert_eq!(p.stats.invocations, 0);
    }

    #[test]
    fn offline_mode_uses_fixed_bounds() {
        let mut store = BoundsStore::new();
        store.set(
            TapPoint { block: 0, layer: LayerKind::VProj },
            LayerBounds { lo: -1.0, hi: 1.0 },
        );
        let mut p = Protector::offline(
            vproj_coverage(),
            store,
            Correction::ClampToBound,
            NanPolicy::ToZero,
        );
        // Protects from step 0 (bounds already known).
        let mut m = Matrix::from_vec(1, 2, vec![5.0, -0.5]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert_eq!(m.as_slice(), &[1.0, -0.5]);
    }

    #[test]
    fn clip_to_zero_policy() {
        let mut store = BoundsStore::new();
        store.set(
            TapPoint { block: 0, layer: LayerKind::VProj },
            LayerBounds { lo: -1.0, hi: 1.0 },
        );
        let mut p = Protector::offline(
            vproj_coverage(),
            store,
            Correction::ClipToZero,
            NanPolicy::ToZero,
        );
        let mut m = Matrix::from_vec(1, 2, vec![5.0, 0.5]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.5]);
    }

    #[test]
    fn nan_keep_policy_propagates() {
        let mut store = BoundsStore::new();
        store.set(
            TapPoint { block: 0, layer: LayerKind::VProj },
            LayerBounds { lo: -1.0, hi: 1.0 },
        );
        let mut p = Protector::offline(
            vproj_coverage(),
            store,
            Correction::ClampToBound,
            NanPolicy::Keep,
        );
        let mut m = Matrix::from_vec(1, 1, vec![f32::NAN]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert!(m.get(0, 0).is_nan());
    }

    #[test]
    fn activation_coverage_targets_activation_hooks() {
        let mut p = Protector::ft2_online(Coverage::activations_only(), 2.0);
        let mut m = Matrix::from_vec(1, 1, vec![1.0]);
        // Linear hook on FC1: not covered.
        p.on_output(&ctx(0, LayerKind::Fc1, HookKind::LinearOutput), &mut m);
        assert_eq!(p.stats.invocations, 0);
        // Activation hook on FC1: covered.
        p.on_output(&ctx(0, LayerKind::Fc1, HookKind::ActivationOutput), &mut m);
        assert_eq!(p.stats.invocations, 1);
    }

    #[test]
    fn benign_clamp_yields_corrected_verdict() {
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0);
        let mut m = Matrix::from_vec(1, 2, vec![-1.0, 2.0]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert_eq!(p.end_step(0).verdict, AnomalyVerdict::Clean);
        // 5.0 is outside the scaled bound [-2, 4] but well inside the
        // severe bound [-16, 32]: corrected, not a storm.
        let mut m = Matrix::from_vec(1, 1, vec![5.0]);
        p.on_output(&ctx(1, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        let r = p.end_step(1);
        assert_eq!(r.clamps, 1);
        assert_eq!(r.verdict, AnomalyVerdict::Corrected);
        // Counters reset between steps.
        assert_eq!(p.end_step(2), StepReport::default());
    }

    #[test]
    fn block_hits_attribute_corrections_to_the_faulting_block() {
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0);
        let mut c0 = ctx(0, LayerKind::VProj, HookKind::LinearOutput);
        let mut c3 = ctx(0, LayerKind::VProj, HookKind::LinearOutput);
        c3.point.block = 3;
        // Step 0: profile both blocks.
        let mut m = Matrix::from_vec(1, 2, vec![-1.0, 2.0]);
        p.on_output(&c0, &mut m);
        let mut m = Matrix::from_vec(1, 2, vec![-1.0, 2.0]);
        p.on_output(&c3, &mut m);
        let _ = p.end_step(0);
        // Step 1: one clamp on block 3 only.
        c0.step = 1;
        c3.step = 1;
        let mut m = Matrix::from_vec(1, 1, vec![1.0]);
        p.on_output(&c0, &mut m);
        let mut m = Matrix::from_vec(1, 1, vec![5.0]);
        p.on_output(&c3, &mut m);
        let r = p.end_step(1);
        assert_eq!(r.hit_blocks().collect::<Vec<_>>(), vec![(3, 1)]);
        // Counters reset between steps.
        assert_eq!(p.end_step(2).hit_blocks().count(), 0);
    }

    #[test]
    fn severe_excursion_storms_even_with_one_clamp() {
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0);
        let mut m = Matrix::from_vec(1, 2, vec![-1.0, 2.0]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        let _ = p.end_step(0);
        // An exponent-bit-style excursion: far beyond 8× the scaled bound.
        let mut m = Matrix::from_vec(1, 1, vec![1.0e4]);
        p.on_output(&ctx(1, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        let r = p.end_step(1);
        assert_eq!(r.clamps, 1);
        assert_eq!(r.verdict, AnomalyVerdict::Storm);
    }

    #[test]
    fn clamp_burst_reaching_threshold_storms() {
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0).with_storm_threshold(4);
        let mut m = Matrix::from_vec(1, 2, vec![-1.0, 2.0]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        let _ = p.end_step(0);
        // Four benign clips (inside the severe bound) hit the threshold.
        let mut m = Matrix::from_vec(1, 4, vec![5.0, 5.0, -3.0, 6.0]);
        p.on_output(&ctx(1, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        let r = p.end_step(1);
        assert_eq!(r.clamps, 4);
        assert_eq!(r.verdict, AnomalyVerdict::Storm);
    }

    #[test]
    fn corrected_nan_is_always_severe() {
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0);
        let mut m = Matrix::from_vec(1, 2, vec![-1.0, 2.0]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        let _ = p.end_step(0);
        let mut m = Matrix::from_vec(1, 1, vec![f32::NAN]);
        p.on_output(&ctx(1, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        let r = p.end_step(1);
        assert_eq!(r.nans, 1);
        assert_eq!(r.verdict, AnomalyVerdict::Storm);
    }

    #[test]
    fn poisoned_first_token_profile_is_repaired() {
        // A fault during the profiling token records an absurd bound; the
        // end-of-step-0 integrity guard replaces it with the static prior,
        // so later out-of-bound values are still clamped.
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0);
        let mut m = Matrix::from_vec(1, 3, vec![-1.0, 2.0, 1.0e30]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        let r0 = p.end_step(0);
        assert_eq!(p.stats.bound_repairs, 1);
        // Step 0 itself cannot clamp (no bounds yet).
        assert_eq!(r0.clamps, 0);
        let b = p
            .current_bounds(&TapPoint { block: 0, layer: LayerKind::VProj })
            .unwrap();
        assert!(b.hi.is_finite());
        // A later excursion is caught by the repaired (prior) bound.
        let mut m = Matrix::from_vec(1, 1, vec![1.0e4]);
        p.on_output(&ctx(1, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert!(m.get(0, 0) <= crate::bounds::prior_cap(LayerKind::VProj) * 2.0);
        assert_eq!(p.stats.clipped, 1);
    }

    #[test]
    fn clean_profile_is_not_repaired() {
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0);
        let mut m = Matrix::from_vec(1, 3, vec![-1.0, 0.5, 2.0]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        let _ = p.end_step(0);
        assert_eq!(p.stats.bound_repairs, 0);
    }

    #[test]
    fn rollback_escalation_tightens_scale_and_covers_activations() {
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0);
        let mut m = Matrix::from_vec(1, 2, vec![-1.0, 2.0]);
        p.on_output(&ctx(0, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        // Activation outputs are recorded at step 0 even when uncovered...
        let mut act = Matrix::from_vec(1, 2, vec![0.0, 3.0]);
        p.on_output(&ctx(0, LayerKind::Fc1, HookKind::ActivationOutput), &mut act);
        assert_eq!(p.stats.invocations, 1); // recording is not an invocation
        let _ = p.end_step(0);

        let point = TapPoint { block: 0, layer: LayerKind::VProj };
        assert_eq!(p.current_bounds(&point).unwrap().hi, 4.0); // 2 × scale 2
        p.on_rollback(1, 0);
        assert_eq!(p.stats.escalations, 1);
        // Scale tightens 2.0 → 1.5: bound hi becomes 3.0.
        assert_eq!(p.current_bounds(&point).unwrap().hi, 3.0);
        // ...so the escalated re-decode can protect them.
        let mut act = Matrix::from_vec(1, 1, vec![1.0e4]);
        p.on_output(&ctx(1, LayerKind::Fc1, HookKind::ActivationOutput), &mut act);
        assert_eq!(p.stats.clipped, 1);
        assert!(act.get(0, 0) < 1.0e4);
    }

    #[test]
    fn online_without_observation_does_not_clip() {
        // If step 0 never visited this layer (cannot happen in practice but
        // must be safe), later steps see no bounds and leave values alone.
        let mut p = Protector::ft2_online(vproj_coverage(), 2.0);
        let mut m = Matrix::from_vec(1, 1, vec![1e4]);
        p.on_output(&ctx(3, LayerKind::VProj, HookKind::LinearOutput), &mut m);
        assert_eq!(m.get(0, 0), 1e4);
        assert_eq!(p.stats.clipped, 0);
    }
}
