//! Protection schemes: FT2 and the published baselines, with exactly the
//! Table 1 coverage sets.
//!
//! | Scheme         | Coverage                              | Bounds       |
//! |----------------|---------------------------------------|--------------|
//! | Ranger         | MLP activation outputs only           | offline      |
//! | MaxiMals       | OUT_PROJ, FC2, DOWN_PROJ              | offline      |
//! | Global Clipper | V_PROJ, OUT_PROJ                      | offline      |
//! | FT2            | all critical layers (heuristic)       | first token  |
//! | FT2-offline    | all critical layers (heuristic)       | offline      |
//!
//! Two extension schemes support the ablation benches: `Ft2ClipToZero`
//! (FT2 coverage/bounds but the CNN-era zero correction — quantifies
//! Take-away #8) and `FullProtection` (every linear layer — quantifies the
//! "nearly 2× overhead" the paper cites for naive full coverage).

use crate::critical::critical_layers;
use crate::integrity::IntegrityConfig;
use crate::profile::OfflineBounds;
use crate::protect::{Correction, Coverage, NanPolicy, Protector};
use ft2_fault::ProtectionFactory;
use ft2_model::{ArchStyle, LayerKind, LayerTap, ModelConfig, StateTap};
use std::sync::Arc;

/// Default FT2 bound scale factor (§4.2.1: set to 2 "for easy and faster
/// calculation"; Fig. 9 shows insensitivity).
pub const FT2_DEFAULT_SCALE: f32 = 2.0;

/// Bound scale applied to the *offline*-profiled bounds of the baselines.
/// MaxiMals introduced bound scaling (§4.2.1 credits it), and every
/// deployed range-restriction scheme widens profiled bounds to cover
/// profiling-split sampling error; without it a finite profiling split
/// occasionally clips benign activations of the evaluation split.
pub const OFFLINE_BOUND_SCALE: f32 = 1.75;

/// The protection schemes of the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No protection at all.
    NoProtection,
    /// Ranger [12]: clips only MLP activation outputs.
    Ranger,
    /// MaxiMals [57]: protects attention-block and MLP outputs
    /// (OUT_PROJ, FC2, DOWN_PROJ) — misses V_PROJ and UP_PROJ.
    MaxiMals,
    /// Global Clipper [60]: protects attention linear outputs
    /// (V_PROJ, OUT_PROJ) — misses all MLP critical layers.
    GlobalClipper,
    /// FT2 with online first-token bounds (the paper's contribution).
    Ft2,
    /// FT2 coverage with offline-profiled bounds (upper-bound comparison).
    Ft2Offline,
    /// Ablation: FT2 coverage and bounds, but out-of-bound values are
    /// zeroed instead of clamped to the bound.
    Ft2ClipToZero,
    /// Ablation: online protection of *every* block linear layer.
    FullProtection,
}

impl Scheme {
    /// The schemes of the paper's main comparison (Fig. 13 order).
    pub const PAPER_SET: [Scheme; 6] = [
        Scheme::NoProtection,
        Scheme::Ranger,
        Scheme::MaxiMals,
        Scheme::GlobalClipper,
        Scheme::Ft2Offline,
        Scheme::Ft2,
    ];

    /// Display name matching the paper's legends.
    pub const fn name(self) -> &'static str {
        match self {
            Scheme::NoProtection => "No Protection",
            Scheme::Ranger => "Ranger",
            Scheme::MaxiMals => "MaxiMals",
            Scheme::GlobalClipper => "Global Clipper",
            Scheme::Ft2 => "FT2",
            Scheme::Ft2Offline => "FT2-offline",
            Scheme::Ft2ClipToZero => "FT2-clip0",
            Scheme::FullProtection => "Full Protection",
        }
    }

    /// Does this scheme need offline-profiled bounds?
    pub const fn needs_offline_bounds(self) -> bool {
        matches!(
            self,
            Scheme::Ranger | Scheme::MaxiMals | Scheme::GlobalClipper | Scheme::Ft2Offline
        )
    }

    /// The hook coverage of this scheme for a given architecture.
    pub fn coverage(self, style: ArchStyle) -> Coverage {
        match self {
            Scheme::NoProtection => Coverage::linears(Vec::new()),
            Scheme::Ranger => Coverage::activations_only(),
            Scheme::MaxiMals => Coverage::linears(vec![
                LayerKind::OutProj,
                LayerKind::Fc2,
                LayerKind::DownProj,
            ]),
            Scheme::GlobalClipper => {
                Coverage::linears(vec![LayerKind::VProj, LayerKind::OutProj])
            }
            Scheme::Ft2 | Scheme::Ft2Offline | Scheme::Ft2ClipToZero => {
                Coverage::linears(critical_layers(style))
            }
            Scheme::FullProtection => {
                Coverage::linears(LayerKind::for_style(style).to_vec())
            }
        }
    }

    /// Which linear layers of Table 1 this scheme marks as protected
    /// (for rendering the Table 1 coverage matrix).
    pub fn covers_linear(self, style: ArchStyle, kind: LayerKind) -> bool {
        self.coverage(style).linear.contains(&kind)
    }
}

/// A [`ProtectionFactory`] producing fresh [`Protector`] taps per trial.
pub struct SchemeFactory {
    scheme: Scheme,
    style: ArchStyle,
    offline: Option<Arc<OfflineBounds>>,
    scale: f32,
    storm_threshold: Option<u64>,
    integrity: IntegrityConfig,
    label: String,
}

impl SchemeFactory {
    /// Build a factory for a scheme. `offline` must be provided for the
    /// offline-bounds schemes (panics otherwise at `make` time).
    pub fn new(
        scheme: Scheme,
        config: &ModelConfig,
        offline: Option<Arc<OfflineBounds>>,
    ) -> SchemeFactory {
        assert!(
            !scheme.needs_offline_bounds() || offline.is_some(),
            "{} requires offline bounds",
            scheme.name()
        );
        SchemeFactory {
            scheme,
            style: config.style,
            offline,
            scale: FT2_DEFAULT_SCALE,
            storm_threshold: None,
            integrity: IntegrityConfig::disabled(),
            label: scheme.name().to_string(),
        }
    }

    /// FT2 with a custom bound scale factor (the Fig. 9 sweep).
    pub fn ft2_with_scale(config: &ModelConfig, scale: f32) -> SchemeFactory {
        SchemeFactory {
            scheme: Scheme::Ft2,
            style: config.style,
            offline: None,
            scale,
            storm_threshold: None,
            integrity: IntegrityConfig::disabled(),
            label: Scheme::Ft2.name().to_string(),
        }
    }

    /// Attach a stored-state integrity layer (weight scrubbing and/or a
    /// KV-cache guard) to every produced tap set. The reported scheme name
    /// gains a suffix (e.g. `FT2+scrub8+kvguard`) so campaign fingerprints
    /// distinguish integrity configurations.
    pub fn with_integrity(mut self, integrity: IntegrityConfig) -> SchemeFactory {
        self.label = format!("{}{}", self.scheme.name(), integrity.label_suffix());
        self.integrity = integrity;
        self
    }

    /// Override the per-step storm threshold of every produced protector
    /// (the `FT2_STORM_THRESHOLD` knob; `None` keeps the default).
    pub fn with_storm_threshold(mut self, threshold: Option<u64>) -> SchemeFactory {
        self.storm_threshold = threshold;
        self
    }

    /// The scheme this factory produces.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    fn tuned(&self, p: Protector) -> Protector {
        match self.storm_threshold {
            Some(t) => p.with_storm_threshold(t),
            None => p,
        }
    }
}

impl ProtectionFactory for SchemeFactory {
    fn make(&self) -> Vec<Box<dyn LayerTap>> {
        let coverage = self.scheme.coverage(self.style);
        match self.scheme {
            Scheme::NoProtection => Vec::new(),
            Scheme::Ranger => {
                let offline = self.offline.as_ref().expect("Ranger needs offline bounds");
                vec![Box::new(self.tuned(Protector::offline(
                    coverage,
                    offline.activations.scaled(OFFLINE_BOUND_SCALE),
                    Correction::ClampToBound,
                    NanPolicy::ToZero,
                )))]
            }
            Scheme::MaxiMals | Scheme::GlobalClipper | Scheme::Ft2Offline => {
                let offline = self
                    .offline
                    .as_ref()
                    .unwrap_or_else(|| panic!("{} needs offline bounds", self.scheme.name()));
                vec![Box::new(self.tuned(Protector::offline(
                    coverage,
                    offline.linear.scaled(OFFLINE_BOUND_SCALE),
                    Correction::ClampToBound,
                    NanPolicy::ToZero,
                )))]
            }
            Scheme::Ft2 | Scheme::FullProtection => {
                vec![Box::new(self.tuned(Protector::ft2_online(coverage, self.scale)))]
            }
            Scheme::Ft2ClipToZero => {
                let p = Protector::ft2_online(coverage, self.scale)
                    .with_correction(Correction::ClipToZero);
                vec![Box::new(self.tuned(p))]
            }
        }
    }

    fn make_state(&self) -> Vec<Box<dyn StateTap>> {
        self.integrity.make_state()
    }

    fn scheme_name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_model::ModelConfig;

    #[test]
    fn table1_coverage_matrix() {
        use LayerKind::*;
        let style = ArchStyle::LlamaStyle;
        // Ranger: no linear layers.
        for k in LayerKind::ALL {
            assert!(!Scheme::Ranger.covers_linear(style, k));
        }
        // MaxiMals: OUT, FC2, DOWN but not V or UP.
        assert!(Scheme::MaxiMals.covers_linear(style, OutProj));
        assert!(Scheme::MaxiMals.covers_linear(style, DownProj));
        assert!(!Scheme::MaxiMals.covers_linear(style, VProj));
        assert!(!Scheme::MaxiMals.covers_linear(style, UpProj));
        // Global Clipper: V and OUT only.
        assert!(Scheme::GlobalClipper.covers_linear(style, VProj));
        assert!(Scheme::GlobalClipper.covers_linear(style, OutProj));
        assert!(!Scheme::GlobalClipper.covers_linear(style, DownProj));
        // FT2: all critical layers of the architecture.
        for k in [VProj, OutProj, UpProj, DownProj] {
            assert!(Scheme::Ft2.covers_linear(style, k));
        }
        for k in [KProj, QProj, GateProj] {
            assert!(!Scheme::Ft2.covers_linear(style, k));
        }
        // OPT style: FT2 covers FC2 but not FC1.
        assert!(Scheme::Ft2.covers_linear(ArchStyle::OptStyle, Fc2));
        assert!(!Scheme::Ft2.covers_linear(ArchStyle::OptStyle, Fc1));
    }

    #[test]
    fn factory_produces_taps_per_scheme() {
        let config = ModelConfig::tiny_opt();
        let none = SchemeFactory::new(Scheme::NoProtection, &config, None);
        assert!(none.make().is_empty());
        let ft2 = SchemeFactory::new(Scheme::Ft2, &config, None);
        assert_eq!(ft2.make().len(), 1);
        assert_eq!(ft2.scheme_name(), "FT2");
    }

    #[test]
    #[should_panic]
    fn offline_scheme_without_bounds_panics() {
        let config = ModelConfig::tiny_opt();
        let _ = SchemeFactory::new(Scheme::MaxiMals, &config, None);
    }

    #[test]
    fn paper_set_order() {
        let names: Vec<&str> = Scheme::PAPER_SET.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "No Protection",
                "Ranger",
                "MaxiMals",
                "Global Clipper",
                "FT2-offline",
                "FT2"
            ]
        );
    }
}
