//! Saving and loading bound stores.
//!
//! FT2 itself never needs persisted bounds (they are profiled online), but
//! the offline baselines do, and in a deployment you would profile once
//! and ship the bounds with the model. The format is a tiny CSV —
//! `block,layer,lo,hi` — so artifacts are diffable and readable.

use crate::bounds::{BoundsStore, LayerBounds};
use ft2_model::{LayerKind, TapPoint};
use std::path::Path;

fn layer_from_name(name: &str) -> Option<LayerKind> {
    LayerKind::ALL.iter().copied().find(|k| k.name() == name)
}

/// Serialise a store to CSV text (rows sorted for stable diffs).
pub fn to_csv(store: &BoundsStore) -> String {
    let mut rows: Vec<(TapPoint, LayerBounds)> =
        store.iter().map(|(p, b)| (*p, *b)).collect();
    rows.sort_by_key(|(p, _)| *p);
    let mut out = String::from("block,layer,lo,hi\n");
    for (p, b) in rows {
        out.push_str(&format!("{},{},{},{}\n", p.block, p.layer.name(), b.lo, b.hi));
    }
    out
}

/// Parse a store from CSV text produced by [`to_csv`].
pub fn from_csv(text: &str) -> Result<BoundsStore, String> {
    let mut store = BoundsStore::new();
    for (lineno, line) in text.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() {
            continue; // header / trailing newline
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(format!("line {}: expected 4 fields", lineno + 1));
        }
        let block: usize = fields[0]
            .parse()
            .map_err(|e| format!("line {}: bad block: {e}", lineno + 1))?;
        let layer = layer_from_name(fields[1])
            .ok_or_else(|| format!("line {}: unknown layer '{}'", lineno + 1, fields[1]))?;
        let lo: f32 = fields[2]
            .parse()
            .map_err(|e| format!("line {}: bad lo: {e}", lineno + 1))?;
        let hi: f32 = fields[3]
            .parse()
            .map_err(|e| format!("line {}: bad hi: {e}", lineno + 1))?;
        if lo > hi {
            return Err(format!("line {}: lo {lo} > hi {hi}", lineno + 1));
        }
        store.set(TapPoint { block, layer }, LayerBounds { lo, hi });
    }
    Ok(store)
}

/// Write a store to a file.
pub fn save(store: &BoundsStore, path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, to_csv(store))
}

/// Read a store from a file.
pub fn load(path: impl AsRef<Path>) -> Result<BoundsStore, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    from_csv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> BoundsStore {
        let mut s = BoundsStore::new();
        s.set(
            TapPoint { block: 0, layer: LayerKind::VProj },
            LayerBounds { lo: -1.5, hi: 2.25 },
        );
        s.set(
            TapPoint { block: 3, layer: LayerKind::DownProj },
            LayerBounds { lo: -8.0, hi: 8.5 },
        );
        s
    }

    #[test]
    fn csv_roundtrip_is_exact() {
        let store = sample_store();
        let text = to_csv(&store);
        let back = from_csv(&text).unwrap();
        assert_eq!(back.len(), store.len());
        for (p, b) in store.iter() {
            assert_eq!(back.get(p), Some(b));
        }
        // Header + 2 rows; sorted by (block, layer).
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "block,layer,lo,hi");
        assert!(lines[1].starts_with("0,V_PROJ,"));
        assert!(lines[2].starts_with("3,DOWN_PROJ,"));
    }

    #[test]
    fn file_roundtrip() {
        let store = sample_store();
        let path = std::env::temp_dir().join("ft2_bounds_test.csv");
        save(&store, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), 2);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_csv("block,layer,lo,hi\n0,NOT_A_LAYER,0,1\n").is_err());
        assert!(from_csv("block,layer,lo,hi\n0,V_PROJ,zero,1\n").is_err());
        assert!(from_csv("block,layer,lo,hi\n0,V_PROJ,5,1\n").is_err());
        assert!(from_csv("block,layer,lo,hi\n0,V_PROJ,5\n").is_err());
        // Empty body is fine.
        assert_eq!(from_csv("block,layer,lo,hi\n").unwrap().len(), 0);
    }
}
