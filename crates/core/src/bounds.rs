//! Per-layer value bounds for range restriction, plus the architectural
//! priors that guard bound integrity against a poisoned profiling pass.

use ft2_model::{LayerKind, TapPoint};
use std::collections::BTreeMap;

/// Largest |value| a healthy layer of this kind plausibly produces on the
/// simulator, with a wide safety margin. Calibrated against offline profiles
/// of every zoo model (worst observed |bound| ≈ 6.5; the MLP expansion
/// layers feeding the activation are the widest). A profiled bound beyond
/// this cap can only come from a fault during profiling.
pub fn prior_cap(kind: LayerKind) -> f32 {
    match kind {
        LayerKind::Fc1 | LayerKind::GateProj => 64.0,
        _ => 32.0,
    }
}

/// The static fallback bound for a layer kind, used when a profiled bound
/// fails [`LayerBounds::is_sane`]. Deliberately loose — it restores *some*
/// upper/lower check (catching exponent-scale excursions) without risking
/// clamping legitimate values.
pub fn static_prior(kind: LayerKind) -> LayerBounds {
    let cap = prior_cap(kind);
    LayerBounds { lo: -cap, hi: cap }
}

/// The `[lo, hi]` bound of one protected layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerBounds {
    /// Lower bound.
    pub lo: f32,
    /// Upper bound.
    pub hi: f32,
}

impl LayerBounds {
    /// An empty (inverted) bound that any observation will widen.
    pub fn empty() -> LayerBounds {
        LayerBounds {
            lo: f32::INFINITY,
            hi: f32::NEG_INFINITY,
        }
    }

    /// Widen to include `v`. Non-finite values are ignored — they are
    /// corrected, not learned: a NaN or ±Inf admitted here would become a
    /// permanent bound endpoint that disables the range check forever.
    #[inline]
    pub fn observe(&mut self, v: f32) {
        if !v.is_finite() {
            return;
        }
        if v < self.lo {
            self.lo = v;
        }
        if v > self.hi {
            self.hi = v;
        }
    }

    /// Has at least one value been observed?
    pub fn is_initialised(&self) -> bool {
        self.lo <= self.hi
    }

    /// Widen the bound outward by `scale` (≥ 1): each endpoint moves away
    /// from zero by the factor (§4.2.1's bound scaling, default 2×).
    pub fn scaled(&self, scale: f32) -> LayerBounds {
        debug_assert!(scale >= 1.0);
        let widen = |v: f32| {
            if v >= 0.0 {
                // Positive endpoints: hi moves up, lo (if positive) moves
                // toward zero to stay conservative on the outside only.
                v * scale
            } else {
                v * scale
            }
        };
        // Both endpoints move away from zero; a positive lo is relaxed
        // toward zero instead (dividing by scale) so the interval only ever
        // grows.
        let lo = if self.lo >= 0.0 {
            self.lo / scale
        } else {
            widen(self.lo)
        };
        let hi = if self.hi <= 0.0 {
            self.hi / scale
        } else {
            widen(self.hi)
        };
        LayerBounds { lo, hi }
    }

    /// Clamp a value into the bound (used by `Correction::ClampToBound`).
    ///
    /// NaN maps to `hi`: `f32::min`/`max` return the non-NaN operand, so the
    /// result is always inside `[lo, hi]` and never NaN. The detection path
    /// (`Protector::correct`) additionally rewrites NaN to 0 *before* ever
    /// calling this, so in-pipeline clamps only see finite values.
    #[inline]
    pub fn clamp(&self, v: f32) -> f32 {
        // ft2: nan-ok (NaN→hi is in-bounds by min/max semantics; the
        // detection path zeroes NaN upstream in Protector::correct)
        v.min(self.hi).max(self.lo)
    }

    /// Is `v` inside `[lo, hi]`? NaN is never inside.
    #[inline]
    pub fn contains(&self, v: f32) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Does this bound look like the product of a clean profiling pass for
    /// a layer of `kind`? Requires: initialised, both endpoints finite,
    /// not inverted, and both magnitudes under the architectural prior cap.
    pub fn is_sane(&self, kind: LayerKind) -> bool {
        let cap = prior_cap(kind);
        self.lo.is_finite()
            && self.hi.is_finite()
            && self.lo <= self.hi
            && self.lo.abs() <= cap
            && self.hi.abs() <= cap
    }
}

/// Bounds for a set of protected layers.
#[derive(Clone, Debug, Default)]
pub struct BoundsStore {
    map: BTreeMap<TapPoint, LayerBounds>,
}

impl BoundsStore {
    /// Empty store.
    pub fn new() -> BoundsStore {
        BoundsStore::default()
    }

    /// Bounds for a layer, if recorded.
    pub fn get(&self, point: &TapPoint) -> Option<&LayerBounds> {
        self.map.get(point)
    }

    /// Record/widen the bounds of a layer with a batch of observations.
    pub fn observe_all(&mut self, point: TapPoint, values: &[f32]) {
        let b = self.map.entry(point).or_insert_with(LayerBounds::empty);
        for &v in values {
            b.observe(v);
        }
    }

    /// Set the bounds of a layer explicitly.
    pub fn set(&mut self, point: TapPoint, bounds: LayerBounds) {
        self.map.insert(point, bounds);
    }

    /// Number of layers with bounds.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no layer has bounds.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Return a copy with every bound widened by `scale`.
    pub fn scaled(&self, scale: f32) -> BoundsStore {
        BoundsStore {
            map: self
                .map
                .iter()
                .map(|(k, v)| (*k, v.scaled(scale)))
                .collect(),
        }
    }

    /// Merge another store, widening overlapping bounds.
    pub fn merge(&mut self, other: &BoundsStore) {
        for (k, v) in &other.map {
            let b = self.map.entry(*k).or_insert_with(LayerBounds::empty);
            b.observe(v.lo);
            b.observe(v.hi);
        }
    }

    /// Validate every bound against the architectural prior of its layer
    /// kind and replace insane ones with [`static_prior`]. Returns how many
    /// bounds were repaired. Run after any profiling pass whose inputs may
    /// have been faulted (the online first-token pass in particular) so a
    /// corrupted observation cannot silently disable protection.
    pub fn enforce_integrity(&mut self) -> usize {
        let mut repaired = 0;
        for (point, b) in self.map.iter_mut() {
            if !b.is_sane(point.layer) {
                *b = static_prior(point.layer);
                repaired += 1;
            }
        }
        repaired
    }

    /// Memory footprint of the stored bounds in bytes (two f32 per layer —
    /// the paper's §5.2.2 reports 288–512 B for 72–128 protected layers).
    pub fn memory_bytes(&self) -> usize {
        self.map.len() * 2 * std::mem::size_of::<f32>()
    }

    /// Iterate over `(point, bounds)`.
    pub fn iter(&self) -> impl Iterator<Item = (&TapPoint, &LayerBounds)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_model::LayerKind;

    fn point(block: usize) -> TapPoint {
        TapPoint {
            block,
            layer: LayerKind::VProj,
        }
    }

    #[test]
    fn observe_widens() {
        let mut b = LayerBounds::empty();
        assert!(!b.is_initialised());
        b.observe(1.0);
        b.observe(-2.0);
        b.observe(f32::NAN); // ignored
        b.observe(0.5);
        assert!(b.is_initialised());
        assert_eq!(b.lo, -2.0);
        assert_eq!(b.hi, 1.0);
    }

    #[test]
    fn scaling_always_grows_the_interval() {
        let b = LayerBounds { lo: -2.0, hi: 3.0 };
        let s = b.scaled(2.0);
        assert_eq!(s.lo, -4.0);
        assert_eq!(s.hi, 6.0);
        // All-positive interval: lo relaxes toward zero.
        let b = LayerBounds { lo: 0.5, hi: 3.0 };
        let s = b.scaled(2.0);
        assert_eq!(s.lo, 0.25);
        assert_eq!(s.hi, 6.0);
        // All-negative interval.
        let b = LayerBounds { lo: -3.0, hi: -0.5 };
        let s = b.scaled(2.0);
        assert_eq!(s.lo, -6.0);
        assert_eq!(s.hi, -0.25);
        // Every original point remains inside.
        assert!(s.contains(-3.0) && s.contains(-0.5));
    }

    #[test]
    fn clamp_and_contains() {
        let b = LayerBounds { lo: -1.0, hi: 2.0 };
        assert_eq!(b.clamp(5.0), 2.0); // ft2: nan-ok (finite test input)
        assert_eq!(b.clamp(-5.0), -1.0); // ft2: nan-ok (finite test input)
        assert_eq!(b.clamp(0.5), 0.5); // ft2: nan-ok (finite test input)
        assert!(b.contains(0.0));
        assert!(!b.contains(2.1));
        assert!(!b.contains(f32::NAN));
        // Clamping a NaN through min/max: NaN.min(hi) propagates... make the
        // behaviour explicit: f32::min(NaN, x) == x in Rust, so the result
        // is within bounds.
        let c = b.clamp(f32::NAN); // ft2: nan-ok (exercises the NaN mapping)
        assert!(!c.is_nan());
    }

    #[test]
    fn clamp_never_returns_nan_or_escapes_bounds() {
        // Regression for the NaN-swallowing min/max pattern: `v.min(hi)`
        // with v = NaN returns `hi` (f32::min keeps the non-NaN operand),
        // so clamp must map every non-finite input to an in-bounds finite
        // value — never propagate NaN into the residual stream.
        let b = LayerBounds { lo: -1.0, hi: 2.0 };
        for v in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 1.0e30] {
            let c = b.clamp(v); // ft2: nan-ok (exercises the NaN mapping)
            assert!(!c.is_nan(), "clamp({v}) produced NaN");
            assert!(b.contains(c), "clamp({v}) = {c} escaped [{}, {}]", b.lo, b.hi);
        }
        assert_eq!(b.clamp(f32::NAN), b.hi); // ft2: nan-ok (documents NaN→hi)
    }

    #[test]
    fn store_roundtrip_and_memory() {
        let mut s = BoundsStore::new();
        s.observe_all(point(0), &[1.0, -1.0, 0.2]);
        s.observe_all(point(1), &[3.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&point(0)).unwrap().hi, 1.0);
        assert_eq!(s.memory_bytes(), 16);
        let scaled = s.scaled(2.0);
        assert_eq!(scaled.get(&point(0)).unwrap().hi, 2.0);
    }

    #[test]
    fn observe_ignores_infinities() {
        // Regression: an Inf observed during profiling used to become a
        // permanent `hi = inf` bound, disabling the upper check forever.
        let mut b = LayerBounds::empty();
        b.observe(f32::INFINITY);
        b.observe(f32::NEG_INFINITY);
        assert!(!b.is_initialised());
        b.observe(1.0);
        b.observe(-2.0);
        b.observe(f32::INFINITY);
        b.observe(f32::NEG_INFINITY);
        assert_eq!(b.lo, -2.0);
        assert_eq!(b.hi, 1.0);
        // The upper-bound check still works after seeing an Inf.
        assert!(!b.contains(1.5));
        assert_eq!(b.clamp(f32::INFINITY), 1.0); // ft2: nan-ok (Inf mapping)
    }

    #[test]
    fn sanity_check_rejects_poisoned_bounds() {
        let kind = LayerKind::VProj;
        assert!(LayerBounds { lo: -2.0, hi: 3.0 }.is_sane(kind));
        // Uninitialised / inverted.
        assert!(!LayerBounds::empty().is_sane(kind));
        // Non-finite endpoint.
        assert!(!LayerBounds { lo: -1.0, hi: f32::INFINITY }.is_sane(kind));
        assert!(!LayerBounds { lo: f32::NAN, hi: 1.0 }.is_sane(kind));
        // Magnitude beyond the architectural prior.
        assert!(!LayerBounds { lo: -1.0, hi: 1.0e6 }.is_sane(kind));
        // The wide MLP kinds get a wider cap.
        assert!(LayerBounds { lo: -50.0, hi: 50.0 }.is_sane(LayerKind::Fc1));
        assert!(!LayerBounds { lo: -50.0, hi: 50.0 }.is_sane(LayerKind::VProj));
    }

    #[test]
    fn enforce_integrity_repairs_only_insane_bounds() {
        let mut s = BoundsStore::new();
        let good = LayerBounds { lo: -1.5, hi: 2.5 };
        s.set(point(0), good);
        s.set(point(1), LayerBounds { lo: -1.0, hi: 1.0e8 }); // poisoned
        let repaired = s.enforce_integrity();
        assert_eq!(repaired, 1);
        assert_eq!(*s.get(&point(0)).unwrap(), good);
        let fixed = s.get(&point(1)).unwrap();
        assert_eq!(*fixed, static_prior(LayerKind::VProj));
        // The repaired bound still catches exponent-scale excursions.
        assert!(!fixed.contains(1.0e4));
        // Running again repairs nothing.
        assert_eq!(s.enforce_integrity(), 0);
    }

    #[test]
    fn merge_widens() {
        let mut a = BoundsStore::new();
        a.set(point(0), LayerBounds { lo: -1.0, hi: 1.0 });
        let mut b = BoundsStore::new();
        b.set(point(0), LayerBounds { lo: -3.0, hi: 0.5 });
        b.set(point(1), LayerBounds { lo: 0.0, hi: 2.0 });
        a.merge(&b);
        assert_eq!(a.get(&point(0)).unwrap().lo, -3.0);
        assert_eq!(a.get(&point(0)).unwrap().hi, 1.0);
        assert_eq!(a.len(), 2);
    }
}
