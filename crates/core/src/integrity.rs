//! Stored-state integrity: weight-tile checksums, background scrubbing,
//! and KV-cache CRC guards.
//!
//! The paper's protection (and PR 2's rollback) handle *transient* faults in
//! the computation path. Persistent faults live in stored state — weight
//! matrices and cached K/V rows — and every subsequent step re-reads them,
//! so rollback re-decodes into the same corruption forever. The defence is
//! the classic detect → localise → repair vertical:
//!
//! * [`WeightChecksums`] — per-tile CRC-64 checksums over every
//!   block-linear weight matrix, computed once from the golden checkpoint at
//!   load time and shared (read-only) across trials.
//! * [`WeightScrubber`] — a background scrubber that re-verifies `N` tiles
//!   per decode step, round-robin, amortising the full sweep across the
//!   generation (priced by `CostModel::scrub_time`). A mismatched tile is
//!   restored from the golden copy.
//! * [`KvGuard`] — CRC seals over cached K/V rows, sealed when a step's
//!   fresh rows are appended and re-verified before every forward pass (the
//!   attention of each step reads *every* cached position, so verify-before-
//!   forward is exactly verify-on-read). Poisoned positions cannot be
//!   restored from any golden copy — the cache is derived state — so the
//!   guard reports the earliest poisoned position and the engine invalidates
//!   and re-decodes the suffix via the existing rollback machinery.
//!
//! A CRC-64 detects every error burst confined to 64 bits (see
//! [`ft2_numeric::crc`]), so any fault-model corruption of a single stored
//! element is guaranteed to change the tile/row checksum.

use ft2_model::state::{StateCtx, StateReport, StateTap};
use ft2_model::weights::ModelWeights;
use ft2_model::{LayerKind, ModelConfig};
use ft2_numeric::crc64_f32s;
use std::sync::Arc;

/// Elements per checksummed weight tile. 256 × 4 B = 1 KiB tiles — small
/// enough to localise a repair precisely, large enough that the checksum
/// table stays tiny relative to the weights (0.4% overhead at 8 B/tile).
pub const TILE_ELEMS: usize = 256;

/// One checksummed tile of a block-linear weight matrix.
#[derive(Clone, Copy, Debug)]
struct Tile {
    block: usize,
    layer: LayerKind,
    start: usize,
    len: usize,
    crc: u64,
}

/// Per-tile CRC-64 checksums of every block-linear weight matrix, computed
/// from the golden checkpoint. Immutable; share one instance across trials
/// via `Arc`.
pub struct WeightChecksums {
    tiles: Vec<Tile>,
}

impl WeightChecksums {
    /// Checksum every block-linear weight matrix of `weights` in tiles of
    /// [`TILE_ELEMS`] elements.
    pub fn build(config: &ModelConfig, weights: &ModelWeights) -> WeightChecksums {
        let mut tiles = Vec::new();
        for (b, bw) in weights.blocks.iter().enumerate() {
            for &k in config.block_layers() {
                let lin = bw.layer(k).expect("config layer missing from weights");
                let data = lin.weight.as_slice();
                let mut start = 0;
                while start < data.len() {
                    // ft2: nan-ok (usize tile sizing, no floats involved)
                    let len = TILE_ELEMS.min(data.len() - start);
                    tiles.push(Tile {
                        block: b,
                        layer: k,
                        start,
                        len,
                        crc: crc64_f32s(&data[start..start + len]),
                    });
                    start += len;
                }
            }
        }
        WeightChecksums { tiles }
    }

    /// Total number of checksummed tiles (one full scrub sweep verifies
    /// this many).
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Does the tile at `idx` match the live weights?
    fn tile_matches(&self, idx: usize, weights: &ModelWeights) -> bool {
        let t = &self.tiles[idx];
        let lin = weights.blocks[t.block]
            .layer(t.layer)
            .expect("layer missing");
        crc64_f32s(&lin.weight.as_slice()[t.start..t.start + t.len]) == t.crc
    }

    /// Restore the tile at `idx` of the live weights from the golden copy,
    /// after verifying the golden tile still matches its load-time checksum
    /// (a corrupted repair source must never be propagated).
    fn repair_tile(&self, idx: usize, live: &mut ModelWeights, golden: &ModelWeights) {
        let t = &self.tiles[idx];
        let src = golden.blocks[t.block]
            .layer(t.layer)
            .expect("layer missing");
        let src_slice = &src.weight.as_slice()[t.start..t.start + t.len];
        assert_eq!(
            crc64_f32s(src_slice),
            t.crc,
            "golden copy corrupted: refusing to repair from it"
        );
        let dst = live.blocks[t.block]
            .layer_mut(t.layer)
            .expect("layer missing");
        dst.weight.as_mut_slice()[t.start..t.start + t.len].copy_from_slice(src_slice);
    }

    /// Verify tiles `from..from + budget` (clamped to the table) of the
    /// live weights and restore any mismatch from the golden copy.
    /// Returns `(checked, repaired)`. This is the incremental unit of the
    /// replica-rebuild loop: a quarantined replica verifies a budget of
    /// tiles per router tick — surviving replicas keep serving — and
    /// rejoins once the cursor has covered [`WeightChecksums::num_tiles`].
    pub fn sweep(
        &self,
        from: usize,
        budget: usize,
        live: &mut ModelWeights,
        golden: &ModelWeights,
    ) -> (usize, usize) {
        // ft2: nan-ok (usize clamp of the tile cursor; no floats involved)
        let end = self.tiles.len().min(from.saturating_add(budget));
        if from >= end {
            return (0, 0);
        }
        let mut repaired = 0;
        for idx in from..end {
            if !self.tile_matches(idx, live) {
                self.repair_tile(idx, live, golden);
                repaired += 1;
            }
        }
        (end - from, repaired)
    }

    /// Verify every tile and repair every mismatch in one pass. Returns
    /// `(checked, repaired)`.
    pub fn full_sweep(&self, live: &mut ModelWeights, golden: &ModelWeights) -> (usize, usize) {
        self.sweep(0, self.tiles.len(), live, golden)
    }
}

/// Background weight scrubber: verifies `tiles_per_step` tiles per state
/// pass, round-robin over the whole tile set, and restores mismatches from
/// the golden checkpoint. [`StateTap::on_repair`] sweeps every tile at once
/// (the engine's repair-and-retry rung).
pub struct WeightScrubber {
    checksums: Arc<WeightChecksums>,
    tiles_per_step: usize,
    cursor: usize,
}

impl WeightScrubber {
    /// Scrubber verifying `tiles_per_step` tiles per generation step.
    pub fn new(checksums: Arc<WeightChecksums>, tiles_per_step: usize) -> WeightScrubber {
        WeightScrubber {
            checksums,
            tiles_per_step,
            cursor: 0,
        }
    }

    fn scrub(&mut self, ctx: &mut StateCtx<'_>, budget: usize) -> StateReport {
        let total = self.checksums.num_tiles();
        let mut report = StateReport::default();
        if total == 0 {
            return report;
        }
        // ft2: nan-ok (usize scrub budgeting, no floats)
        for _ in 0..budget.min(total) {
            let idx = self.cursor;
            self.cursor = (self.cursor + 1) % total;
            report.scrubbed_tiles += 1;
            if !self.checksums.tile_matches(idx, ctx.weights) {
                self.checksums.repair_tile(idx, ctx.weights, ctx.golden);
                report.weight_repairs += 1;
            }
        }
        report
    }
}

impl StateTap for WeightScrubber {
    fn on_step_state(&mut self, ctx: &mut StateCtx<'_>) -> StateReport {
        let budget = self.tiles_per_step;
        self.scrub(ctx, budget)
    }

    fn on_repair(&mut self, ctx: &mut StateCtx<'_>) -> StateReport {
        let total = self.checksums.num_tiles();
        self.scrub(ctx, total)
    }
}

/// CRC seals over the K and V rows of one block's cache.
#[derive(Default)]
struct BlockSeals {
    k: Vec<u64>,
    v: Vec<u64>,
}

/// KV-cache CRC guard: seals every freshly appended cache row at
/// end-of-step, verifies every sealed row before each forward pass, and
/// reports the earliest corrupted position so the engine can invalidate and
/// re-decode the poisoned suffix.
#[derive(Default)]
pub struct KvGuard {
    seals: Vec<BlockSeals>,
}

impl KvGuard {
    /// A guard with no seals yet (seals accrue as steps complete).
    pub fn new() -> KvGuard {
        KvGuard::default()
    }

    fn verify(&self, ctx: &StateCtx<'_>) -> StateReport {
        let mut invalid: Option<usize> = None;
        for (b, seals) in self.seals.iter().enumerate() {
            let blk = ctx.cache.block(b);
            for (pos, &crc) in seals.k.iter().enumerate() {
                if crc64_f32s(blk.k.row(pos)) != crc {
                    // ft2: nan-ok (usize position min, no floats)
                    invalid = Some(invalid.map_or(pos, |p: usize| p.min(pos)));
                }
            }
            for (pos, &crc) in seals.v.iter().enumerate() {
                if crc64_f32s(blk.v.row(pos)) != crc {
                    // ft2: nan-ok (usize position min, no floats)
                    invalid = Some(invalid.map_or(pos, |p: usize| p.min(pos)));
                }
            }
        }
        StateReport {
            kv_invalid_from: invalid,
            ..StateReport::default()
        }
    }
}

impl StateTap for KvGuard {
    fn on_step_state(&mut self, ctx: &mut StateCtx<'_>) -> StateReport {
        self.verify(ctx)
    }

    fn on_step_end(&mut self, ctx: &mut StateCtx<'_>) {
        // Seal every not-yet-sealed row (fresh appends of this step, plus
        // any rows rebuilt after an invalidation).
        let blocks = ctx.cache.num_blocks();
        if self.seals.len() < blocks {
            self.seals.resize_with(blocks, BlockSeals::default);
        }
        for (b, seals) in self.seals.iter_mut().enumerate() {
            let blk = ctx.cache.block(b);
            for pos in seals.k.len()..blk.k.rows() {
                seals.k.push(crc64_f32s(blk.k.row(pos)));
            }
            for pos in seals.v.len()..blk.v.rows() {
                seals.v.push(crc64_f32s(blk.v.row(pos)));
            }
        }
    }

    fn on_repair(&mut self, ctx: &mut StateCtx<'_>) -> StateReport {
        self.verify(ctx)
    }

    fn on_cache_truncated(&mut self, len: usize) {
        for seals in &mut self.seals {
            seals.k.truncate(len);
            seals.v.truncate(len);
        }
    }
}

/// Integrity-layer configuration attached to a protection scheme.
#[derive(Clone)]
pub struct IntegrityConfig {
    /// Weight tiles the scrubber verifies per generation step (0 disables
    /// weight scrubbing).
    pub scrub_tiles_per_step: usize,
    /// Enable the KV-cache CRC guard.
    pub kv_guard: bool,
    /// Golden-checkpoint tile checksums (required when
    /// `scrub_tiles_per_step > 0`).
    pub checksums: Option<Arc<WeightChecksums>>,
}

impl IntegrityConfig {
    /// Integrity layer fully disabled.
    pub fn disabled() -> IntegrityConfig {
        IntegrityConfig {
            scrub_tiles_per_step: 0,
            kv_guard: false,
            checksums: None,
        }
    }

    /// Is any integrity mechanism active?
    pub fn enabled(&self) -> bool {
        self.scrub_tiles_per_step > 0 || self.kv_guard
    }

    /// Suffix appended to the scheme name for reporting/fingerprinting
    /// (empty when disabled).
    pub fn label_suffix(&self) -> String {
        let mut s = String::new();
        if self.scrub_tiles_per_step > 0 {
            s.push_str(&format!("+scrub{}", self.scrub_tiles_per_step));
        }
        if self.kv_guard {
            s.push_str("+kvguard");
        }
        s
    }

    /// Build the state taps this configuration calls for.
    pub fn make_state(&self) -> Vec<Box<dyn StateTap>> {
        let mut taps: Vec<Box<dyn StateTap>> = Vec::new();
        if self.scrub_tiles_per_step > 0 {
            let checksums = self
                .checksums
                .as_ref()
                .expect("scrubbing requires golden checksums")
                .clone();
            taps.push(Box::new(WeightScrubber::new(
                checksums,
                self.scrub_tiles_per_step,
            )));
        }
        if self.kv_guard {
            taps.push(Box::new(KvGuard::new()));
        }
        taps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_model::{KvCache, Model, ModelConfig};
    use ft2_tensor::DType;

    fn ctx_parts() -> (ModelConfig, ModelWeights, ModelWeights) {
        let config = ModelConfig::tiny_opt();
        let golden = ModelWeights::build(&config);
        let live = golden.clone();
        (config, golden, live)
    }

    #[test]
    fn checksums_cover_all_block_linears() {
        let (config, golden, _) = ctx_parts();
        let sums = WeightChecksums::build(&config, &golden);
        // tiny-opt: 2 blocks × (4 × 32×32 + 128×32 + 32×128) elements,
        // tiled at 256 elements each.
        let per_block = 4 * (32 * 32) + 2 * (128 * 32);
        assert_eq!(sums.num_tiles(), 2 * per_block / TILE_ELEMS);
    }

    #[test]
    fn incremental_sweep_covers_the_table_and_repairs_corruption() {
        let (config, golden, mut live) = ctx_parts();
        let sums = WeightChecksums::build(&config, &golden);
        // Corrupt one element in each of two blocks.
        for b in 0..2 {
            let v = live.blocks[b].fc.as_ref().unwrap().0.weight.get_flat(3);
            live.blocks[b].fc.as_mut().unwrap().0.weight.set_flat(3, v - 42.0);
        }
        // Sweep in uneven budgets; the cursor must cover every tile once.
        let mut cursor = 0;
        let mut repaired = 0;
        for budget in [7usize, 64, usize::MAX] {
            let (checked, fixed) = sums.sweep(cursor, budget, &mut live, &golden);
            cursor += checked;
            repaired += fixed;
            if cursor >= sums.num_tiles() {
                break;
            }
        }
        assert_eq!(cursor, sums.num_tiles(), "sweep must cover every tile");
        assert_eq!(repaired, 2, "both corrupted tiles repaired");
        let (checked, fixed) = sums.full_sweep(&mut live, &golden);
        assert_eq!(checked, sums.num_tiles());
        assert_eq!(fixed, 0, "second sweep finds a clean model");
        // Past-the-end sweeps are empty, not panics.
        assert_eq!(sums.sweep(sums.num_tiles(), 10, &mut live, &golden), (0, 0));
    }

    #[test]
    fn scrubber_detects_and_repairs_a_flipped_weight() {
        let (config, golden, mut live) = ctx_parts();
        let sums = Arc::new(WeightChecksums::build(&config, &golden));
        // Corrupt one element of block 1's FC1.
        let original = live.blocks[1].fc.as_ref().unwrap().0.weight.get_flat(7);
        live.blocks[1]
            .fc
            .as_mut()
            .unwrap()
            .0
            .weight
            .set_flat(7, original + 1000.0);
        let mut scrubber = WeightScrubber::new(sums.clone(), sums.num_tiles());
        let mut cache = KvCache::new(&config);
        let mut ctx = StateCtx {
            step: 1,
            prompt_len: 4,
            weights: &mut live,
            cache: &mut cache,
            golden: &golden,
            dtype: DType::F16,
        };
        let rep = scrubber.on_step_state(&mut ctx);
        assert_eq!(rep.scrubbed_tiles as usize, sums.num_tiles());
        assert_eq!(rep.weight_repairs, 1);
        assert_eq!(
            live.blocks[1].fc.as_ref().unwrap().0.weight.get_flat(7),
            original
        );
    }

    #[test]
    fn scrubber_amortises_across_steps() {
        let (config, golden, mut live) = ctx_parts();
        let sums = Arc::new(WeightChecksums::build(&config, &golden));
        let total = sums.num_tiles();
        let mut scrubber = WeightScrubber::new(sums, 3);
        let mut cache = KvCache::new(&config);
        let mut scrubbed = 0u64;
        for step in 0..total {
            let mut ctx = StateCtx {
                step,
                prompt_len: 4,
                weights: &mut live,
                cache: &mut cache,
                golden: &golden,
                dtype: DType::F16,
            };
            scrubbed += scrubber.on_step_state(&mut ctx).scrubbed_tiles;
        }
        assert_eq!(scrubbed as usize, 3 * total);
    }

    #[test]
    fn kv_guard_flags_earliest_poisoned_position() {
        let config = ModelConfig::tiny_opt();
        let model = Model::new(config.clone());
        let golden = ModelWeights::build(&config);
        let mut live = golden.clone();
        let mut cache = KvCache::new(&config);
        // Fill the cache via a real prefill.
        let mut taps = ft2_model::TapList::new();
        let _ = model.forward_step(&[1, 2, 3, 4, 5], 0, 0, &mut cache, &mut taps);
        let mut guard = KvGuard::new();
        let mut ctx = StateCtx {
            step: 1,
            prompt_len: 5,
            weights: &mut live,
            cache: &mut cache,
            golden: &golden,
            dtype: DType::F16,
        };
        guard.on_step_end(&mut ctx);
        // Clean verify.
        assert_eq!(guard.on_step_state(&mut ctx).kv_invalid_from, None);
        // Corrupt position 3 of block 1's V and position 1 of block 0's K.
        ctx.cache.block_mut(1).v.set_flat(3 * config.hidden + 2, 42.0);
        ctx.cache.block_mut(0).k.set_flat(config.hidden + 5, -9.0);
        let rep = guard.on_step_state(&mut ctx);
        assert_eq!(rep.kv_invalid_from, Some(1));
        // Invalidate + reseal: truncate to 1, seals follow.
        ctx.cache.truncate(1);
        guard.on_cache_truncated(1);
        let _ = model.forward_step(&[2, 3, 4, 5], 1, 0, &mut cache, &mut taps);
        let mut ctx = StateCtx {
            step: 1,
            prompt_len: 5,
            weights: &mut live,
            cache: &mut cache,
            golden: &golden,
            dtype: DType::F16,
        };
        guard.on_step_end(&mut ctx);
        assert_eq!(guard.on_step_state(&mut ctx).kv_invalid_from, None);
    }

    #[test]
    fn integrity_config_builds_requested_taps() {
        let (config, golden, _) = ctx_parts();
        let sums = Arc::new(WeightChecksums::build(&config, &golden));
        assert!(IntegrityConfig::disabled().make_state().is_empty());
        assert!(!IntegrityConfig::disabled().enabled());
        let both = IntegrityConfig {
            scrub_tiles_per_step: 8,
            kv_guard: true,
            checksums: Some(sums),
        };
        assert_eq!(both.make_state().len(), 2);
        assert_eq!(both.label_suffix(), "+scrub8+kvguard");
        let kv_only = IntegrityConfig {
            scrub_tiles_per_step: 0,
            kv_guard: true,
            checksums: None,
        };
        assert_eq!(kv_only.make_state().len(), 1);
        assert_eq!(kv_only.label_suffix(), "+kvguard");
    }
}
