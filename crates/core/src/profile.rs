//! Offline bound profiling (§3.2) — what the baselines require and FT2
//! eliminates.
//!
//! The store returned here feeds `Protector::offline`. Profiling runs the
//! model over a profiling split (the paper uses 20% of the training set)
//! and records the min/max of every linear and activation output. The
//! wall-clock cost of this pass at paper scale is what Fig. 4 quantifies;
//! `ft2-hw` estimates it from FLOP counts.

use crate::bounds::BoundsStore;
use ft2_model::{HookKind, LayerTap, Model, TapCtx, TapList, TapPoint};
use ft2_parallel::WorkStealingPool;
use ft2_tensor::Matrix;

/// A tap that accumulates min/max per tap point. Activation-output hooks
/// are stored under a synthetic point so Ranger-style coverage can use
/// them; we keep them in a second store keyed identically but maintained
/// separately.
struct MinMaxTap {
    linear: BoundsStore,
    activations: BoundsStore,
}

impl LayerTap for MinMaxTap {
    fn on_output(&mut self, ctx: &TapCtx, data: &mut Matrix) {
        match ctx.hook {
            HookKind::LinearOutput => self.linear.observe_all(ctx.point, data.as_slice()),
            HookKind::ActivationOutput => {
                self.activations.observe_all(ctx.point, data.as_slice())
            }
        }
    }
}

/// The result of an offline profiling pass.
#[derive(Clone, Debug, Default)]
pub struct OfflineBounds {
    /// Bounds of linear-layer outputs.
    pub linear: BoundsStore,
    /// Bounds of MLP activation outputs (keyed by the preceding linear's
    /// tap point).
    pub activations: BoundsStore,
    /// Number of profiling generations performed.
    pub inputs_profiled: usize,
    /// Bounds replaced by the static architectural prior because they
    /// failed the integrity check (non-finite, inverted, or implausibly
    /// large — a poisoned profiling pass).
    pub bounds_repaired: usize,
}

impl OfflineBounds {
    /// Bounds for a point under a given hook kind.
    pub fn store_for(&self, hook: HookKind) -> &BoundsStore {
        match hook {
            HookKind::LinearOutput => &self.linear,
            HookKind::ActivationOutput => &self.activations,
        }
    }
}

/// Profile bounds by running full generations over `prompts` (parallel over
/// prompts, merged at the end — min/max merging is exact).
pub fn offline_profile(
    model: &Model,
    prompts: &[Vec<u32>],
    gen_tokens: usize,
    pool: &WorkStealingPool,
) -> OfflineBounds {
    let partials: Vec<(BoundsStore, BoundsStore)> = pool.map(prompts, 1, |_, prompt| {
        let mut tap = MinMaxTap {
            linear: BoundsStore::new(),
            activations: BoundsStore::new(),
        };
        {
            let mut taps = TapList::new();
            taps.push(&mut tap);
            let _ = model.generate(prompt, gen_tokens, &mut taps);
        }
        (tap.linear, tap.activations)
    });
    let mut out = OfflineBounds {
        inputs_profiled: prompts.len(),
        ..Default::default()
    };
    for (lin, act) in &partials {
        out.linear.merge(lin);
        out.activations.merge(act);
    }
    // Same integrity net as the online first-token pass: a fault (or Inf
    // overflow) during profiling must not yield a bound that disables the
    // range check for every later campaign trial.
    out.bounds_repaired = out.linear.enforce_integrity() + out.activations.enforce_integrity();
    out
}

/// Convenience: profile and return only linear-output bounds for the given
/// points (test helper and Fig. 3 driver).
pub fn profile_linear_bounds(
    model: &Model,
    prompts: &[Vec<u32>],
    gen_tokens: usize,
    pool: &WorkStealingPool,
) -> BoundsStore {
    offline_profile(model, prompts, gen_tokens, pool).linear
}

/// Sanity description of a profiled store (layer count and a couple of
/// example points), used in reports.
pub fn describe(store: &BoundsStore) -> String {
    let mut points: Vec<&TapPoint> = store.iter().map(|(p, _)| p).collect();
    points.sort();
    let mut s = format!("{} layers, {} B", store.len(), store.memory_bytes());
    if let Some(p) = points.first() {
        let b = store.get(p).unwrap();
        s.push_str(&format!(
            "; e.g. block {} {}: [{:.3}, {:.3}]",
            p.block,
            p.layer.name(),
            b.lo,
            b.hi
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft2_model::ModelConfig;

    #[test]
    fn profiling_covers_every_block_linear() {
        let config = ModelConfig::tiny_opt();
        let n_points = config.total_block_linears();
        let model = Model::new(config);
        let pool = WorkStealingPool::new(2);
        let prompts = vec![vec![1u32, 2, 3, 4], vec![9, 8, 7]];
        let bounds = offline_profile(&model, &prompts, 6, &pool);
        assert_eq!(bounds.linear.len(), n_points);
        assert_eq!(bounds.inputs_profiled, 2);
        // A clean profiling run never trips the integrity guard.
        assert_eq!(bounds.bounds_repaired, 0);
        // OPT has one activation point per block (post-ReLU on FC1).
        assert_eq!(bounds.activations.len(), 2);
        // Every recorded bound is initialised and finite.
        for (_, b) in bounds.linear.iter() {
            assert!(b.is_initialised());
            assert!(b.lo.is_finite() && b.hi.is_finite());
            assert!(b.lo <= b.hi);
        }
    }

    #[test]
    fn more_prompts_never_shrink_bounds() {
        let model = Model::new(ModelConfig::tiny_llama());
        let pool = WorkStealingPool::new(2);
        let small = vec![vec![1u32, 2, 3]];
        let big = vec![vec![1u32, 2, 3], vec![50, 60, 70, 80], vec![5, 15, 25]];
        let b_small = profile_linear_bounds(&model, &small, 5, &pool);
        let b_big = profile_linear_bounds(&model, &big, 5, &pool);
        for (p, bs) in b_small.iter() {
            let bb = b_big.get(p).unwrap();
            assert!(bb.lo <= bs.lo + 1e-6);
            assert!(bb.hi >= bs.hi - 1e-6);
        }
    }

    #[test]
    fn profiling_is_deterministic() {
        let model = Model::new(ModelConfig::tiny_opt());
        let pool = WorkStealingPool::new(3);
        let prompts = vec![vec![4u32, 5, 6, 7]];
        let a = profile_linear_bounds(&model, &prompts, 4, &pool);
        let b = profile_linear_bounds(&model, &prompts, 4, &pool);
        for (p, ba) in a.iter() {
            let bb = b.get(p).unwrap();
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn describe_is_humane() {
        let model = Model::new(ModelConfig::tiny_opt());
        let pool = WorkStealingPool::new(1);
        let bounds = profile_linear_bounds(&model, &[vec![1, 2, 3]], 3, &pool);
        let d = describe(&bounds);
        assert!(d.contains("layers"));
        assert!(d.contains("block"));
    }
}
