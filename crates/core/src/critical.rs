//! Critical-layer identification (§4.1).
//!
//! The heuristic (Take-away #5): a layer is critical iff no
//! magnitude-squashing op (scaling or activation) lies on the path from its
//! output to the next linear layer. This reproduces the second column of
//! Table 1 for both architecture families, and the structural analysis
//! costs nothing — no fault injection, no profiling run.

use ft2_model::{ArchGraph, ArchStyle, LayerKind, ModelConfig};

/// Is `kind` critical under the heuristic, for the given architecture?
pub fn is_critical(style: ArchStyle, kind: LayerKind) -> Option<bool> {
    let graph = ArchGraph::for_style(style);
    graph
        .path_after(kind)
        .map(|ops| !ops.iter().any(|op| op.squashes_magnitude()))
}

/// The critical layers of an architecture, in block execution order.
pub fn critical_layers(style: ArchStyle) -> Vec<LayerKind> {
    let graph = ArchGraph::for_style(style);
    graph
        .layers()
        .filter(|(_, ops)| !ops.iter().any(|op| op.squashes_magnitude()))
        .map(|(k, _)| k)
        .collect()
}

/// A full criticality report for a model, for Table 1 style output.
#[derive(Clone, Debug)]
pub struct CriticalityReport {
    /// `(layer, is_critical)` in block execution order.
    pub layers: Vec<(LayerKind, bool)>,
    /// The architecture analysed.
    pub style: ArchStyle,
}

impl CriticalityReport {
    /// Analyse a model configuration.
    pub fn analyse(config: &ModelConfig) -> CriticalityReport {
        let graph = ArchGraph::for_config(config);
        let layers = graph
            .layers()
            .map(|(k, ops)| (k, !ops.iter().any(|op| op.squashes_magnitude())))
            .collect();
        CriticalityReport {
            layers,
            style: config.style,
        }
    }

    /// Just the critical layer kinds.
    pub fn critical(&self) -> Vec<LayerKind> {
        self.layers
            .iter()
            .filter(|(_, c)| *c)
            .map(|(k, _)| *k)
            .collect()
    }

    /// Table 1 ground truth for the nine layer kinds (Y/N column).
    /// `None` for kinds absent from the analysed architecture.
    pub fn table1_expectation(kind: LayerKind) -> bool {
        use LayerKind::*;
        match kind {
            KProj | QProj | Fc1 | GateProj => false,
            VProj | OutProj | Fc2 | UpProj | DownProj => true,
        }
    }

    /// Does this report agree with Table 1 on every layer it contains?
    pub fn matches_table1(&self) -> bool {
        self.layers
            .iter()
            .all(|(k, c)| *c == Self::table1_expectation(*k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_critical_set_matches_table1() {
        let crit = critical_layers(ArchStyle::OptStyle);
        assert_eq!(
            crit,
            vec![LayerKind::VProj, LayerKind::OutProj, LayerKind::Fc2]
        );
    }

    #[test]
    fn llama_critical_set_matches_table1() {
        let crit = critical_layers(ArchStyle::LlamaStyle);
        assert_eq!(
            crit,
            vec![
                LayerKind::VProj,
                LayerKind::OutProj,
                LayerKind::UpProj,
                LayerKind::DownProj
            ]
        );
    }

    #[test]
    fn non_critical_layers_are_correct() {
        assert_eq!(is_critical(ArchStyle::OptStyle, LayerKind::KProj), Some(false));
        assert_eq!(is_critical(ArchStyle::OptStyle, LayerKind::QProj), Some(false));
        assert_eq!(is_critical(ArchStyle::OptStyle, LayerKind::Fc1), Some(false));
        assert_eq!(
            is_critical(ArchStyle::LlamaStyle, LayerKind::GateProj),
            Some(false)
        );
        // UP_PROJ is the subtle one: followed only by an elementwise mul.
        assert_eq!(
            is_critical(ArchStyle::LlamaStyle, LayerKind::UpProj),
            Some(true)
        );
        // Absent layers yield None.
        assert_eq!(is_critical(ArchStyle::OptStyle, LayerKind::UpProj), None);
        assert_eq!(is_critical(ArchStyle::LlamaStyle, LayerKind::Fc1), None);
    }

    #[test]
    fn reports_match_table1_for_both_families() {
        for config in [
            ft2_model::ModelConfig::tiny_opt(),
            ft2_model::ModelConfig::tiny_llama(),
        ] {
            let report = CriticalityReport::analyse(&config);
            assert!(report.matches_table1(), "mismatch for {}", config.name);
        }
    }

    #[test]
    fn all_zoo_models_match_table1() {
        for spec in ft2_model::model_zoo() {
            let report = CriticalityReport::analyse(&spec.config);
            assert!(report.matches_table1(), "mismatch for {}", spec.name());
        }
    }
}
