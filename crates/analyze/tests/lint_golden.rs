//! Fixture golden tests: every lint class fires on the seeded-violation
//! tree (`fixtures/bad_tree`) and stays silent on the annotated twin
//! (`fixtures/good_tree`). One violation per class is seeded, so the
//! per-class counts are exact, not lower bounds.

use ft2_analyze::{analyze, run_lints, LintConfig, LintKind, RankedLock};
use std::path::PathBuf;

fn fixture_config(name: &str) -> LintConfig {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    LintConfig {
        readme: Some(root.join("README.md")),
        root,
        // FT2_SEED is the one registered knob in fixture world; both
        // fixture READMEs document it.
        knobs: vec!["FT2_SEED".to_string()],
        nan_modules: vec!["crates/core/src/bounds.rs".to_string()],
        zero_skip_modules: vec!["crates/tensor/src/".to_string()],
        check_knob_used: false,
        // Fixture lock registry: sync.rs acquires a_lock / b_lock.
        locks: vec![
            RankedLock {
                name: "a_lock".to_string(),
                rank: 1,
                site: "crates/core/src/sync.rs".to_string(),
            },
            RankedLock {
                name: "b_lock".to_string(),
                rank: 2,
                site: "crates/core/src/sync.rs".to_string(),
            },
        ],
        det_modules: vec!["crates/core/src/".to_string()],
        // The fixture trees have no serving topology to prove.
        check_shutdown: false,
    }
}

#[test]
fn every_lint_class_fires_on_the_seeded_tree() {
    let report = analyze(&fixture_config("bad_tree")).expect("bad_tree scans");
    let findings = &report.findings;
    let count = |k: LintKind| findings.iter().filter(|f| f.lint == k).count();
    assert_eq!(count(LintKind::UnsafeSafety), 1, "findings: {findings:?}");
    assert_eq!(count(LintKind::NanComparison), 1, "findings: {findings:?}");
    assert_eq!(count(LintKind::EnvKnob), 1, "findings: {findings:?}");
    assert_eq!(count(LintKind::ZeroSkip), 1, "findings: {findings:?}");
    assert_eq!(count(LintKind::LockOrder), 1, "findings: {findings:?}");
    assert_eq!(count(LintKind::HoldAcrossBlocking), 1, "findings: {findings:?}");
    assert_eq!(count(LintKind::ThreadLifecycle), 1, "findings: {findings:?}");
    assert_eq!(count(LintKind::PoisonedLock), 1, "findings: {findings:?}");
    assert_eq!(count(LintKind::Nondeterminism), 1, "findings: {findings:?}");
    assert_eq!(findings.len(), 9);

    // Each finding points at the seeded file.
    let file_of = |k: LintKind| {
        findings
            .iter()
            .find(|f| f.lint == k)
            .map(|f| f.file.as_str())
            .unwrap()
    };
    assert_eq!(file_of(LintKind::UnsafeSafety), "src/main.rs");
    assert_eq!(file_of(LintKind::EnvKnob), "src/main.rs");
    assert_eq!(file_of(LintKind::NanComparison), "crates/core/src/bounds.rs");
    assert_eq!(file_of(LintKind::ZeroSkip), "crates/tensor/src/kernel.rs");
    for k in [
        LintKind::LockOrder,
        LintKind::HoldAcrossBlocking,
        LintKind::ThreadLifecycle,
        LintKind::PoisonedLock,
        LintKind::Nondeterminism,
    ] {
        assert_eq!(file_of(k), "crates/core/src/sync.rs");
    }

    // Findings carry 1-based source lines into the seeded files.
    assert!(findings.iter().all(|f| f.line >= 1));

    // The seeded rank inversion appears in the acquisition graph.
    assert!(report
        .concurrency
        .edges
        .iter()
        .any(|e| e.from == "b_lock" && e.to == "a_lock"));
}

#[test]
fn annotated_twin_tree_is_clean() {
    let report = analyze(&fixture_config("good_tree")).expect("good_tree scans");
    assert!(
        report.findings.is_empty(),
        "unexpected findings: {:?}",
        report.findings
    );
    // The correctly-ordered nesting still shows up as a graph edge.
    assert!(report
        .concurrency
        .edges
        .iter()
        .any(|e| e.from == "a_lock" && e.to == "b_lock"));
    assert_eq!(report.concurrency.cycles, 0);
    // Shutdown proof is vacuously ok when unchecked — and says so.
    assert!(report.concurrency.shutdown.ok());
    assert!(!report.concurrency.shutdown.checked);
    let json = report.concurrency.to_json();
    for key in ["\"lock_cycles\": 0", "\"shutdown_checked\": false"] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn undocumented_registered_knob_is_a_workspace_finding() {
    // Same tree, but the registry claims a knob the fixture README does
    // not document (name assembled at runtime so this test's own source
    // does not trip the env-knob lint).
    let mut cfg = fixture_config("good_tree");
    cfg.knobs.push(format!("FT2_{}", "UNDOCUMENTED"));
    let findings = run_lints(&cfg).expect("good_tree scans");
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].lint, LintKind::EnvKnob);
    assert_eq!(findings[0].file, "README.md");
    assert_eq!(findings[0].line, 0, "workspace-level findings use line 0");
    assert!(findings[0].message.contains("not documented in README"));
}
