//! Fixture golden tests: every lint class fires on the seeded-violation
//! tree (`fixtures/bad_tree`) and stays silent on the annotated twin
//! (`fixtures/good_tree`). One violation per class is seeded, so the
//! per-class counts are exact, not lower bounds.

use ft2_analyze::{run_lints, LintConfig, LintKind};
use std::path::PathBuf;

fn fixture_config(name: &str) -> LintConfig {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    LintConfig {
        readme: Some(root.join("README.md")),
        root,
        // FT2_SEED is the one registered knob in fixture world; both
        // fixture READMEs document it.
        knobs: vec!["FT2_SEED".to_string()],
        nan_modules: vec!["crates/core/src/bounds.rs".to_string()],
        zero_skip_modules: vec!["crates/tensor/src/".to_string()],
        check_knob_used: false,
    }
}

#[test]
fn every_lint_class_fires_on_the_seeded_tree() {
    let findings = run_lints(&fixture_config("bad_tree")).expect("bad_tree scans");
    let count = |k: LintKind| findings.iter().filter(|f| f.lint == k).count();
    assert_eq!(count(LintKind::UnsafeSafety), 1, "findings: {findings:?}");
    assert_eq!(count(LintKind::NanComparison), 1, "findings: {findings:?}");
    assert_eq!(count(LintKind::EnvKnob), 1, "findings: {findings:?}");
    assert_eq!(count(LintKind::ZeroSkip), 1, "findings: {findings:?}");
    assert_eq!(findings.len(), 4);

    // Each finding points at the seeded file.
    let file_of = |k: LintKind| {
        findings
            .iter()
            .find(|f| f.lint == k)
            .map(|f| f.file.as_str())
            .unwrap()
    };
    assert_eq!(file_of(LintKind::UnsafeSafety), "src/main.rs");
    assert_eq!(file_of(LintKind::EnvKnob), "src/main.rs");
    assert_eq!(file_of(LintKind::NanComparison), "crates/core/src/bounds.rs");
    assert_eq!(file_of(LintKind::ZeroSkip), "crates/tensor/src/kernel.rs");

    // Findings carry 1-based source lines into the seeded files.
    assert!(findings.iter().all(|f| f.line >= 1));
}

#[test]
fn annotated_twin_tree_is_clean() {
    let findings = run_lints(&fixture_config("good_tree")).expect("good_tree scans");
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn undocumented_registered_knob_is_a_workspace_finding() {
    // Same tree, but the registry claims a knob the fixture README does
    // not document (name assembled at runtime so this test's own source
    // does not trip the env-knob lint).
    let mut cfg = fixture_config("good_tree");
    cfg.knobs.push(format!("FT2_{}", "UNDOCUMENTED"));
    let findings = run_lints(&cfg).expect("good_tree scans");
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].lint, LintKind::EnvKnob);
    assert_eq!(findings[0].file, "README.md");
    assert_eq!(findings[0].line, 0, "workspace-level findings use line 0");
    assert!(findings[0].message.contains("not documented in README"));
}
