//! Snapshot test of the protection-coverage proof across all seven zoo
//! configs. The report is fully deterministic (static model configs, the
//! analytic cost model, no wall-clock anywhere), so an exact string
//! comparison is safe — any drift in criticality classification, probe
//! counts, outcome pricing, or checkpoint handling shows up as a diff.

use ft2_analyze::analyse_coverage;

const SNAPSHOT: &str = include_str!("snapshots/coverage.txt");

#[test]
fn coverage_report_matches_snapshot() {
    let actual = analyse_coverage().render_text();
    assert_eq!(
        actual, SNAPSHOT,
        "coverage report drifted from tests/snapshots/coverage.txt; \
         if the change is intentional, regenerate the snapshot from the \
         coverage section of `ft2-repro lint` output"
    );
}

#[test]
fn snapshot_covers_all_seven_models_and_proves_coverage() {
    // Guard the snapshot itself: it must describe the full zoo and a
    // gap-free proof, so a blessed-but-broken snapshot cannot pass.
    assert!(SNAPSHOT.contains("7 models"));
    for model in [
        "OPT-6.7B", "OPT-2.7B", "GPTJ-6B", "Llama2-7B", "Vicuna-7B", "Qwen2-7B", "Qwen2-1.5B",
    ] {
        assert!(SNAPSHOT.contains(model), "snapshot missing {model}");
    }
    assert!(!SNAPSHOT.contains("gaps 1"), "snapshot has a coverage gap");
    assert!(SNAPSHOT.contains("checkpoint versions: current"));
}
