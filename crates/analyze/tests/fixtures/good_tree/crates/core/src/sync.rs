//! The annotated twin of `bad_tree`'s sync.rs: the same shapes, each made
//! clean either structurally (correct rank order, joined thread, ordered
//! map) or through the documented annotation grammar.

pub struct Shared {
    pub a_lock: std::sync::Mutex<u32>,
    pub b_lock: std::sync::Mutex<u32>,
}

// Correct rank order: a_lock (rank 1) before b_lock (rank 2).
pub fn good_order(s: &Shared) -> u32 {
    let a = lock_clean(&s.a_lock);
    let b = lock_clean(&s.b_lock);
    *a + *b
}

// ft2: blocking-ok (the receiver is pre-filled before this is called, so
// the recv cannot park while the guard is held)
pub fn good_hold(s: &Shared, rx: &std::sync::mpsc::Receiver<u32>) -> u32 {
    let g = lock_clean(&s.a_lock);
    let v = rx.recv().unwrap_or(0);
    *g + v
}

pub fn good_spawn() {
    // ft2: detached (fixture stand-in for a fire-and-forget logger)
    std::thread::spawn(|| {});
}

// ft2: poison-fatal (fixture stand-in for a lock whose state cannot be
// re-validated after a holder panicked)
pub fn good_poison(s: &Shared) -> u32 {
    *s.a_lock.lock().unwrap()
}

pub fn good_nondet() -> usize {
    let m: std::collections::BTreeMap<u32, u32> = Default::default();
    m.len()
}

fn lock_clean<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
