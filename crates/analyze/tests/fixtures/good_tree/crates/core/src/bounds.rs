// Annotated twin of bad_tree/crates/core/src/bounds.rs.

pub fn clamp(v: f32, lo: f32, hi: f32) -> f32 {
    // ft2: nan-ok (NaN maps to `hi` — min/max keep the non-NaN operand)
    v.min(hi).max(lo)
}
