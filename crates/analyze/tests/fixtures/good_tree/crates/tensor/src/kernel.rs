// Annotated twin of bad_tree/crates/tensor/src/kernel.rs: the zero-skip
// guard is gated on the explicitly-unfaithful fast kernel policy.

pub fn dot_skipping_zeros(a: &[f32], b: &[f32], policy: KernelPolicy) -> f32 {
    let mut s = 0.0;
    for i in 0..a.len() {
        if policy == KernelPolicy::Fast && a[i] == 0.0 {
            continue;
        }
        s += a[i] * b[i];
    }
    s
}
