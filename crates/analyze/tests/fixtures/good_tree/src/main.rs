// Annotated twin of bad_tree/src/main.rs: the unsafe block carries its
// invariant and the knob literal names a registered knob.

fn main() {
    let _ = std::env::var("FT2_SEED");
    let p = &0u8 as *const u8;
    // SAFETY: `p` points at a live stack temporary of type u8.
    let _v = unsafe { *p };
}
