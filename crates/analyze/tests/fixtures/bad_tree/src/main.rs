// Seeded violations: an `unsafe` block with no SAFETY comment, and a
// string literal naming an env knob that is not in the central registry.

fn main() {
    let _ = std::env::var("FT2_UNREGISTERED_KNOB");
    let p = &0u8 as *const u8;
    let _v = unsafe { *p };
}
