// Seeded violation: a zero-skip sparsity guard in kernel code that is not
// gated on `KernelPolicy::Fast` — it would mask a NaN/Inf in `b`.

pub fn dot_skipping_zeros(a: &[f32], b: &[f32]) -> f32 {
    let mut s = 0.0;
    for i in 0..a.len() {
        if a[i] == 0.0 {
            continue;
        }
        s += a[i] * b[i];
    }
    s
}
