//! Seeded concurrency violations: exactly one per concurrency lint class
//! (lock-order, hold-across-blocking, thread-lifecycle, poisoned-lock,
//! nondeterminism). The golden test asserts the exact counts.

pub struct Shared {
    pub a_lock: std::sync::Mutex<u32>,
    pub b_lock: std::sync::Mutex<u32>,
}

// lock-order: b_lock (rank 2) held while acquiring a_lock (rank 1).
pub fn bad_order(s: &Shared) -> u32 {
    let b = lock_clean(&s.b_lock);
    let a = lock_clean(&s.a_lock);
    *a + *b
}

// hold-across-blocking: guard live across a channel recv.
pub fn bad_hold(s: &Shared, rx: &std::sync::mpsc::Receiver<u32>) -> u32 {
    let g = lock_clean(&s.a_lock);
    let v = rx.recv().unwrap_or(0);
    *g + v
}

// thread-lifecycle: spawned thread never joined, not marked detached.
pub fn bad_spawn() {
    std::thread::spawn(|| {});
}

// poisoned-lock: unwrap aborts the runtime once any holder panicked.
pub fn bad_poison(s: &Shared) -> u32 {
    *s.a_lock.lock().unwrap()
}

// nondeterminism: unordered map iteration in a bit-identity module.
pub fn bad_nondet() -> usize {
    let m: std::collections::HashMap<u32, u32> = Default::default();
    m.len()
}

fn lock_clean<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
