// Seeded violation: a NaN-swallowing min/max chain in a detection-critical
// module path, with no `ft2: nan-ok` audit annotation.

pub fn clamp(v: f32, lo: f32, hi: f32) -> f32 {
    v.min(hi).max(lo)
}
