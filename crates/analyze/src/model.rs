//! A lightweight item/expression model over the channel-split lexer.
//!
//! The concurrency lints ([`crate::concurrency`]) need slightly more than
//! per-line channels: which lock an expression acquires, how long the
//! resulting guard lives, and which lines spawn or join threads. This
//! module extracts exactly that — nothing more — from the
//! [`crate::lexer`] code channel:
//!
//! * **Acquisitions.** `lock_clean(&path.to.lock)` and `path.to.lock
//!   .lock()` both acquire the lock named by the *last field segment* of
//!   the receiver with index brackets removed (`lock_clean(&self.state
//!   .queues[slot])` acquires `queues`). That field name is the key into
//!   the central `ft2_parallel::LOCK_REGISTRY`.
//! * **Guard scopes.** A `let [mut] name = …` acquisition produces a
//!   *named* guard that stays live until its enclosing brace block closes,
//!   an explicit `drop(name)` at the binding depth, or the end of file.
//!   Any other acquisition is a *temporary* live only on its own line.
//!   This is a deliberate line-granular approximation: pre-2024 temporary
//!   scopes in `if let` scrutinees extend to the end of the statement, so
//!   the model under-approximates liveness there — acceptable because the
//!   lint's job is ordering between *held* guards, and every multi-lock
//!   region in this workspace uses named guards.
//! * **Threads.** `thread::spawn(` — or a `.spawn(` with a
//!   `thread::Builder` within the preceding three lines — is a spawn
//!   site; scoped `s.spawn(…)` inside `std::thread::scope` is excluded
//!   (the scope joins structurally).
//!
//! The model is shared by every concurrency lint so the tree is scanned
//! once per [`crate::analyze`] run.

use crate::lexer::{scan, ScannedFile};
use crate::lints::collect_rs_files;
use std::path::Path;

/// One scanned source file with its root-relative path.
pub struct SourceFile {
    /// `/`-separated path relative to the analysis root.
    pub rel: String,
    /// The channel-split lines.
    pub scanned: ScannedFile,
}

/// Every `.rs` file under the analysis root, scanned once.
pub struct ScannedTree {
    /// Files in deterministic (sorted-path) order.
    pub files: Vec<SourceFile>,
}

/// Scan every `.rs` file under `root`. `Err` is reserved for environment
/// problems (unreadable root / file).
pub fn scan_tree(root: &Path) -> Result<ScannedTree, String> {
    if !root.is_dir() {
        return Err(format!("lint root {} is not a directory", root.display()));
    }
    let paths = collect_rs_files(root);
    if paths.is_empty() {
        return Err(format!("no .rs files under {}", root.display()));
    }
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        files.push(SourceFile {
            rel: crate::lints::rel_path(root, &path),
            scanned: scan(&src),
        });
    }
    Ok(ScannedTree { files })
}

/// One lock acquisition extracted from a line of code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Acquisition {
    /// Field name of the acquired lock (`queues`, `state`, …).
    pub lock: String,
    /// Guard binding name for `let [mut] name = …` acquisitions; `None`
    /// for temporaries that die on their own line.
    pub guard: Option<String>,
}

/// Extract every lock acquisition on one line of the code channel.
pub fn acquisitions_on(code: &str) -> Vec<Acquisition> {
    let mut out = Vec::new();
    let guard = binding_name(code);
    // `lock_clean(&<expr>)` — the canonical acquisition form.
    let mut from = 0;
    while let Some(pos) = code[from..].find("lock_clean(") {
        let start = from + pos;
        // Reject `.lock_clean(`-style method calls and longer identifiers.
        let pre_ok = start == 0 || !is_ident_byte(code.as_bytes()[start - 1]);
        let args_at = start + "lock_clean(".len();
        if pre_ok {
            if let Some(arg) = balanced_argument(&code[args_at..]) {
                if let Some(name) = last_field_segment(arg) {
                    out.push(Acquisition {
                        lock: name,
                        guard: guard.clone(),
                    });
                }
            }
        }
        from = args_at;
    }
    // Raw `<receiver>.lock()` — still modelled so un-migrated call sites
    // participate in the ordering graph (the poisoned-lock lint flags the
    // `.unwrap()`/`.expect(` separately).
    let mut from = 0;
    while let Some(pos) = code[from..].find(".lock()") {
        let start = from + pos;
        if let Some(name) = receiver_field(&code[..start]) {
            out.push(Acquisition {
                lock: name,
                guard: guard.clone(),
            });
        }
        from = start + ".lock()".len();
    }
    out
}

/// `let [mut] name =` / `let [mut] name:` binding name of a line, if the
/// pattern is a plain identifier (destructuring and `if let` bind
/// temporaries as far as the guard model is concerned).
pub fn binding_name(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    let after = rest[end..].trim_start();
    if after.starts_with('=') || after.starts_with(':') {
        Some(rest[..end].to_string())
    } else {
        None
    }
}

/// The expression up to the matching close paren (argument of a call).
fn balanced_argument(s: &str) -> Option<&str> {
    let mut depth = 0usize;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' if depth == 0 => return Some(&s[..i]),
            b')' | b']' => depth -= 1,
            b',' if depth == 0 => return Some(&s[..i]),
            _ => {}
        }
    }
    None
}

/// Last field segment of a lock expression: strip `&`/`mut`, drop index
/// brackets, take the final `.`-separated identifier.
/// `&self.state.queues[slot]` → `queues`; `&b.partial` → `partial`.
fn last_field_segment(expr: &str) -> Option<String> {
    let e = expr.trim().trim_start_matches('&').trim_start();
    let e = e.strip_prefix("mut ").unwrap_or(e);
    let mut cleaned = String::with_capacity(e.len());
    let mut depth = 0usize;
    for c in e.chars() {
        match c {
            '[' | '(' => depth += 1,
            ']' | ')' => depth = depth.saturating_sub(1),
            c if depth == 0 => cleaned.push(c),
            _ => {}
        }
    }
    let last = cleaned.rsplit('.').next()?.trim();
    let ident: String = last
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(ident)
    }
}

/// Receiver field of a `<receiver>.lock()` call: walk the receiver
/// backwards from the `.lock()` and reuse the field-segment rule.
fn receiver_field(before: &str) -> Option<String> {
    let bytes = before.as_bytes();
    let mut i = before.len();
    let mut depth = 0usize;
    while i > 0 {
        let b = bytes[i - 1];
        match b {
            b']' | b')' => depth += 1,
            b'[' | b'(' if depth > 0 => depth -= 1,
            b'[' | b'(' => break,
            b'.' | b':' | b'&' if depth == 0 => {
                i -= 1;
                continue;
            }
            _ if depth == 0 && !is_ident_byte(b) => break,
            _ => {}
        }
        i -= 1;
    }
    last_field_segment(&before[i..])
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Net brace-depth delta of one line of the code channel.
pub fn depth_delta(code: &str) -> i32 {
    let mut d = 0i32;
    for b in code.bytes() {
        match b {
            b'{' => d += 1,
            b'}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Is this line a thread-spawn site? `thread::spawn(` always is; a bare
/// `.spawn(` only when a `thread::Builder` appears within the previous
/// `lookback` lines (scoped `s.spawn` has none and is structurally
/// joined).
pub fn is_spawn_line(lines: &[crate::lexer::Line], i: usize, lookback: usize) -> bool {
    let code = &lines[i].code;
    if code.contains("thread::spawn(") {
        return true;
    }
    if !code.contains(".spawn(") {
        return false;
    }
    let lo = i.saturating_sub(lookback);
    lines[lo..=i].iter().any(|l| l.code.contains("Builder"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    #[test]
    fn acquisition_names_strip_receivers_and_indices() {
        let a = acquisitions_on("let mut g = lock_clean(&self.state.queues[slot]);");
        assert_eq!(
            a,
            vec![Acquisition {
                lock: "queues".into(),
                guard: Some("g".into())
            }]
        );
        let a = acquisitions_on("if let Some(b) = lock_clean(&self.queues[own]).pop_back() {");
        assert_eq!(a[0].lock, "queues");
        assert_eq!(a[0].guard, None, "if-let binds a temporary");
        let a = acquisitions_on("self.bufs.iter().map(|b| lock_clean(&b.partial)).collect();");
        assert_eq!(a[0].lock, "partial");
    }

    #[test]
    fn raw_lock_calls_are_modelled_too() {
        let a = acquisitions_on("let st = shared.state.lock().unwrap();");
        assert_eq!(a[0].lock, "state");
        assert_eq!(a[0].guard.as_deref(), Some("st"));
        let a = acquisitions_on("self.queues[victim].lock().expect(\"q\").pop_front()");
        assert_eq!(a[0].lock, "queues");
    }

    #[test]
    fn binding_names_require_plain_identifiers() {
        assert_eq!(binding_name("let mut st = x;").as_deref(), Some("st"));
        assert_eq!(binding_name("let guards: Vec<G> = y;").as_deref(), Some("guards"));
        assert_eq!(binding_name("if let Some(b) = y {"), None);
        assert_eq!(binding_name("let (a, b) = y;"), None);
        assert_eq!(binding_name("st.completed += 1;"), None);
    }

    #[test]
    fn spawn_detection_excludes_scoped_spawns() {
        let f = scan("std::thread::scope(|s| {\n    s.spawn(move || work());\n});\n");
        assert!(!is_spawn_line(&f.lines, 1, 3));
        let f = scan("let h = std::thread::spawn(move || work());\n");
        assert!(is_spawn_line(&f.lines, 0, 3));
        let f = scan(
            "std::thread::Builder::new()\n    .name(n)\n    .spawn(move || work())\n",
        );
        assert!(is_spawn_line(&f.lines, 2, 3));
    }

    #[test]
    fn depth_delta_counts_braces_in_code_only() {
        let f = scan("fn f() { // {not code}\n}\n");
        assert_eq!(depth_delta(&f.lines[0].code), 1);
        assert_eq!(depth_delta(&f.lines[1].code), -1);
    }
}
