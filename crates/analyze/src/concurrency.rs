//! The five concurrency-soundness lints over the scanned tree.
//!
//! FT2's recovery ladder runs concurrently with serving, so a deadlock, a
//! guard held across a blocking call, a leaked thread, a poison-aborted
//! lock, or silently nondeterministic iteration is itself a DUE the fault
//! injector never prices. These lints make the concurrency invariants
//! CI-enforced theorems over the [`crate::model`] source model:
//!
//! * **lock-order** — every nested lock acquisition is an edge in the
//!   cross-crate lock-acquisition graph; edges must be strictly
//!   rank-increasing per the central `ft2_parallel::LOCK_REGISTRY`
//!   (passed in through [`crate::lints::LintConfig::locks`]), nested
//!   acquisitions of unregistered locks need `// ft2: lock-ok (<why>)`,
//!   and any cycle in the graph is a potential deadlock — not
//!   annotatable away.
//! * **hold-across-blocking** — a live guard across `.recv()`/`.join()`/
//!   socket writes/`thread::sleep` stalls every sibling of that lock;
//!   `Condvar::wait` on the *guard's own* mutex is exempt (it releases
//!   the lock), others need `// ft2: blocking-ok (<why>)` at the
//!   acquisition.
//! * **thread-lifecycle** — every `thread::spawn`/`Builder::spawn` site
//!   must have a `.join()` in the same file (drain/shutdown joins it) or
//!   carry `// ft2: detached (<reason>)`; scoped spawns join
//!   structurally and are exempt.
//! * **poisoned-lock** — `lock().unwrap()`-style sites abort the process
//!   once any batchmate panicked inside the critical section; use
//!   `ft2_parallel::lock_clean`/`wait_clean` or justify with
//!   `// ft2: poison-fatal (<why>)`.
//! * **nondeterminism** — unordered `HashMap`/`HashSet` iteration,
//!   wall-clock (`SystemTime::now`) logic, and unordered float reduction
//!   (`parallel_reduce`) are banned in decode/campaign/replay modules
//!   ([`DETERMINISM_MODULES`]): bit-identity is a detection primitive
//!   here, so iteration order is correctness, not style. `Instant::now`
//!   (monotonic, metrics-only) is allowed. Escape hatch:
//!   `// ft2: det-ok (<why>)`.

use crate::lexer::Line;
use crate::lints::LintConfig;
use crate::model::{acquisitions_on, binding_name, depth_delta, is_spawn_line, ScannedTree};
use crate::report::{json_quote, Finding, LintKind};
use crate::shutdown::{prove_shutdown, ShutdownReport};
use std::fmt::Write as _;

/// Decode/campaign/replay path prefixes where the nondeterminism lint
/// applies: everything whose output feeds token bit-identity, fault
/// classification, or replay.
pub const DETERMINISM_MODULES: &[&str] = &[
    "crates/tensor/src/",
    "crates/model/src/",
    "crates/core/src/",
    "crates/fault/src/",
    "crates/serve/src/",
];

/// Annotation window (lines above, inclusive of the site line) for the
/// `lock-ok` / `blocking-ok` / `poison-fatal` / `det-ok` escapes.
const ANNOTATION_WINDOW: usize = 3;
/// How far below a spawn the `// ft2: detached` annotation may sit.
const DETACHED_WINDOW_AFTER: usize = 1;
/// How many lines back a `thread::Builder` makes a `.spawn(` a thread
/// spawn.
const BUILDER_LOOKBACK: usize = 3;

/// A registered lock with its global acquisition rank (the analyzer-side
/// mirror of one `ft2_parallel::LockSpec` row, kept as owned data so
/// fixture trees can declare their own registries).
#[derive(Clone, Debug)]
pub struct RankedLock {
    /// Lock field name (the key acquisitions resolve to).
    pub name: String,
    /// Acquisition rank; nested acquisitions must strictly increase.
    pub rank: u32,
    /// Defining module, for the report.
    pub site: String,
}

/// One edge of the lock-acquisition graph: `to` acquired while `from` was
/// held, first observed at `file:line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock already held.
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// File of the first observed acquisition.
    pub file: String,
    /// 1-based line of the first observed acquisition.
    pub line: usize,
}

/// The machine-readable half of the concurrency pass: the acquisition
/// graph plus the shutdown proof.
#[derive(Clone, Debug)]
pub struct ConcurrencyReport {
    /// The declared registry (name, rank, site), rank-sorted.
    pub nodes: Vec<RankedLock>,
    /// Observed nested acquisitions, deduplicated by (from, to).
    pub edges: Vec<LockEdge>,
    /// Cycles in the acquisition graph (potential deadlocks).
    pub cycles: usize,
    /// The no-execution shutdown proof.
    pub shutdown: ShutdownReport,
}

impl ConcurrencyReport {
    /// No deadlock potential and the shutdown proof holds.
    pub fn ok(&self) -> bool {
        self.cycles == 0 && self.shutdown.ok()
    }

    /// Human-readable summary (appended to the CLI lint output).
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "lock graph: {} registered lock(s), {} nested-acquisition edge(s), {} cycle(s)",
            self.nodes.len(),
            self.edges.len(),
            self.cycles
        );
        for e in &self.edges {
            let _ = writeln!(s, "  {} -> {}  ({}:{})", e.from, e.to, e.file, e.line);
        }
        s.push_str(&self.shutdown.render_text());
        s
    }

    /// The `"concurrency"` section of the schema-stable JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"lock_nodes\": [");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"name\": {}, \"rank\": {}, \"site\": {}}}",
                json_quote(&n.name),
                n.rank,
                json_quote(&n.site)
            );
        }
        if !self.nodes.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str("  \"lock_edges\": [");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"from\": {}, \"to\": {}, \"file\": {}, \"line\": {}}}",
                json_quote(&e.from),
                json_quote(&e.to),
                json_quote(&e.file),
                e.line
            );
        }
        if !self.edges.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        let _ = writeln!(s, "  \"lock_cycles\": {},", self.cycles);
        s.push_str("  \"shutdown\": ");
        s.push_str(&crate::report::indent_tail(&self.shutdown.to_json(), 2));
        s.push('\n');
        s.push('}');
        s
    }
}

/// A guard currently live while walking a file.
struct LiveGuard {
    lock: String,
    name: String,
    depth: i32,
    /// Acquisition carried `// ft2: blocking-ok`.
    blocking_ok: bool,
}

/// Calls that park the current thread. `Condvar::wait` is handled
/// separately (it releases the waited-on guard's own lock).
const BLOCKING_PATTERNS: &[&str] = &[
    ".recv()",
    ".recv_timeout(",
    ".join()",
    ".write_all(",
    ".flush()",
    ".read_line(",
    ".read_exact(",
    ".read_to_string(",
    "thread::sleep",
    ".accept()",
    "TcpStream::connect",
];

/// `Condvar` wait forms: blocking for every live guard *except* the one
/// being waited on (which the wait releases).
const WAIT_PATTERNS: &[&str] = &[".wait(", ".wait_timeout(", "wait_clean("];

/// Poison-aborting lock/wait forms.
const POISON_PATTERNS: &[&str] = &[
    ".lock().unwrap()",
    ".lock().expect(",
    ".read().unwrap()",
    ".read().expect(",
    ".write().unwrap()",
    ".write().expect(",
];

/// Nondeterminism sources banned in [`DETERMINISM_MODULES`]. Checked as
/// whole words except the call forms.
const NONDET_WORDS: &[&str] = &["HashMap", "HashSet"];
const NONDET_CALLS: &[&str] = &["SystemTime::now", "parallel_reduce("];

/// Run all five lints plus the shutdown proof over the scanned tree.
pub fn run_concurrency(tree: &ScannedTree, cfg: &LintConfig) -> (Vec<Finding>, ConcurrencyReport) {
    let mut findings = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    for file in &tree.files {
        lint_file(file, cfg, &mut findings, &mut edges);
    }
    let cycle_list = cycle_descriptions(&edges);
    let cycles = cycle_list.len();
    for cyc in cycle_list {
        findings.push(Finding {
            lint: LintKind::LockOrder,
            file: cyc.1,
            line: cyc.2,
            message: format!(
                "potential deadlock: lock-acquisition cycle {} — no rank assignment \
                 can order it; restructure so one lock is released first",
                cyc.0
            ),
        });
    }
    let shutdown = prove_shutdown(tree, cfg.check_shutdown, &mut findings);
    let report = ConcurrencyReport {
        nodes: cfg.locks.clone(),
        edges,
        cycles,
        shutdown,
    };
    (findings, report)
}

fn annotated(lines: &[Line], i: usize, needle: &str) -> bool {
    let lo = i.saturating_sub(ANNOTATION_WINDOW);
    lines[lo..=i].iter().any(|l| l.comment.contains(needle))
}

fn rank_of(cfg: &LintConfig, name: &str) -> Option<u32> {
    cfg.locks.iter().find(|l| l.name == name).map(|l| l.rank)
}

fn lint_file(
    file: &crate::model::SourceFile,
    cfg: &LintConfig,
    findings: &mut Vec<Finding>,
    edges: &mut Vec<LockEdge>,
) {
    let rel = &file.rel;
    let lines = &file.scanned.lines;
    let det_module = cfg.det_modules.iter().any(|m| rel.contains(m.as_str()));
    let file_has_join = lines.iter().any(|l| l.code.contains(".join()"));

    let mut live: Vec<LiveGuard> = Vec::new();
    let mut depth: i32 = 0;
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;

        // --- lock-order: nested acquisitions form graph edges. ---
        let acqs = acquisitions_on(code);
        for (ai, acq) in acqs.iter().enumerate() {
            let mut holders: Vec<&str> = live.iter().map(|g| g.lock.as_str()).collect();
            // Several temporaries on one line nest left-to-right.
            holders.extend(acqs[..ai].iter().map(|a| a.lock.as_str()));
            for held in holders {
                if held == acq.lock {
                    continue; // same-rank siblings, index-ordered by convention
                }
                if !edges.iter().any(|e| e.from == held && e.to == acq.lock) {
                    edges.push(LockEdge {
                        from: held.to_string(),
                        to: acq.lock.clone(),
                        file: rel.clone(),
                        line: i + 1,
                    });
                }
                match (rank_of(cfg, held), rank_of(cfg, &acq.lock)) {
                    (Some(rf), Some(rt)) => {
                        if rf >= rt {
                            findings.push(Finding {
                                lint: LintKind::LockOrder,
                                file: rel.clone(),
                                line: i + 1,
                                message: format!(
                                    "lock `{}` (rank {rt}) acquired while `{held}` (rank {rf}) \
                                     is held — violates the declared LOCK_REGISTRY order; \
                                     acquire in increasing rank or release `{held}` first",
                                    acq.lock
                                ),
                            });
                        }
                    }
                    _ => {
                        if !annotated(lines, i, "ft2: lock-ok") {
                            findings.push(Finding {
                                lint: LintKind::LockOrder,
                                file: rel.clone(),
                                line: i + 1,
                                message: format!(
                                    "nested acquisition of unregistered lock(s) \
                                     (`{held}` -> `{}`): declare both in \
                                     ft2_parallel::LOCK_REGISTRY or annotate \
                                     `// ft2: lock-ok (<why>)`",
                                    acq.lock
                                ),
                            });
                        }
                    }
                }
            }
        }

        // --- guard bookkeeping: new named guards become live. ---
        let blocking_ok = annotated(lines, i, "ft2: blocking-ok");
        for acq in &acqs {
            if let Some(name) = &acq.guard {
                live.retain(|g| g.name != *name); // shadowing rebind
                live.push(LiveGuard {
                    lock: acq.lock.clone(),
                    name: name.clone(),
                    depth,
                    blocking_ok,
                });
            }
        }

        // --- hold-across-blocking. ---
        let wait_here = WAIT_PATTERNS.iter().any(|p| code.contains(p));
        let blocked = BLOCKING_PATTERNS.iter().find(|p| code.contains(**p));
        if blocked.is_some() || wait_here {
            let temp_held = acqs.iter().any(|a| a.guard.is_none());
            for g in &live {
                if g.blocking_ok {
                    continue;
                }
                // A wait releases the guard it is given; exempt guards
                // named on the line (the waited-on one).
                if wait_here && blocked.is_none() && word_on_line(code, &g.name) {
                    continue;
                }
                findings.push(Finding {
                    lint: LintKind::HoldAcrossBlocking,
                    file: rel.clone(),
                    line: i + 1,
                    message: format!(
                        "guard `{}` (lock `{}`) is live across a blocking call \
                         (`{}`): every sibling of that lock stalls behind it; \
                         release the guard first or annotate the acquisition \
                         `// ft2: blocking-ok (<why>)`",
                        g.name,
                        g.lock,
                        blocked.copied().unwrap_or(".wait(")
                    ),
                });
            }
            if temp_held && blocked.is_some() && !blocking_ok {
                findings.push(Finding {
                    lint: LintKind::HoldAcrossBlocking,
                    file: rel.clone(),
                    line: i + 1,
                    message: format!(
                        "temporary lock guard on the same line as a blocking call \
                         (`{}`); split the statement or annotate \
                         `// ft2: blocking-ok (<why>)`",
                        blocked.copied().unwrap_or("")
                    ),
                });
            }
        }

        // --- thread-lifecycle. ---
        if is_spawn_line(lines, i, BUILDER_LOOKBACK) {
            let lo = i.saturating_sub(ANNOTATION_WINDOW);
            let hi = i + DETACHED_WINDOW_AFTER;
            let detached = lines[lo..=hi.min(lines.len() - 1)]
                .iter()
                .any(|l| l.comment.contains("ft2: detached"));
            if !file_has_join && !detached {
                findings.push(Finding {
                    lint: LintKind::ThreadLifecycle,
                    file: rel.clone(),
                    line: i + 1,
                    message: "spawned thread is never joined in this file: join it on \
                              drain/shutdown (the no-thread-leak guarantee) or annotate \
                              `// ft2: detached (<reason>)`"
                        .to_string(),
                });
            }
        }

        // --- poisoned-lock. ---
        let wait_poison =
            wait_here && (code.contains(").unwrap()") || code.contains(").expect("));
        let mut poison_hit = POISON_PATTERNS.iter().find(|p| code.contains(**p)).copied();
        if poison_hit.is_none() && wait_poison {
            poison_hit = Some(".wait(...).unwrap()");
        }
        if let Some(pat) = poison_hit {
            if !annotated(lines, i, "ft2: poison-fatal") {
                findings.push(Finding {
                    lint: LintKind::PoisonedLock,
                    file: rel.clone(),
                    line: i + 1,
                    message: format!(
                        "`{pat}` aborts on a poisoned lock, turning one panicked \
                         batchmate into a whole-runtime outage; use \
                         ft2_parallel::lock_clean/wait_clean or annotate \
                         `// ft2: poison-fatal (<why>)`"
                    ),
                });
            }
        }

        // --- nondeterminism. ---
        if det_module {
            let hit = NONDET_WORDS
                .iter()
                .find(|w| crate::lints::contains_word(code, w))
                .or_else(|| NONDET_CALLS.iter().find(|c| code.contains(**c)));
            if let Some(hit) = hit {
                if !annotated(lines, i, "ft2: det-ok") {
                    findings.push(Finding {
                        lint: LintKind::Nondeterminism,
                        file: rel.clone(),
                        line: i + 1,
                        message: format!(
                            "`{}` in a bit-identity-critical module: unordered \
                             iteration / wall-clock input makes decode, campaign, \
                             and replay paths nondeterministic; use an ordered \
                             structure (BTreeMap/BTreeSet), a seeded source, or \
                             annotate `// ft2: det-ok (<why>)`",
                            hit.trim_end_matches('(')
                        ),
                    });
                }
            }
        }

        // --- scope bookkeeping. ---
        if let Some(rest) = code.trim_start().strip_prefix("drop(") {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            let d = depth;
            live.retain(|g| !(g.name == name && g.depth == d));
        }
        // A plain `let name = …;` rebinding (without an acquisition)
        // shadows and thereby drops a live guard of the same name.
        if let Some(name) = binding_name(code) {
            if acqs.iter().all(|a| a.guard.as_deref() != Some(&name)) {
                live.retain(|g| g.name != name);
            }
        }
        depth += depth_delta(code);
        live.retain(|g| g.depth <= depth);
    }
}

/// Is `word` present as a standalone identifier on the line?
fn word_on_line(code: &str, word: &str) -> bool {
    crate::lints::contains_word(code, word)
}

/// `(description, file, line)` per cycle found, deterministic order.
/// Self-edges are never created, so every cycle involves ≥ 2 locks.
fn cycle_descriptions(edges: &[LockEdge]) -> Vec<(String, String, usize)> {
    let mut nodes: Vec<&str> = Vec::new();
    for e in edges {
        for n in [e.from.as_str(), e.to.as_str()] {
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
    }
    // Tiny graphs: simple DFS cycle detection per node, reporting each
    // cycle once by its lexicographically-smallest member.
    let mut out = Vec::new();
    let mut reported: Vec<String> = Vec::new();
    for &start in &nodes {
        let mut stack = vec![(start, vec![start.to_string()])];
        let mut found: Option<Vec<String>> = None;
        while let Some((cur, path)) = stack.pop() {
            for e in edges.iter().filter(|e| e.from == cur) {
                if e.to == start {
                    let mut cyc = path.clone();
                    cyc.push(start.to_string());
                    if found.is_none() {
                        found = Some(cyc);
                    }
                } else if !path.contains(&e.to) {
                    let mut p = path.clone();
                    p.push(e.to.clone());
                    stack.push((e.to.as_str(), p));
                }
            }
        }
        if let Some(cyc) = found {
            let mut members = cyc.clone();
            members.sort();
            members.dedup();
            let key = members.join(",");
            if !reported.contains(&key) {
                reported.push(key);
                let site = edges
                    .iter()
                    .find(|e| e.from == cyc[0] && e.to == cyc[1])
                    .map(|e| (e.file.clone(), e.line))
                    .unwrap_or_default();
                out.push((cyc.join(" -> "), site.0, site.1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::model::{ScannedTree, SourceFile};

    fn tree_of(rel: &str, src: &str) -> ScannedTree {
        ScannedTree {
            files: vec![SourceFile {
                rel: rel.to_string(),
                scanned: scan(src),
            }],
        }
    }

    fn cfg() -> LintConfig {
        LintConfig {
            root: std::path::PathBuf::from("."),
            knobs: vec![],
            readme: None,
            nan_modules: vec![],
            zero_skip_modules: vec![],
            check_knob_used: false,
            locks: vec![
                RankedLock {
                    name: "a_lock".into(),
                    rank: 1,
                    site: "a.rs".into(),
                },
                RankedLock {
                    name: "b_lock".into(),
                    rank: 2,
                    site: "b.rs".into(),
                },
            ],
            det_modules: vec!["crates/core/src/".into()],
            check_shutdown: false,
        }
    }

    fn run(rel: &str, src: &str) -> (Vec<Finding>, ConcurrencyReport) {
        run_concurrency(&tree_of(rel, src), &cfg())
    }

    #[test]
    fn rank_ordered_nesting_passes_and_builds_the_graph() {
        let src = "fn f(s: &S) {\n    let a = lock_clean(&s.a_lock);\n    let b = lock_clean(&s.b_lock);\n    g(*a, *b);\n}\n";
        let (f, rep) = run("x.rs", src);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(rep.edges.len(), 1);
        assert_eq!(rep.edges[0].from, "a_lock");
        assert_eq!(rep.edges[0].to, "b_lock");
        assert_eq!(rep.cycles, 0);
    }

    #[test]
    fn rank_inversion_is_a_lock_order_finding() {
        let src = "fn f(s: &S) {\n    let b = lock_clean(&s.b_lock);\n    let a = lock_clean(&s.a_lock);\n    g(*a, *b);\n}\n";
        let (f, _) = run("x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, LintKind::LockOrder);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn acquisition_cycle_is_a_deadlock_finding() {
        let src = "fn f(s: &S) {\n    let a = lock_clean(&s.a_lock);\n    let b = lock_clean(&s.b_lock);\n    drop(a);\n    drop(b);\n}\nfn g(s: &S) {\n    // ft2: lock-ok (test)\n    let b = lock_clean(&s.b_lock);\n    // ft2: lock-ok (test)\n    let a = lock_clean(&s.a_lock);\n    h(*a, *b);\n}\n";
        let (f, rep) = run("x.rs", src);
        assert_eq!(rep.cycles, 1);
        assert!(f
            .iter()
            .any(|x| x.lint == LintKind::LockOrder && x.message.contains("cycle")));
    }

    #[test]
    fn guard_scope_ends_with_its_block_and_on_drop() {
        // b_lock taken after a_lock's block closed: no nesting, no edge.
        let src = "fn f(s: &S) {\n    {\n        let a = lock_clean(&s.a_lock);\n        g(*a);\n    }\n    let b = lock_clean(&s.b_lock);\n    g(*b);\n}\n";
        let (f, rep) = run("x.rs", src);
        assert!(f.is_empty());
        assert!(rep.edges.is_empty());

        let src = "fn f(s: &S) {\n    let b = lock_clean(&s.b_lock);\n    drop(b);\n    let a = lock_clean(&s.a_lock);\n    g(*a);\n}\n";
        let (f, rep) = run("x.rs", src);
        assert!(f.is_empty(), "{f:?}");
        assert!(rep.edges.is_empty());
    }

    #[test]
    fn conditional_drop_at_deeper_depth_keeps_the_guard_live() {
        let src = "fn f(s: &S) {\n    let b = lock_clean(&s.b_lock);\n    if cond {\n        drop(b);\n    }\n    let a = lock_clean(&s.a_lock);\n    g(*a);\n}\n";
        let (f, _) = run("x.rs", src);
        assert_eq!(f.len(), 1, "conditional drop must not end liveness: {f:?}");
        assert_eq!(f[0].lint, LintKind::LockOrder);
    }

    #[test]
    fn nested_unregistered_lock_needs_lock_ok() {
        let src = "fn f(s: &S) {\n    let a = lock_clean(&s.a_lock);\n    let m = lock_clean(&s.mystery);\n    g(*a, *m);\n}\n";
        let (f, _) = run("x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unregistered"));

        let src = "fn f(s: &S) {\n    let a = lock_clean(&s.a_lock);\n    // ft2: lock-ok (mystery is task-local)\n    let m = lock_clean(&s.mystery);\n    g(*a, *m);\n}\n";
        let (f, _) = run("x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lone_unregistered_lock_is_fine() {
        let src = "fn f() {\n    let m = Mutex::new(0);\n    let g = lock_clean(&m);\n    h(*g);\n}\n";
        let (f, rep) = run("x.rs", src);
        assert!(f.is_empty(), "{f:?}");
        assert!(rep.edges.is_empty());
    }

    #[test]
    fn guard_across_recv_is_flagged_unless_annotated() {
        let src = "fn f(s: &S, rx: &Receiver<u32>) {\n    let g = lock_clean(&s.a_lock);\n    let v = rx.recv().unwrap_or(0);\n    h(*g + v);\n}\n";
        let (f, _) = run("x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, LintKind::HoldAcrossBlocking);
        assert_eq!(f[0].line, 3);

        let src = "fn f(s: &S, rx: &Receiver<u32>) {\n    // ft2: blocking-ok (receiver is pre-filled)\n    let g = lock_clean(&s.a_lock);\n    let v = rx.recv().unwrap_or(0);\n    h(*g + v);\n}\n";
        let (f, _) = run("x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn condvar_wait_on_own_guard_is_exempt() {
        let src = "fn f(s: &S) {\n    let mut g = lock_clean(&s.a_lock);\n    while !*g {\n        g = wait_clean(&s.cv, g);\n    }\n    h(*g);\n}\n";
        let (f, _) = run("x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unjoined_spawn_is_flagged_unless_detached() {
        let src = "fn f() {\n    std::thread::spawn(|| work());\n}\n";
        let (f, _) = run("x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, LintKind::ThreadLifecycle);

        let src = "fn f() {\n    // ft2: detached (fire-and-forget logger)\n    std::thread::spawn(|| work());\n}\n";
        let (f, _) = run("x.rs", src);
        assert!(f.is_empty(), "{f:?}");

        let src = "fn f() {\n    let h = std::thread::spawn(|| work());\n    h.join().unwrap();\n}\n";
        let (f, _) = run("x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn poisoning_unwrap_needs_lock_clean_or_proof() {
        let src = "fn f(s: &S) -> u32 {\n    *s.a_lock.lock().unwrap()\n}\n";
        let (f, _) = run("x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, LintKind::PoisonedLock);

        let src = "fn f(s: &S) -> u32 {\n    // ft2: poison-fatal (state invalid after panic)\n    *s.a_lock.lock().unwrap()\n}\n";
        let (f, _) = run("x.rs", src);
        assert!(f.is_empty(), "{f:?}");

        let src = "fn f(s: &S, g: G) {\n    let g2 = s.cv.wait(g).unwrap();\n    h(g2);\n}\n";
        let (f, _) = run("x.rs", src);
        assert!(f.iter().any(|x| x.lint == LintKind::PoisonedLock), "{f:?}");
    }

    #[test]
    fn nondeterminism_only_bites_in_det_modules() {
        let src = "fn f() {\n    let m = std::collections::HashMap::new();\n    g(m);\n}\n";
        let (f, _) = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, LintKind::Nondeterminism);

        let (f, _) = run("crates/harness/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");

        let src = "fn f() {\n    // ft2: det-ok (iteration order unused — len only)\n    let m = std::collections::HashMap::new();\n    g(m.len());\n}\n";
        let (f, _) = run("crates/core/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn instant_now_is_allowed_in_det_modules() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n    g(t.elapsed());\n}\n";
        let (f, _) = run("crates/serve/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn concurrency_json_has_the_grepped_keys() {
        let (_, rep) = run("x.rs", "fn f() {}\n");
        let j = rep.to_json();
        for key in ["\"lock_nodes\"", "\"lock_edges\"", "\"lock_cycles\": 0", "\"shutdown\""] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
