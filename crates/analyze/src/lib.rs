#![warn(missing_docs)]
//! # ft2-analyze
//!
//! In-tree static analysis for the FT2 reproduction, exposed as
//! `ft2-repro lint [--json]`. Two layers, both std-only:
//!
//! 1. **Source lints** ([`lints`]) — a lightweight lexical scanner
//!    ([`lexer`]) enforcing repo-specific invariants the stock toolchain
//!    cannot: `unsafe` requires a written `// SAFETY:` invariant;
//!    NaN-swallowing comparisons (`f32::min`/`max`/`partial_cmp`) in
//!    detection-critical modules require a `// ft2: nan-ok` audit note;
//!    every `FT2_*` env-knob literal must resolve to the central registry
//!    in `ft2-harness::settings` and be documented in README; zero-skip
//!    guards (`== 0.0` around multiply-accumulates) are banned outside
//!    `KernelPolicy::Fast`-gated code.
//! 2. **Protection-coverage proof** ([`coverage`]) — builds all seven zoo
//!    configs' layer graphs *without executing them*, runs the Fig. 1a/1b
//!    critical-layer classifier, and probes the real FT2 tap wiring so
//!    that "every critical layer has a registered clamp tap" is a
//!    CI-enforced theorem rather than a hope; plus exhaustive
//!    [`ft2_fault::Outcome`] pricing against the cost model and checkpoint
//!    version-compatibility probes.
//!
//! The crate deliberately depends only on sibling workspace crates (the
//! offline-build constraint) and never on the harness, which *consumes* it
//! — the knob registry is passed in by name through [`LintConfig`].

pub mod concurrency;
pub mod coverage;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod report;
pub mod shutdown;

pub use concurrency::{ConcurrencyReport, LockEdge, RankedLock, DETERMINISM_MODULES};
pub use coverage::{analyse as analyse_coverage, CoverageReport};
pub use lints::{collect_rs_files, run_lints, LintConfig, NAN_CRITICAL_MODULES, ZERO_SKIP_MODULES};
pub use model::{scan_tree, ScannedTree};
pub use report::{AnalysisReport, Finding, LintKind, LINT_SCHEMA_VERSION};
pub use shutdown::ShutdownReport;

/// Run the full analysis: source lints and concurrency lints over one
/// scan of `cfg.root`, the (tree-independent) protection-coverage proof,
/// and the shutdown proof.
pub fn analyze(cfg: &LintConfig) -> Result<AnalysisReport, String> {
    let tree = model::scan_tree(&cfg.root)?;
    let mut findings = lints::run_source_lints(&tree, cfg);
    let (concurrency_findings, concurrency) = concurrency::run_concurrency(&tree, cfg);
    findings.extend(concurrency_findings);
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint))
    });
    Ok(AnalysisReport {
        findings,
        coverage: coverage::analyse(),
        concurrency,
    })
}
