//! Finding types and the machine-readable analysis report.
//!
//! The JSON document is schema-stable in the same sense as
//! `BENCH_decode.json`: `scripts/verify.sh` greps its keys, so renaming or
//! dropping one is a CI-visible change, not a silent one.

use crate::concurrency::ConcurrencyReport;
use crate::coverage::CoverageReport;
use std::fmt::Write as _;

/// Report schema version, bumped on any key rename/removal.
pub const LINT_SCHEMA_VERSION: u32 = 1;

/// The nine source-lint classes: the four PR 5 source lints plus the
/// five concurrency-soundness lints (see [`crate::concurrency`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LintKind {
    /// `unsafe` without a `// SAFETY:` (or `# Safety`) justification.
    UnsafeSafety,
    /// NaN-swallowing comparison (`.min`/`.max`/`partial_cmp`/…) in a
    /// detection-critical module without a `// ft2: nan-ok` audit note.
    NanComparison,
    /// `FT2_*` string literal missing from the central knob registry, or a
    /// registered knob missing from README / never read.
    EnvKnob,
    /// `== 0.0` zero-skip guard outside `KernelPolicy::Fast`-gated code.
    ZeroSkip,
    /// Nested lock acquisition violating the `LOCK_REGISTRY` rank order,
    /// an unregistered lock in a nested acquisition, or a cycle in the
    /// acquisition graph (potential deadlock).
    LockOrder,
    /// A mutex guard live across a blocking call (`recv`/`join`/socket
    /// write/sleep) without a `// ft2: blocking-ok` justification.
    HoldAcrossBlocking,
    /// A spawned thread never joined in its file and not annotated
    /// `// ft2: detached`, or a failed shutdown-proof obligation.
    ThreadLifecycle,
    /// `lock().unwrap()`-style poison-aborting acquisition without a
    /// `// ft2: poison-fatal` justification (use `lock_clean`).
    PoisonedLock,
    /// Unordered `HashMap`/`HashSet`, wall-clock input, or unordered
    /// float reduction in a bit-identity-critical module.
    Nondeterminism,
}

impl LintKind {
    /// Every lint class, in report order.
    pub const ALL: [LintKind; 9] = [
        LintKind::UnsafeSafety,
        LintKind::NanComparison,
        LintKind::EnvKnob,
        LintKind::ZeroSkip,
        LintKind::LockOrder,
        LintKind::HoldAcrossBlocking,
        LintKind::ThreadLifecycle,
        LintKind::PoisonedLock,
        LintKind::Nondeterminism,
    ];

    /// Stable kebab-case lint name (appears in reports and annotations).
    pub const fn name(self) -> &'static str {
        match self {
            LintKind::UnsafeSafety => "unsafe-safety",
            LintKind::NanComparison => "nan-comparison",
            LintKind::EnvKnob => "env-knob",
            LintKind::ZeroSkip => "zero-skip",
            LintKind::LockOrder => "lock-order",
            LintKind::HoldAcrossBlocking => "hold-across-blocking",
            LintKind::ThreadLifecycle => "thread-lifecycle",
            LintKind::PoisonedLock => "poisoned-lock",
            LintKind::Nondeterminism => "nondeterminism",
        }
    }
}

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub lint: LintKind,
    /// Path relative to the analysis root, `/`-separated.
    pub file: String,
    /// 1-based source line, or 0 for workspace-level findings (e.g. a
    /// registry entry missing from README).
    pub line: usize,
    /// Human-readable description with the expected fix.
    pub message: String,
}

/// The complete analysis result: source-lint findings plus the
/// protection-coverage proof and the concurrency pass (lock graph +
/// shutdown proof).
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Source-lint findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// The coverage / pricing / checkpoint cross-checks.
    pub coverage: CoverageReport,
    /// The lock-acquisition graph and the shutdown proof.
    pub concurrency: ConcurrencyReport,
}

impl AnalysisReport {
    /// Did the whole analysis pass (no findings, no coverage gaps, no
    /// lock cycles, shutdown proof intact)?
    pub fn ok(&self) -> bool {
        self.findings.is_empty() && self.coverage.ok() && self.concurrency.ok()
    }

    /// Findings of one lint class.
    pub fn count(&self, lint: LintKind) -> usize {
        self.findings.iter().filter(|f| f.lint == lint).count()
    }

    /// Human-readable rendering (the default CLI output).
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            if f.line == 0 {
                let _ = writeln!(s, "{}: [{}] {}", f.file, f.lint.name(), f.message);
            } else {
                let _ = writeln!(s, "{}:{}: [{}] {}", f.file, f.line, f.lint.name(), f.message);
            }
        }
        if !self.findings.is_empty() {
            s.push('\n');
        }
        s.push_str(&self.coverage.render_text());
        s.push('\n');
        s.push_str(&self.concurrency.render_text());
        let _ = writeln!(
            s,
            "\nlint: {} finding(s); coverage: {}; concurrency: {}",
            self.findings.len(),
            if self.coverage.ok() { "proved" } else { "GAPS FOUND" },
            if self.concurrency.ok() { "proved" } else { "GAPS FOUND" }
        );
        s
    }

    /// The schema-stable JSON document (`ft2-repro lint --json`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {LINT_SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"ok\": {},", self.ok());
        let _ = writeln!(s, "  \"finding_count\": {},", self.findings.len());
        s.push_str("  \"lints\": {");
        for (i, lint) in LintKind::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{}: {}", json_quote(lint.name()), self.count(*lint));
        }
        s.push_str("},\n");
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_quote(f.lint.name()),
                json_quote(&f.file),
                f.line,
                json_quote(&f.message)
            );
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str("  \"coverage\": ");
        s.push_str(&indent_tail(&self.coverage.to_json(), 2));
        s.push_str(",\n");
        s.push_str("  \"concurrency\": ");
        s.push_str(&indent_tail(&self.concurrency.to_json(), 2));
        s.push('\n');
        s.push_str("}\n");
        s
    }
}

/// JSON string quoting with the escapes the repo's checkpoint writer uses.
pub fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Re-indent every line but the first by `by` spaces (for nesting one
/// pretty-printed JSON document inside another).
pub(crate) fn indent_tail(doc: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    let mut lines = doc.trim_end().lines();
    let mut out = String::new();
    if let Some(first) = lines.next() {
        out.push_str(first);
    }
    for l in lines {
        out.push('\n');
        out.push_str(&pad);
        out.push_str(l);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_quote_escapes() {
        assert_eq!(json_quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_quote("plain"), "\"plain\"");
    }

    #[test]
    fn lint_names_are_kebab_case() {
        for lint in LintKind::ALL {
            let n = lint.name();
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }
}
