//! The no-execution shutdown proof.
//!
//! Companion to the protection-coverage proof in [`crate::coverage`], but
//! for liveness: instead of running the serving stack and hoping drain
//! terminates, we model its thread-and-channel topology declaratively and
//! check each obligation against the *source* (the [`crate::model`] scan).
//! The topology is small and closed — the pool workers, the shard
//! heartbeat monitor, the serve worker, the two web threads, and the
//! harness web-serve driver, wired by three mpsc channels — so every
//! shutdown obligation reduces to "this evidence exists in that file":
//!
//! * every spawned thread has a **wake-then-join** path on shutdown (the
//!   flag is stored *before* the condvar notify / kick connection, so the
//!   sleeper cannot re-sleep after missing the flag);
//! * every blocking receive is **bounded** (`recv_timeout`) or
//!   **non-blocking** (`try_recv`), and disconnect is handled, so a
//!   dropped `Sender` can never wedge a drain loop;
//! * every `Sender` has a reachable `Receiver` whose loop provably exits
//!   (timeout tick + stop flag, or disconnect arm), so no drop order of
//!   `Server`/`WebServer`/`EventSink` leaves a thread parked forever;
//! * queued work is **drained, not dropped** (pending requests get typed
//!   rejections, queued events get flushed before the final `shutdown`
//!   frame).
//!
//! A claim whose evidence needle disappears (someone deletes the
//! `worker.join()`) fails the proof and the lint gate — the PR 8
//! no-thread-leak guarantee, now enforced without executing anything.

use crate::model::{ScannedTree, SourceFile};
use crate::report::{json_quote, Finding, LintKind};
use std::fmt::Write as _;

/// For `Ordered` claims: how many lines after the first needle the second
/// must appear (the store→notify pairs are adjacent statements).
const ORDER_WINDOW: usize = 6;

/// One shutdown obligation checked against the source.
#[derive(Clone, Debug)]
pub struct Claim {
    /// What the evidence proves, human-readable.
    pub what: String,
    /// File the evidence must live in (root-relative).
    pub file: String,
    /// Was the evidence found?
    pub found: bool,
}

/// Proof bundle for one thread or one channel of the topology.
#[derive(Clone, Debug)]
pub struct Proof {
    /// Thread name (as passed to `Builder::name`) or channel description.
    pub name: String,
    /// Its obligations.
    pub claims: Vec<Claim>,
}

impl Proof {
    /// All obligations proved?
    pub fn ok(&self) -> bool {
        self.claims.iter().all(|c| c.found)
    }
}

/// The complete shutdown-proof verdict.
#[derive(Clone, Debug)]
pub struct ShutdownReport {
    /// Whether the proof ran (only when the scanned tree contains the
    /// serving topology; fixture trees skip it).
    pub checked: bool,
    /// Per-thread wake/join/exit proofs.
    pub threads: Vec<Proof>,
    /// Per-channel sender-reachability / bounded-receive proofs.
    pub channels: Vec<Proof>,
}

impl ShutdownReport {
    /// Vacuously true when unchecked; otherwise every claim must hold.
    pub fn ok(&self) -> bool {
        !self.checked
            || self
                .threads
                .iter()
                .chain(self.channels.iter())
                .all(Proof::ok)
    }

    /// Claims that failed.
    pub fn unproved(&self) -> usize {
        self.threads
            .iter()
            .chain(self.channels.iter())
            .flat_map(|p| p.claims.iter())
            .filter(|c| !c.found)
            .count()
    }

    /// Human-readable summary.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        if !self.checked {
            let _ = writeln!(s, "shutdown proof: skipped (tree has no serving topology)");
            return s;
        }
        let _ = writeln!(
            s,
            "shutdown proof: {} thread(s), {} channel(s), {} unproved claim(s)",
            self.threads.len(),
            self.channels.len(),
            self.unproved()
        );
        for p in self.threads.iter().chain(self.channels.iter()) {
            for c in p.claims.iter().filter(|c| !c.found) {
                let _ = writeln!(s, "  UNPROVED [{}] {} ({})", p.name, c.what, c.file);
            }
        }
        s
    }

    /// The `"shutdown"` JSON section (keys grepped by verify.sh).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"shutdown_checked\": {},", self.checked);
        let _ = writeln!(s, "  \"shutdown_ok\": {},", self.ok());
        let _ = writeln!(s, "  \"threads_proved\": {},", self.threads.iter().filter(|p| p.ok()).count());
        let _ = writeln!(s, "  \"channels_proved\": {},", self.channels.iter().filter(|p| p.ok()).count());
        s.push_str("  \"unproved\": [");
        let mut first = true;
        for p in self.threads.iter().chain(self.channels.iter()) {
            for c in p.claims.iter().filter(|c| !c.found) {
                if !first {
                    s.push(',');
                }
                first = false;
                let _ = write!(
                    s,
                    "\n    {{\"topic\": {}, \"what\": {}, \"file\": {}}}",
                    json_quote(&p.name),
                    json_quote(&c.what),
                    json_quote(&c.file)
                );
            }
        }
        if !first {
            s.push_str("\n  ");
        }
        s.push_str("]\n");
        s.push('}');
        s
    }
}

/// Evidence forms a claim can demand of a file's code channel.
enum Evidence<'a> {
    /// Some line contains the needle.
    Present(&'a str),
    /// A line contains the first needle and a line at most
    /// [`ORDER_WINDOW`] below it contains the second (store-before-notify
    /// patterns).
    Ordered(&'a str, &'a str),
}

fn find_file<'t>(tree: &'t ScannedTree, rel: &str) -> Option<&'t SourceFile> {
    tree.files.iter().find(|f| f.rel == rel)
}

fn check(tree: &ScannedTree, file: &str, ev: &Evidence<'_>) -> bool {
    let Some(f) = find_file(tree, file) else {
        return false;
    };
    let lines = &f.scanned.lines;
    match ev {
        Evidence::Present(needle) => lines.iter().any(|l| l.code.contains(needle)),
        Evidence::Ordered(a, b) => lines.iter().enumerate().any(|(i, l)| {
            l.code.contains(a)
                && lines[i + 1..=(i + ORDER_WINDOW).min(lines.len() - 1)]
                    .iter()
                    .any(|l2| l2.code.contains(b))
        }),
    }
}

fn proof(
    tree: &ScannedTree,
    name: &str,
    claims: &[(&str, &str, Evidence<'_>)],
    findings: &mut Vec<Finding>,
) -> Proof {
    let claims: Vec<Claim> = claims
        .iter()
        .map(|(what, file, ev)| {
            let found = check(tree, file, ev);
            if !found {
                findings.push(Finding {
                    lint: LintKind::ThreadLifecycle,
                    file: (*file).to_string(),
                    line: 0,
                    message: format!("shutdown proof [{name}]: no evidence that {what}"),
                });
            }
            Claim {
                what: (*what).to_string(),
                file: (*file).to_string(),
                found,
            }
        })
        .collect();
    Proof {
        name: name.to_string(),
        claims,
    }
}

/// Build the Server/Scheduler/ReplicaSet/web thread-and-channel topology
/// proof. `checked = false` (fixture trees) returns a vacuous report.
pub fn prove_shutdown(
    tree: &ScannedTree,
    checked: bool,
    findings: &mut Vec<Finding>,
) -> ShutdownReport {
    if !checked {
        return ShutdownReport {
            checked: false,
            threads: Vec::new(),
            channels: Vec::new(),
        };
    }
    use Evidence::{Ordered, Present};
    const POOL: &str = "crates/parallel/src/pool.rs";
    const HEARTBEAT: &str = "crates/parallel/src/heartbeat.rs";
    const SERVER: &str = "crates/serve/src/server.rs";
    const WEB: &str = "crates/serve/src/web.rs";
    const EVENT: &str = "crates/serve/src/event.rs";
    const WEBSERVE: &str = "crates/harness/src/webserve.rs";

    let threads = vec![
        proof(
            tree,
            "ft2-worker (pool)",
            &[
                (
                    "the shutdown flag is stored before the work condvar is notified",
                    POOL,
                    Ordered("shutdown.store(true", "work_cv.notify_all"),
                ),
                ("every worker handle is joined on drop", POOL, Present("h.join()")),
                (
                    "the worker loop observes the shutdown flag",
                    POOL,
                    Present("state.shutdown.load"),
                ),
            ],
            findings,
        ),
        proof(
            tree,
            "ft2-shard-heartbeat",
            &[
                (
                    "the monitor is flagged down before it is joined",
                    HEARTBEAT,
                    Ordered("shutdown.store(true", "h.join()"),
                ),
                (
                    "the monitor loop observes the shutdown flag",
                    HEARTBEAT,
                    Present("shutdown.load"),
                ),
                (
                    "monitor sleeps are bounded (poll tick, never parked)",
                    HEARTBEAT,
                    Present("thread::sleep"),
                ),
            ],
            findings,
        ),
        proof(
            tree,
            "serve worker",
            &[
                (
                    "the drain flag is stored before the condvar is notified",
                    SERVER,
                    Ordered("st.shutdown = true", "cv.notify_all()"),
                ),
                ("the worker is joined on stop", SERVER, Present("worker.join()")),
                (
                    "queued requests are rejected typed, not dropped",
                    SERVER,
                    Present("rejection(req)"),
                ),
                (
                    "the drain loop has an exit condition (draining and idle)",
                    SERVER,
                    Present("draining && sched.is_idle()"),
                ),
            ],
            findings,
        ),
        proof(
            tree,
            "ft2-web-accept",
            &[
                (
                    "the stop flag is stored before the kick connection",
                    WEB,
                    Ordered("stop.store(true", "TcpStream::connect"),
                ),
                ("both web threads are joined on stop", WEB, Present("h.join()")),
                ("the accept loop observes the stop flag", WEB, Present("stop.load")),
            ],
            findings,
        ),
        proof(
            tree,
            "ft2-web-broadcast",
            &[
                (
                    "the event receive is bounded (timeout tick)",
                    WEB,
                    Present("recv_timeout(TICK)"),
                ),
                (
                    "a dropped event sender exits the loop (disconnect arm)",
                    WEB,
                    Present("RecvTimeoutError::Disconnected"),
                ),
                (
                    "queued events are flushed on drain, not dropped",
                    WEB,
                    Present("try_recv()"),
                ),
                (
                    "clients get a final typed shutdown frame",
                    WEB,
                    Present("ServeEvent::Shutdown"),
                ),
            ],
            findings,
        ),
        proof(
            tree,
            "web-serve driver",
            &[(
                "the harness serve thread is joined",
                WEBSERVE,
                Present("worker.join()"),
            )],
            findings,
        ),
    ];

    let channels = vec![
        proof(
            tree,
            "serve events (ServeEvent mpsc)",
            &[
                (
                    "the sink wraps an unbounded channel (send never blocks)",
                    EVENT,
                    Present("mpsc::channel()"),
                ),
                (
                    "the receiver drains with a bounded timeout",
                    WEB,
                    Present("recv_timeout(TICK)"),
                ),
            ],
            findings,
        ),
        proof(
            tree,
            "live injects (LiveFault mpsc)",
            &[
                (
                    "a send to a gone injector is handled, not unwrapped",
                    WEB,
                    Present("injects.send(fault).is_ok()"),
                ),
                (
                    "the decode loop polls injects non-blocking",
                    WEBSERVE,
                    Present("inject_rx.try_recv()"),
                ),
            ],
            findings,
        ),
        proof(
            tree,
            "bound-address handshake (mpsc)",
            &[(
                "the address wait is bounded (30 s timeout)",
                WEBSERVE,
                Present(".recv_timeout(Duration::from_secs(30))"),
            )],
            findings,
        ),
    ];

    ShutdownReport {
        checked: true,
        threads,
        channels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::model::SourceFile;

    fn tree(files: &[(&str, &str)]) -> ScannedTree {
        ScannedTree {
            files: files
                .iter()
                .map(|(rel, src)| SourceFile {
                    rel: rel.to_string(),
                    scanned: scan(src),
                })
                .collect(),
        }
    }

    #[test]
    fn unchecked_report_is_vacuously_ok() {
        let t = tree(&[("src/main.rs", "fn main() {}\n")]);
        let mut f = Vec::new();
        let rep = prove_shutdown(&t, false, &mut f);
        assert!(!rep.checked && rep.ok() && f.is_empty());
        assert!(rep.to_json().contains("\"shutdown_checked\": false"));
    }

    #[test]
    fn missing_evidence_fails_the_proof_with_findings() {
        let t = tree(&[("src/main.rs", "fn main() {}\n")]);
        let mut f = Vec::new();
        let rep = prove_shutdown(&t, true, &mut f);
        assert!(rep.checked && !rep.ok());
        assert!(rep.unproved() > 0);
        assert_eq!(f.len(), rep.unproved());
        assert!(f.iter().all(|x| x.lint == LintKind::ThreadLifecycle));
        assert!(rep.to_json().contains("\"shutdown_ok\": false"));
    }

    #[test]
    fn ordered_evidence_requires_the_right_sequence() {
        let good = tree(&[(
            "a.rs",
            "fn stop() {\n    flag.store(true, SeqCst);\n    cv.notify_all();\n}\n",
        )]);
        assert!(check(&good, "a.rs", &Evidence::Ordered("store(true", "notify_all")));
        let bad = tree(&[(
            "a.rs",
            "fn stop() {\n    cv.notify_all();\n    flag.store(true, SeqCst);\n}\n",
        )]);
        assert!(!check(&bad, "a.rs", &Evidence::Ordered("store(true", "notify_all")));
    }

    #[test]
    fn evidence_matches_code_channel_only() {
        let t = tree(&[("a.rs", "// worker.join() someday\nlet s = \"worker.join()\";\n")]);
        assert!(!check(&t, "a.rs", &Evidence::Present("worker.join()")));
    }
}
