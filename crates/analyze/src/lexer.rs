//! A deliberately small Rust *lexical* scanner.
//!
//! The lints in this crate are line-oriented pattern checks, but naive
//! substring matching over raw source text is wrong in two directions: a
//! pattern inside a comment or string literal is not code (false positive),
//! and an annotation comment inside a string literal is not an annotation
//! (false negative). The scanner splits every source line into three
//! channels — executable code with comment text and literal *contents*
//! blanked out, the comment text itself, and the string-literal contents —
//! so each lint matches against exactly the channel it cares about.
//!
//! This is not a full lexer (no token stream, no spans inside a line); it
//! only has to be right about what is and is not a comment or a literal.
//! It therefore handles the complete set of Rust constructs that change
//! that classification: line comments (`//`, `///`, `//!`), *nested* block
//! comments, plain/byte strings with escapes, raw strings with arbitrary
//! `#` fences, and the char-literal vs. lifetime ambiguity of `'`.

/// One scanned source line, split by channel.
#[derive(Clone, Debug, Default)]
pub struct Line {
    /// Executable source with comment text and literal contents replaced
    /// by spaces. Delimiters (`"`, `'`) are kept so tokens never merge.
    pub code: String,
    /// Concatenated text of every comment (part) on this line, including
    /// doc comments, without the `//` / `/* */` markers.
    pub comment: String,
    /// Contents of every string literal that *ends* on this line (the
    /// whole content for multi-line literals, newlines preserved).
    pub strings: Vec<String>,
}

/// A whole file scanned into per-line channels (1-based line numbers are
/// `index + 1`).
#[derive(Clone, Debug, Default)]
pub struct ScannedFile {
    /// Scanned lines in file order.
    pub lines: Vec<Line>,
}

#[derive(Clone, Debug)]
enum State {
    /// Ordinary code.
    Code,
    /// Inside a (possibly nested) block comment; the payload is the
    /// current nesting depth.
    BlockComment(u32),
    /// Inside a `"…"` string; the payload accumulates its contents.
    Str(String),
    /// Inside a raw string closed by `"` + this many `#`; payload is
    /// (fence, contents).
    RawStr(u32, String),
}

/// Scan an entire source text. Never fails: unterminated constructs simply
/// run to end-of-file in their current state, mirroring what rustc's
/// recovery would report.
pub fn scan(source: &str) -> ScannedFile {
    let mut out = ScannedFile::default();
    let mut state = State::Code;
    for raw_line in source.lines() {
        let mut line = Line::default();
        let chars: Vec<char> = raw_line.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match &mut state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        // Line comment (incl. doc comments): the rest of
                        // the line is comment text.
                        let text: String = chars[i + 2..].iter().collect();
                        line.comment.push_str(text.trim_start_matches(['/', '!']));
                        line.comment.push(' ');
                        i = chars.len();
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        line.code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        state = State::Str(String::new());
                        line.code.push('"');
                        i += 1;
                    }
                    'r' | 'b' if is_raw_string_start(&chars, i) => {
                        let (fence, start) = raw_fence(&chars, i);
                        for _ in i..start {
                            line.code.push(' ');
                        }
                        line.code.push('"');
                        state = State::RawStr(fence, String::new());
                        i = start;
                    }
                    '\'' => {
                        if let Some(end) = char_literal_end(&chars, i) {
                            // Char literal: keep the quotes, blank the body.
                            line.code.push('\'');
                            for _ in i + 1..end {
                                line.code.push(' ');
                            }
                            line.code.push('\'');
                            i = end + 1;
                        } else {
                            // Lifetime or loop label: plain code.
                            line.code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        line.code.push(c);
                        i += 1;
                    }
                },
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        *depth -= 1;
                        if *depth == 0 {
                            state = State::Code;
                        }
                        line.comment.push(' ');
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        *depth += 1;
                        i += 2;
                    } else {
                        line.comment.push(c);
                        i += 1;
                    }
                }
                State::Str(content) => match c {
                    '\\' => {
                        if let Some(n) = next {
                            content.push('\\');
                            content.push(n);
                        }
                        line.code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        let done = std::mem::take(content);
                        line.strings.push(done);
                        state = State::Code;
                        line.code.push('"');
                        i += 1;
                    }
                    _ => {
                        content.push(c);
                        line.code.push(' ');
                        i += 1;
                    }
                },
                State::RawStr(fence, content) => {
                    if c == '"' && closes_raw(&chars, i, *fence) {
                        let skip = 1 + *fence as usize;
                        let done = std::mem::take(content);
                        line.strings.push(done);
                        line.code.push('"');
                        for _ in 1..skip {
                            line.code.push(' ');
                        }
                        state = State::Code;
                        i += skip;
                    } else {
                        content.push(c);
                        line.code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        // A literal or comment that continues past the newline keeps its
        // state; record the newline in multi-line string contents so knob
        // names can't be glued together across lines.
        match &mut state {
            State::Str(content) | State::RawStr(_, content) => content.push('\n'),
            _ => {}
        }
        out.lines.push(line);
    }
    // Close any literal left open at EOF so its contents still reach the
    // string channel of the line it started on.
    if let State::Str(content) | State::RawStr(_, content) = state {
        if let Some(last) = out.lines.last_mut() {
            last.strings.push(content);
        }
    }
    out
}

/// Is `chars[i]` the start of a raw (or raw byte) string literal —
/// `r"`, `r#"`, `br"`, `br#"` …? Requires the previous char not to be an
/// identifier char (so `attr"x"`-like identifiers never match).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// For a raw-string start at `i`, return (fence size, index just past the
/// opening `"`).
fn raw_fence(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1; // the 'r'
    let mut fence = 0u32;
    while chars.get(j) == Some(&'#') {
        fence += 1;
        j += 1;
    }
    (fence, j + 1) // past the opening quote
}

/// Does the `"` at `i` close a raw string with this fence size?
fn closes_raw(chars: &[char], i: usize, fence: u32) -> bool {
    (1..=fence as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If `chars[i] == '\''` starts a *char literal*, return the index of its
/// closing quote; `None` means it is a lifetime or loop label.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: the character after the backslash is consumed
            // by the escape (`'\''`, `'\\'`), so the closing quote can be
            // no earlier than `i + 3`. Scanning from `i + 2` would take the
            // *escaped* quote of `'\''` as the terminator and leave the
            // real closing quote dangling in the stream, where it can open
            // a bogus literal and swallow following code (including raw
            // strings with `//` inside macro invocations).
            let mut j = i + 3;
            while j < chars.len() {
                if chars[j] == '\'' {
                    return Some(j);
                }
                j += 1;
            }
            None
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(i + 2),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_leave_the_code_channel() {
        let f = scan("let x = 1; // unsafe == 0.0 \"KNOB_FAKE\"\n");
        assert_eq!(f.lines[0].code.trim_end(), "let x = 1;");
        assert!(f.lines[0].comment.contains("unsafe == 0.0"));
        assert!(f.lines[0].strings.is_empty());
    }

    #[test]
    fn string_contents_leave_the_code_channel() {
        let f = scan("println!(\"unsafe {} == 0.0\", KNOB_X);\n");
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(!f.lines[0].code.contains("== 0.0"));
        assert!(f.lines[0].code.contains("KNOB_X")); // the identifier stays
        assert_eq!(f.lines[0].strings, vec!["unsafe {} == 0.0".to_string()]);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let f = scan(r#"let s = "a \" b"; let t = 1;"#);
        assert_eq!(f.lines[0].strings.len(), 1);
        assert!(f.lines[0].code.contains("let t = 1;"));
    }

    #[test]
    fn nested_block_comments() {
        let f = scan("a /* x /* y */ still comment */ b\n");
        let code = &f.lines[0].code;
        assert!(code.contains('a') && code.contains('b'));
        assert!(!code.contains("still"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let f = scan("fn x() {} /* SAFETY:\n   spans */ unsafe {}\n");
        assert!(f.lines[0].comment.contains("SAFETY:"));
        assert!(f.lines[1].code.contains("unsafe"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let f = scan("let s = r#\"has \"quotes\" and unsafe\"#; let u = 2;\n");
        assert_eq!(f.lines[0].strings.len(), 1);
        assert!(f.lines[0].strings[0].contains("unsafe"));
        assert!(f.lines[0].code.contains("let u = 2;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        let code = &f.lines[0].code;
        assert!(code.contains("&'a str"));
        assert!(!code.contains("'x'")); // char body blanked, quotes kept
        assert!(code.contains("' '"));
    }

    #[test]
    fn escaped_char_literal() {
        let f = scan("let c = '\\n'; let q = '\\''; let l: &'static str = \"\";\n");
        assert!(f.lines[0].code.contains("&'static str"));
        assert_eq!(f.lines[0].strings, vec![String::new()]);
    }

    #[test]
    fn escaped_quote_char_literal_consumes_its_closing_quote() {
        // `'\''` must consume exactly four chars; the regression left the
        // closing quote dangling, which could open a bogus char literal.
        let f = scan("let p = ('\\'','\"'); let s = \"REAL_STR\";\n");
        assert_eq!(f.lines[0].strings, vec!["REAL_STR".to_string()]);
        assert!(f.lines[0].code.contains("let s ="));
    }

    #[test]
    fn raw_string_with_comment_marker_inside_macro_invocation() {
        // Regression: an escaped-quote char literal directly before a raw
        // string inside a macro invocation used to corrupt all three
        // channels — the `//` inside the raw string leaked toward the
        // comment channel and the code channel lost the call tail.
        let f = scan("m!('\\'','\"',r#\"//\"#); // tail\nlet x = 1;\n");
        assert_eq!(f.lines[0].strings, vec!["//".to_string()]);
        assert_eq!(f.lines[0].comment.trim(), "tail");
        assert!(!f.lines[0].code.contains("//"));
        assert!(f.lines[1].code.contains("let x = 1;"));
    }

    #[test]
    fn raw_strings_inside_macros_stay_out_of_the_comment_channel() {
        let f = scan("println!(r#\"// not a comment\"#); write!(w, r\"//{}\", x);\n");
        assert_eq!(
            f.lines[0].strings,
            vec!["// not a comment".to_string(), "//{}".to_string()]
        );
        assert!(f.lines[0].comment.trim().is_empty());
        assert!(!f.lines[0].code.contains("//"));
    }

    #[test]
    fn multiline_strings_accumulate_to_closing_line() {
        let f = scan("let s = \"first\nsecond\";\nlet x = 3;\n");
        assert_eq!(f.lines[1].strings.len(), 1);
        assert!(f.lines[1].strings[0].contains("first"));
        assert!(f.lines[1].strings[0].contains("second"));
        assert!(f.lines[2].code.contains("let x = 3;"));
    }

    #[test]
    fn unterminated_string_still_captured() {
        let f = scan("let s = \"runs off the end\n");
        assert_eq!(f.lines[0].strings.len(), 1);
        assert!(f.lines[0].strings[0].contains("runs off the end"));
    }
}
