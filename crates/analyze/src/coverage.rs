//! The protection-coverage proof: static cross-checks over the seven zoo
//! models, the outcome taxonomy, and the checkpoint format — none of which
//! execute a model forward pass.
//!
//! **Critical-layer coverage.** For each zoo config the Fig. 1a/1b
//! classifier ([`CriticalityReport`]) derives the critical set from the
//! architecture graph; the check then instantiates the FT2
//! [`SchemeFactory`] tap set for that config and *probes* it: benign
//! outputs at step 0 (bound profiling), then a huge out-of-range value at
//! step 1 through every `(block, layer)` linear hook point. A critical
//! layer whose probe value survives unclamped has no registered clamp tap
//! (an unprotected gap); a non-critical layer whose probe is clamped marks
//! over-protection (selective protection is FT2's overhead claim). The
//! probe drives the real tap objects through the real `LayerTap`
//! interface, so a wiring regression anywhere between `Scheme::coverage`
//! and `Protector::on_output` is caught — without generating a single
//! token.
//!
//! **Outcome pricing.** Every [`Outcome`] variant must map to a finite,
//! positive cost expression in the [`CostModel`]. The mapping below is an
//! exhaustive `match` with no wildcard arm: adding an outcome variant
//! breaks this crate's build until a pricing rule is chosen.
//!
//! **Checkpoint versions.** Every version in `2..=CHECKPOINT_VERSION` must
//! parse (v2 both explicitly and as a version-less legacy document), and
//! v1 / future versions must be rejected, probed through the real
//! serializer round-trip.

use ft2_core::{CriticalityReport, Scheme, SchemeFactory, TILE_ELEMS};
use ft2_fault::{
    CampaignCheckpoint, CampaignResult, Outcome, ProtectionFactory, CHECKPOINT_VERSION,
};
use ft2_hw::{CostModel, WorkloadShape, A100};
use ft2_model::{model_zoo, HookKind, ModelSpec, TapCtx, TapPoint};
use ft2_tensor::Matrix;
use std::fmt::Write as _;

/// Prompt length used for representative pricing.
const PRICE_PROMPT: usize = 64;
/// Generated tokens used for representative pricing (the paper's QA 60).
const PRICE_GEN: usize = 60;
/// The out-of-range probe value (far beyond any 2×-scaled step-0 bound).
const PROBE_VALUE: f32 = 1.0e9;
/// Shard count assumed when pricing a degrade re-partition.
const DEGRADE_PRICE_SHARDS: usize = 4;
/// Corrupt weight-tile fraction assumed when pricing a replica rebuild.
const REBUILD_PRICE_CORRUPT: f64 = 0.01;

/// Coverage result for one zoo model.
#[derive(Clone, Debug)]
pub struct ModelCoverage {
    /// Model display name.
    pub model: String,
    /// Architecture family (`OptStyle` / `LlamaStyle`).
    pub style: String,
    /// Decoder blocks probed.
    pub blocks: usize,
    /// Critical layer kinds per the structural classifier.
    pub critical: Vec<&'static str>,
    /// Does the classifier agree with the paper's Table 1?
    pub matches_table1: bool,
    /// `(block, layer)` hook points probed.
    pub probes: usize,
    /// Critical hook points whose probe value was NOT clamped.
    pub unprotected: Vec<String>,
    /// Non-critical hook points whose probe value WAS clamped.
    pub over_protected: Vec<String>,
}

impl ModelCoverage {
    /// Exact coverage: Table 1 agreement, no gaps, no over-protection.
    pub fn ok(&self) -> bool {
        self.matches_table1
            && !self.critical.is_empty()
            && self.unprotected.is_empty()
            && self.over_protected.is_empty()
    }
}

/// One outcome variant's pricing rule and representative cost.
#[derive(Clone, Debug)]
pub struct OutcomePricing {
    /// Variant name.
    pub variant: &'static str,
    /// Pricing-rule name (stable, documented in DESIGN.md §3f).
    pub rule: &'static str,
    /// Representative seconds on the A100 model at OPT-6.7B paper scale.
    pub seconds: f64,
    /// Finite and positive on every zoo shape?
    pub priced: bool,
}

/// Checkpoint-format version probes.
#[derive(Clone, Debug)]
pub struct CheckpointReport {
    /// The version this tree writes.
    pub current: u64,
    /// Versions accepted by the parser (probed `0..=current+1`).
    pub accepted: Vec<u64>,
    /// A version-less legacy (v2) document still parses.
    pub implicit_v2: bool,
    /// Pre-v2 documents are rejected.
    pub rejects_v1: bool,
    /// Documents newer than this binary are rejected, not misread.
    pub rejects_future: bool,
}

impl CheckpointReport {
    /// All version probes behaved as specified.
    pub fn ok(&self) -> bool {
        self.accepted == (2..=self.current).collect::<Vec<u64>>()
            && self.implicit_v2
            && self.rejects_v1
            && self.rejects_future
    }
}

/// The full coverage report (`"coverage"` in the JSON document).
#[derive(Clone, Debug)]
pub struct CoverageReport {
    /// Per-model coverage probes, zoo order.
    pub models: Vec<ModelCoverage>,
    /// Per-outcome pricing, taxonomy order.
    pub outcomes: Vec<OutcomePricing>,
    /// Checkpoint version probes.
    pub checkpoint: CheckpointReport,
}

impl CoverageReport {
    /// Total unprotected critical hook points across all models.
    pub fn unprotected_critical_layers(&self) -> usize {
        self.models.iter().map(|m| m.unprotected.len()).sum()
    }

    /// Total over-protected hook points across all models.
    pub fn over_protected_layers(&self) -> usize {
        self.models.iter().map(|m| m.over_protected.len()).sum()
    }

    /// Outcome variants without a valid price on some shape.
    pub fn unpriced_outcomes(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.priced).count()
    }

    /// Did every cross-check pass?
    pub fn ok(&self) -> bool {
        self.models.iter().all(ModelCoverage::ok)
            && self.unpriced_outcomes() == 0
            && self.checkpoint.ok()
    }

    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "protection coverage ({} models, {} probes):",
            self.models.len(),
            self.models.iter().map(|m| m.probes).sum::<usize>()
        );
        for m in &self.models {
            let _ = writeln!(
                s,
                "  {:<12} {:<10} {} blocks  critical [{}]  table1 {}  gaps {}  over {}",
                m.model,
                m.style,
                m.blocks,
                m.critical.join(" "),
                if m.matches_table1 { "ok" } else { "MISMATCH" },
                m.unprotected.len(),
                m.over_protected.len()
            );
            for gap in &m.unprotected {
                let _ = writeln!(s, "    UNPROTECTED critical layer: {gap}");
            }
            for over in &m.over_protected {
                let _ = writeln!(s, "    over-protected layer: {over}");
            }
        }
        let _ = writeln!(s, "outcome pricing ({} variants):", self.outcomes.len());
        for o in &self.outcomes {
            let _ = writeln!(
                s,
                "  {:<16} {:<28} {:>12.6}s {}",
                o.variant,
                o.rule,
                o.seconds,
                if o.priced { "" } else { "UNPRICED" }
            );
        }
        let _ = writeln!(
            s,
            "checkpoint versions: current {} accepted {:?} implicit-v2 {} \
             rejects-v1 {} rejects-future {}",
            self.checkpoint.current,
            self.checkpoint.accepted,
            self.checkpoint.implicit_v2,
            self.checkpoint.rejects_v1,
            self.checkpoint.rejects_future
        );
        s
    }

    /// JSON object (nested under `"coverage"`).
    pub fn to_json(&self) -> String {
        use crate::report::json_quote;
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"models\": [");
        for (i, m) in self.models.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let critical: Vec<String> = m.critical.iter().map(|c| json_quote(c)).collect();
            let unprot: Vec<String> = m.unprotected.iter().map(|u| json_quote(u)).collect();
            let over: Vec<String> = m.over_protected.iter().map(|o| json_quote(o)).collect();
            let _ = write!(
                s,
                "\n    {{\"model\": {}, \"style\": {}, \"blocks\": {}, \"critical\": [{}], \
                 \"matches_table1\": {}, \"probes\": {}, \"unprotected\": [{}], \
                 \"over_protected\": [{}]}}",
                json_quote(&m.model),
                json_quote(&m.style),
                m.blocks,
                critical.join(", "),
                m.matches_table1,
                m.probes,
                unprot.join(", "),
                over.join(", ")
            );
        }
        s.push_str("\n  ],\n");
        let _ = writeln!(
            s,
            "  \"unprotected_critical_layers\": {},",
            self.unprotected_critical_layers()
        );
        let _ = writeln!(s, "  \"over_protected_layers\": {},", self.over_protected_layers());
        s.push_str("  \"outcomes\": [");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"variant\": {}, \"rule\": {}, \"seconds\": {:.6}, \"priced\": {}}}",
                json_quote(o.variant),
                json_quote(o.rule),
                o.seconds,
                o.priced
            );
        }
        s.push_str("\n  ],\n");
        let _ = writeln!(s, "  \"outcome_variants\": {},", self.outcomes.len());
        let _ = writeln!(s, "  \"unpriced_outcomes\": {},", self.unpriced_outcomes());
        let _ = writeln!(
            s,
            "  \"checkpoint\": {{\"current\": {}, \"accepted\": [{}], \"implicit_v2\": {}, \
             \"rejects_v1\": {}, \"rejects_future\": {}}},",
            self.checkpoint.current,
            self.checkpoint
                .accepted
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            self.checkpoint.implicit_v2,
            self.checkpoint.rejects_v1,
            self.checkpoint.rejects_future
        );
        let _ = writeln!(s, "  \"checkpoint_versions_ok\": {},", self.checkpoint.ok());
        let _ = writeln!(s, "  \"ok\": {}", self.ok());
        s.push('}');
        s
    }
}

/// Run every coverage cross-check. Pure computation over static configs —
/// no model weights are built, no tokens generated, no files touched.
pub fn analyse() -> CoverageReport {
    let zoo = model_zoo();
    let models = zoo.iter().map(probe_model).collect();
    let outcomes = price_outcomes(&zoo);
    let checkpoint = probe_checkpoints();
    CoverageReport {
        models,
        outcomes,
        checkpoint,
    }
}

/// Probe one model's FT2 tap set through every `(block, layer)` hook point.
fn probe_model(spec: &ModelSpec) -> ModelCoverage {
    let config = &spec.config;
    let report = CriticalityReport::analyse(config);
    let critical = report.critical();
    let factory = SchemeFactory::new(Scheme::Ft2, config, None);
    let mut taps = factory.make();

    let ctx_at = |block: usize, layer, step: usize| TapCtx {
        point: TapPoint { block, layer },
        hook: HookKind::LinearOutput,
        step,
        first_pos: if step == 0 { 0 } else { PRICE_PROMPT },
        dtype: config.dtype,
    };

    // Step 0 (first-token profiling): benign outputs at every hook point.
    for block in 0..config.blocks {
        for &kind in config.block_layers() {
            let ctx = ctx_at(block, kind, 0);
            let mut out = Matrix::from_vec(1, 2, vec![-1.0, 1.0]);
            for tap in taps.iter_mut() {
                tap.on_output(&ctx, &mut out);
            }
        }
    }
    for tap in taps.iter_mut() {
        tap.end_step(0);
    }

    // Step 1: inject an out-of-range probe at every hook point; exactly
    // the critical set must clamp it.
    let mut probes = 0usize;
    let mut unprotected = Vec::new();
    let mut over_protected = Vec::new();
    for block in 0..config.blocks {
        for &kind in config.block_layers() {
            probes += 1;
            let ctx = ctx_at(block, kind, 1);
            let mut out = Matrix::from_vec(1, 2, vec![PROBE_VALUE, 0.5]);
            for tap in taps.iter_mut() {
                tap.on_output(&ctx, &mut out);
            }
            let clamped = out.get(0, 0).abs() < PROBE_VALUE;
            let is_critical = critical.contains(&kind);
            let label = format!("block{}/{}", block, kind.name());
            if is_critical && !clamped {
                unprotected.push(label);
            } else if !is_critical && clamped {
                over_protected.push(label);
            }
        }
    }

    ModelCoverage {
        model: spec.name().to_string(),
        style: format!("{:?}", config.style),
        blocks: config.blocks,
        critical: critical.iter().map(|k| k.name()).collect(),
        matches_table1: report.matches_table1(),
        probes,
        unprotected,
        over_protected,
    }
}

/// Construct one sample of every outcome variant, in taxonomy order.
fn sample_outcomes() -> Vec<Outcome> {
    vec![
        Outcome::MaskedIdentical,
        Outcome::MaskedSemantic,
        Outcome::Sdc,
        Outcome::Crash {
            site: "probe".to_string(),
            message: "probe".to_string(),
        },
        Outcome::Hang,
        Outcome::Recovered { retries: 1 },
        Outcome::Repaired { repairs: 1 },
        Outcome::RecoveryFailed { retries: 1 },
        Outcome::Degraded { shards_lost: 1 },
        Outcome::FailedOver { failovers: 1 },
    ]
}

/// Price one outcome on one workload shape.
///
/// The `match` is deliberately exhaustive (no `_` arm): a new [`Outcome`]
/// variant fails to compile here until it is given a pricing rule — the
/// static guarantee this check exists for.
fn price(outcome: &Outcome, cost: &CostModel, shape: &WorkloadShape) -> (&'static str, &'static str, f64) {
    let gen = cost.generation_time(shape, PRICE_PROMPT, PRICE_GEN);
    let base = gen.total_s();
    let protected = base * (1.0 + cost.protection_overhead(shape, PRICE_PROMPT, PRICE_GEN));
    let rollback = cost.rollback_time(shape, PRICE_PROMPT + PRICE_GEN);
    match outcome {
        Outcome::MaskedIdentical => ("MaskedIdentical", "protected-generation", protected),
        Outcome::MaskedSemantic => ("MaskedSemantic", "protected-generation", protected),
        Outcome::Sdc => ("Sdc", "protected-generation", protected),
        Outcome::Crash { .. } => (
            "Crash",
            "truncated-generation",
            gen.prefill_s + 0.5 * gen.decode_s,
        ),
        Outcome::Hang => ("Hang", "watchdog-bounded-generation", protected),
        Outcome::Recovered { retries } => (
            "Recovered",
            "generation-plus-rollbacks",
            protected + f64::from(*retries) * rollback,
        ),
        Outcome::Repaired { repairs } => (
            "Repaired",
            "generation-plus-repair-scrub",
            protected + *repairs as f64 * cost.scrub_time(shape, 1, TILE_ELEMS),
        ),
        Outcome::RecoveryFailed { retries } => (
            "RecoveryFailed",
            "rollback-budget-exhausted",
            protected + f64::from(*retries) * rollback,
        ),
        Outcome::Degraded { shards_lost } => (
            "Degraded",
            "generation-plus-repartitions",
            protected
                + f64::from(*shards_lost)
                    * cost.repartition_time(shape, DEGRADE_PRICE_SHARDS - 1),
        ),
        Outcome::FailedOver { failovers } => (
            "FailedOver",
            "generation-plus-handoff-and-rebuild",
            protected
                + f64::from(*failovers)
                    * (cost.failover_time(shape, PRICE_PROMPT, PRICE_GEN / 2)
                        + cost.rebuild_time(shape, REBUILD_PRICE_CORRUPT)),
        ),
    }
}

/// Price every variant on every zoo shape; report representative seconds
/// for the first shape and validity across all of them.
fn price_outcomes(zoo: &[ModelSpec]) -> Vec<OutcomePricing> {
    let cost = CostModel::new(A100);
    let shapes: Vec<WorkloadShape> = zoo.iter().map(WorkloadShape::from_spec).collect();
    sample_outcomes()
        .iter()
        .map(|outcome| {
            let (variant, rule, seconds) = price(outcome, &cost, &shapes[0]);
            let priced = shapes.iter().all(|shape| {
                let (_, _, s) = price(outcome, &cost, shape);
                s.is_finite() && s > 0.0
            });
            OutcomePricing {
                variant,
                rule,
                seconds,
                priced,
            }
        })
        .collect()
}

/// Probe checkpoint-version acceptance through the real serializer.
fn probe_checkpoints() -> CheckpointReport {
    let doc = CampaignCheckpoint {
        fingerprint: "analyze-probe".to_string(),
        completed_tasks: 7,
        result: CampaignResult::default(),
    }
    .to_json();
    let version_line = format!("\"version\": {CHECKPOINT_VERSION}");

    let mut accepted = Vec::new();
    for v in 0..=CHECKPOINT_VERSION + 1 {
        let probe = doc.replace(&version_line, &format!("\"version\": {v}"));
        if CampaignCheckpoint::from_json(&probe).is_ok() {
            accepted.push(v);
        }
    }
    let versionless: String = doc
        .lines()
        .filter(|l| !l.contains("\"version\""))
        .collect::<Vec<_>>()
        .join("\n");
    CheckpointReport {
        current: CHECKPOINT_VERSION,
        implicit_v2: CampaignCheckpoint::from_json(&versionless).is_ok(),
        rejects_v1: !accepted.contains(&1) && !accepted.contains(&0),
        rejects_future: !accepted.contains(&(CHECKPOINT_VERSION + 1)),
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_models_prove_exact_coverage() {
        let report = analyse();
        assert_eq!(report.models.len(), 7);
        for m in &report.models {
            assert!(m.ok(), "coverage gap in {}: {m:?}", m.model);
            assert!(m.probes >= m.blocks * 6);
        }
        assert_eq!(report.unprotected_critical_layers(), 0);
        assert_eq!(report.over_protected_layers(), 0);
    }

    #[test]
    fn every_outcome_variant_is_priced() {
        let report = analyse();
        assert_eq!(report.outcomes.len(), 10);
        assert_eq!(report.unpriced_outcomes(), 0);
        for o in &report.outcomes {
            assert!(o.seconds.is_finite() && o.seconds > 0.0, "{o:?}");
        }
        // Recovery costs strictly more than the plain protected run.
        let by_name = |n: &str| report.outcomes.iter().find(|o| o.variant == n).unwrap();
        assert!(by_name("Recovered").seconds > by_name("MaskedIdentical").seconds);
        assert!(by_name("Repaired").seconds > by_name("MaskedIdentical").seconds);
        assert!(by_name("Degraded").seconds > by_name("MaskedIdentical").seconds);
        assert!(by_name("FailedOver").seconds > by_name("MaskedIdentical").seconds);
    }

    #[test]
    fn checkpoint_versions_probe_as_specified() {
        let ck = probe_checkpoints();
        assert!(ck.ok(), "{ck:?}");
        // v2 legacy, v3 (pre-degraded counters), v4 (pre-failover
        // counters), and the current v5 all round-trip; v1 and future
        // versions are rejected.
        assert_eq!(ck.accepted, vec![2, 3, 4, CHECKPOINT_VERSION]);
    }

    #[test]
    fn report_is_ok_and_json_carries_the_gate_keys() {
        let report = analyse();
        assert!(report.ok());
        let json = report.to_json();
        assert!(json.contains("\"unprotected_critical_layers\": 0"));
        assert!(json.contains("\"checkpoint_versions_ok\": true"));
        assert!(json.contains("\"unpriced_outcomes\": 0"));
    }
}
