//! The four repo-specific source lints.
//!
//! Each lint matches against the channel the pattern belongs to (see
//! [`crate::lexer`]): code patterns against the comment/string-blanked code
//! channel, annotations against the comment channel, knob names against
//! string-literal contents. The annotation grammar is documented in
//! DESIGN.md §3f:
//!
//! * `// SAFETY: <invariant>` within 6 lines before (or 2 lines after, for
//!   comments placed just inside the block) an `unsafe` token; `unsafe fn`
//!   may use a `/// # Safety` doc section instead.
//! * `// ft2: nan-ok (<one-line proof>)` on, or up to 2 lines above, a
//!   comparison call in a detection-critical module.
//! * `// ft2: zero-ok (<reason>)` on, or up to 3 lines above, a zero-skip
//!   guard — normally unnecessary because `KernelPolicy::Fast` on the
//!   guard line (or just above it) already licenses the skip.

use crate::concurrency::{RankedLock, DETERMINISM_MODULES};
use crate::lexer::{Line, ScannedFile};
use crate::model::ScannedTree;
use crate::report::{Finding, LintKind};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Detection-critical modules where NaN-swallowing comparisons must carry
/// an audit annotation: the FT2 detector itself (`bounds`, `protect`,
/// `integrity`) and the `ft2-fault` paths that classify or detect faults.
pub const NAN_CRITICAL_MODULES: &[&str] = &[
    "crates/core/src/bounds.rs",
    "crates/core/src/protect.rs",
    "crates/core/src/integrity.rs",
    "crates/fault/src/model.rs",
    "crates/fault/src/dmr.rs",
    "crates/fault/src/watchdog.rs",
    "crates/fault/src/trace.rs",
];

/// Kernel code where `== 0.0` zero-skip guards are banned outside
/// `KernelPolicy::Fast`-gated paths (skipping a `0.0 * x` term masks the
/// NaN/Inf that an injected fault put in `x` — the PR 4 bug class).
pub const ZERO_SKIP_MODULES: &[&str] = &["crates/tensor/src/", "crates/model/src/"];

/// How many lines above an `unsafe` token a `SAFETY` comment may sit.
const UNSAFE_WINDOW_BEFORE: usize = 6;
/// How many lines below (for comments just inside the block).
const UNSAFE_WINDOW_AFTER: usize = 2;
/// Annotation window for `ft2: nan-ok`.
const NAN_WINDOW: usize = 2;
/// Annotation window for `ft2: zero-ok` / `KernelPolicy::Fast`.
const ZERO_WINDOW: usize = 3;

/// What to lint and against which knob registry.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Directory to scan recursively for `.rs` files.
    pub root: PathBuf,
    /// The registered knob names (from the harness knob registry).
    pub knobs: Vec<String>,
    /// README to check knob documentation against (`None` = skip the
    /// documentation direction of the env-knob lint).
    pub readme: Option<PathBuf>,
    /// Path substrings selecting detection-critical modules.
    pub nan_modules: Vec<String>,
    /// Path substrings selecting kernel modules for the zero-skip lint.
    pub zero_skip_modules: Vec<String>,
    /// Require every registered knob to be read somewhere in the scanned
    /// sources (only meaningful when scanning the full workspace).
    pub check_knob_used: bool,
    /// The declared lock-order registry (from
    /// `ft2_parallel::LOCK_REGISTRY` for the real tree; fixture trees
    /// declare their own).
    pub locks: Vec<RankedLock>,
    /// Path substrings selecting bit-identity-critical modules for the
    /// nondeterminism lint.
    pub det_modules: Vec<String>,
    /// Run the shutdown proof (only meaningful when the scanned tree
    /// contains the serving topology).
    pub check_shutdown: bool,
}

impl LintConfig {
    /// The configuration for linting this repository's own tree.
    pub fn for_tree(root: impl Into<PathBuf>, knobs: Vec<String>) -> LintConfig {
        let root = root.into();
        LintConfig {
            readme: Some(root.join("README.md")),
            // Only demand knob usage when the scanned tree contains the
            // registry's own crate; a fixture tree can't read every knob.
            check_knob_used: root.join("crates/harness").is_dir(),
            // The shutdown proof needs the whole serving topology.
            check_shutdown: root.join("crates/serve").is_dir()
                && root.join("crates/parallel").is_dir()
                && root.join("crates/harness").is_dir(),
            root,
            knobs,
            nan_modules: NAN_CRITICAL_MODULES.iter().map(|s| s.to_string()).collect(),
            zero_skip_modules: ZERO_SKIP_MODULES.iter().map(|s| s.to_string()).collect(),
            locks: ft2_parallel::LOCK_REGISTRY
                .iter()
                .map(|l| RankedLock {
                    name: l.name.to_string(),
                    rank: l.rank,
                    site: l.site.to_string(),
                })
                .collect(),
            det_modules: DETERMINISM_MODULES.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Recursively collect the `.rs` files under `root`, deterministically
/// ordered, skipping build output, VCS internals, and lint fixtures.
pub fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(rd) = std::fs::read_dir(dir) else { return };
        let mut entries: Vec<_> = rd.flatten().map(|e| e.path()).collect();
        entries.sort();
        for p in entries {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                if matches!(name, "target" | ".git" | "results" | "fixtures" | "snapshots") {
                    continue;
                }
                walk(&p, out);
            } else if name.ends_with(".rs") {
                out.push(p);
            }
        }
    }
    let mut v = Vec::new();
    walk(root, &mut v);
    v
}

/// Run every source lint over the tree. `Err` is reserved for environment
/// problems (unreadable root); lint violations come back as findings.
/// Scans the tree itself; [`crate::analyze`] scans once and uses
/// [`run_source_lints`] directly.
pub fn run_lints(cfg: &LintConfig) -> Result<Vec<Finding>, String> {
    let tree = crate::model::scan_tree(&cfg.root)?;
    Ok(run_source_lints(&tree, cfg))
}

/// The four PR 5 source lints over an already-scanned tree.
pub fn run_source_lints(tree: &ScannedTree, cfg: &LintConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut used_knobs: BTreeSet<String> = BTreeSet::new();
    for file in &tree.files {
        let rel = &file.rel;
        let scanned = &file.scanned;
        lint_unsafe(rel, scanned, &mut findings);
        if matches_any(rel, &cfg.nan_modules) {
            lint_nan_comparison(rel, scanned, &mut findings);
        }
        if matches_any(rel, &cfg.zero_skip_modules) {
            lint_zero_skip(rel, scanned, &mut findings);
        }
        lint_knob_literals(rel, scanned, &cfg.knobs, &mut used_knobs, &mut findings);
    }
    lint_knob_registry(cfg, &used_knobs, &mut findings);
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint))
    });
    findings
}

/// `root`-relative path with forward slashes (stable across platforms).
pub(crate) fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn matches_any(rel: &str, needles: &[String]) -> bool {
    needles.iter().any(|n| rel.contains(n.as_str()))
}

/// Does `code` contain `word` as a standalone token?
pub(crate) fn contains_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let post_ok = end == bytes.len() || !is_ident_byte(bytes[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Does any comment in `lines[lo..=hi]` contain `needle`?
fn comment_window_contains(lines: &[Line], lo: usize, hi: usize, needle: &str) -> bool {
    lines[lo..=hi.min(lines.len() - 1)]
        .iter()
        .any(|l| l.comment.contains(needle))
}

fn window_lo(i: usize, before: usize) -> usize {
    i.saturating_sub(before)
}

/// Lint 1: every `unsafe` token needs a written safety argument nearby.
fn lint_unsafe(rel: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    for (i, line) in scanned.lines.iter().enumerate() {
        if !contains_word(&line.code, "unsafe") {
            continue;
        }
        let lo = window_lo(i, UNSAFE_WINDOW_BEFORE);
        let hi = i + UNSAFE_WINDOW_AFTER;
        let justified = comment_window_contains(&scanned.lines, lo, hi, "SAFETY:")
            || comment_window_contains(&scanned.lines, lo, hi, "# Safety");
        if !justified {
            findings.push(Finding {
                lint: LintKind::UnsafeSafety,
                file: rel.to_string(),
                line: i + 1,
                message: "`unsafe` without a `// SAFETY:` comment (or `/// # Safety` \
                          doc section) stating the upheld invariant"
                    .to_string(),
            });
        }
    }
}

/// Comparison calls that silently drop NaN operands (`f32::min`/`max`
/// return the non-NaN operand; `partial_cmp` returns `None`).
const NAN_PATTERNS: &[&str] = &[
    ".min(",
    ".max(",
    ".clamp(",
    "partial_cmp",
    "total_cmp",
    "f32::min",
    "f32::max",
];

/// Lint 2: in detection-critical modules, every ordering/clamp call site
/// must be audited for NaN behaviour and annotated.
fn lint_nan_comparison(rel: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    for (i, line) in scanned.lines.iter().enumerate() {
        let Some(pat) = NAN_PATTERNS.iter().find(|p| line.code.contains(**p)) else {
            continue;
        };
        let lo = window_lo(i, NAN_WINDOW);
        if comment_window_contains(&scanned.lines, lo, i, "ft2: nan-ok") {
            continue;
        }
        findings.push(Finding {
            lint: LintKind::NanComparison,
            file: rel.to_string(),
            line: i + 1,
            message: format!(
                "`{}` in a detection-critical module swallows NaN operands; \
                 audit the site and annotate `// ft2: nan-ok (<proof>)` or \
                 rewrite with an explicit NaN guard",
                pat.trim_matches(['.', '('])
            ),
        });
    }
}

/// Lint 3: zero-skip guards are only legal on `KernelPolicy::Fast` paths.
fn lint_zero_skip(rel: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    for (i, line) in scanned.lines.iter().enumerate() {
        let code = &line.code;
        let has_cmp = code.contains("== 0.0") || code.contains("!= 0.0");
        let guardish = ["if ", "while ", "&&", "||"].iter().any(|g| code.contains(g));
        if !(has_cmp && guardish) {
            continue;
        }
        let lo = window_lo(i, ZERO_WINDOW);
        let gated = scanned.lines[lo..=i]
            .iter()
            .any(|l| l.code.contains("KernelPolicy::Fast"))
            || comment_window_contains(&scanned.lines, lo, i, "ft2: zero-ok");
        if !gated {
            findings.push(Finding {
                lint: LintKind::ZeroSkip,
                file: rel.to_string(),
                line: i + 1,
                message: "zero-skip guard outside `KernelPolicy::Fast`-gated code: \
                          skipping a `0.0` multiplier masks the NaN/Inf an injected \
                          fault put in the other operand; gate on \
                          `KernelPolicy::Fast` or annotate `// ft2: zero-ok (<reason>)`"
                    .to_string(),
            });
        }
    }
}

/// Extract `FT2_*` knob tokens from one string-literal content.
fn knob_tokens(s: &str) -> Vec<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = s[from..].find("FT2_") {
        let start = from + pos;
        if start > 0 && is_knob_byte(bytes[start - 1]) {
            from = start + 1;
            continue;
        }
        let mut end = start + 4;
        while end < bytes.len() && is_knob_byte(bytes[end]) {
            end += 1;
        }
        if end > start + 4 {
            out.push(s[start..end].to_string());
        }
        from = end;
    }
    out
}

fn is_knob_byte(b: u8) -> bool {
    b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_'
}

/// Lint 4a: every `FT2_*` string literal must name a registered knob.
fn lint_knob_literals(
    rel: &str,
    scanned: &ScannedFile,
    knobs: &[String],
    used: &mut BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    for (i, line) in scanned.lines.iter().enumerate() {
        for lit in &line.strings {
            for token in knob_tokens(lit) {
                if knobs.contains(&token) {
                    used.insert(token);
                } else {
                    findings.push(Finding {
                        lint: LintKind::EnvKnob,
                        file: rel.to_string(),
                        line: i + 1,
                        message: format!(
                            "env knob `{token}` is not in the central registry; \
                             add a `KnobSpec` entry in crates/harness/src/settings.rs \
                             (and a README row)"
                        ),
                    });
                }
            }
        }
    }
}

/// Lint 4b (registry-wide): each registered knob must be documented in
/// README and actually read somewhere in the tree.
fn lint_knob_registry(cfg: &LintConfig, used: &BTreeSet<String>, findings: &mut Vec<Finding>) {
    let readme_text = cfg
        .readme
        .as_ref()
        .map(|p| std::fs::read_to_string(p).unwrap_or_default());
    for knob in &cfg.knobs {
        if let Some(text) = &readme_text {
            if !contains_knob_token(text, knob) {
                findings.push(Finding {
                    lint: LintKind::EnvKnob,
                    file: "README.md".to_string(),
                    line: 0,
                    message: format!("registered env knob `{knob}` is not documented in README"),
                });
            }
        }
        if cfg.check_knob_used && !used.contains(knob) {
            findings.push(Finding {
                lint: LintKind::EnvKnob,
                file: "crates/harness/src/settings.rs".to_string(),
                line: 0,
                message: format!(
                    "registered env knob `{knob}` is never read in the scanned sources; \
                     drop the registry entry or wire the knob up"
                ),
            });
        }
    }
}

/// Does `text` contain `knob` as a whole token (not as a substring of a
/// longer knob name)?
fn contains_knob_token(text: &str, knob: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(knob) {
        let start = from + pos;
        let end = start + knob.len();
        let pre_ok = start == 0 || !is_knob_byte(bytes[start - 1]);
        let post_ok = end == bytes.len() || !is_knob_byte(bytes[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(src: &str) -> ScannedFile {
        crate::lexer::scan(src)
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let mut f = Vec::new();
        lint_unsafe("x.rs", &scan_str("fn f() { unsafe { g() } }\n"), &mut f);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);

        let mut f = Vec::new();
        lint_unsafe(
            "x.rs",
            &scan_str("// SAFETY: g has no preconditions.\nfn f() { unsafe { g() } }\n"),
            &mut f,
        );
        assert!(f.is_empty());
    }

    #[test]
    fn unsafe_fn_doc_safety_section_counts() {
        let src = "/// # Safety\n/// Caller guarantees `p` is valid.\npub unsafe fn f(p: *const u8) {}\n";
        let mut f = Vec::new();
        lint_unsafe("x.rs", &scan_str(src), &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn unsafe_in_comment_or_string_is_ignored() {
        let src = "// this mentions unsafe code\nlet s = \"unsafe\";\n";
        let mut f = Vec::new();
        lint_unsafe("x.rs", &scan_str(src), &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn nan_comparison_needs_annotation() {
        let mut f = Vec::new();
        lint_nan_comparison("b.rs", &scan_str("let c = v.min(hi).max(lo);\n"), &mut f);
        assert_eq!(f.len(), 1);

        let mut f = Vec::new();
        lint_nan_comparison(
            "b.rs",
            &scan_str("// ft2: nan-ok (NaN handled upstream)\nlet c = v.min(hi).max(lo);\n"),
            &mut f,
        );
        assert!(f.is_empty());
    }

    #[test]
    fn zero_skip_requires_fast_gate() {
        let mut f = Vec::new();
        lint_zero_skip("g.rs", &scan_str("if aval == 0.0 { continue; }\n"), &mut f);
        assert_eq!(f.len(), 1);

        let mut f = Vec::new();
        lint_zero_skip(
            "g.rs",
            &scan_str("if policy == KernelPolicy::Fast && aval == 0.0 { continue; }\n"),
            &mut f,
        );
        assert!(f.is_empty());

        // A bare equality test that is not a control-flow guard passes.
        let mut f = Vec::new();
        lint_zero_skip("g.rs", &scan_str("assert!(diff == 0.0);\n"), &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn knob_tokens_split_multi_knob_strings() {
        assert_eq!(
            knob_tokens("FT2_INPUTS=50 FT2_TRIALS=500"),
            vec!["FT2_INPUTS".to_string(), "FT2_TRIALS".to_string()]
        );
        assert!(knob_tokens("XFT2_FOO").is_empty()); // not a token start
        assert!(knob_tokens("FT2_").is_empty()); // bare prefix
    }

    #[test]
    fn knob_literal_must_be_registered() {
        // Knob names assembled at runtime so this test's own source does
        // not trip the lint it is testing.
        let registered = format!("FT2_{}", "SEED");
        let bogus = format!("FT2_{}", "BOGUS");
        let knobs = vec![registered.clone()];
        let mut used = BTreeSet::new();
        let mut f = Vec::new();
        let src = format!(
            "let a = std::env::var(\"{registered}\");\nlet b = std::env::var(\"{bogus}\");\n"
        );
        lint_knob_literals("s.rs", &scan_str(&src), &knobs, &mut used, &mut f);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains(&bogus));
        assert!(used.contains(&registered));
    }

    #[test]
    fn knob_token_containment_respects_boundaries() {
        let knob = format!("FT2_{}", "SEED");
        assert!(contains_knob_token(&format!("knob `{knob}` here"), &knob));
        assert!(!contains_knob_token(&format!("only {knob}_EXTRA here"), &knob));
    }
}
