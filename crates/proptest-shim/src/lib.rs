//! A vendored, dependency-free re-implementation of the subset of the
//! `proptest` API this workspace uses.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! (and its sizeable dependency tree) cannot be resolved. The property
//! tests themselves are valuable, so instead of deleting them this crate
//! provides the same surface — the [`proptest!`] macro, range/`any`/
//! collection/sample strategies, `prop_map`/`prop_flat_map`, and the
//! `prop_assert*` macros — backed by a deterministic splitmix64 generator.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking: a failing case reports its inputs via the assertion
//!   message and the deterministic per-test seed makes it reproducible;
//! * `prop_assert*` are plain `assert*` (they panic instead of returning
//!   `Err`), which is equivalent under the test harness;
//! * the number of cases defaults to 64 and is overridable with
//!   `PROPTEST_CASES`; the base seed with `PROPTEST_SEED`.

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    /// Deterministic splitmix64 generator seeded per test function.
    pub struct Gen {
        state: u64,
    }

    impl Gen {
        /// Generator seeded from the test name (stable across runs) and
        /// the optional `PROPTEST_SEED` environment variable.
        pub fn for_test(name: &str) -> Gen {
            let mut seed: u64 = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x9E37_79B9_7F4A_7C15);
            for b in name.bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01B3);
            }
            Gen { state: seed }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift (Lemire); bias is negligible for test sizing.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Number of cases per property (`PROPTEST_CASES`, default 64).
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

use test_runner::Gen;

/// A generator of values for one property parameter.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value and use it to build a second
    /// strategy that produces the final value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, gen: &mut Gen) -> O {
        (self.f)(self.inner.generate(gen))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, gen: &mut Gen) -> S2::Value {
        (self.f)(self.inner.generate(gen)).generate(gen)
    }
}

/// Always produces a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _gen: &mut Gen) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + gen.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return gen.next_u64() as $t;
                }
                (lo as i128 + gen.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start as f64 + gen.unit() * (self.end as f64 - self.start as f64);
                v as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                let v = lo + gen.unit() * (hi - lo);
                v as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(gen),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Trait behind [`any`], mirroring `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(gen: &mut Gen) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(gen: &mut Gen) -> $t {
                gen.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(gen: &mut Gen) -> bool {
        gen.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(gen: &mut Gen) -> f32 {
        ((gen.unit() - 0.5) * 2e9) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(gen: &mut Gen) -> f64 {
        (gen.unit() - 0.5) * 2e18
    }
}

/// Strategy for an unconstrained value of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, gen: &mut Gen) -> T {
        T::arbitrary(gen)
    }
}

/// An unconstrained value of `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::test_runner::Gen;
        use crate::Strategy;

        /// Size specification for [`vec`]: exact, `a..b`, or `a..=b`.
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi_inclusive: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
            }
        }

        /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// A vector whose elements come from `element` and whose length
        /// comes from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
                let span = (self.size.hi_inclusive - self.size.lo) as u64;
                let n = self.size.lo + if span == 0 { 0 } else { gen.below(span + 1) as usize };
                (0..n).map(|_| self.element.generate(gen)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::test_runner::Gen;
        use crate::Strategy;

        /// Strategy choosing uniformly among fixed options.
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        /// Choose uniformly from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, gen: &mut Gen) -> T {
                self.options[gen.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner;
    pub use crate::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skip the current generated case when an assumption does not hold. Only
/// valid directly inside a [`proptest!`] body (it continues the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert inside a property body (panics; no shrink phase here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declare property tests: each `fn name(arg in strategy, ...)` expands to
/// a `#[test]` that runs the body for [`test_runner::cases`] generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __gen = $crate::test_runner::Gen::for_test(stringify!($name));
                for __case in 0..$crate::test_runner::cases() {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __gen);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges stay in bounds for ints and floats.
        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in -2.5f32..2.5, c in 1u64..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2.5..2.5).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        /// vec sizes respect the size range; select picks from options.
        #[test]
        fn collections_and_select(
            xs in prop::collection::vec(any::<u32>(), 2..5),
            pick in prop::sample::select(vec![7u8, 8, 9]),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!([7u8, 8, 9].contains(&pick));
        }

        /// prop_map / prop_flat_map compose.
        #[test]
        fn combinators(v in (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
            prop::collection::vec(0f64..1.0, r * c).prop_map(move |d| (r, c, d))
        })) {
            let (r, c, d) = v;
            prop_assert_eq!(d.len(), r * c);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = test_runner::Gen::for_test("x");
        let mut b = test_runner::Gen::for_test("x");
        let mut c = test_runner::Gen::for_test("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
