//! Property-based tests for the parallel substrate.

use ft2_parallel::{
    parallel_map, parallel_reduce, scope::split_ranges, WorkStealingPool,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

proptest! {
    /// split_ranges always partitions [0, n) exactly, with balanced pieces.
    #[test]
    fn split_ranges_partitions(n in 0usize..5000, w in 1usize..64) {
        let ranges = split_ranges(n, w);
        let mut cursor = 0usize;
        for (lo, hi) in &ranges {
            prop_assert_eq!(*lo, cursor);
            prop_assert!(hi > lo);
            cursor = *hi;
        }
        prop_assert_eq!(cursor, n);
        if let (Some(min), Some(max)) = (
            ranges.iter().map(|(a, b)| b - a).min(),
            ranges.iter().map(|(a, b)| b - a).max(),
        ) {
            prop_assert!(max - min <= 1);
        }
    }

    /// parallel_map equals the sequential map for arbitrary data.
    #[test]
    fn map_matches_sequential(xs in prop::collection::vec(any::<u32>(), 0..500)) {
        let par = parallel_map(&xs, |i, &x| (x as u64).wrapping_mul(31) ^ i as u64);
        let seq: Vec<u64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (x as u64).wrapping_mul(31) ^ i as u64)
            .collect();
        prop_assert_eq!(par, seq);
    }

    /// parallel_reduce with a commutative monoid equals the sequential fold.
    #[test]
    fn reduce_matches_fold(n in 0usize..2000, mult in 1u64..100) {
        let par = parallel_reduce(n, 0u64, |i| i as u64 * mult, |a, b| a.wrapping_add(b));
        let seq: u64 = (0..n as u64).map(|i| i * mult).fold(0, u64::wrapping_add);
        prop_assert_eq!(par, seq);
    }

    /// The pool visits every index exactly once for any (n, grain, threads).
    #[test]
    fn pool_visits_exactly_once(
        n in 0usize..800,
        grain in 1usize..64,
        threads in 1usize..6,
    ) {
        let pool = WorkStealingPool::new(threads);
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.run(n, grain, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "index {} visited wrong count", i);
        }
    }

    /// pool.map preserves order for any thread count.
    #[test]
    fn pool_map_order(xs in prop::collection::vec(any::<u16>(), 0..400), threads in 1usize..5) {
        let pool = WorkStealingPool::new(threads);
        let out = pool.map(&xs, 7, |i, &x| (i, x));
        for (i, (j, x)) in out.iter().enumerate() {
            prop_assert_eq!(i, *j);
            prop_assert_eq!(*x, xs[i]);
        }
    }
}
