//! Stress test: the work-stealing pool under concurrent request
//! cancellation and eviction (the serving scheduler's failure mode).
//!
//! Batches of pool tasks spin on a [`ShardHeartbeat`] like hung requests
//! while the driver cancels and evicts slots mid-flight. The pool must
//! drain every batch without deadlock or leaked state, preserve the panic
//! taxonomy (each aborting task surfaces as exactly one [`TaskPanic`] with
//! its own index and message), and stay reusable for clean batches
//! afterwards.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use ft2_parallel::{HeartbeatMonitor, WorkStealingPool};

/// Deterministic per-round choice of which task indices get cancelled.
fn cancelled_in_round(round: usize, n: usize) -> Vec<usize> {
    (0..n).filter(|i| (i * 7 + round * 3).is_multiple_of(5)).collect()
}

#[test]
fn pool_drains_under_concurrent_cancellation_and_eviction() {
    const TASKS: usize = 12;
    const ROUNDS: usize = 6;
    let pool = WorkStealingPool::new(4);
    // Manual cancellation only — a long timeout keeps the watchdog quiet.
    let monitor = HeartbeatMonitor::spawn(TASKS, Duration::from_secs(30));
    let hb = monitor.state();
    let completed = AtomicUsize::new(0);

    for round in 0..ROUNDS {
        let doomed = cancelled_in_round(round, TASKS);
        // Half the doomed slots are evicted outright (they must stop
        // quietly), the other half are cancelled (they must abort loudly).
        let (evicted, cancelled): (Vec<usize>, Vec<usize>) =
            doomed.iter().copied().partition(|i| i % 2 == 0);
        for &i in &cancelled {
            hb.cancel(i);
        }
        for &i in &evicted {
            hb.evict(i);
        }

        let panics = pool.try_run(TASKS, 1, |i| {
            hb.begin(i);
            // Spin like a request waiting on work until the driver
            // decides this slot's fate; survivors do bounded work.
            for _ in 0..10_000 {
                if hb.is_cancelled(i) {
                    panic!("request {i} cancelled in round {round}");
                }
                if hb.is_evicted(i) {
                    // Evicted requests stop cleanly, never panic.
                    hb.end(i);
                    return;
                }
                std::hint::spin_loop();
            }
            hb.end(i);
            completed.fetch_add(1, Ordering::SeqCst);
        });

        // Taxonomy: exactly the cancelled tasks panic, each exactly once,
        // with its own index threaded through.
        let mut got: Vec<usize> = panics.iter().map(|p| p.index).collect();
        got.sort_unstable();
        let mut want = cancelled.clone();
        want.sort_unstable();
        assert_eq!(got, want, "round {round}: cancelled set must panic");
        for p in &panics {
            assert!(
                p.message.contains(&format!("request {} cancelled", p.index)),
                "round {round}: panic message lost its payload: {}",
                p.message
            );
        }
        // Evicted slots must not be reported hung or cancelled afterwards.
        for &i in &evicted {
            assert!(hb.is_evicted(i));
            assert!(!hb.is_cancelled(i), "evicted slot {i} reported cancelled");
        }

        // Hand every slot back for the next round.
        for i in 0..TASKS {
            hb.reset(i);
        }
    }

    // The pool survived every storm: a clean batch runs to completion
    // with no stragglers from earlier rounds.
    let clean = AtomicUsize::new(0);
    let panics = pool.try_run(TASKS * 4, 1, |_| {
        clean.fetch_add(1, Ordering::SeqCst);
    });
    assert!(panics.is_empty(), "clean batch after storms must not panic");
    assert_eq!(clean.load(Ordering::SeqCst), TASKS * 4);
    assert!(completed.load(Ordering::SeqCst) > 0, "survivors did work");
}

#[test]
fn mid_flight_cancellation_aborts_spinning_tasks() {
    const TASKS: usize = 8;
    let pool = WorkStealingPool::new(4);
    // Real watchdog: tasks that never beat are cancelled by the monitor
    // while they spin — the serving "hung request" path.
    let monitor = HeartbeatMonitor::spawn(TASKS, Duration::from_millis(10));
    let hb = monitor.state();
    let panics = pool.try_run(TASKS, 1, |i| {
        hb.begin(i);
        if i % 2 == 0 {
            // Healthy request: finishes immediately.
            hb.end(i);
            return;
        }
        // Hung request: stops beating and spins until the watchdog fires.
        loop {
            if hb.is_cancelled(i) {
                panic!("hung request {i} isolated by heartbeat");
            }
            std::hint::spin_loop();
        }
    });
    let mut got: Vec<usize> = panics.iter().map(|p| p.index).collect();
    got.sort_unstable();
    let want: Vec<usize> = (0..TASKS).filter(|i| i % 2 == 1).collect();
    assert_eq!(got, want, "exactly the hung requests abort");
    // The pool is immediately reusable.
    let sum = AtomicUsize::new(0);
    let clean = pool.try_run(16, 1, |i| {
        sum.fetch_add(i, Ordering::SeqCst);
    });
    assert!(clean.is_empty());
    assert_eq!(sum.load(Ordering::SeqCst), (0..16).sum::<usize>());
}
