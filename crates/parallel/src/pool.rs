//! A persistent work-stealing thread pool over `crossbeam-deque`.
//!
//! The campaign engine in `ft2-fault` issues hundreds of thousands of
//! independent trials whose costs differ by an order of magnitude. Static
//! chunking leaves threads idle at the tail; a shared injector queue
//! serialises on one atomic. The classic answer is work stealing: each
//! worker owns a LIFO deque, pulls from a global FIFO injector when its
//! deque is empty, and steals from siblings when the injector is dry.
//!
//! The pool executes *batches*: [`WorkStealingPool::run`] blocks until every
//! task of the batch has completed, writing results by task index so output
//! is deterministic. Workers park between batches, so a pool can be reused
//! across an entire campaign without re-spawning threads.

use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Type-erased batch task: `run(task_index)`.
type BatchFn = Arc<dyn Fn(usize) + Send + Sync>;

struct BatchState {
    /// Task closure for the current batch (None between batches).
    job: Mutex<Option<BatchFn>>,
    /// Generation counter: bumped for each new batch to wake workers.
    generation: AtomicUsize,
    /// Tasks remaining in the current batch.
    remaining: AtomicUsize,
    /// Workers currently holding a clone of the batch closure. `run` waits
    /// for this to hit zero so no borrow of the caller's stack outlives it.
    active: AtomicUsize,
    /// Signalled when a new batch is published or shutdown requested.
    work_cv: Condvar,
    work_mx: Mutex<usize>, // holds the latest published generation
    /// Signalled when `remaining` reaches zero.
    done_cv: Condvar,
    done_mx: Mutex<()>,
    shutdown: AtomicBool,
    injector: Injector<(usize, usize)>, // ranges (lo, hi)
}

/// A fixed-size pool of worker threads with per-worker deques and a global
/// injector. See the module docs for the execution model.
pub struct WorkStealingPool {
    state: Arc<BatchState>,
    stealers: Arc<Vec<Stealer<(usize, usize)>>>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkStealingPool {
    /// Spawn a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let state = Arc::new(BatchState {
            job: Mutex::new(None),
            generation: AtomicUsize::new(0),
            remaining: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            work_cv: Condvar::new(),
            work_mx: Mutex::new(0),
            done_cv: Condvar::new(),
            done_mx: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            injector: Injector::new(),
        });

        let workers: Vec<Worker<(usize, usize)>> =
            (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers: Arc<Vec<Stealer<(usize, usize)>>> =
            Arc::new(workers.iter().map(|w| w.stealer()).collect());

        let mut handles = Vec::with_capacity(threads);
        for (wid, local) in workers.into_iter().enumerate() {
            let state = Arc::clone(&state);
            let stealers = Arc::clone(&stealers);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ft2-worker-{wid}"))
                    .spawn(move || worker_loop(wid, local, state, stealers))
                    .expect("failed to spawn pool worker"),
            );
        }
        WorkStealingPool {
            state,
            stealers,
            handles,
            threads,
        }
    }

    /// Pool with one worker per available core.
    pub fn with_default_threads() -> Self {
        Self::new(crate::scope::num_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `f(i)` for all `i in 0..n` on the pool in blocks of `grain`,
    /// blocking until the whole batch completes. Panics in tasks abort the
    /// process (they would otherwise deadlock the barrier), which is the
    /// behaviour we want for campaign bugs.
    pub fn run<F>(&self, n: usize, grain: usize, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if n == 0 {
            return;
        }
        let grain = grain.max(1);
        // Type-erase the closure. SAFETY of the lifetime: we block until
        // `remaining == 0`, so no worker can touch `f` after `run` returns.
        // We encode this by transmuting the closure to 'static behind Arc.
        let boxed: Arc<dyn Fn(usize) + Send + Sync> = Arc::new(f);
        let boxed: BatchFn = unsafe { std::mem::transmute(boxed) };

        let blocks = n.div_ceil(grain);
        self.state.remaining.store(blocks, Ordering::SeqCst);
        *self.state.job.lock() = Some(boxed);
        let mut lo = 0;
        while lo < n {
            let hi = (lo + grain).min(n);
            self.state.injector.push((lo, hi));
            lo = hi;
        }
        // Publish the new generation and wake everyone.
        let gen = self.state.generation.fetch_add(1, Ordering::SeqCst) + 1;
        {
            let mut g = self.state.work_mx.lock();
            *g = gen;
            self.state.work_cv.notify_all();
        }
        // Help out from the calling thread: steal blocks from the injector.
        loop {
            match self.state.injector.steal() {
                crossbeam::deque::Steal::Success((lo, hi)) => {
                    let job = self.state.job.lock().clone();
                    if let Some(job) = job {
                        for i in lo..hi {
                            job(i);
                        }
                    }
                    self.state.remaining.fetch_sub(1, Ordering::SeqCst);
                }
                crossbeam::deque::Steal::Retry => continue,
                crossbeam::deque::Steal::Empty => break,
            }
        }
        // Wait until every block has run AND every worker has dropped its
        // clone of the batch closure (so borrows of the caller's stack
        // cannot outlive this call).
        let mut guard = self.state.done_mx.lock();
        while self.state.remaining.load(Ordering::SeqCst) != 0
            || self.state.active.load(Ordering::SeqCst) != 0
        {
            self.state.done_cv.wait(&mut guard);
        }
        drop(guard);
        *self.state.job.lock() = None;
    }

    /// Parallel map on the pool: results in input-index order.
    pub fn map<T, R, F>(&self, items: &[T], grain: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Send + Sync,
    {
        let n = items.len();
        let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
        #[allow(clippy::uninit_vec)]
        unsafe {
            out.set_len(n);
        }
        let out_ptr = SendPtr(out.as_mut_ptr());
        self.run(n, grain, |i| {
            let r = f(i, &items[i]);
            // SAFETY: each index written exactly once.
            unsafe {
                out_ptr.get().add(i).write(MaybeUninit::new(r));
            }
        });
        // SAFETY: all slots initialised by the completed batch.
        unsafe {
            let mut v = std::mem::ManuallyDrop::new(out);
            Vec::from_raw_parts(v.as_mut_ptr() as *mut R, v.len(), v.capacity())
        }
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        {
            let mut g = self.state.work_mx.lock();
            *g = usize::MAX;
            self.state.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        let _ = &self.stealers;
    }
}

fn worker_loop(
    wid: usize,
    local: Worker<(usize, usize)>,
    state: Arc<BatchState>,
    stealers: Arc<Vec<Stealer<(usize, usize)>>>,
) {
    let mut seen_gen = 0usize;
    loop {
        // Wait for a new batch (or shutdown).
        {
            let mut g = state.work_mx.lock();
            while *g <= seen_gen && !state.shutdown.load(Ordering::SeqCst) {
                state.work_cv.wait(&mut g);
            }
            seen_gen = *g;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let job = state.job.lock().clone();
        let Some(job) = job else { continue };
        state.active.fetch_add(1, Ordering::SeqCst);

        // Drain: local deque, then injector, then steal from siblings.
        loop {
            let block = local.pop().or_else(|| {
                std::iter::repeat_with(|| {
                    state
                        .injector
                        .steal_batch_and_pop(&local)
                        .or_else(|| {
                            stealers
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| *i != wid)
                                .map(|(_, s)| s.steal())
                                .collect()
                        })
                })
                .find(|s| !s.is_retry())
                .and_then(|s| s.success())
            });
            match block {
                Some((lo, hi)) => {
                    for i in lo..hi {
                        job(i);
                    }
                    if state.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                        let _g = state.done_mx.lock();
                        state.done_cv.notify_all();
                    }
                }
                None => break,
            }
        }
        // Drop the closure clone *before* signalling inactivity.
        drop(job);
        state.active.fetch_sub(1, Ordering::SeqCst);
        {
            let _g = state.done_mx.lock();
            state.done_cv.notify_all();
        }
    }
}

struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_executes_every_index_once() {
        let pool = WorkStealingPool::new(4);
        let hits = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        pool.run(10_000, 32, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10_000);
        assert_eq!(sum.load(Ordering::Relaxed), 9999u64 * 10_000 / 2);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkStealingPool::new(3);
        for batch in 0..5 {
            let hits = AtomicU64::new(0);
            pool.run(1000 + batch, 16, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 1000 + batch as u64);
        }
    }

    #[test]
    fn map_preserves_order_with_irregular_cost() {
        let pool = WorkStealingPool::new(4);
        let items: Vec<u64> = (0..2000).collect();
        let out = pool.map(&items, 8, |i, &x| {
            // Make cost irregular to exercise stealing.
            if x % 97 == 0 {
                std::thread::yield_now();
            }
            x * 2 + i as u64
        });
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * 2 + i as u64).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let pool = WorkStealingPool::new(2);
        pool.run(0, 8, |_| panic!("should not run"));
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = WorkStealingPool::new(1);
        let hits = AtomicU64::new(0);
        pool.run(100, 7, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        for _ in 0..10 {
            let pool = WorkStealingPool::new(4);
            pool.run(100, 4, |_| {});
            drop(pool);
        }
    }
}
