//! A persistent, panic-isolating work-stealing thread pool.
//!
//! The campaign engine in `ft2-fault` issues hundreds of thousands of
//! independent trials whose costs differ by an order of magnitude. Static
//! chunking leaves threads idle at the tail; a shared queue serialises on
//! one lock. The classic answer is work stealing: each worker owns a deque,
//! takes from its own back (LIFO, cache-warm), and steals from siblings'
//! fronts (FIFO, coarse) when it runs dry. This implementation is built
//! purely on `std::sync` so the workspace has no external dependencies.
//!
//! The pool executes *batches*: [`WorkStealingPool::run`] blocks until every
//! task of the batch has completed, writing results by task index so output
//! is deterministic. Workers park between batches, so a pool can be reused
//! across an entire campaign without re-spawning threads.
//!
//! **Panic isolation.** Every task runs under [`crate::panics::catch_quiet`].
//! A panicking task can therefore never deadlock the batch barrier, poison a
//! worker, or abort the process: the panic is recorded as a [`TaskPanic`]
//! (task index, `file:line` site, message), the batch runs to completion,
//! and the pool stays usable for the next batch. [`WorkStealingPool::run`]
//! re-raises a summary panic after the batch so plain data-parallel callers
//! still observe their bugs; [`WorkStealingPool::try_run`] returns the
//! records instead, which is what the campaign engine builds its
//! `Outcome::Crash` classification on.

use crate::lock_clean::{lock_clean, wait_clean};
use crate::panics::catch_quiet;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased batch task: `run(task_index)`.
type BatchFn = Arc<dyn Fn(usize) + Send + Sync>;

/// One task panic caught during a batch.
#[derive(Clone, Debug)]
pub struct TaskPanic {
    /// The task index whose closure panicked.
    pub index: usize,
    /// `file:line` of the panic, when known.
    pub site: String,
    /// The panic message.
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked at {}: {}", self.index, self.site, self.message)
    }
}

struct BatchState {
    /// Task closure for the current batch (None between batches).
    job: Mutex<Option<BatchFn>>,
    /// Per-worker block deques; slot `threads` belongs to the caller.
    queues: Vec<Mutex<VecDeque<(usize, usize)>>>,
    /// Tasks remaining in the current batch.
    remaining: AtomicUsize,
    /// Workers currently holding a clone of the batch closure. `run` waits
    /// for this to hit zero so no borrow of the caller's stack outlives it.
    active: AtomicUsize,
    /// Panics caught during the current batch, in discovery order.
    panics: Mutex<Vec<TaskPanic>>,
    /// Latest published batch generation; guarded by `work_mx`.
    work_mx: Mutex<usize>,
    /// Signalled when a new batch is published or shutdown requested.
    work_cv: Condvar,
    /// Guards the batch-completion wait.
    done_mx: Mutex<()>,
    /// Signalled when `remaining` reaches zero or a worker goes inactive.
    done_cv: Condvar,
    shutdown: AtomicBool,
}

impl BatchState {
    /// Pop a block: own queue from the back, siblings from the front.
    fn take_block(&self, own: usize) -> Option<(usize, usize)> {
        if let Some(b) = lock_clean(&self.queues[own]).pop_back() {
            return Some(b);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (own + off) % n;
            if let Some(b) = lock_clean(&self.queues[victim]).pop_front() {
                return Some(b);
            }
        }
        None
    }

    /// Run one block of tasks, isolating per-task panics, then retire it.
    fn run_block(&self, job: &BatchFn, lo: usize, hi: usize) {
        for i in lo..hi {
            if let Err(caught) = catch_quiet(|| job(i)) {
                let mut panics = lock_clean(&self.panics);
                panics.push(TaskPanic {
                    index: i,
                    site: caught.site,
                    message: caught.message,
                });
            }
        }
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = lock_clean(&self.done_mx);
            self.done_cv.notify_all();
        }
    }
}

/// A fixed-size pool of worker threads with per-worker deques and lock-based
/// stealing. See the module docs for the execution and panic model.
pub struct WorkStealingPool {
    state: Arc<BatchState>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkStealingPool {
    /// Spawn a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let state = Arc::new(BatchState {
            job: Mutex::new(None),
            // One deque per worker plus one for the caller thread.
            queues: (0..=threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            remaining: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            panics: Mutex::new(Vec::new()),
            work_mx: Mutex::new(0),
            work_cv: Condvar::new(),
            done_mx: Mutex::new(()),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });

        let mut handles = Vec::with_capacity(threads);
        for wid in 0..threads {
            let state = Arc::clone(&state);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ft2-worker-{wid}"))
                    .spawn(move || worker_loop(wid, state))
                    .expect("failed to spawn pool worker"),
            );
        }
        WorkStealingPool {
            state,
            handles,
            threads,
        }
    }

    /// Pool with one worker per available core.
    pub fn with_default_threads() -> Self {
        Self::new(crate::scope::num_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `f(i)` for all `i in 0..n` on the pool in blocks of `grain`,
    /// blocking until the whole batch completes. Panicking tasks are
    /// isolated (the batch still completes and the pool stays usable);
    /// returns every caught panic in task-discovery order.
    pub fn try_run<F>(&self, n: usize, grain: usize, f: F) -> Vec<TaskPanic>
    where
        F: Fn(usize) + Send + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let grain = grain.max(1);
        // Invariant upheld by the transmute below: this function does not
        // return until (a) `remaining == 0` — every queued block has run —
        // and (b) `active == 0` *after* each worker dropped its clone of
        // the Arc (workers `drop(job)` before decrementing `active`), and
        // the caller-held clones are dropped here before the wait loop, so
        // no reference derived from `f` survives this call.
        let boxed: Arc<dyn Fn(usize) + Send + Sync> = Arc::new(f);
        // SAFETY: erases only the closure's lifetime to 'static (same fat
        // pointer layout); sound because no worker can touch `f` after this
        // call returns, per the wait-for-drain invariant above.
        let boxed: BatchFn = unsafe { std::mem::transmute(boxed) };

        let blocks = n.div_ceil(grain);
        self.state.remaining.store(blocks, Ordering::SeqCst);
        lock_clean(&self.state.panics).clear();
        *lock_clean(&self.state.job) = Some(Arc::clone(&boxed));

        // Distribute blocks round-robin over all deques (workers + caller).
        let slots = self.state.queues.len();
        let mut lo = 0;
        let mut slot = 0;
        while lo < n {
            let hi = (lo + grain).min(n);
            lock_clean(&self.state.queues[slot]).push_back((lo, hi));
            slot = (slot + 1) % slots;
            lo = hi;
        }

        // Publish the new generation and wake everyone.
        {
            let mut g = lock_clean(&self.state.work_mx);
            *g += 1;
            self.state.work_cv.notify_all();
        }

        // Help out from the calling thread (its deque is slot `threads`).
        while let Some((lo, hi)) = self.state.take_block(self.threads) {
            self.state.run_block(&boxed, lo, hi);
        }
        drop(boxed);

        // Wait until every block has run AND every worker has dropped its
        // clone of the batch closure (so borrows of the caller's stack
        // cannot outlive this call).
        let mut guard = lock_clean(&self.state.done_mx);
        while self.state.remaining.load(Ordering::SeqCst) != 0
            || self.state.active.load(Ordering::SeqCst) != 0
        {
            guard = wait_clean(&self.state.done_cv, guard);
        }
        drop(guard);
        *lock_clean(&self.state.job) = None;
        std::mem::take(&mut *lock_clean(&self.state.panics))
    }

    /// Like [`WorkStealingPool::try_run`], but re-raises a summary panic
    /// after the batch completes if any task panicked. The barrier still
    /// cannot deadlock and the pool stays usable afterwards.
    pub fn run<F>(&self, n: usize, grain: usize, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        let panics = self.try_run(n, grain, f);
        if let Some(first) = panics.first() {
            panic!(
                "{} pool task(s) panicked; first: {}",
                panics.len(),
                first
            );
        }
    }

    /// Parallel map on the pool: results in input-index order. Panics (after
    /// completing the batch) if any task panicked, since the output vector
    /// would otherwise contain uninitialised slots.
    pub fn map<T, R, F>(&self, items: &[T], grain: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Send + Sync,
    {
        let n = items.len();
        let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
        // SAFETY: `MaybeUninit<R>` needs no initialisation, and the capacity
        // reserved above is exactly `n`.
        #[allow(clippy::uninit_vec)]
        unsafe {
            out.set_len(n);
        }
        let out_ptr = SendPtr(out.as_mut_ptr());
        self.run(n, grain, |i| {
            let r = f(i, &items[i]);
            // SAFETY: each index written exactly once.
            unsafe {
                out_ptr.get().add(i).write(MaybeUninit::new(r));
            }
        });
        // SAFETY: all slots initialised by the completed batch (run panics
        // — leaking the Vec, which is safe — when any task failed).
        unsafe {
            let mut v = std::mem::ManuallyDrop::new(out);
            Vec::from_raw_parts(v.as_mut_ptr() as *mut R, v.len(), v.capacity())
        }
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = lock_clean(&self.state.work_mx);
            self.state.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(wid: usize, state: Arc<BatchState>) {
    let mut seen_gen = 0usize;
    loop {
        // Wait for a new batch (or shutdown).
        {
            let mut g = lock_clean(&state.work_mx);
            while *g <= seen_gen && !state.shutdown.load(Ordering::SeqCst) {
                g = wait_clean(&state.work_cv, g);
            }
            seen_gen = *g;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let job = lock_clean(&state.job).clone();
        let Some(job) = job else { continue };
        state.active.fetch_add(1, Ordering::SeqCst);

        // Drain: own deque from the back, then steal siblings' fronts.
        while let Some((lo, hi)) = state.take_block(wid) {
            state.run_block(&job, lo, hi);
        }

        // Drop the closure clone *before* signalling inactivity.
        drop(job);
        state.active.fetch_sub(1, Ordering::SeqCst);
        {
            let _g = lock_clean(&state.done_mx);
            state.done_cv.notify_all();
        }
    }
}

struct SendPtr<T>(*mut T);
// SAFETY: SendPtr only smuggles a raw pointer across the pool's thread
// boundary; every dereference goes through `run`'s disjoint-index batches,
// so no two threads ever write the same slot.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: shared access is read-only pointer arithmetic (`get().add(i)`);
// writes target disjoint indices as above.
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_executes_every_index_once() {
        let pool = WorkStealingPool::new(4);
        let hits = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        pool.run(10_000, 32, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10_000);
        assert_eq!(sum.load(Ordering::Relaxed), 9999u64 * 10_000 / 2);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkStealingPool::new(3);
        for batch in 0..5 {
            let hits = AtomicU64::new(0);
            pool.run(1000 + batch, 16, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 1000 + batch as u64);
        }
    }

    #[test]
    fn map_preserves_order_with_irregular_cost() {
        let pool = WorkStealingPool::new(4);
        let items: Vec<u64> = (0..2000).collect();
        let out = pool.map(&items, 8, |i, &x| {
            // Make cost irregular to exercise stealing.
            if x % 97 == 0 {
                std::thread::yield_now();
            }
            x * 2 + i as u64
        });
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * 2 + i as u64).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let pool = WorkStealingPool::new(2);
        pool.run(0, 8, |_| panic!("should not run"));
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = WorkStealingPool::new(1);
        let hits = AtomicU64::new(0);
        pool.run(100, 7, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        for _ in 0..10 {
            let pool = WorkStealingPool::new(4);
            pool.run(100, 4, |_| {});
            drop(pool);
        }
    }

    #[test]
    fn panicking_task_does_not_deadlock_or_poison() {
        let pool = WorkStealingPool::new(4);
        let hits = AtomicU64::new(0);
        let panics = pool.try_run(1000, 8, |i| {
            if i % 250 == 3 {
                panic!("injected failure at {i}");
            }
            hits.fetch_add(1, Ordering::Relaxed);
        });
        // Every non-panicking task ran; every panicking one was recorded.
        assert_eq!(hits.load(Ordering::Relaxed), 996);
        assert_eq!(panics.len(), 4);
        let mut indices: Vec<usize> = panics.iter().map(|p| p.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![3, 253, 503, 753]);
        assert!(panics[0].message.starts_with("injected failure"));
        assert!(panics[0].site.contains("pool.rs"), "site: {}", panics[0].site);

        // The pool is immediately reusable.
        let hits = AtomicU64::new(0);
        assert!(pool
            .try_run(500, 16, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .is_empty());
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn run_repropagates_panics_after_completion() {
        let pool = WorkStealingPool::new(2);
        let err = crate::panics::catch_quiet(|| {
            pool.run(64, 4, |i| {
                if i == 10 {
                    panic!("boom");
                }
            });
        })
        .unwrap_err();
        assert!(err.message.contains("1 pool task(s) panicked"), "{}", err.message);
        assert!(err.message.contains("task 10"), "{}", err.message);

        // Still usable after the propagated panic.
        let hits = AtomicU64::new(0);
        pool.run(32, 4, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }
}
