//! Poison-recovering lock helpers and the central lock-order registry.
//!
//! FT2's recovery ladder runs *concurrently* with serving, so a poisoned
//! mutex is itself a DUE: a panicking batchmate that poisons a shared lock
//! would abort every later `lock().unwrap()` in the runtime — turning one
//! isolated trial crash into a whole-process outage the fault injector
//! never priced. [`lock_clean`] recovers the guard from a [`PoisonError`]
//! instead: every FT2 lock protects state that is re-validated by its
//! consumer (deques are drained per-batch, shard buffers are overwritten
//! before every read, SSE client sockets are retained/dropped on write
//! failure), so the data behind a poisoned lock is never trusted blindly
//! and recovery is always sound. Sites that genuinely *want* to die on
//! poison instead carry a `// ft2: poison-fatal (<why>)` annotation for
//! the `poisoned-lock` lint in `crates/analyze`.
//!
//! [`LOCK_REGISTRY`] is the concurrency twin of the harness
//! `KNOB_REGISTRY`: the single place where every long-lived lock in the
//! workspace is declared together with its global acquisition *rank*.
//! The `lock-order` lint builds the cross-crate lock-acquisition graph
//! from the source model and checks every nested acquisition against
//! these ranks (strictly increasing, lower rank acquired first); a cycle
//! in the graph is a potential deadlock and fails the lint. Same-name
//! acquisitions at equal rank (e.g. the per-worker `queues` deques or the
//! per-shard `partial` buffers) are permitted by convention in ascending
//! index order, which cannot cycle.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Acquire `m`, recovering the guard if a previous holder panicked.
///
/// Poisoning in `std` is advisory — the data is still there, the flag only
/// records that a panic unwound through a critical section. Every lock in
/// this workspace guards state that is overwritten or re-validated before
/// use (see the module docs), so recovering the guard is always sound and
/// keeps one panicking trial from aborting the whole serving runtime.
pub fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Block on `cv`, recovering the reacquired guard if the mutex was
/// poisoned while this thread slept. The condition must be re-checked in
/// a loop by the caller as usual (spurious wakeups are still possible).
pub fn wait_clean<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// What kind of `std::sync` primitive a registered lock is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockKind {
    /// A `std::sync::Mutex`.
    Mutex,
    /// A `std::sync::RwLock`.
    RwLock,
}

impl LockKind {
    /// Human-readable name, as shown in the README registry table.
    pub fn name(self) -> &'static str {
        match self {
            LockKind::Mutex => "Mutex",
            LockKind::RwLock => "RwLock",
        }
    }
}

/// One long-lived lock declared in [`LOCK_REGISTRY`].
#[derive(Clone, Copy, Debug)]
pub struct LockSpec {
    /// Field name of the lock — the name the `lock-order` lint extracts
    /// from an acquisition expression (`lock_clean(&self.state.queues[i])`
    /// acquires `queues`).
    pub name: &'static str,
    /// Which primitive the lock is.
    pub kind: LockKind,
    /// Global acquisition rank: nested acquisitions must be strictly
    /// rank-increasing (lower rank taken first). Equal-rank nesting is
    /// only legal for the *same* name (index-ordered sibling arrays).
    pub rank: u32,
    /// Defining module, repo-relative.
    pub site: &'static str,
    /// What the lock protects and why its rank is where it is.
    pub doc: &'static str,
}

/// Every long-lived lock in the workspace, sorted by acquisition rank.
///
/// This is the declared global lock order: any code path that holds one of
/// these while acquiring another must acquire in strictly increasing rank.
/// The `lock-order` lint in `crates/analyze` enforces it statically; a
/// nested acquisition of a lock *not* in this table is a finding unless
/// annotated `// ft2: lock-ok (<why>)`.
pub const LOCK_REGISTRY: &[LockSpec] = &[
    LockSpec {
        name: "state",
        kind: LockKind::Mutex,
        rank: 1,
        site: "crates/serve/src/server.rs",
        doc: "scheduler + drain state behind the serving front door; held only \
              for queue surgery, released before any engine work",
    },
    LockSpec {
        name: "clients",
        kind: LockKind::Mutex,
        rank: 2,
        site: "crates/serve/src/web.rs",
        doc: "connected SSE client sockets; held across frame writes (socket \
              ops are bounded by IO_TIMEOUT, annotated blocking-ok)",
    },
    LockSpec {
        name: "job",
        kind: LockKind::Mutex,
        rank: 3,
        site: "crates/parallel/src/pool.rs",
        doc: "current batch closure slot of the work-stealing pool",
    },
    LockSpec {
        name: "queues",
        kind: LockKind::Mutex,
        rank: 4,
        site: "crates/parallel/src/pool.rs",
        doc: "per-worker block deques; sibling deques share the rank and are \
              only ever taken one at a time (steal order is index-rotated)",
    },
    LockSpec {
        name: "panics",
        kind: LockKind::Mutex,
        rank: 5,
        site: "crates/parallel/src/pool.rs",
        doc: "panic records of the current batch, in discovery order",
    },
    LockSpec {
        name: "work_mx",
        kind: LockKind::Mutex,
        rank: 6,
        site: "crates/parallel/src/pool.rs",
        doc: "batch-generation counter; paired with work_cv to park workers \
              between batches",
    },
    LockSpec {
        name: "done_mx",
        kind: LockKind::Mutex,
        rank: 7,
        site: "crates/parallel/src/pool.rs",
        doc: "batch-completion barrier; paired with done_cv",
    },
    LockSpec {
        name: "cells",
        kind: LockKind::Mutex,
        rank: 8,
        site: "crates/parallel/src/scope.rs",
        doc: "per-chunk hand-off cells of parallel_chunks_mut; each cell is \
              taken exactly once by its owning task",
    },
    LockSpec {
        name: "dense",
        kind: LockKind::Mutex,
        rank: 9,
        site: "crates/model/src/shard.rs",
        doc: "per-shard column-parallel output buffer; overwritten by every \
              dispatch before it is read",
    },
    LockSpec {
        name: "partial",
        kind: LockKind::Mutex,
        rank: 10,
        site: "crates/model/src/shard.rs",
        doc: "per-shard row-parallel f64 partial buffer; the reduce seam \
              takes all siblings at equal rank in shard-index order",
    },
];

/// Look up a registered lock by field name.
pub fn lock_spec(name: &str) -> Option<&'static LockSpec> {
    LOCK_REGISTRY.iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::panics::catch_quiet;

    #[test]
    fn registry_is_rank_sorted_with_unique_names_and_ranks() {
        for w in LOCK_REGISTRY.windows(2) {
            assert!(w[0].rank < w[1].rank, "{} then {}", w[0].name, w[1].name);
        }
        let mut names: Vec<&str> = LOCK_REGISTRY.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LOCK_REGISTRY.len(), "duplicate lock name");
        for s in LOCK_REGISTRY {
            assert!(!s.site.is_empty() && !s.doc.is_empty(), "{}", s.name);
        }
    }

    #[test]
    fn lock_spec_finds_registered_locks_only() {
        assert_eq!(lock_spec("queues").unwrap().rank, 4);
        assert!(lock_spec("nonexistent").is_none());
    }

    #[test]
    fn lock_clean_recovers_a_poisoned_mutex() {
        let m = Mutex::new(41);
        // Poison the mutex by unwinding through a held guard.
        // ft2: poison-fatal (this test poisons the lock on purpose)
        let _ = catch_quiet(|| {
            let _g = m.lock().unwrap();
            panic!("deliberate poison");
        });
        assert!(m.is_poisoned());
        *lock_clean(&m) += 1;
        assert_eq!(*lock_clean(&m), 42);
    }

    #[test]
    fn wait_clean_wakes_and_recovers() {
        use std::sync::{Arc, Condvar, Mutex};
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *lock_clean(m) = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = lock_clean(m);
        while !*g {
            g = wait_clean(cv, g);
        }
        drop(g);
        h.join().expect("notifier join");
    }
}
