//! Structured fork–join parallelism over `std::thread::scope`.
//!
//! These helpers are deliberately simple: no task graph, no futures — just
//! deterministic data parallelism whose results are indexed by position.
//! They are the building blocks for the GEMM kernels in `ft2-tensor` and for
//! small parallel sections in the harness.

use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of worker threads to use: `FT2_THREADS` if set, otherwise the
/// hardware parallelism, and always at least 1.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("FT2_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `n` items into at most `workers` contiguous ranges of near-equal
/// length. Returns `(start, end)` pairs; never returns empty ranges.
pub fn split_ranges(n: usize, workers: usize) -> Vec<(usize, usize)> {
    if n == 0 || workers == 0 {
        return Vec::new();
    }
    let workers = workers.min(n);
    let base = n / workers;
    let extra = n % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Run `f(i)` for every `i` in `0..n`, statically chunked over the available
/// threads. Use for regular per-iteration cost; prefer
/// [`parallel_for_dynamic`] for irregular cost.
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = num_threads();
    if threads == 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let ranges = split_ranges(n, threads);
    std::thread::scope(|s| {
        for &(lo, hi) in &ranges[1..] {
            let f = &f;
            s.spawn(move || {
                for i in lo..hi {
                    f(i);
                }
            });
        }
        // Run the first range on the calling thread.
        let (lo, hi) = ranges[0];
        for i in lo..hi {
            f(i);
        }
    });
}

/// Run `f(i)` for every `i` in `0..n` with atomic-counter self-scheduling in
/// blocks of `grain` iterations. Deterministic in *results* (callers index by
/// `i`) though not in execution order.
pub fn parallel_for_dynamic<F>(n: usize, grain: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let grain = grain.max(1);
    let threads = num_threads();
    if threads == 1 || n <= grain {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let worker = |_w: usize| loop {
        let start = next.fetch_add(grain, Ordering::Relaxed);
        if start >= n {
            break;
        }
        let end = (start + grain).min(n);
        for i in start..end {
            f(i);
        }
    };
    std::thread::scope(|s| {
        for w in 1..threads {
            let worker = &worker;
            s.spawn(move || worker(w));
        }
        worker(0);
    });
}

/// Run `f(worker, lo..hi)` over contiguous near-equal ranges of `0..n`,
/// one range per worker, range 0 on the calling thread. This is the
/// scratch-friendly variant of [`parallel_for`]: each worker receives its
/// whole contiguous range in one call, so it can reuse thread-local
/// buffers across iterations instead of re-deriving state per index, and
/// the GEMM kernels can hand each worker a disjoint block of output rows.
pub fn parallel_ranges<F>(n: usize, f: F)
where
    F: Fn(usize, std::ops::Range<usize>) + Sync,
{
    let threads = num_threads();
    if threads == 1 || n <= 1 {
        if n > 0 {
            f(0, 0..n);
        }
        return;
    }
    let ranges = split_ranges(n, threads);
    std::thread::scope(|s| {
        for (w, &(lo, hi)) in ranges.iter().enumerate().skip(1) {
            let f = &f;
            s.spawn(move || f(w, lo..hi));
        }
        let (lo, hi) = ranges[0];
        f(0, lo..hi);
    });
}

/// Map `f` over `items` in parallel, returning results in input order.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
    // SAFETY: every slot in 0..n is written exactly once below before read.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n);
    }
    {
        let out_ptr = SendPtr(out.as_mut_ptr());
        parallel_for_dynamic(n, grain_for(n), |i| {
            let r = f(i, &items[i]);
            // SAFETY: distinct `i` never alias; each slot written once.
            unsafe {
                out_ptr.get().add(i).write(MaybeUninit::new(r));
            }
        });
    }
    // SAFETY: all n slots are initialised; MaybeUninit<R> and R have the
    // same layout.
    unsafe {
        let mut v = std::mem::ManuallyDrop::new(out);
        Vec::from_raw_parts(v.as_mut_ptr() as *mut R, v.len(), v.capacity())
    }
}

/// Map-and-merge: compute `f(i)` for `i in 0..n` and fold all results with
/// `merge`, starting from `identity`. The fold order is unspecified, so
/// `merge` must be commutative and associative for deterministic output
/// (e.g. counter addition, `OnlineStats::merge`).
pub fn parallel_reduce<R, F, M>(n: usize, identity: R, f: F, merge: M) -> R
where
    R: Send + Clone,
    F: Fn(usize) -> R + Sync,
    M: Fn(R, R) -> R + Sync + Send,
{
    let threads = num_threads();
    if threads == 1 || n <= 1 {
        let mut acc = identity;
        for i in 0..n {
            acc = merge(acc, f(i));
        }
        return acc;
    }
    let ranges = split_ranges(n, threads);
    let mut partials: Vec<R> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for &(lo, hi) in &ranges[1..] {
            let f = &f;
            let merge = &merge;
            let id = identity.clone();
            handles.push(s.spawn(move || {
                let mut acc = id;
                for i in lo..hi {
                    acc = merge(acc, f(i));
                }
                acc
            }));
        }
        let (lo, hi) = ranges[0];
        let mut acc = identity.clone();
        for i in lo..hi {
            acc = merge(acc, f(i));
        }
        partials.push(acc);
        for (w, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(partial) => partials.push(partial),
                // Propagate the worker's own panic message instead of a
                // generic expect — the payload is the actual bug report.
                Err(payload) => panic!(
                    "parallel_reduce worker {} panicked: {}",
                    w + 1,
                    crate::panics::payload_message(payload.as_ref())
                ),
            }
        }
    });
    let mut it = partials.into_iter();
    let first = it.next().expect("at least one partial");
    it.fold(first, merge)
}

/// Process disjoint mutable chunks of `data` in parallel. `f` receives the
/// chunk index and the chunk. The final chunk may be shorter.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0);
    let chunks: Vec<&mut [T]> = data.chunks_mut(chunk).collect();
    let n = chunks.len();
    if num_threads() == 1 || n <= 1 {
        for (i, c) in chunks.into_iter().enumerate() {
            f(i, c);
        }
        return;
    }
    // Move chunks into per-index cells so workers can take their own.
    let cells: Vec<std::sync::Mutex<Option<&mut [T]>>> = chunks
        .into_iter()
        .map(|c| std::sync::Mutex::new(Some(c)))
        .collect();
    parallel_for_dynamic(n, 1, |i| {
        let c = crate::lock_clean::lock_clean(&cells[i])
            .take()
            .expect("chunk taken twice");
        f(i, c);
    });
}

/// Heuristic grain size: aim for ~8 blocks per thread to balance scheduling
/// overhead against load imbalance.
fn grain_for(n: usize) -> usize {
    (n / (num_threads() * 8)).max(1)
}

/// A raw pointer wrapper that asserts Send+Sync so disjoint-index writes can
/// cross the scoped-thread boundary.
struct SendPtr<T>(*mut T);
// SAFETY: only the pointer value crosses threads; each scoped task
// dereferences a disjoint index range, so no slot is aliased mutably.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: shared use is limited to copying the pointer out via `get`;
// writes through it stay disjoint per the scope's range splitting.
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn split_ranges_covers_exactly() {
        for n in [0usize, 1, 7, 8, 9, 100] {
            for w in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(n, w);
                let mut covered = 0;
                let mut prev_end = 0;
                for (lo, hi) in &ranges {
                    assert_eq!(*lo, prev_end);
                    assert!(hi > lo, "empty range for n={n} w={w}");
                    covered += hi - lo;
                    prev_end = *hi;
                }
                assert_eq!(covered, n);
                // Balanced within 1.
                if !ranges.is_empty() {
                    let lens: Vec<usize> = ranges.iter().map(|(a, b)| b - a).collect();
                    let min = lens.iter().min().unwrap();
                    let max = lens.iter().max().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn parallel_for_visits_all_once() {
        let hits = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        parallel_for(1000, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn parallel_ranges_partitions_exactly() {
        let hits = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        parallel_ranges(1001, |_, range| {
            for i in range {
                hits.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(i as u64, Ordering::Relaxed);
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1001);
        assert_eq!(sum.load(Ordering::Relaxed), 1000 * 1001 / 2);
        // n = 0 never calls f.
        parallel_ranges(0, |_, _| panic!("must not be called"));
    }

    #[test]
    fn parallel_for_dynamic_visits_all_once() {
        let hits = AtomicU64::new(0);
        parallel_for_dynamic(10_000, 16, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn parallel_map_matches_sequential() {
        let items: Vec<u64> = (0..5000).collect();
        let par = parallel_map(&items, |i, &x| x * 3 + i as u64);
        let seq: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * 3 + i as u64).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_drops_results_properly() {
        // Results that allocate must be dropped exactly once (miri-friendly
        // sanity via refcounts).
        use std::sync::Arc;
        let token = Arc::new(());
        let items: Vec<u32> = (0..100).collect();
        let out = parallel_map(&items, |_, _| Arc::clone(&token));
        assert_eq!(Arc::strong_count(&token), 101);
        drop(out);
        assert_eq!(Arc::strong_count(&token), 1);
    }

    #[test]
    fn parallel_reduce_sums() {
        let total = parallel_reduce(10_001, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn parallel_reduce_identity_on_empty() {
        let total = parallel_reduce(0, 42u64, |_| 1, |a, b| a + b);
        assert_eq!(total, 42);
    }

    #[test]
    fn parallel_reduce_propagates_worker_panic_message() {
        // Force multi-threaded splitting regardless of FT2_THREADS by using
        // a large n; a panic in any range must surface its original message.
        let err = crate::panics::catch_quiet(|| {
            parallel_reduce(
                4096,
                0u64,
                |i| {
                    if i == 4095 {
                        panic!("poisoned trial {i}");
                    }
                    1
                },
                |a, b| a + b,
            )
        })
        .unwrap_err();
        assert!(
            err.message.contains("poisoned trial 4095"),
            "message: {}",
            err.message
        );
    }

    #[test]
    fn chunks_mut_writes_disjoint() {
        let mut data = vec![0u32; 1003];
        parallel_chunks_mut(&mut data, 64, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci as u32 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 64) as u32 + 1);
        }
    }
}
