//! Panic capture for fault-tolerant parallel execution.
//!
//! Fault-injection campaigns run untrusted-by-construction workloads: a
//! corrupted index or a NaN cascade inside a trial may panic. The campaign
//! engine must classify such trials as crashes and keep going, which needs
//! two things the standard library does not give directly:
//!
//! * **where** the panic happened — `catch_unwind` yields only the payload,
//!   while the panic *location* is only visible to the panic hook; and
//! * **silence** — the default hook prints every panic to stderr, which at
//!   campaign scale (hundreds of thousands of trials) would drown the
//!   operator in expected-crash backtraces.
//!
//! [`catch_quiet`] solves both: it installs (once, process-wide) a hook
//! wrapper that records the panic location into a thread-local and
//! suppresses printing while — and only while — the current thread is
//! inside a `catch_quiet` body. Panics on other threads, and panics that
//! escape `catch_quiet`, still reach the previously-installed hook
//! unchanged, so `#[should_panic]` tests and real bugs behave normally.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    /// True while the current thread executes a [`catch_quiet`] body.
    static QUIET: Cell<bool> = const { Cell::new(false) };
    /// `file:line` of the most recent panic on this thread.
    static LAST_SITE: RefCell<Option<String>> = const { RefCell::new(None) };
}

static HOOK: Once = Once::new();

fn install_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let site = info
                .location()
                .map(|l| format!("{}:{}", l.file(), l.line()));
            LAST_SITE.with(|s| *s.borrow_mut() = site);
            if !QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// A panic caught by [`catch_quiet`]: the location, a best-effort message,
/// and the original payload (for [`std::panic::resume_unwind`] or typed
/// downcasts such as watchdog aborts).
pub struct CaughtPanic {
    /// `file:line` where the panic was raised, when known.
    pub site: String,
    /// The payload rendered as text (`&str`/`String` payloads verbatim).
    pub message: String,
    /// The original panic payload.
    pub payload: Box<dyn Any + Send>,
}

impl std::fmt::Debug for CaughtPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaughtPanic")
            .field("site", &self.site)
            .field("message", &self.message)
            .finish_non_exhaustive()
    }
}

impl CaughtPanic {
    /// Re-raise the original panic.
    pub fn resume(self) -> ! {
        panic::resume_unwind(self.payload)
    }
}

/// Render a panic payload as text the way the default hook would.
pub fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run `f`, catching any panic without letting the global hook print it.
///
/// The closure is wrapped in [`AssertUnwindSafe`]: callers confine each
/// task's writes to its own output slot (the pool and campaign contract),
/// so observing a half-finished task state after a catch is not possible.
pub fn catch_quiet<R>(f: impl FnOnce() -> R) -> Result<R, CaughtPanic> {
    install_hook();
    let was_quiet = QUIET.with(|q| q.replace(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    QUIET.with(|q| q.set(was_quiet));
    result.map_err(|payload| {
        let site = LAST_SITE
            .with(|s| s.borrow_mut().take())
            .unwrap_or_else(|| "<unknown>".to_string());
        let message = payload_message(payload.as_ref());
        CaughtPanic {
            site,
            message,
            payload,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catches_str_and_string_payloads() {
        let err = catch_quiet(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(err.message, "boom 7");
        assert!(err.site.contains("panics.rs"), "site: {}", err.site);

        let err = catch_quiet(|| std::panic::panic_any("static")).unwrap_err();
        assert_eq!(err.message, "static");
    }

    #[test]
    fn typed_payloads_survive_for_downcast() {
        #[derive(Debug, PartialEq)]
        struct Marker(u32);
        let err = catch_quiet(|| std::panic::panic_any(Marker(9))).unwrap_err();
        assert_eq!(err.payload.downcast_ref::<Marker>(), Some(&Marker(9)));
        assert_eq!(err.message, "<non-string panic payload>");
    }

    #[test]
    fn success_passes_through() {
        assert_eq!(catch_quiet(|| 41 + 1).unwrap(), 42);
    }

    #[test]
    fn nested_catch_restores_quiet_flag() {
        let outer = catch_quiet(|| {
            let inner = catch_quiet(|| panic!("inner"));
            assert!(inner.is_err());
            QUIET.with(Cell::get)
        });
        assert!(outer.unwrap(), "quiet flag must survive the inner catch");
        assert!(!QUIET.with(Cell::get), "flag restored after outermost");
    }
}
