#![warn(missing_docs)]
//! # ft2-parallel
//!
//! The parallel execution substrate for the FT2 reproduction.
//!
//! Fault-injection campaigns are embarrassingly parallel (millions of
//! independent inference trials) but individual trials vary wildly in cost —
//! a fault that derails generation early can finish in a fraction of the
//! time of a full 180-token decode. We therefore provide two layers:
//!
//! * [`scope`] — structured, deterministic fork–join helpers built on
//!   `std::thread::scope`: static chunking ([`parallel_map`],
//!   [`parallel_for`]) for regular work such as GEMM row blocks, and
//!   atomic-counter self-scheduling ([`parallel_for_dynamic`]) for mildly
//!   irregular loops.
//! * [`pool`] — a persistent work-stealing thread pool
//!   ([`pool::WorkStealingPool`]) built purely on `std::sync`, used by the
//!   campaign engine so that worker threads are spawned once per campaign
//!   rather than once per batch. Every pool task runs under panic
//!   isolation: a panicking trial is recorded as a [`pool::TaskPanic`]
//!   instead of deadlocking the batch or killing a worker (see [`panics`]).
//! * [`mod@lock_clean`] — poison-recovering lock helpers ([`lock_clean()`],
//!   [`wait_clean()`]) and the central [`LOCK_REGISTRY`] declaring the
//!   global lock-acquisition order that the `lock-order` lint in
//!   `crates/analyze` enforces statically.
//!
//! Determinism contract: all combinators write results by *task index*, so
//! the output of a parallel run is identical to the sequential run
//! regardless of thread count or scheduling. Randomised workloads must
//! derive their RNG stream from the task index (see `ft2_numeric::rng`),
//! never from thread identity.

pub mod heartbeat;
pub mod lock_clean;
pub mod panics;
pub mod pool;
pub mod scope;

pub use heartbeat::{HeartbeatMonitor, ShardHeartbeat};
pub use lock_clean::{lock_clean, lock_spec, wait_clean, LockKind, LockSpec, LOCK_REGISTRY};
pub use panics::{catch_quiet, CaughtPanic};
pub use pool::{TaskPanic, WorkStealingPool};
pub use scope::{
    num_threads, parallel_chunks_mut, parallel_for, parallel_for_dynamic, parallel_map,
    parallel_ranges, parallel_reduce,
};
