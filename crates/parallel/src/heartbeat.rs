//! Per-shard heartbeat watchdog for multi-worker (sharded) execution.
//!
//! The per-*trial* watchdog ([`ft2-fault`'s deadline/token budget]) treats
//! a hang as a property of the whole generation: a single stuck worker
//! burns the entire `FT2_TRIAL_DEADLINE_MS` budget and the trial reports a
//! trial-level `Hang`. For sharded execution that is the wrong granularity
//! — one hung shard should trip *shard isolation* (re-execute, evict,
//! degrade) within a heartbeat interval, leaving the trial budget and the
//! other shards untouched.
//!
//! The protocol is cooperative, mirroring how a GPU driver watchdog
//! resets a stuck stream:
//!
//! 1. the driver arms shard `i` with [`ShardHeartbeat::begin`] before
//!    dispatching its task;
//! 2. a healthy task finishes in microseconds and disarms with
//!    [`ShardHeartbeat::end`];
//! 3. a hung task stops beating; the [`HeartbeatMonitor`] thread notices
//!    the stale beat after the timeout and sets the shard's cancel flag;
//! 4. the stuck task observes [`ShardHeartbeat::is_cancelled`] and panics,
//!    which the pool's per-task panic isolation converts into a
//!    [`crate::TaskPanic`] naming the shard — a *shard-scoped* failure the
//!    executor can isolate, not a trial-scoped deadline burn.
//!
//! The same monitor doubles as the **replica liveness** detector for
//! `ft2-serve`'s cross-replica failover: one slot per replica, armed
//! around each replica's scheduler step. A replica whose step stops
//! beating is cancelled by this monitor and aborts with a typed hang
//! payload the failover router downcasts — one watchdog for both
//! granularities, never two competing ones.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sentinel beat value meaning "no task in flight on this shard".
const DISARMED: u64 = u64::MAX;

/// Shared heartbeat state: one beat timestamp and one cancel flag per
/// shard. Cloned (via `Arc`) into worker tasks; all operations are
/// lock-free atomics so a beating worker never blocks the monitor.
pub struct ShardHeartbeat {
    /// Milliseconds since `epoch` of each shard's last beat, or
    /// [`DISARMED`].
    beats: Vec<AtomicU64>,
    /// Set by the monitor when a shard's beat goes stale.
    cancel: Vec<AtomicBool>,
    /// Slots evicted from the active partition (degraded-mode serving).
    /// An evicted slot is permanently quiet until [`ShardHeartbeat::reset`]:
    /// `begin`/`beat` are no-ops, the monitor skips it, and
    /// [`ShardHeartbeat::is_cancelled`] reports `false` — a monitor polled
    /// *after* the eviction must never report the dead slot as hung.
    evicted: Vec<AtomicBool>,
    epoch: Instant,
    shutdown: AtomicBool,
}

impl ShardHeartbeat {
    fn new(shards: usize) -> ShardHeartbeat {
        ShardHeartbeat {
            beats: (0..shards).map(|_| AtomicU64::new(DISARMED)).collect(),
            cancel: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            evicted: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Number of shards tracked.
    pub fn shards(&self) -> usize {
        self.beats.len()
    }

    /// Arm shard `i`: record a fresh beat. Called by the driver just
    /// before dispatching the shard's task. No-op on an evicted slot — a
    /// straggling dispatch cannot re-arm a dead shard.
    pub fn begin(&self, i: usize) {
        if self.evicted[i].load(Ordering::SeqCst) {
            return;
        }
        self.beats[i].store(self.now_ms(), Ordering::SeqCst);
    }

    /// Record liveness for shard `i` (long-running tasks call this
    /// between work items; the simulator's GEMMs finish well inside one
    /// interval, so `begin` alone usually suffices). No-op on an evicted
    /// slot.
    pub fn beat(&self, i: usize) {
        if self.evicted[i].load(Ordering::SeqCst) {
            return;
        }
        self.beats[i].store(self.now_ms(), Ordering::SeqCst);
    }

    /// Disarm shard `i`: the task completed. Stale-beat checks skip
    /// disarmed shards.
    pub fn end(&self, i: usize) {
        self.beats[i].store(DISARMED, Ordering::SeqCst);
    }

    /// Has the monitor asked shard `i` to abort? Always `false` for an
    /// evicted slot: a poll racing the eviction must not misread the dead
    /// shard as freshly hung.
    pub fn is_cancelled(&self, i: usize) -> bool {
        !self.evicted[i].load(Ordering::SeqCst) && self.cancel[i].load(Ordering::SeqCst)
    }

    /// Has slot `i` been evicted from the active partition?
    pub fn is_evicted(&self, i: usize) -> bool {
        self.evicted[i].load(Ordering::SeqCst)
    }

    /// Clear shard `i`'s cancel/evicted flags and disarm it — the driver
    /// calls this after handling a shard failure so the slot can be reused
    /// (re-execution or a repartitioned successor).
    pub fn reset(&self, i: usize) {
        self.evicted[i].store(false, Ordering::SeqCst);
        self.cancel[i].store(false, Ordering::SeqCst);
        self.beats[i].store(DISARMED, Ordering::SeqCst);
    }

    /// Permanently quiesce slot `i` after degraded-mode eviction: the slot
    /// is disarmed, its stale cancel flag is cleared, and every later
    /// `begin`/`beat`/monitor poll ignores it. The ordering (evict flag
    /// first) makes [`ShardHeartbeat::is_cancelled`] report `false` even if
    /// the monitor thread re-cancels the slot mid-eviction.
    pub fn evict(&self, i: usize) {
        self.evicted[i].store(true, Ordering::SeqCst);
        self.beats[i].store(DISARMED, Ordering::SeqCst);
        self.cancel[i].store(false, Ordering::SeqCst);
    }

    /// Force-cancel shard `i` (tests and explicit eviction).
    pub fn cancel(&self, i: usize) {
        self.cancel[i].store(true, Ordering::SeqCst);
    }
}

/// Owns the monitor thread that converts stale beats into cancellations.
/// Dropping the monitor shuts the thread down.
pub struct HeartbeatMonitor {
    state: Arc<ShardHeartbeat>,
    handle: Option<JoinHandle<()>>,
}

impl HeartbeatMonitor {
    /// Spawn a monitor for `shards` shards with the given stale-beat
    /// timeout. The monitor polls at a quarter of the timeout (at least
    /// every millisecond), so a hung shard is cancelled within roughly
    /// `timeout` to `1.25 × timeout`.
    ///
    /// A **zero timeout disables the watchdog**: a warning is printed and
    /// no monitor thread is spawned (the old behaviour — clamping to 1 ms —
    /// turned "disabled" into a 1 ms spin loop that cancelled every armed
    /// shard almost immediately). `is_cancelled` then always reports
    /// `false` and hang isolation falls back to the callers' own deadlines.
    pub fn spawn(shards: usize, timeout: Duration) -> HeartbeatMonitor {
        let state = Arc::new(ShardHeartbeat::new(shards));
        if timeout.is_zero() {
            eprintln!(
                "warning: shard heartbeat timeout is 0 — hang watchdog disabled (no monitor thread)"
            );
            return HeartbeatMonitor {
                state,
                handle: None,
            };
        }
        let watcher = Arc::clone(&state);
        let timeout_ms = timeout.as_millis().max(1) as u64;
        let poll = Duration::from_millis((timeout_ms / 4).max(1));
        let handle = std::thread::Builder::new()
            .name("ft2-shard-heartbeat".into())
            .spawn(move || loop {
                if watcher.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let now = watcher.now_ms();
                for i in 0..watcher.beats.len() {
                    if watcher.evicted[i].load(Ordering::SeqCst) {
                        continue;
                    }
                    let beat = watcher.beats[i].load(Ordering::SeqCst);
                    if beat != DISARMED && now.saturating_sub(beat) > timeout_ms {
                        watcher.cancel[i].store(true, Ordering::SeqCst);
                    }
                }
                std::thread::sleep(poll);
            })
            .expect("spawn heartbeat monitor");
        HeartbeatMonitor {
            state,
            handle: Some(handle),
        }
    }

    /// Is the watchdog actually running? `false` when a zero timeout
    /// disabled it at spawn time.
    pub fn armed(&self) -> bool {
        self.handle.is_some()
    }

    /// The shared state to hand to worker tasks.
    pub fn state(&self) -> Arc<ShardHeartbeat> {
        Arc::clone(&self.state)
    }
}

impl Drop for HeartbeatMonitor {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_shard_is_never_cancelled() {
        let mon = HeartbeatMonitor::spawn(2, Duration::from_millis(20));
        let hb = mon.state();
        hb.begin(0);
        hb.end(0);
        std::thread::sleep(Duration::from_millis(60));
        assert!(!hb.is_cancelled(0));
        assert!(!hb.is_cancelled(1), "disarmed shards must not be cancelled");
    }

    #[test]
    fn stale_shard_is_cancelled_within_the_timeout() {
        let mon = HeartbeatMonitor::spawn(3, Duration::from_millis(10));
        let hb = mon.state();
        hb.begin(1);
        // Shard 1 never beats again: the monitor must cancel it, and only it.
        let t0 = Instant::now();
        while !hb.is_cancelled(1) {
            assert!(
                t0.elapsed() < Duration::from_secs(2),
                "monitor failed to cancel a stale shard"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!hb.is_cancelled(0));
        assert!(!hb.is_cancelled(2));
    }

    #[test]
    fn reset_rearms_a_cancelled_shard() {
        let mon = HeartbeatMonitor::spawn(1, Duration::from_millis(5));
        let hb = mon.state();
        hb.begin(0);
        while !hb.is_cancelled(0) {
            std::thread::sleep(Duration::from_millis(1));
        }
        hb.reset(0);
        assert!(!hb.is_cancelled(0));
        // Disarmed after reset: no further cancellation.
        std::thread::sleep(Duration::from_millis(25));
        assert!(!hb.is_cancelled(0));
    }

    #[test]
    fn zero_timeout_disables_the_watchdog() {
        let mon = HeartbeatMonitor::spawn(2, Duration::ZERO);
        assert!(!mon.armed(), "zero timeout must not spawn a monitor thread");
        let hb = mon.state();
        // Arm a shard and never beat again: with the watchdog disabled the
        // shard must never be cancelled, no matter how stale the beat is.
        hb.begin(0);
        std::thread::sleep(Duration::from_millis(30));
        assert!(!hb.is_cancelled(0));
        assert!(!hb.is_cancelled(1));
    }

    #[test]
    fn evicted_shard_is_not_reported_hung() {
        let mon = HeartbeatMonitor::spawn(2, Duration::from_millis(5));
        let hb = mon.state();
        hb.begin(0);
        while !hb.is_cancelled(0) {
            std::thread::sleep(Duration::from_millis(1));
        }
        hb.evict(0);
        assert!(
            !hb.is_cancelled(0),
            "eviction must clear the stale cancel flag"
        );
        assert!(hb.is_evicted(0));
        // A straggling dispatch cannot re-arm the dead slot, so the monitor
        // polled well past the timeout must never report it hung again.
        hb.begin(0);
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !hb.is_cancelled(0),
            "monitor re-cancelled an evicted shard"
        );
        assert!(!hb.is_cancelled(1), "eviction must not leak to live shards");
        // Reset reclaims the slot for a repartitioned successor.
        hb.reset(0);
        assert!(!hb.is_evicted(0));
    }

    #[test]
    fn hung_task_observes_cancel_and_can_abort() {
        let mon = HeartbeatMonitor::spawn(1, Duration::from_millis(8));
        let hb = mon.state();
        let worker_hb = mon.state();
        hb.begin(0);
        let h = std::thread::spawn(move || {
            // Simulated hang: no beats, spin until cancelled.
            let t0 = Instant::now();
            while !worker_hb.is_cancelled(0) {
                if t0.elapsed() > Duration::from_secs(2) {
                    return false;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            true
        });
        assert!(h.join().unwrap(), "hung task never saw the cancel flag");
    }
}
