//! Behavioural invariants of the inference engine.

use ft2_model::attention::KvCacheBlock;
use ft2_model::block::POSITION_GAIN;
use ft2_model::engine::KvCache;
use ft2_model::hooks::RecordingTap;
use ft2_model::{
    model_zoo, ArchStyle, HookKind, LayerKind, Model, ModelConfig, TapList, ZooModel,
};
use proptest::prelude::*;

#[test]
fn generation_matches_across_identical_models() {
    // Two Model instances from the same config are the same checkpoint.
    let a = Model::new(ModelConfig::tiny_llama());
    let b = Model::new(ModelConfig::tiny_llama());
    let mut ta = TapList::new();
    let mut tb = TapList::new();
    let prompt = [5u32, 9, 33, 70, 41];
    assert_eq!(
        a.generate(&prompt, 10, &mut ta).tokens,
        b.generate(&prompt, 10, &mut tb).tokens
    );
}

#[test]
fn kv_cache_incremental_equals_batch_for_all_zoo_models() {
    // Engine-level KV-cache correctness across every architecture: the
    // hidden state for the last prompt token must match whether the prompt
    // was prefilled at once or token by token.
    for spec in model_zoo() {
        let model = spec.build();
        let prompt: Vec<u32> = vec![0, 17, 130, 321, 44, 229];

        let mut taps = TapList::new();
        let mut full_cache = KvCache::new(model.config());
        let h_full = model.forward_step(&prompt, 0, 0, &mut full_cache, &mut taps);
        let last_full = h_full.slice_rows(h_full.rows() - 1, h_full.rows());

        let mut inc_cache = KvCache::new(model.config());
        let mut last_inc = None;
        for (i, &tok) in prompt.iter().enumerate() {
            let h = model.forward_step(&[tok], i, i, &mut inc_cache, &mut taps);
            last_inc = Some(h);
        }
        let last_inc = last_inc.unwrap();
        let diff = last_full.max_abs_diff(&last_inc);
        assert!(
            diff < 2e-2,
            "{}: incremental vs batch prefill diff {diff}",
            spec.name()
        );
    }
}

#[test]
fn positional_gain_grows_activations_along_sequence() {
    // The Fig. 9 mechanism: per-layer output magnitudes drift upward with
    // absolute position.
    #[allow(clippy::assertions_on_constants)]
    const _: () = assert!(POSITION_GAIN > 0.0);
    let model = ZooModel::Opt6_7B.spec().build();
    let prompt: Vec<u32> = (0..24).map(|i| (i * 13 + 7) % 500).collect();
    let mut rec = RecordingTap::all();
    {
        let mut taps = TapList::new();
        taps.push(&mut rec);
        let _ = model.generate(&prompt, 30, &mut taps);
    }
    // Average |V_PROJ| magnitude early vs late decode steps.
    let avg_at = |step_lo: usize, step_hi: usize| -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (c, data) in &rec.captures {
            if c.point.layer == LayerKind::VProj && c.step >= step_lo && c.step < step_hi {
                sum += data.iter().map(|v| v.abs() as f64).sum::<f64>();
                n += data.len();
            }
        }
        sum / n as f64
    };
    let early = avg_at(1, 6);
    let late = avg_at(24, 30);
    assert!(
        late > early * 1.05,
        "late-position activations ({late:.4}) should exceed early ones ({early:.4})"
    );
}

#[test]
fn activation_hooks_fire_only_for_mlp_first_linear() {
    for (config, expect_kind) in [
        (ModelConfig::tiny_opt(), LayerKind::Fc1),
        (ModelConfig::tiny_llama(), LayerKind::GateProj),
    ] {
        let model = Model::new(config);
        let mut rec = RecordingTap::all().including_activations();
        {
            let mut taps = TapList::new();
            taps.push(&mut rec);
            let _ = model.generate(&[1, 2, 3], 3, &mut taps);
        }
        let act_points: Vec<LayerKind> = rec
            .captures
            .iter()
            .filter(|(c, _)| c.hook == HookKind::ActivationOutput)
            .map(|(c, _)| c.point.layer)
            .collect();
        assert!(!act_points.is_empty());
        assert!(act_points.iter().all(|&k| k == expect_kind));
    }
}

#[test]
fn spike_tokens_produce_large_v_values() {
    // The massive-activation mechanism: some domain/rare tokens light up
    // V_PROJ rows well beyond the bulk distribution.
    let model = ZooModel::Opt6_7B.spec().build();
    let vocab = model.config().vocab;
    // Run all domain/rare tokens through one prefill and find the max.
    let prompt: Vec<u32> = (vocab * 316 / 512..vocab).map(|t| t as u32).collect();
    let mut rec = RecordingTap::all();
    {
        let mut taps = TapList::new();
        taps.push(&mut rec);
        let mut cache = KvCache::new(model.config());
        let _ = model.forward_step(&prompt, 0, 0, &mut cache, &mut taps);
    }
    let mut vmax = 0.0f32;
    for (c, data) in &rec.captures {
        if c.point.layer == LayerKind::VProj {
            for &v in data {
                vmax = vmax.max(v.abs());
            }
        }
    }
    assert!(vmax > 2.0, "expected V spikes above 2.0, got {vmax}");
}

proptest! {
    /// Any prompt within vocab generates the requested number of tokens,
    /// all within vocab, on both architecture families.
    #[test]
    fn generation_is_total(
        prompt in prop::collection::vec(0u32..96, 1..12),
        gen in 1usize..12,
        llama in any::<bool>(),
    ) {
        let config = if llama { ModelConfig::tiny_llama() } else { ModelConfig::tiny_opt() };
        let vocab = config.vocab;
        let model = Model::new(config);
        let mut taps = TapList::new();
        let out = model.generate(&prompt, gen, &mut taps);
        prop_assert_eq!(out.tokens.len(), gen);
        prop_assert!(out.tokens.iter().all(|&t| (t as usize) < vocab));
    }

    /// The attention cache length always equals the number of processed
    /// positions.
    #[test]
    fn cache_length_tracks_positions(n1 in 1usize..6, n2 in 1usize..4) {
        let config = ModelConfig::tiny_opt();
        let weights = ft2_model::weights::ModelWeights::build(&config);
        let mut cache = KvCacheBlock::new(config.hidden);
        let mut taps = TapList::new();
        let x1 = ft2_tensor::Matrix::zeros(n1, config.hidden);
        let _ = ft2_model::attention::attention_forward(
            &config, &weights.blocks[0], 0, &x1, 0, 0, &mut cache, &mut taps,
        );
        prop_assert_eq!(cache.len(), n1);
        let x2 = ft2_tensor::Matrix::zeros(n2, config.hidden);
        let _ = ft2_model::attention::attention_forward(
            &config, &weights.blocks[0], 0, &x2, n1, 1, &mut cache, &mut taps,
        );
        prop_assert_eq!(cache.len(), n1 + n2);
    }

    /// Criticality sets never change with model scale — only with
    /// architecture style.
    #[test]
    fn arch_graph_is_scale_invariant(hidden_mult in 1usize..5) {
        let mut config = ModelConfig::tiny_llama();
        config.hidden = 16 * hidden_mult;
        config.heads = config.hidden / 8;
        let g1 = ft2_model::ArchGraph::for_config(&config);
        let g2 = ft2_model::ArchGraph::for_style(ArchStyle::LlamaStyle);
        let l1: Vec<_> = g1.layers().map(|(k, ops)| (k, ops.to_vec())).collect();
        let l2: Vec<_> = g2.layers().map(|(k, ops)| (k, ops.to_vec())).collect();
        prop_assert_eq!(l1, l2);
    }
}
