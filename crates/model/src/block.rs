//! The pre-norm decoder block (both architecture styles).

use crate::attention::{attention_forward_into, KvCacheBlock};
use crate::config::{ModelConfig, NormKind, RopeTable};
use crate::hooks::TapList;
use crate::mlp::mlp_forward_into;
use crate::scratch::BlockScratch;
use crate::weights::{BlockWeights, NormParams};
use ft2_tensor::{add_inplace, layer_norm, rms_norm, KernelPolicy, Matrix};

/// Per-position activation growth rate. Pre-norm LLMs exhibit a systematic
/// increase of activation magnitudes along the sequence (residual-stream
/// norm growth / "massive activations"); it is the reason first-token
/// bounds must be scaled before they can cover later tokens (Fig. 9 — the
/// unscaled bounds clip benign late-position values). The block input is
/// scaled by `1 + POSITION_GAIN * position` after normalisation so every
/// linear-layer output inherits the drift.
pub const POSITION_GAIN: f32 = 0.012;

/// Apply the configured normalisation to a copy of `x`, then the
/// position-dependent activation gain for absolute positions
/// `start_pos..start_pos + rows`.
pub fn normed_at(
    config: &ModelConfig,
    params: &NormParams,
    x: &Matrix,
    start_pos: usize,
) -> Matrix {
    let mut y = Matrix::zeros(0, 0);
    normed_at_into(config, params, x, start_pos, &mut y);
    y
}

/// [`normed_at`] writing into a caller-owned buffer.
pub fn normed_at_into(
    config: &ModelConfig,
    params: &NormParams,
    x: &Matrix,
    start_pos: usize,
    y: &mut Matrix,
) {
    normed_into(config, params, x, y);
    for r in 0..y.rows() {
        let gain = 1.0 + POSITION_GAIN * (start_pos + r) as f32;
        for v in y.row_mut(r) {
            *v *= gain;
        }
    }
}

/// Normalisation without the positional gain (used for the final norm
/// before the LM head, where the paper's protected layers have all run).
pub fn normed(config: &ModelConfig, params: &NormParams, x: &Matrix) -> Matrix {
    let mut y = Matrix::zeros(0, 0);
    normed_into(config, params, x, &mut y);
    y
}

/// [`normed`] writing into a caller-owned buffer.
pub fn normed_into(config: &ModelConfig, params: &NormParams, x: &Matrix, y: &mut Matrix) {
    y.reset(x.rows(), x.cols());
    y.as_mut_slice().copy_from_slice(x.as_slice());
    match config.norm {
        NormKind::LayerNorm => layer_norm(y, &params.gamma, &params.beta, 1e-5),
        NormKind::RmsNorm => rms_norm(y, &params.gamma, 1e-6),
    }
}

/// Run one decoder block: pre-norm attention with residual, then pre-norm
/// MLP with residual. `x` is updated in place.
///
/// Compatibility wrapper over [`block_forward_into`]: strict kernel
/// policy, on-the-fly RoPE, fresh scratch.
#[allow(clippy::too_many_arguments)]
pub fn block_forward(
    config: &ModelConfig,
    weights: &BlockWeights,
    block_idx: usize,
    x: &mut Matrix,
    start_pos: usize,
    step: usize,
    cache: &mut KvCacheBlock,
    taps: &mut TapList<'_>,
) {
    let mut scratch = BlockScratch::default();
    block_forward_into(
        config,
        weights,
        block_idx,
        x,
        start_pos,
        step,
        cache,
        taps,
        KernelPolicy::Strict,
        None,
        &mut scratch,
    );
}

/// [`block_forward`] with explicit [`KernelPolicy`], optional precomputed
/// [`RopeTable`], and caller-owned scratch buffers.
#[allow(clippy::too_many_arguments)]
pub fn block_forward_into(
    config: &ModelConfig,
    weights: &BlockWeights,
    block_idx: usize,
    x: &mut Matrix,
    start_pos: usize,
    step: usize,
    cache: &mut KvCacheBlock,
    taps: &mut TapList<'_>,
    policy: KernelPolicy,
    rope: Option<&RopeTable>,
    scratch: &mut BlockScratch,
) {
    // Attention sub-block: x = x + Attn(Norm(x)).
    normed_at_into(config, &weights.attn_norm, x, start_pos, &mut scratch.normed);
    attention_forward_into(
        config,
        weights,
        block_idx,
        &scratch.normed,
        start_pos,
        step,
        cache,
        taps,
        policy,
        rope,
        &mut scratch.attn,
    );
    add_inplace(x, &scratch.attn.out);

    // MLP sub-block: x = x + MLP(Norm(x)).
    normed_at_into(config, &weights.mlp_norm, x, start_pos, &mut scratch.normed);
    mlp_forward_into(
        config,
        weights,
        block_idx,
        &scratch.normed,
        start_pos,
        step,
        taps,
        &mut scratch.mlp,
    );
    add_inplace(x, &scratch.mlp.out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::hooks::RecordingTap;
    use crate::weights::ModelWeights;

    #[test]
    fn block_preserves_shape_and_is_deterministic() {
        let config = ModelConfig::tiny_opt();
        let weights = ModelWeights::build(&config);
        let mut taps = TapList::new();
        let x0 = Matrix::from_fn(3, config.hidden, |r, c| ((r + c) % 7) as f32 * 0.1);

        let mut xa = x0.clone();
        let mut ca = KvCacheBlock::new(config.hidden);
        block_forward(&config, &weights.blocks[0], 0, &mut xa, 0, 0, &mut ca, &mut taps);

        let mut xb = x0.clone();
        let mut cb = KvCacheBlock::new(config.hidden);
        block_forward(&config, &weights.blocks[0], 0, &mut xb, 0, 0, &mut cb, &mut taps);

        assert_eq!(xa, xb);
        assert_eq!(xa.rows(), 3);
        assert_eq!(xa.cols(), config.hidden);
        assert_ne!(xa, x0, "block must transform its input");
    }

    #[test]
    fn residual_passes_information_through_zeroed_branches() {
        // If attention and MLP weights output ~nothing, the block is close
        // to identity thanks to the residual branches — the mechanism that
        // makes NaN-to-zero correction safe (Take-away #2).
        let config = ModelConfig::tiny_opt();
        let mut weights = ModelWeights::build(&config);
        let b = &mut weights.blocks[0];
        for lin in [&mut b.out_proj] {
            for v in lin.weight.as_mut_slice() {
                *v = 0.0;
            }
            if let Some(bias) = &mut lin.bias {
                for v in bias {
                    *v = 0.0;
                }
            }
        }
        if let Some((_, fc2)) = &mut b.fc {
            for v in fc2.weight.as_mut_slice() {
                *v = 0.0;
            }
            if let Some(bias) = &mut fc2.bias {
                for v in bias {
                    *v = 0.0;
                }
            }
        }
        let mut taps = TapList::new();
        let x0 = Matrix::from_fn(2, config.hidden, |r, c| (r as f32 - c as f32) * 0.05);
        let mut x = x0.clone();
        let mut cache = KvCacheBlock::new(config.hidden);
        block_forward(&config, &weights.blocks[0], 0, &mut x, 0, 0, &mut cache, &mut taps);
        assert!(x.max_abs_diff(&x0) < 1e-6);
    }

    #[test]
    fn all_block_layers_fire_exactly_once_per_call() {
        let config = ModelConfig::tiny_llama();
        let weights = ModelWeights::build(&config);
        let mut rec = RecordingTap::all();
        {
            let mut taps = TapList::new();
            taps.push(&mut rec);
            let mut x = Matrix::from_fn(1, config.hidden, |_, c| (c % 2) as f32 * 0.4);
            let mut cache = KvCacheBlock::new(config.hidden);
            block_forward(&config, &weights.blocks[0], 0, &mut x, 0, 0, &mut cache, &mut taps);
        }
        let kinds: Vec<_> = rec.captures.iter().map(|(c, _)| c.point.layer).collect();
        let expected: Vec<_> = config.block_layers().to_vec();
        assert_eq!(kinds, expected);
    }
}
