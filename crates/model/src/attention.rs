//! Multi-head causal self-attention with a KV cache.

use crate::config::{ArchStyle, ModelConfig};
use crate::hooks::{HookKind, TapCtx, TapList, TapPoint};
use crate::weights::BlockWeights;
use ft2_tensor::{softmax_rows, Matrix};

/// Cached keys and values of one block (one row per past position).
#[derive(Clone, Debug)]
pub struct KvCacheBlock {
    /// Cached keys `[positions, hidden]` (post-RoPE for Llama-style).
    pub k: Matrix,
    /// Cached values `[positions, hidden]`.
    pub v: Matrix,
}

impl KvCacheBlock {
    /// Empty cache for a given hidden size.
    pub fn new(hidden: usize) -> Self {
        KvCacheBlock {
            k: Matrix::zeros(0, hidden),
            v: Matrix::zeros(0, hidden),
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.k.rows()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.k.rows() == 0
    }

    /// Drop cached positions past `len` — token rollback. Attention only
    /// ever *appends* rows for new positions (prior rows are immutable), so
    /// truncating to a pre-step length restores the exact pre-step cache.
    pub fn truncate(&mut self, len: usize) {
        self.k.truncate_rows(len);
        self.v.truncate_rows(len);
    }
}

/// Apply rotary position embeddings in place to `[n, hidden]` data laid out
/// as `heads × head_dim`, for absolute positions `start_pos..start_pos + n`.
/// RoPE is a per-pair rotation: it preserves magnitudes exactly, which is
/// why it plays no role in the criticality analysis.
pub fn apply_rope(x: &mut Matrix, start_pos: usize, heads: usize, head_dim: usize) {
    debug_assert_eq!(x.cols(), heads * head_dim);
    let half = head_dim / 2;
    for r in 0..x.rows() {
        let pos = (start_pos + r) as f32;
        let row = x.row_mut(r);
        for h in 0..heads {
            let base = h * head_dim;
            for i in 0..half {
                let theta = pos * 10_000f32.powf(-2.0 * i as f32 / head_dim as f32);
                let (sin, cos) = theta.sin_cos();
                let a = row[base + 2 * i];
                let b = row[base + 2 * i + 1];
                row[base + 2 * i] = a * cos - b * sin;
                row[base + 2 * i + 1] = a * sin + b * cos;
            }
        }
    }
}

/// Run causal multi-head attention for the rows of `x` (absolute positions
/// `start_pos..start_pos + n`), appending this step's K/V to the cache.
/// Returns the attention output `[n, hidden]` (after `OUT_PROJ`).
#[allow(clippy::too_many_arguments)]
pub fn attention_forward(
    config: &ModelConfig,
    weights: &BlockWeights,
    block_idx: usize,
    x: &Matrix,
    start_pos: usize,
    step: usize,
    cache: &mut KvCacheBlock,
    taps: &mut TapList<'_>,
) -> Matrix {
    use crate::config::LayerKind::*;
    let n = x.rows();
    let heads = config.heads;
    let head_dim = config.head_dim();
    let dtype = config.dtype;
    let ctx = |layer| TapCtx {
        point: TapPoint {
            block: block_idx,
            layer,
        },
        hook: HookKind::LinearOutput,
        step,
        first_pos: start_pos,
        dtype,
    };

    let mut k = weights.k_proj.forward(x, dtype);
    taps.fire(&ctx(KProj), &mut k);
    let mut q = weights.q_proj.forward(x, dtype);
    taps.fire(&ctx(QProj), &mut q);
    let mut v = weights.v_proj.forward(x, dtype);
    taps.fire(&ctx(VProj), &mut v);

    if config.style == ArchStyle::LlamaStyle {
        apply_rope(&mut q, start_pos, heads, head_dim);
        apply_rope(&mut k, start_pos, heads, head_dim);
    }

    debug_assert_eq!(cache.len(), start_pos, "cache out of sync with position");
    cache.k.append_rows(&k);
    cache.v.append_rows(&v);
    let total = cache.len();

    // Scores per head with causal masking, then weighted sum of values.
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut attn_out = Matrix::zeros(n, config.hidden);
    for h in 0..heads {
        let base = h * head_dim;
        // scores[i][j] = q_i · k_j * scale for j <= start_pos + i.
        let mut scores = Matrix::from_fn(n, total, |i, j| {
            if j <= start_pos + i {
                let qrow = &q.row(i)[base..base + head_dim];
                let krow = &cache.k.row(j)[base..base + head_dim];
                let mut acc = 0.0f32;
                for (a, b) in qrow.iter().zip(krow) {
                    acc += a * b;
                }
                acc * scale
            } else {
                f32::NEG_INFINITY
            }
        });
        softmax_rows(&mut scores);
        for i in 0..n {
            let out_row = attn_out.row_mut(i);
            for j in 0..=(start_pos + i) {
                let w = scores.get(i, j);
                if w == 0.0 {
                    continue;
                }
                let vrow = &cache.v.row(j)[base..base + head_dim];
                for (o, &vv) in out_row[base..base + head_dim].iter_mut().zip(vrow) {
                    *o += w * vv;
                }
            }
        }
    }

    let mut out = weights.out_proj.forward(&attn_out, dtype);
    taps.fire(&ctx(OutProj), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::weights::ModelWeights;

    #[test]
    fn rope_preserves_norm() {
        let mut x = Matrix::from_fn(3, 16, |r, c| (r * 16 + c) as f32 * 0.1 - 1.0);
        let norms_before: Vec<f32> = (0..3)
            .map(|r| x.row(r).iter().map(|v| v * v).sum::<f32>())
            .collect();
        apply_rope(&mut x, 5, 2, 8);
        for (r, &before) in norms_before.iter().enumerate() {
            let after: f32 = x.row(r).iter().map(|v| v * v).sum();
            assert!((after - before).abs() < 1e-3);
        }
    }

    #[test]
    fn rope_at_position_zero_is_identity() {
        let orig = Matrix::from_fn(1, 8, |_, c| c as f32 + 1.0);
        let mut x = orig.clone();
        apply_rope(&mut x, 0, 1, 8);
        assert!(x.max_abs_diff(&orig) < 1e-6);
    }

    #[test]
    fn prefill_then_decode_equals_full_prefill() {
        // Processing [t0 t1 t2] in one prefill must give the same last-row
        // output as prefilling [t0 t1] then decoding t2 — the KV-cache
        // correctness invariant.
        let config = ModelConfig::tiny_llama();
        let weights = ModelWeights::build(&config);
        let block = &weights.blocks[0];
        let x_full = Matrix::from_fn(3, config.hidden, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.1 - 0.6);

        let mut taps = TapList::new();
        let mut cache_a = KvCacheBlock::new(config.hidden);
        let out_full = attention_forward(
            &config, block, 0, &x_full, 0, 0, &mut cache_a, &mut taps,
        );

        let mut cache_b = KvCacheBlock::new(config.hidden);
        let x01 = x_full.slice_rows(0, 2);
        let _ = attention_forward(&config, block, 0, &x01, 0, 0, &mut cache_b, &mut taps);
        let x2 = x_full.slice_rows(2, 3);
        let out_step = attention_forward(&config, block, 0, &x2, 2, 1, &mut cache_b, &mut taps);

        let last_full = out_full.slice_rows(2, 3);
        assert!(
            last_full.max_abs_diff(&out_step) < 2e-3,
            "cache incremental mismatch: {}",
            last_full.max_abs_diff(&out_step)
        );
    }

    #[test]
    fn causality_first_row_ignores_future() {
        // Row 0's output must not depend on later rows.
        let config = ModelConfig::tiny_opt();
        let weights = ModelWeights::build(&config);
        let block = &weights.blocks[0];
        let mut taps = TapList::new();

        let x_a = Matrix::from_fn(2, config.hidden, |r, c| if r == 0 { (c % 5) as f32 * 0.2 } else { 1.0 });
        let x_b = Matrix::from_fn(2, config.hidden, |r, c| if r == 0 { (c % 5) as f32 * 0.2 } else { -1.0 });

        let mut ca = KvCacheBlock::new(config.hidden);
        let out_a = attention_forward(&config, block, 0, &x_a, 0, 0, &mut ca, &mut taps);
        let mut cb = KvCacheBlock::new(config.hidden);
        let out_b = attention_forward(&config, block, 0, &x_b, 0, 0, &mut cb, &mut taps);

        let row0_a = out_a.slice_rows(0, 1);
        let row0_b = out_b.slice_rows(0, 1);
        assert!(row0_a.max_abs_diff(&row0_b) < 1e-6);
        // But row 1 must differ.
        let row1_a = out_a.slice_rows(1, 2);
        let row1_b = out_b.slice_rows(1, 2);
        assert!(row1_a.max_abs_diff(&row1_b) > 1e-4);
    }

    #[test]
    fn truncate_restores_pre_step_cache_exactly() {
        // Decode a position, roll it back, re-decode: the cache contents and
        // the attention output must be bit-identical — the invariant the
        // engine's token rollback relies on.
        let config = ModelConfig::tiny_llama();
        let weights = ModelWeights::build(&config);
        let block = &weights.blocks[0];
        let mut taps = TapList::new();
        let prefill = Matrix::from_fn(3, config.hidden, |r, c| ((r * 13 + c) % 11) as f32 * 0.07);
        let mut cache = KvCacheBlock::new(config.hidden);
        let _ = attention_forward(&config, block, 0, &prefill, 0, 0, &mut cache, &mut taps);
        let snapshot_len = cache.len();
        let k_before = cache.k.clone();

        let x = Matrix::from_fn(1, config.hidden, |_, c| (c % 5) as f32 * 0.11 - 0.2);
        let out_a = attention_forward(&config, block, 0, &x, 3, 1, &mut cache, &mut taps);
        cache.truncate(snapshot_len);
        assert_eq!(cache.len(), snapshot_len);
        assert_eq!(cache.k, k_before);
        let out_b = attention_forward(&config, block, 0, &x, 3, 1, &mut cache, &mut taps);
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn cache_grows_by_step_rows() {
        let config = ModelConfig::tiny_opt();
        let weights = ModelWeights::build(&config);
        let mut taps = TapList::new();
        let mut cache = KvCacheBlock::new(config.hidden);
        let x = Matrix::zeros(4, config.hidden);
        let _ = attention_forward(&config, &weights.blocks[0], 0, &x, 0, 0, &mut cache, &mut taps);
        assert_eq!(cache.len(), 4);
        let x1 = Matrix::zeros(1, config.hidden);
        let _ = attention_forward(&config, &weights.blocks[0], 0, &x1, 4, 1, &mut cache, &mut taps);
        assert_eq!(cache.len(), 5);
    }
}
