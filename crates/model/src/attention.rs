//! Multi-head causal self-attention with a KV cache.

use crate::config::{ArchStyle, ModelConfig, RopeTable};
use crate::hooks::{HookKind, TapCtx, TapList, TapPoint};
use crate::scratch::AttnScratch;
use crate::weights::BlockWeights;
use ft2_tensor::{dot, softmax_rows, KernelPolicy, Matrix};

/// Cached keys and values of one block (one row per past position).
#[derive(Clone, Debug)]
pub struct KvCacheBlock {
    /// Cached keys `[positions, hidden]` (post-RoPE for Llama-style).
    pub k: Matrix,
    /// Cached values `[positions, hidden]`.
    pub v: Matrix,
}

impl KvCacheBlock {
    /// Empty cache for a given hidden size.
    pub fn new(hidden: usize) -> Self {
        KvCacheBlock {
            k: Matrix::zeros(0, hidden),
            v: Matrix::zeros(0, hidden),
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.k.rows()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.k.rows() == 0
    }

    /// Drop cached positions past `len` — token rollback. Attention only
    /// ever *appends* rows for new positions (prior rows are immutable), so
    /// truncating to a pre-step length restores the exact pre-step cache.
    pub fn truncate(&mut self, len: usize) {
        self.k.truncate_rows(len);
        self.v.truncate_rows(len);
    }
}

/// Apply rotary position embeddings in place to `[n, hidden]` data laid out
/// as `heads × head_dim`, for absolute positions `start_pos..start_pos + n`.
/// RoPE is a per-pair rotation: it preserves magnitudes exactly, which is
/// why it plays no role in the criticality analysis.
///
/// Rotation pairs are `(2i, 2i+1)`, so an odd `head_dim` has no valid
/// pairing for its last lane — that is a configuration error
/// (`ModelConfig::validate` rejects it), and this asserts rather than
/// silently leaving the lane unrotated as it used to.
pub fn apply_rope(x: &mut Matrix, start_pos: usize, heads: usize, head_dim: usize) {
    debug_assert_eq!(x.cols(), heads * head_dim);
    assert!(
        head_dim.is_multiple_of(2),
        "rotary embeddings need an even head_dim, got {head_dim}"
    );
    let half = head_dim / 2;
    for r in 0..x.rows() {
        let pos = (start_pos + r) as f32;
        let row = x.row_mut(r);
        for h in 0..heads {
            let base = h * head_dim;
            for i in 0..half {
                let theta = pos * 10_000f32.powf(-2.0 * i as f32 / head_dim as f32);
                let (sin, cos) = theta.sin_cos();
                let a = row[base + 2 * i];
                let b = row[base + 2 * i + 1];
                row[base + 2 * i] = a * cos - b * sin;
                row[base + 2 * i + 1] = a * sin + b * cos;
            }
        }
    }
}

/// Table-driven [`apply_rope`]: identical rotation (the table stores the
/// bit-exact same sin/cos values) without the per-element `powf`/`sin_cos`.
pub fn apply_rope_with(x: &mut Matrix, start_pos: usize, heads: usize, table: &RopeTable) {
    let half = table.half();
    let head_dim = 2 * half;
    debug_assert_eq!(x.cols(), heads * head_dim);
    for r in 0..x.rows() {
        let (sin, cos) = table.at(start_pos + r);
        let row = x.row_mut(r);
        for h in 0..heads {
            let base = h * head_dim;
            for i in 0..half {
                let a = row[base + 2 * i];
                let b = row[base + 2 * i + 1];
                row[base + 2 * i] = a * cos[i] - b * sin[i];
                row[base + 2 * i + 1] = a * sin[i] + b * cos[i];
            }
        }
    }
}

/// Run causal multi-head attention for the rows of `x` (absolute positions
/// `start_pos..start_pos + n`), appending this step's K/V to the cache.
/// Returns the attention output `[n, hidden]` (after `OUT_PROJ`).
///
/// Compatibility wrapper over [`attention_forward_into`]: strict kernel
/// policy, on-the-fly RoPE, fresh scratch.
#[allow(clippy::too_many_arguments)]
pub fn attention_forward(
    config: &ModelConfig,
    weights: &BlockWeights,
    block_idx: usize,
    x: &Matrix,
    start_pos: usize,
    step: usize,
    cache: &mut KvCacheBlock,
    taps: &mut TapList<'_>,
) -> Matrix {
    let mut scratch = AttnScratch::default();
    attention_forward_into(
        config,
        weights,
        block_idx,
        x,
        start_pos,
        step,
        cache,
        taps,
        KernelPolicy::Strict,
        None,
        &mut scratch,
    );
    scratch.out
}

/// [`attention_forward`] with explicit [`KernelPolicy`], optional
/// precomputed [`RopeTable`], and caller-owned scratch buffers; the result
/// lands in `scratch.out`.
///
/// The computation is head-major: for each head, contiguous per-head Q and
/// cached-K slices feed the unrolled [`ft2_tensor::dot`], the reused
/// `scratch.scores` buffer is softmaxed, and the weighted value sum is
/// accumulated into the head's slice of `scratch.ctx`.
///
/// # Kernel-policy semantics
///
/// The value sum visits exactly the *unmasked* positions `0..=start_pos+i`
/// — like a fused attention kernel, which never reads K/V rows of
/// causally-masked future positions. Within the unmasked range, Strict mode
/// accumulates every term so a NaN in a cached V row poisons the output
/// even when its softmax weight underflowed to exactly `0.0` (IEEE:
/// `0 × NaN = NaN`); Fast mode may skip those zero-weight terms, which is
/// unobservable on finite caches only.
#[allow(clippy::too_many_arguments)]
pub fn attention_forward_into(
    config: &ModelConfig,
    weights: &BlockWeights,
    block_idx: usize,
    x: &Matrix,
    start_pos: usize,
    step: usize,
    cache: &mut KvCacheBlock,
    taps: &mut TapList<'_>,
    policy: KernelPolicy,
    rope: Option<&RopeTable>,
    scratch: &mut AttnScratch,
) {
    use crate::config::LayerKind::*;
    let n = x.rows();
    let heads = config.heads;
    let head_dim = config.head_dim();
    let dtype = config.dtype;
    let ctx = |layer| TapCtx {
        point: TapPoint {
            block: block_idx,
            layer,
        },
        hook: HookKind::LinearOutput,
        step,
        first_pos: start_pos,
        dtype,
    };

    weights.k_proj.forward_into(x, dtype, &mut scratch.k);
    taps.fire(&ctx(KProj), &mut scratch.k);
    weights.q_proj.forward_into(x, dtype, &mut scratch.q);
    taps.fire(&ctx(QProj), &mut scratch.q);
    weights.v_proj.forward_into(x, dtype, &mut scratch.v);
    taps.fire(&ctx(VProj), &mut scratch.v);

    if config.style == ArchStyle::LlamaStyle {
        match rope {
            Some(table) => {
                apply_rope_with(&mut scratch.q, start_pos, heads, table);
                apply_rope_with(&mut scratch.k, start_pos, heads, table);
            }
            None => {
                apply_rope(&mut scratch.q, start_pos, heads, head_dim);
                apply_rope(&mut scratch.k, start_pos, heads, head_dim);
            }
        }
    }

    debug_assert_eq!(cache.len(), start_pos, "cache out of sync with position");
    cache.k.append_rows(&scratch.k);
    cache.v.append_rows(&scratch.v);
    let total = cache.len();

    let scale = 1.0 / (head_dim as f32).sqrt();
    scratch.ctx.reset(n, config.hidden);
    for h in 0..heads {
        let base = h * head_dim;
        // scores[i][j] = q_i · k_j · scale for unmasked j, else -inf.
        scratch.scores.reset(n, total);
        for i in 0..n {
            let limit = start_pos + i;
            let qrow = &scratch.q.row(i)[base..base + head_dim];
            let srow = scratch.scores.row_mut(i);
            for (j, s) in srow.iter_mut().enumerate() {
                *s = if j <= limit {
                    dot(qrow, &cache.k.row(j)[base..base + head_dim]) * scale
                } else {
                    f32::NEG_INFINITY
                };
            }
        }
        softmax_rows(&mut scratch.scores);
        for i in 0..n {
            let out_row = &mut scratch.ctx.row_mut(i)[base..base + head_dim];
            for j in 0..=(start_pos + i) {
                let w = scratch.scores.get(i, j);
                // Fault-free-only shortcut: on a finite cache a zero weight
                // contributes nothing, but it would mask a NaN/Inf in the
                // cached V row (0 × NaN = NaN on real hardware).
                if policy == KernelPolicy::Fast && w == 0.0 {
                    continue;
                }
                let vrow = &cache.v.row(j)[base..base + head_dim];
                for (o, &vv) in out_row.iter_mut().zip(vrow) {
                    *o += w * vv;
                }
            }
        }
    }

    weights
        .out_proj
        .forward_into(&scratch.ctx, dtype, &mut scratch.out);
    taps.fire(&ctx(OutProj), &mut scratch.out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::weights::ModelWeights;

    #[test]
    fn rope_preserves_norm() {
        let mut x = Matrix::from_fn(3, 16, |r, c| (r * 16 + c) as f32 * 0.1 - 1.0);
        let norms_before: Vec<f32> = (0..3)
            .map(|r| x.row(r).iter().map(|v| v * v).sum::<f32>())
            .collect();
        apply_rope(&mut x, 5, 2, 8);
        for (r, &before) in norms_before.iter().enumerate() {
            let after: f32 = x.row(r).iter().map(|v| v * v).sum();
            assert!((after - before).abs() < 1e-3);
        }
    }

    #[test]
    fn rope_at_position_zero_is_identity() {
        let orig = Matrix::from_fn(1, 8, |_, c| c as f32 + 1.0);
        let mut x = orig.clone();
        apply_rope(&mut x, 0, 1, 8);
        assert!(x.max_abs_diff(&orig) < 1e-6);
    }

    #[test]
    fn prefill_then_decode_equals_full_prefill() {
        // Processing [t0 t1 t2] in one prefill must give the same last-row
        // output as prefilling [t0 t1] then decoding t2 — the KV-cache
        // correctness invariant.
        let config = ModelConfig::tiny_llama();
        let weights = ModelWeights::build(&config);
        let block = &weights.blocks[0];
        let x_full = Matrix::from_fn(3, config.hidden, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.1 - 0.6);

        let mut taps = TapList::new();
        let mut cache_a = KvCacheBlock::new(config.hidden);
        let out_full = attention_forward(
            &config, block, 0, &x_full, 0, 0, &mut cache_a, &mut taps,
        );

        let mut cache_b = KvCacheBlock::new(config.hidden);
        let x01 = x_full.slice_rows(0, 2);
        let _ = attention_forward(&config, block, 0, &x01, 0, 0, &mut cache_b, &mut taps);
        let x2 = x_full.slice_rows(2, 3);
        let out_step = attention_forward(&config, block, 0, &x2, 2, 1, &mut cache_b, &mut taps);

        let last_full = out_full.slice_rows(2, 3);
        assert!(
            last_full.max_abs_diff(&out_step) < 2e-3,
            "cache incremental mismatch: {}",
            last_full.max_abs_diff(&out_step)
        );
    }

    #[test]
    fn causality_first_row_ignores_future() {
        // Row 0's output must not depend on later rows.
        let config = ModelConfig::tiny_opt();
        let weights = ModelWeights::build(&config);
        let block = &weights.blocks[0];
        let mut taps = TapList::new();

        let x_a = Matrix::from_fn(2, config.hidden, |r, c| if r == 0 { (c % 5) as f32 * 0.2 } else { 1.0 });
        let x_b = Matrix::from_fn(2, config.hidden, |r, c| if r == 0 { (c % 5) as f32 * 0.2 } else { -1.0 });

        let mut ca = KvCacheBlock::new(config.hidden);
        let out_a = attention_forward(&config, block, 0, &x_a, 0, 0, &mut ca, &mut taps);
        let mut cb = KvCacheBlock::new(config.hidden);
        let out_b = attention_forward(&config, block, 0, &x_b, 0, 0, &mut cb, &mut taps);

        let row0_a = out_a.slice_rows(0, 1);
        let row0_b = out_b.slice_rows(0, 1);
        assert!(row0_a.max_abs_diff(&row0_b) < 1e-6);
        // But row 1 must differ.
        let row1_a = out_a.slice_rows(1, 2);
        let row1_b = out_b.slice_rows(1, 2);
        assert!(row1_a.max_abs_diff(&row1_b) > 1e-4);
    }

    #[test]
    fn truncate_restores_pre_step_cache_exactly() {
        // Decode a position, roll it back, re-decode: the cache contents and
        // the attention output must be bit-identical — the invariant the
        // engine's token rollback relies on.
        let config = ModelConfig::tiny_llama();
        let weights = ModelWeights::build(&config);
        let block = &weights.blocks[0];
        let mut taps = TapList::new();
        let prefill = Matrix::from_fn(3, config.hidden, |r, c| ((r * 13 + c) % 11) as f32 * 0.07);
        let mut cache = KvCacheBlock::new(config.hidden);
        let _ = attention_forward(&config, block, 0, &prefill, 0, 0, &mut cache, &mut taps);
        let snapshot_len = cache.len();
        let k_before = cache.k.clone();

        let x = Matrix::from_fn(1, config.hidden, |_, c| (c % 5) as f32 * 0.11 - 0.2);
        let out_a = attention_forward(&config, block, 0, &x, 3, 1, &mut cache, &mut taps);
        cache.truncate(snapshot_len);
        assert_eq!(cache.len(), snapshot_len);
        assert_eq!(cache.k, k_before);
        let out_b = attention_forward(&config, block, 0, &x, 3, 1, &mut cache, &mut taps);
        assert_eq!(out_a, out_b);
    }

    #[test]
    #[should_panic(expected = "even head_dim")]
    fn rope_rejects_odd_head_dim() {
        let mut x = Matrix::zeros(1, 9);
        apply_rope(&mut x, 0, 1, 9);
    }

    #[test]
    fn table_rope_is_bit_identical_to_on_the_fly() {
        let config = ModelConfig::tiny_llama();
        let table = RopeTable::build(&config);
        let heads = config.heads;
        let head_dim = config.head_dim();
        let orig = Matrix::from_fn(4, config.hidden, |r, c| {
            ((r * 17 + c * 3) % 23) as f32 * 0.13 - 1.1
        });
        for start_pos in [0usize, 1, 9, config.max_seq - 4] {
            let mut a = orig.clone();
            let mut b = orig.clone();
            apply_rope(&mut a, start_pos, heads, head_dim);
            apply_rope_with(&mut b, start_pos, heads, &table);
            assert_eq!(a, b, "bitwise divergence at start_pos={start_pos}");
        }
    }

    /// The satellite regression: a NaN planted in a cached V row must
    /// poison the strict-mode attention output even when that position's
    /// softmax weight underflowed to exactly 0.0 — the old `w == 0.0` skip
    /// masked it.
    #[test]
    fn strict_attention_propagates_nan_from_cached_v() {
        let config = ModelConfig::tiny_opt();
        let weights = ModelWeights::build(&config);
        let block = &weights.blocks[0];
        let mut taps = TapList::new();

        // Prefill 3 positions, corrupt position 0's V row, and make its
        // softmax weight underflow deterministically: a tap forces the
        // decode step's Q to all-ones while position 2's cached K is set to
        // all-100s, so every head scores ≈283 there and ≈0 elsewhere — the
        // other positions' weights are exp(≈−283) = exactly 0.0 in f32.
        struct ForceQ;
        impl crate::hooks::LayerTap for ForceQ {
            fn on_output(&mut self, ctx: &crate::hooks::TapCtx, data: &mut Matrix) {
                if ctx.point.layer == crate::config::LayerKind::QProj && ctx.step == 1 {
                    for v in data.as_mut_slice() {
                        *v = 1.0;
                    }
                }
            }
        }
        let mut run = |corrupt: bool, policy: KernelPolicy| -> Matrix {
            let mut cache = KvCacheBlock::new(config.hidden);
            let prefill =
                Matrix::from_fn(3, config.hidden, |r, c| ((r * 7 + c) % 5) as f32 * 0.1);
            let mut scratch = crate::scratch::AttnScratch::default();
            attention_forward_into(
                &config, block, 0, &prefill, 0, 0, &mut cache, &mut taps,
                KernelPolicy::Strict, None, &mut scratch,
            );
            for ccol in 0..config.hidden {
                cache.k.set(2, ccol, 100.0);
            }
            if corrupt {
                cache.v.set(0, 1, f32::NAN);
            }
            let x = Matrix::from_fn(1, config.hidden, |_, c| (c % 3) as f32 * 0.2 + 0.5);
            let mut force = ForceQ;
            let mut step_taps = TapList::new();
            step_taps.push(&mut force);
            let mut s2 = crate::scratch::AttnScratch::default();
            attention_forward_into(
                &config, block, 0, &x, 3, 1, &mut cache, &mut step_taps, policy, None,
                &mut s2,
            );
            s2.out
        };

        // Sanity: the weight for position 0 really is exactly zero — the
        // fast path produces a finite, NaN-free output despite the NaN.
        let fast = run(true, KernelPolicy::Fast);
        assert!(
            !fast.has_nan(),
            "setup broken: position 0's weight did not underflow to 0.0"
        );
        // Clean caches are unaffected by policy.
        assert!(!run(false, KernelPolicy::Strict).has_nan());
        // Strict mode must let the NaN poison the output (0 × NaN = NaN).
        let strict = run(true, KernelPolicy::Strict);
        assert!(
            strict.has_nan(),
            "strict attention masked a NaN in a zero-weight cached V row"
        );
    }

    #[test]
    fn cache_grows_by_step_rows() {
        let config = ModelConfig::tiny_opt();
        let weights = ModelWeights::build(&config);
        let mut taps = TapList::new();
        let mut cache = KvCacheBlock::new(config.hidden);
        let x = Matrix::zeros(4, config.hidden);
        let _ = attention_forward(&config, &weights.blocks[0], 0, &x, 0, 0, &mut cache, &mut taps);
        assert_eq!(cache.len(), 4);
        let x1 = Matrix::zeros(1, config.hidden);
        let _ = attention_forward(&config, &weights.blocks[0], 0, &x1, 4, 1, &mut cache, &mut taps);
        assert_eq!(cache.len(), 5);
    }
}
