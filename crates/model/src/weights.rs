//! Synthetic "pretrained checkpoint" construction.
//!
//! We cannot ship 7B-parameter pretrained weights, but the paper's
//! resilience phenomena do not depend on language competence — they depend
//! on the *value statistics* each layer produces (§4.1.1, Figs. 8 & 12):
//!
//! * `K_PROJ` / `Q_PROJ` / `FC1` / `GATE_PROJ` outputs are **wide**: a large
//!   fraction of values lies in the NaN-vulnerable intervals (1,2)∪(−2,−1).
//! * `V_PROJ` / `OUT_PROJ` / `FC2` / `UP_PROJ` / `DOWN_PROJ` outputs
//!   concentrate **near zero** — few NaN-vulnerable values, and a bit flip
//!   of the leading exponent bit turns them into extreme magnitudes.
//! * `FC2` / `DOWN_PROJ` additionally contain a small population of genuine
//!   **outlier channels** with large activations — the documented
//!   outlier-feature phenomenon of real LLMs that motivates FT2's
//!   clip-to-bound (rather than clip-to-zero) correction.
//!
//! The gains below target those output standard deviations given the
//! unit-variance block inputs guaranteed by pre-normalisation. Each model in
//! the zoo uses a different seed, giving an independent "checkpoint" with
//! the same statistical shape.

use crate::config::{ArchStyle, LayerKind, ModelConfig, NormKind};
use ft2_numeric::{Rng, Xoshiro256StarStar};
use ft2_tensor::{DType, Matrix};

/// Target output standard deviation per layer kind (for unit-variance
/// inputs). These values reproduce the Fig. 8 distribution split.
fn target_output_std(kind: LayerKind) -> f32 {
    match kind {
        LayerKind::KProj | LayerKind::QProj => 1.25,
        LayerKind::Fc1 | LayerKind::GateProj => 1.30,
        LayerKind::VProj | LayerKind::OutProj => 0.30,
        LayerKind::UpProj => 0.30,
        LayerKind::Fc2 | LayerKind::DownProj => 0.35,
    }
}

/// Fraction of DOWN_PROJ output channels that are outlier features. The
/// paper pinpoints the "large neuron values" in DOWN_PROJ (Fig. 12); FC2 in
/// the OPT family stays conventional.
const OUTLIER_CHANNEL_FRACTION: f64 = 0.03;
/// Weight-scale multiplier of outlier channels.
const OUTLIER_GAIN: f32 = 8.0;
/// LM-head weight-tying mix: 1.0 = fully tied to the embedding, 0.0 = fully
/// random. Controls how confident (large-margin) greedy decoding is;
/// tunable via `FT2_TIE_ALPHA` for calibration studies.
fn lm_head_tie_alpha() -> f32 {
    static ALPHA: std::sync::OnceLock<f32> = std::sync::OnceLock::new();
    *ALPHA.get_or_init(|| {
        std::env::var("FT2_TIE_ALPHA")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.5)
    })
}

/// One linear layer: weight `[out, in]` (row per output feature) plus an
/// optional bias.
#[derive(Clone, Debug, PartialEq)]
pub struct Linear {
    /// Weight matrix, `[out_features, in_features]`.
    pub weight: Matrix,
    /// Optional bias, length `out_features`.
    pub bias: Option<Vec<f32>>,
}

impl Linear {
    /// Apply to an input `[n, in] -> [n, out]` and quantise the stored
    /// output to `dtype`.
    pub fn forward(&self, x: &Matrix, dtype: DType) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        self.forward_into(x, dtype, &mut y);
        y
    }

    /// [`Linear::forward`] writing into a caller-owned output matrix so the
    /// decode hot path reuses one allocation per layer slot per step.
    pub fn forward_into(&self, x: &Matrix, dtype: DType, out: &mut Matrix) {
        ft2_tensor::matmul_transb_into(x, &self.weight, out);
        if let Some(b) = &self.bias {
            ft2_tensor::add_bias_inplace(out, b);
        }
        out.quantize(dtype);
    }

    /// [`Linear::forward_into`] on the panel-major batch GEMM
    /// ([`ft2_tensor::matmul_transb_batch_into`]): one weight-panel pass is
    /// amortised over all batch rows, and every output row is bit-identical
    /// to what [`Linear::forward_into`] produces for that row alone — the
    /// invariant the serving runtime's batch-vs-single token-identity
    /// guarantee rests on.
    pub fn forward_batch_into(&self, x: &Matrix, dtype: DType, out: &mut Matrix) {
        ft2_tensor::matmul_transb_batch_into(x, &self.weight, out);
        if let Some(b) = &self.bias {
            ft2_tensor::add_bias_inplace(out, b);
        }
        out.quantize(dtype);
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.rows()
    }
}

/// Normalisation parameters at a block boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct NormParams {
    /// Scale, length `hidden`.
    pub gamma: Vec<f32>,
    /// Shift (LayerNorm only), length `hidden`.
    pub beta: Vec<f32>,
}

/// Weights of one decoder block.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockWeights {
    /// Pre-attention norm.
    pub attn_norm: NormParams,
    /// Pre-MLP norm.
    pub mlp_norm: NormParams,
    /// Key projection.
    pub k_proj: Linear,
    /// Query projection.
    pub q_proj: Linear,
    /// Value projection.
    pub v_proj: Linear,
    /// Attention output projection.
    pub out_proj: Linear,
    /// OPT-style: FC1 / FC2. Llama-style: `None`.
    pub fc: Option<(Linear, Linear)>,
    /// Llama-style: gate / up / down. OPT-style: `None`.
    pub gated: Option<(Linear, Linear, Linear)>,
}

impl BlockWeights {
    /// The linear layer of the given kind, if present in this block.
    pub fn layer(&self, kind: LayerKind) -> Option<&Linear> {
        match kind {
            LayerKind::KProj => Some(&self.k_proj),
            LayerKind::QProj => Some(&self.q_proj),
            LayerKind::VProj => Some(&self.v_proj),
            LayerKind::OutProj => Some(&self.out_proj),
            LayerKind::Fc1 => self.fc.as_ref().map(|(a, _)| a),
            LayerKind::Fc2 => self.fc.as_ref().map(|(_, b)| b),
            LayerKind::GateProj => self.gated.as_ref().map(|(g, _, _)| g),
            LayerKind::UpProj => self.gated.as_ref().map(|(_, u, _)| u),
            LayerKind::DownProj => self.gated.as_ref().map(|(_, _, d)| d),
        }
    }

    /// Mutable access to the linear layer of the given kind (used by
    /// stored-state fault injection and by integrity repair).
    pub fn layer_mut(&mut self, kind: LayerKind) -> Option<&mut Linear> {
        match kind {
            LayerKind::KProj => Some(&mut self.k_proj),
            LayerKind::QProj => Some(&mut self.q_proj),
            LayerKind::VProj => Some(&mut self.v_proj),
            LayerKind::OutProj => Some(&mut self.out_proj),
            LayerKind::Fc1 => self.fc.as_mut().map(|(a, _)| a),
            LayerKind::Fc2 => self.fc.as_mut().map(|(_, b)| b),
            LayerKind::GateProj => self.gated.as_mut().map(|(g, _, _)| g),
            LayerKind::UpProj => self.gated.as_mut().map(|(_, u, _)| u),
            LayerKind::DownProj => self.gated.as_mut().map(|(_, _, d)| d),
        }
    }
}

/// All weights of a model.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelWeights {
    /// Token embedding table `[vocab, hidden]`.
    pub embed: Matrix,
    /// Learned positional embeddings `[max_seq, hidden]` (OPT-style only;
    /// Llama-style uses rotary embeddings computed on the fly).
    pub pos_embed: Option<Matrix>,
    /// Decoder blocks.
    pub blocks: Vec<BlockWeights>,
    /// Final normalisation before the LM head.
    pub final_norm: NormParams,
    /// LM head `[vocab, hidden]` (no bias).
    pub lm_head: Linear,
}

fn random_linear(
    rng: &mut Xoshiro256StarStar,
    out: usize,
    inp: usize,
    std: f32,
    bias: bool,
    dtype: DType,
) -> Linear {
    let mut weight = Matrix::from_fn(out, inp, |_, _| (rng.normal() as f32) * std);
    weight.quantize(dtype);
    let bias = if bias {
        Some((0..out).map(|_| (rng.normal() as f32) * 0.02).collect())
    } else {
        None
    };
    Linear { weight, bias }
}

/// Number of "spike tokens" whose embedding direction is written into
/// V_PROJ rows of every block, and the activation magnitude they produce.
/// This models token-dependent massive activations: specific (mostly rare
/// or entity) tokens light up specific value channels far beyond the bulk
/// distribution. Bounds profiled on a corpus that never contains a spike
/// token are too tight for one that does — the Fig. 3 mechanism.
/// V_PROJ spikes per block (realism: several channels carry
/// token-dependent massive activations).
const SPIKE_TOKENS: usize = 16;
/// MLP spike *pairs* per block: kept at one so that each block's FC2/DOWN
/// bound hinges on a single domain token — a corpus that lacks that token
/// profiles a bound ~2x too tight (the Fig. 3 transfer gap), while any
/// corpus that contains it (72 profiling inputs of the same dataset almost
/// surely do) is covered.
const MLP_SPIKE_TOKENS: usize = 2;
/// Spike magnitudes are drawn from a narrow band: covering *any one* spike
/// token while profiling then yields a per-layer bound adequate for all of
/// them, whereas a corpus that contains *none* of a layer's spike tokens
/// (the Fig. 3 alternative datasets) profiles a bound ~2x too tight.
const SPIKE_MAGNITUDE_LO: f64 = 3.0;
const SPIKE_MAGNITUDE_HI: f64 = 3.8;

fn add_value_spikes(
    rng: &mut Xoshiro256StarStar,
    config: &ModelConfig,
    embed: &Matrix,
    v_proj: &mut Linear,
) {
    let hidden = config.hidden;
    let vocab = config.vocab;
    for _ in 0..SPIKE_TOKENS {
        // Spike tokens live in the domain/rare regions (ids >= 316/512 of
        // the canonical layout), matching where real tokenizers put their
        // rare, large-norm tokens.
        let lo = vocab * 316 / 512;
        let tok = lo + rng.index(vocab - lo);
        let row = rng.index(v_proj.weight.rows());
        let e = embed.row(tok);
        let norm = e.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
        // w_row += (magnitude / sqrt(h)) * unit(e): the LayerNormed input
        // at this token's position is ~aligned with unit(e) and has norm
        // ~sqrt(h), so the row activates at ~magnitude.
        let magnitude = rng.range_f64(SPIKE_MAGNITUDE_LO, SPIKE_MAGNITUDE_HI) as f32;
        let coeff = magnitude / (hidden as f32).sqrt();
        for (w, &ev) in v_proj.weight.row_mut(row).iter_mut().zip(e) {
            *w += coeff * ev / norm;
        }
    }
    v_proj.weight.quantize(config.dtype);
}

/// Token-keyed MLP spike pairs: for a handful of (mostly rare/entity)
/// tokens, one FC1/GATE-or-UP row fires at magnitude `c` and feeds a
/// dedicated FC2/DOWN output coordinate, writing a large value straight
/// into the residual stream — the "massive activations" phenomenon. These
/// are the values that a foreign profiling corpus misses (Fig. 3) and that
/// clip-to-zero correction would destroy (Take-away #8).
fn add_mlp_spikes(
    rng: &mut Xoshiro256StarStar,
    config: &ModelConfig,
    embed: &Matrix,
    first: &mut Linear,
    second: &mut Linear,
) {
    let hidden = config.hidden;
    let vocab = config.vocab;
    for _ in 0..MLP_SPIKE_TOKENS {
        // MLP spike tokens live in the domain (entity) region: common in
        // encyclopedic QA corpora, rare in prompts/tweets/code/translation
        // corpora.
        let lo = vocab * 316 / 512;
        let hi = vocab * 416 / 512;
        let tok = lo + rng.index(hi - lo);
        let j = rng.index(first.weight.rows());
        let r = rng.index(second.weight.rows());
        let e = embed.row(tok);
        let norm = e.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
        let magnitude = rng.range_f64(SPIKE_MAGNITUDE_LO, SPIKE_MAGNITUDE_HI) as f32;
        let coeff = magnitude / (hidden as f32).sqrt();
        for (w, &ev) in first.weight.row_mut(j).iter_mut().zip(e) {
            *w += coeff * ev / norm;
        }
        second.weight.row_mut(r)[j] += 1.0;
    }
    first.weight.quantize(config.dtype);
    second.weight.quantize(config.dtype);
}

fn block_linear(
    rng: &mut Xoshiro256StarStar,
    config: &ModelConfig,
    kind: LayerKind,
) -> Linear {
    let inp = config.in_features(kind);
    let out = config.out_features(kind);
    let std = target_output_std(kind) / (inp as f32).sqrt();
    let mut lin = random_linear(rng, out, inp, std, config.bias, config.dtype);
    // Outlier channels in DOWN_PROJ (Fig. 12).
    if matches!(kind, LayerKind::DownProj) {
        let n_outliers = ((out as f64 * OUTLIER_CHANNEL_FRACTION).ceil() as usize).max(1);
        let picks = rng.sample_indices(out, n_outliers);
        for r in picks {
            for v in lin.weight.row_mut(r) {
                *v *= OUTLIER_GAIN;
            }
        }
        lin.weight.quantize(config.dtype);
    }
    lin
}

fn norm_params(rng: &mut Xoshiro256StarStar, hidden: usize, norm: NormKind) -> NormParams {
    let gamma = (0..hidden)
        .map(|_| 1.0 + (rng.normal() as f32) * 0.05)
        .collect();
    let beta = match norm {
        NormKind::LayerNorm => (0..hidden).map(|_| (rng.normal() as f32) * 0.02).collect(),
        NormKind::RmsNorm => vec![0.0; hidden],
    };
    NormParams { gamma, beta }
}

/// Per-token embedding magnitude, by vocabulary region. Real tokenizers
/// have frequency-stratified embedding norms (rare tokens carry larger
/// embeddings); the region boundaries mirror `ft2_tasks::vocab::Region`
/// (checked by an integration test) so that datasets with different
/// token mixes genuinely exercise different activation ranges — the
/// property behind the Fig. 3 bound-transfer degradation.
pub fn token_embed_scale(token: usize, vocab: usize) -> f32 {
    // Scale the canonical 512-token region layout to any vocab size.
    let r = token * 512 / vocab.max(1);
    match r {
        0..=15 => 1.0,    // special/punctuation
        16..=115 => 1.1,  // numbers
        116..=315 => 0.9, // common words
        316..=415 => 1.2, // domain entities
        _ => 1.35,        // rare/multilingual/code
    }
}

/// Unigram log-frequency prior added to the LM-head logits, by region.
/// Pretrained LMs emit frequent tokens unless the context demands
/// otherwise; without this prior a random-weight model emits rare "spike"
/// tokens as readily as common ones, which no real decoder does — and
/// which would expose FT2's first-token bounds to activation ranges that
/// never occur in practice.
pub fn token_logit_prior(token: usize, vocab: usize) -> f32 {
    let r = token * 512 / vocab.max(1);
    match r {
        0..=15 => 0.5,     // punctuation: very frequent
        16..=115 => -0.2,  // numbers
        116..=315 => 0.0,  // common words
        316..=415 => -3.5, // entities: context-driven
        _ => -5.0,         // rare tokens
    }
}

impl ModelWeights {
    /// Build the synthetic checkpoint for a configuration (deterministic in
    /// `config.seed`).
    pub fn build(config: &ModelConfig) -> ModelWeights {
        let mut rng = Xoshiro256StarStar::for_stream(config.seed, &[0xC0DE]);
        let hidden = config.hidden;

        let vocab = config.vocab;
        let mut embed = Matrix::from_fn(config.vocab, hidden, |r, _| {
            (rng.normal() as f32) * token_embed_scale(r, vocab)
        });
        embed.quantize(config.dtype);

        let pos_embed = match config.style {
            ArchStyle::OptStyle => {
                let mut p =
                    Matrix::from_fn(config.max_seq, hidden, |_, _| (rng.normal() as f32) * 0.1);
                p.quantize(config.dtype);
                Some(p)
            }
            ArchStyle::LlamaStyle => None,
        };

        let mut blocks = Vec::with_capacity(config.blocks);
        for _ in 0..config.blocks {
            let attn_norm = norm_params(&mut rng, hidden, config.norm);
            let mlp_norm = norm_params(&mut rng, hidden, config.norm);
            let k_proj = block_linear(&mut rng, config, LayerKind::KProj);
            let q_proj = block_linear(&mut rng, config, LayerKind::QProj);
            let mut v_proj = block_linear(&mut rng, config, LayerKind::VProj);
            add_value_spikes(&mut rng, config, &embed, &mut v_proj);
            let out_proj = block_linear(&mut rng, config, LayerKind::OutProj);
            let (fc, gated) = match config.style {
                ArchStyle::OptStyle => {
                    let mut fc1 = block_linear(&mut rng, config, LayerKind::Fc1);
                    let mut fc2 = block_linear(&mut rng, config, LayerKind::Fc2);
                    add_mlp_spikes(&mut rng, config, &embed, &mut fc1, &mut fc2);
                    (Some((fc1, fc2)), None)
                }
                ArchStyle::LlamaStyle => {
                    let gate = block_linear(&mut rng, config, LayerKind::GateProj);
                    // Spikes ride the UP path (gate stays statistical): the
                    // gated product then carries them into DOWN_PROJ.
                    let mut up = block_linear(&mut rng, config, LayerKind::UpProj);
                    let mut down = block_linear(&mut rng, config, LayerKind::DownProj);
                    add_mlp_spikes(&mut rng, config, &embed, &mut up, &mut down);
                    (None, Some((gate, up, down)))
                }
            };
            blocks.push(BlockWeights {
                attn_norm,
                mlp_norm,
                k_proj,
                q_proj,
                v_proj,
                out_proj,
                fc,
                gated,
            });
        }

        let final_norm = norm_params(&mut rng, hidden, config.norm);
        // Partially weight-tied LM head: each head row mixes the token's
        // embedding row with fresh noise. Weight tying is standard practice
        // (GPT-2, OPT tie input/output embeddings) and is what gives real
        // models *confident* next-token margins: the residual stream carries
        // the context's embedding components, so aligned rows score far above
        // the field. Without it a random transformer has near-zero logit
        // margins and every tiny perturbation flips tokens — unlike the
        // pretrained checkpoints the paper studies, whose greedy answer
        // tokens are high-confidence.
        let inv_sqrt_h = 1.0 / (hidden as f32).sqrt();
        let mut lm_head_w = Matrix::from_fn(config.vocab, hidden, |r, c| {
            let tied = embed.get(r, c);
            let noise = rng.normal() as f32;
            let alpha = lm_head_tie_alpha();
            (alpha * tied + (1.0 - alpha) * noise) * inv_sqrt_h
        });
        lm_head_w.quantize(config.dtype);
        let prior: Vec<f32> = (0..config.vocab)
            .map(|t| token_logit_prior(t, config.vocab))
            .collect();
        let lm_head = Linear {
            weight: lm_head_w,
            bias: Some(prior),
        };

        ModelWeights {
            embed,
            pos_embed,
            blocks,
            final_norm,
            lm_head,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let c = ModelConfig::tiny_opt();
        let a = ModelWeights::build(&c);
        let b = ModelWeights::build(&c);
        assert_eq!(a.embed, b.embed);
        assert_eq!(a.blocks[0].k_proj.weight, b.blocks[0].k_proj.weight);
        let mut c2 = c.clone();
        c2.seed += 1;
        let d = ModelWeights::build(&c2);
        assert_ne!(a.embed, d.embed);
    }

    #[test]
    fn shapes_match_config() {
        let c = ModelConfig::tiny_llama();
        let w = ModelWeights::build(&c);
        assert_eq!(w.embed.rows(), c.vocab);
        assert_eq!(w.embed.cols(), c.hidden);
        assert!(w.pos_embed.is_none());
        assert_eq!(w.blocks.len(), c.blocks);
        let b = &w.blocks[0];
        assert!(b.fc.is_none());
        let (gate, up, down) = b.gated.as_ref().unwrap();
        assert_eq!(gate.weight.rows(), c.ffn);
        assert_eq!(up.weight.rows(), c.ffn);
        assert_eq!(down.weight.rows(), c.hidden);
        assert_eq!(down.weight.cols(), c.ffn);
        assert_eq!(w.lm_head.weight.rows(), c.vocab);
        // Llama-style has no biases.
        assert!(b.k_proj.bias.is_none());
    }

    #[test]
    fn opt_style_has_bias_and_positions() {
        let c = ModelConfig::tiny_opt();
        let w = ModelWeights::build(&c);
        assert!(w.pos_embed.is_some());
        assert!(w.blocks[0].k_proj.bias.is_some());
        assert!(w.blocks[0].fc.is_some());
        assert!(w.blocks[0].gated.is_none());
    }

    #[test]
    fn wide_layers_are_wider_than_tight_layers() {
        // The K_PROJ weight distribution must produce wider outputs than
        // V_PROJ: compare weight standard deviations.
        let c = ModelConfig::tiny_opt();
        let w = ModelWeights::build(&c);
        let std_of = |m: &Matrix| {
            let mean: f32 = m.as_slice().iter().sum::<f32>() / m.len() as f32;
            (m.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>()
                / m.len() as f32)
                .sqrt()
        };
        let k_std = std_of(&w.blocks[0].k_proj.weight);
        let o_std = std_of(&w.blocks[0].out_proj.weight);
        assert!(
            k_std > 3.0 * o_std,
            "K_PROJ weights must be much wider (k={k_std}, out={o_std})"
        );
    }

    #[test]
    fn down_proj_has_outlier_rows() {
        let c = ModelConfig::tiny_llama();
        let w = ModelWeights::build(&c);
        let (_, _, fc2) = w.blocks[0].gated.as_ref().unwrap();
        // Row max |w| distribution: the outlier rows should stand out by a
        // factor close to OUTLIER_GAIN.
        let row_norms: Vec<f32> = (0..fc2.weight.rows())
            .map(|r| fc2.weight.row(r).iter().map(|v| v.abs()).fold(0.0, f32::max))
            .collect();
        let max = row_norms.iter().copied().fold(0.0, f32::max);
        let median = {
            let mut s = row_norms.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(max > 4.0 * median, "no outlier channels (max={max}, median={median})");
    }

    #[test]
    fn linear_forward_applies_bias_and_quantises() {
        let lin = Linear {
            weight: Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
            bias: Some(vec![0.5, -0.5]),
        };
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let y = lin.forward(&x, DType::F32);
        assert_eq!(y.as_slice(), &[1.5, 1.5]);
        let y16 = lin.forward(&x, DType::F16);
        assert_eq!(y16.as_slice(), &[1.5, 1.5]); // exactly representable
    }
}
