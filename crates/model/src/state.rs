//! Stored-state taps: hooks over weights and the KV cache *between*
//! forward passes.
//!
//! [`crate::hooks::LayerTap`] intercepts computation-path state (layer
//! outputs) — transient by construction, since every forward pass recomputes
//! it. Persistent faults instead live in *stored* state: weight matrices and
//! cached K/V rows that every subsequent step re-reads. [`StateTap`] is the
//! interception point for that state class: fault injectors corrupt it,
//! integrity scrubbers and KV guards verify and repair it, and the engine's
//! recovery ladder calls [`StateTap::on_repair`] as its last rung before
//! declaring a generation recovery-failed.

use crate::engine::KvCache;
use crate::weights::ModelWeights;
use ft2_tensor::DType;

/// Context handed to state taps, granting access to the mutable stored
/// state of the current generation plus the read-only golden checkpoint.
pub struct StateCtx<'a> {
    /// Current generation step (0 = prefill).
    pub step: usize,
    /// Prompt length of the generation (cache positions `0..prompt_len`
    /// hold prompt tokens).
    pub prompt_len: usize,
    /// The live, possibly corrupted, working copy of the weights.
    pub weights: &'a mut ModelWeights,
    /// The live KV cache.
    pub cache: &'a mut KvCache,
    /// The pristine checkpoint weights (repair source). Never mutated.
    pub golden: &'a ModelWeights,
    /// Storage precision of the model (faults corrupt this format).
    pub dtype: DType,
}

/// What a state tap observed and did during one pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StateReport {
    /// Weight tiles whose checksum was re-verified this pass.
    pub scrubbed_tiles: u64,
    /// Weight tiles found corrupted and restored from the golden copy.
    pub weight_repairs: u64,
    /// Lowest cache position found corrupted, if any. The engine reacts by
    /// invalidating positions `kv_invalid_from..` and re-decoding them from
    /// the known token sequence.
    pub kv_invalid_from: Option<usize>,
}

impl StateReport {
    /// Merge another tap's report: counts add, the invalidation point takes
    /// the minimum (repair must restart at the earliest poisoned position).
    pub fn merge(&mut self, other: &StateReport) {
        self.scrubbed_tiles += other.scrubbed_tiles;
        self.weight_repairs += other.weight_repairs;
        self.kv_invalid_from = match (self.kv_invalid_from, other.kv_invalid_from) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
}

/// A hook over stored state (weights, KV cache), fired by the engine
/// around every generation step.
pub trait StateTap {
    /// Called *before* the forward pass of each step (including re-decode
    /// attempts). Injectors corrupt stored state here; guards and scrubbers
    /// verify it here, so corruption introduced by an earlier tap in the
    /// same pass is caught before the forward pass reads it.
    fn on_step_state(&mut self, ctx: &mut StateCtx<'_>) -> StateReport;

    /// Called *after* the forward pass of each step completes. The KV guard
    /// seals the freshly appended cache rows here.
    fn on_step_end(&mut self, _ctx: &mut StateCtx<'_>) {}

    /// Full verification/repair sweep — the engine's
    /// [`crate::engine::RecoveryAction::RepairAndRetry`] rung. Scrubbers
    /// verify every tile (not just the per-step budget) and restore
    /// mismatches from the golden copy; guards re-verify every sealed row.
    fn on_repair(&mut self, _ctx: &mut StateCtx<'_>) -> StateReport {
        StateReport::default()
    }

    /// The engine truncated the KV cache to `len` positions (token rollback
    /// or poisoned-page invalidation). Guards drop their seals past `len`.
    fn on_cache_truncated(&mut self, _len: usize) {}

    /// The engine is rolling back `step` for re-decode `attempt` (0-based).
    fn on_rollback(&mut self, _step: usize, _attempt: u32) {}
}

/// An ordered list of state taps, applied in registration order.
#[derive(Default)]
pub struct StateTapList<'a> {
    taps: Vec<&'a mut dyn StateTap>,
}

impl<'a> StateTapList<'a> {
    /// Empty state-tap list.
    pub fn new() -> Self {
        StateTapList { taps: Vec::new() }
    }

    /// Register a tap; later registrations run after earlier ones (so an
    /// injector registered before a guard is caught by the same pass).
    pub fn push(&mut self, tap: &'a mut dyn StateTap) -> &mut Self {
        self.taps.push(tap);
        self
    }

    /// Number of registered taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// True when no taps are registered. The engine skips weight cloning
    /// and all state passes in that case, so the empty list is free.
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Run every tap's pre-forward pass, merging reports.
    pub fn on_step_state(&mut self, ctx: &mut StateCtx<'_>) -> StateReport {
        let mut report = StateReport::default();
        for tap in &mut self.taps {
            report.merge(&tap.on_step_state(ctx));
        }
        report
    }

    /// Run every tap's post-forward pass.
    pub fn on_step_end(&mut self, ctx: &mut StateCtx<'_>) {
        for tap in &mut self.taps {
            tap.on_step_end(ctx);
        }
    }

    /// Run every tap's full repair sweep, merging reports.
    pub fn on_repair(&mut self, ctx: &mut StateCtx<'_>) -> StateReport {
        let mut report = StateReport::default();
        for tap in &mut self.taps {
            report.merge(&tap.on_repair(ctx));
        }
        report
    }

    /// Tell every tap the cache was truncated to `len` positions.
    pub fn notify_truncate(&mut self, len: usize) {
        for tap in &mut self.taps {
            tap.on_cache_truncated(len);
        }
    }

    /// Tell every tap the engine is rolling back `step` for re-decode
    /// `attempt`.
    pub fn notify_rollback(&mut self, step: usize, attempt: u32) {
        for tap in &mut self.taps {
            tap.on_rollback(step, attempt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_merge_adds_counts_and_takes_min_invalidation() {
        let mut a = StateReport {
            scrubbed_tiles: 3,
            weight_repairs: 1,
            kv_invalid_from: Some(7),
        };
        a.merge(&StateReport {
            scrubbed_tiles: 2,
            weight_repairs: 0,
            kv_invalid_from: Some(4),
        });
        assert_eq!(a.scrubbed_tiles, 5);
        assert_eq!(a.weight_repairs, 1);
        assert_eq!(a.kv_invalid_from, Some(4));

        let mut b = StateReport::default();
        b.merge(&a);
        assert_eq!(b.kv_invalid_from, Some(4));
        b.merge(&StateReport::default());
        assert_eq!(b.kv_invalid_from, Some(4));
    }

    #[test]
    fn empty_list_is_free() {
        let taps = StateTapList::new();
        assert!(taps.is_empty());
        assert_eq!(taps.len(), 0);
    }
}
