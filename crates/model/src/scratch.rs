//! Reusable per-generation scratch buffers for the decode hot path.
//!
//! A decode step is one token through every block: each linear layer,
//! attention score buffer, and norm output used to be a fresh heap
//! allocation — dozens of short-lived matrices per token. [`DecodeScratch`]
//! owns one buffer per intermediate instead; the engine allocates it once
//! per generation and every step [`ft2_tensor::Matrix::reset`]s buffers in
//! place. The structs are split by pipeline stage so disjoint field borrows
//! (`&scratch.normed` feeding `&mut scratch.attn`) satisfy the borrow
//! checker without clones.

use ft2_tensor::Matrix;

/// Attention intermediates of one block call.
#[derive(Debug, Default)]
pub struct AttnScratch {
    /// Query projections `[n, hidden]`.
    pub q: Matrix,
    /// Key projections `[n, hidden]`.
    pub k: Matrix,
    /// Value projections `[n, hidden]`.
    pub v: Matrix,
    /// Per-head score rows `[n, cached positions]`, reused across heads.
    pub scores: Matrix,
    /// Weighted value context `[n, hidden]` (pre `OUT_PROJ`).
    pub ctx: Matrix,
    /// Attention output `[n, hidden]` (post `OUT_PROJ`).
    pub out: Matrix,
}

/// MLP intermediates of one block call (both architecture styles; the
/// OPT-style path leaves `up` untouched).
#[derive(Debug, Default)]
pub struct MlpScratch {
    /// `FC1` / `GATE_PROJ` output `[n, ffn]`.
    pub h: Matrix,
    /// `UP_PROJ` output `[n, ffn]` (Llama-style only).
    pub up: Matrix,
    /// MLP output `[n, hidden]`.
    pub out: Matrix,
}

/// Intermediates of one decoder-block call.
#[derive(Debug, Default)]
pub struct BlockScratch {
    /// Pre-norm output feeding the attention or MLP sub-block.
    pub normed: Matrix,
    /// Attention-stage buffers.
    pub attn: AttnScratch,
    /// MLP-stage buffers.
    pub mlp: MlpScratch,
}

/// All scratch state of one generation (shared across blocks and steps —
/// every buffer is fully overwritten before it is read each call).
#[derive(Debug, Default)]
pub struct DecodeScratch {
    /// The residual stream `[n, hidden]`.
    pub x: Matrix,
    /// Per-block-call buffers.
    pub block: BlockScratch,
    /// Final-norm output `[n, hidden]`.
    pub hidden: Matrix,
    /// LM-head logits `[1, vocab]`.
    pub logits: Matrix,
}

impl DecodeScratch {
    /// Fresh scratch with empty buffers; they grow to steady-state sizes on
    /// the first forward pass and are reused from then on.
    pub fn new() -> DecodeScratch {
        DecodeScratch::default()
    }
}
